// What-if queries (paper §3.3): "What will be the expected performance if
// an additional resource A is added (removed)?" — the proactive system-
// management interface the paper sketches as the natural extension of the
// event-evaluation machinery.
//
// The example runs the paper's own Fig. 4 workflow to t = 15 and then
// interrogates the planner about hypothetical grid changes.
#include <iostream>

#include "core/execution_engine.h"
#include "core/heft.h"
#include "core/whatif.h"
#include "sim/simulator.h"
#include "support/table.h"
#include "workloads/sample.h"

using namespace aheft;

int main() {
  // r4 exists in the universe but has not joined (arrival pushed out), so
  // it can serve as the "what if it joined now?" hypothesis.
  workloads::SampleScenario scenario = workloads::sample_scenario(1e9);

  const core::Schedule plan =
      core::heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  core::ExecutionEngine engine(sim, scenario.dag, scenario.model,
                               scenario.pool);
  engine.submit(plan);
  sim.run_until(15.0);
  const core::ExecutionSnapshot snapshot = engine.snapshot();

  std::cout << "Workflow state at t=15: " << snapshot.finished_count()
            << " job(s) finished, " << snapshot.running().size()
            << " running; planned makespan " << plan.makespan() << ".\n\n";

  core::SchedulerConfig config;
  config.order_candidates = 8;
  const core::WhatIfAnalyzer analyzer(scenario.dag, scenario.model,
                                      scenario.pool, config);

  AsciiTable table({"hypothesis", "predicted makespan", "delta"});
  const double baseline = analyzer.predict_current(snapshot, plan);
  table.add_row({"no change", format_double(baseline, 1), "0.0"});
  {
    const double with_r4 = analyzer.predict_with_added(snapshot, plan, 3);
    table.add_row({"add r4 now", format_double(with_r4, 1),
                   format_double(with_r4 - baseline, 1)});
  }
  for (const grid::ResourceId r : {0u, 1u, 2u}) {
    const double without =
        analyzer.predict_with_removed(snapshot, plan, r);
    table.add_row({"remove " + scenario.pool.resource(r).name,
                   format_double(without, 1),
                   format_double(without - baseline, 1)});
  }
  std::cout << table.to_string()
            << "\nReading: adding r4 at t=15 is predicted to save "
            << format_double(baseline -
                                 analyzer.predict_with_added(snapshot, plan,
                                                             3),
                             1)
            << " time units (the paper's Fig. 5 worked example); losing r3"
               " — which hosts the running n3 and most of the remaining"
               " plan — would be the most damaging event.\n";
  return 0;
}
