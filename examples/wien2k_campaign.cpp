// WIEN2K campaign: the paper's second real-world workload (Fig. 7) — two
// N-way parallel sections gated by the serial LAPW2_FERMI job. The example
// shows why the paper finds WIEN2K profits less from new resources than
// BLAST: the level structure has a one-job chokepoint.
//
// Usage: wien2k_campaign [--n=64] [--ccr=1.0] [--pool=8] [--interval=150]
//                        [--fraction=0.25] [--seed=7]
#include <iostream>

#include "core/heft.h"
#include "core/strategy.h"
#include "dag/algorithms.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/apps.h"
#include "workloads/scenario.h"

using namespace aheft;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  workloads::AppParams params;
  params.parallelism = static_cast<std::size_t>(args.get_int("n", 64));
  params.ccr = args.get_double("ccr", 1.0);
  const workloads::ResourceDynamics dynamics{
      static_cast<std::size_t>(args.get_int("pool", 8)),
      args.get_double("interval", 150.0), args.get_double("fraction", 0.25)};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  RngStream rng(seed);
  RngStream dag_stream = rng.child("dag");
  const workloads::Workload wien =
      workloads::generate_wien2k(params, dag_stream);

  // Show the level profile: the FERMI chokepoint is the width-1 level
  // between the two parallel sections.
  const auto widths = dag::level_widths(wien.dag);
  std::cout << "WIEN2K workflow: " << wien.dag.job_count()
            << " jobs; level widths:";
  for (const auto w : widths) {
    std::cout << " " << w;
  }
  std::cout << "\n(the interior width-1 level is LAPW2_FERMI — every LAPW2"
               " job waits for it)\n\n";

  grid::ResourcePool initial;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    initial.add(grid::Resource{});
  }
  const grid::MachineModel probe = workloads::build_machine_model(
      wien, dynamics.initial, 0.5, mix64(seed, 13));
  const double horizon =
      core::heft_schedule(wien.dag, probe, initial).makespan() * 4.0;
  const grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, horizon);
  const grid::MachineModel model = workloads::build_machine_model(
      wien, pool.universe_size(), 0.5, mix64(seed, 13));

  core::SessionEnvironment env;
  env.pool = &pool;
  const core::StrategyOutcome heft = core::run_strategy(
      core::StrategyKind::kStaticHeft, wien.dag, model, model, env);
  const core::StrategyOutcome aheft = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, wien.dag, model, model, env);
  const core::StrategyOutcome minmin = core::run_strategy(
      core::StrategyKind::kDynamic, wien.dag, model, model, env);

  AsciiTable table({"strategy", "makespan", "vs HEFT", "reschedules"});
  table.add_row({"HEFT (static)", format_double(heft.makespan, 1), "1.00",
                 "0"});
  table.add_row({"AHEFT (adaptive)", format_double(aheft.makespan, 1),
                 format_double(aheft.makespan / heft.makespan, 2),
                 std::to_string(aheft.adoptions)});
  table.add_row({"Min-Min (dynamic)", format_double(minmin.makespan, 1),
                 format_double(minmin.makespan / heft.makespan, 2), "-"});
  std::cout << table.to_string() << "\nAHEFT improvement: "
            << format_percent(
                   improvement_rate(heft.makespan, aheft.makespan))
            << "\n";
  return 0;
}
