// Quickstart: build a workflow DAG, describe a small grid, plan with HEFT,
// let AHEFT adapt when a new machine joins mid-run, then compare all
// three strategies through the unified core::run_strategy entry point.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/heft.h"
#include "core/planner.h"
#include "core/strategy.h"
#include "dag/dag.h"
#include "grid/machine_model.h"
#include "grid/resource_pool.h"

using namespace aheft;

int main() {
  // 1. Describe the workflow: a small fork-join pipeline. Edge weights are
  //    the amount of data shipped between jobs (cost units).
  dag::Dag workflow("quickstart");
  const dag::JobId extract = workflow.add_job("extract", "io");
  const dag::JobId clean = workflow.add_job("clean", "cpu");
  const dag::JobId features = workflow.add_job("features", "cpu");
  const dag::JobId train = workflow.add_job("train", "gpuish");
  const dag::JobId report = workflow.add_job("report", "io");
  workflow.add_edge(extract, clean, 8.0);
  workflow.add_edge(extract, features, 6.0);
  workflow.add_edge(clean, train, 4.0);
  workflow.add_edge(features, train, 4.0);
  workflow.add_edge(train, report, 2.0);
  workflow.finalize();

  // 2. Describe the grid: two machines now, a third joins at t = 12.
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "site-a", .arrival = 0.0});
  pool.add(grid::Resource{.name = "site-b", .arrival = 0.0});
  pool.add(grid::Resource{.name = "site-c", .arrival = 12.0});

  // 3. Per-(job, resource) computation costs — the w_{i,j} matrix.
  grid::MachineModel model(workflow.job_count(), pool.universe_size());
  const double w[5][3] = {{6, 7, 5},    // extract
                          {10, 12, 6},  // clean
                          {11, 9, 6},   // features
                          {14, 13, 7},  // train
                          {4, 5, 3}};   // report
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    for (grid::ResourceId j = 0; j < pool.universe_size(); ++j) {
      model.set_compute_cost(i, j, w[i][j]);
    }
  }

  // 4. Static plan over the machines available at t = 0.
  const core::Schedule plan = core::heft_schedule(workflow, model, pool);
  std::cout << "Static HEFT plan (site-c not yet visible):\n"
            << plan.gantt(workflow, pool)
            << "planned makespan: " << plan.makespan() << "\n\n";

  // 5. Adaptive run: the planner hears about site-c at t = 12, evaluates a
  //    reschedule of the remaining jobs, and adopts it if it helps.
  core::PlannerConfig config;
  config.scheduler.order_candidates = 4;  // explore near-tie rank orders
  sim::TraceRecorder trace;
  core::AdaptivePlanner planner(workflow, model, model, pool, config,
                                &trace);
  const core::AdaptiveResult result = planner.run();

  std::cout << "Adaptive run: evaluated " << result.evaluations
            << " event(s), adopted " << result.adoptions
            << " reschedule(s).\n";
  for (const core::AdoptionRecord& decision : result.decisions) {
    std::cout << "  t=" << decision.time << " " << decision.event << ": "
              << decision.current_makespan << " -> "
              << decision.candidate_makespan
              << (decision.adopted ? "  [adopted]" : "  [declined]") << "\n";
  }
  std::cout << "realized makespan: " << result.makespan << " (static plan: "
            << result.initial_makespan << ")\n\n";

  std::vector<std::string> jobs;
  std::vector<std::string> sites;
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    jobs.push_back(workflow.job(i).name);
  }
  for (const grid::Resource& r : pool.all()) {
    sites.push_back(r.name);
  }
  std::cout << "Execution trace:\n" << trace.gantt(jobs, sites) << "\n";

  // 6. The same comparison through the unified strategy API: every
  //    strategy runs in a session over one shared environment, so the
  //    makespans are directly comparable.
  core::SessionEnvironment env;
  env.pool = &pool;
  core::StrategyConfig strategy_config;
  strategy_config.planner = config;
  std::cout << "Strategy comparison (core::run_strategy):\n";
  for (const core::StrategyKind kind :
       {core::StrategyKind::kStaticHeft, core::StrategyKind::kAdaptiveAheft,
        core::StrategyKind::kDynamic}) {
    const core::StrategyOutcome outcome = core::run_strategy(
        kind, workflow, model, model, env, strategy_config);
    std::cout << "  " << core::to_string(kind) << ": makespan "
              << outcome.makespan << "\n";
  }
  return 0;
}
