// BLAST campaign: the paper's first real-world workload (Fig. 6) — an
// N-way parallel genome-comparison workflow — scheduled with all three
// strategies on a grid that keeps growing.
//
// Usage: blast_campaign [--n=64] [--ccr=1.0] [--pool=8] [--interval=150]
//                       [--fraction=0.25] [--seed=7]
#include <iostream>

#include "core/heft.h"
#include "core/strategy.h"
#include "dag/algorithms.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/apps.h"
#include "workloads/scenario.h"

using namespace aheft;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  workloads::AppParams params;
  params.parallelism = static_cast<std::size_t>(args.get_int("n", 64));
  params.ccr = args.get_double("ccr", 1.0);
  const workloads::ResourceDynamics dynamics{
      static_cast<std::size_t>(args.get_int("pool", 8)),
      args.get_double("interval", 150.0), args.get_double("fraction", 0.25)};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  RngStream rng(seed);
  RngStream dag_stream = rng.child("dag");
  const workloads::Workload blast =
      workloads::generate_blast(params, dag_stream);
  std::cout << "BLAST workflow: " << blast.dag.job_count() << " jobs, "
            << blast.dag.edge_count() << " edges, max parallelism "
            << dag::max_parallelism(blast.dag) << ", operations:";
  for (const std::string& op : blast.dag.operations()) {
    std::cout << " " << op;
  }
  std::cout << "\n\n";

  // Size the arrival horizon from the static plan, then build the grid.
  grid::ResourcePool initial;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    initial.add(grid::Resource{});
  }
  const grid::MachineModel probe = workloads::build_machine_model(
      blast, dynamics.initial, 0.5, mix64(seed, 11));
  const double horizon =
      core::heft_schedule(blast.dag, probe, initial).makespan() * 4.0;
  const grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, horizon);
  const grid::MachineModel model = workloads::build_machine_model(
      blast, pool.universe_size(), 0.5, mix64(seed, 11));
  std::cout << "grid: " << dynamics.initial << " initial resources, +"
            << workloads::arrivals_per_change(dynamics) << " every "
            << dynamics.interval << " time units (universe "
            << pool.universe_size() << ")\n\n";

  // All three strategies run through the same session environment: the
  // one pool (and, for trace scenarios, one load profile) by construction.
  core::SessionEnvironment env;
  env.pool = &pool;
  const core::StrategyOutcome heft = core::run_strategy(
      core::StrategyKind::kStaticHeft, blast.dag, model, model, env);
  const core::StrategyOutcome aheft = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, blast.dag, model, model, env);
  const core::StrategyOutcome minmin = core::run_strategy(
      core::StrategyKind::kDynamic, blast.dag, model, model, env);

  AsciiTable table({"strategy", "makespan", "vs HEFT", "reschedules"});
  table.add_row({"HEFT (static)", format_double(heft.makespan, 1), "1.00",
                 "0"});
  table.add_row({"AHEFT (adaptive)", format_double(aheft.makespan, 1),
                 format_double(aheft.makespan / heft.makespan, 2),
                 std::to_string(aheft.adoptions)});
  table.add_row({"Min-Min (dynamic)", format_double(minmin.makespan, 1),
                 format_double(minmin.makespan / heft.makespan, 2), "-"});
  std::cout << table.to_string() << "\nAHEFT improvement: "
            << format_percent(
                   improvement_rate(heft.makespan, aheft.makespan))
            << "\n";
  return 0;
}
