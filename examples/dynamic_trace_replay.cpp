// Trace replay with failure injection: loads a workflow from the plain-
// text DAG format (writing a demo file first if none is given), runs it on
// a grid that both gains and loses machines, and prints the full execution
// trace plus the planner's decision log — rescheduling as the fault-
// tolerance mechanism (paper §3.3).
//
// Usage: dynamic_trace_replay [--dag=path] [--seed=3]
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/heft.h"
#include "core/planner.h"
#include "dag/io.h"
#include "support/env.h"
#include "support/rng.h"
#include "workloads/scenario.h"

using namespace aheft;

namespace {

constexpr const char* kDemoDag = R"(# demo pipeline: two parallel branches
dag demo-pipeline
job 0 ingest io
job 1 partition cpu
job 2 branchA-1 cpu
job 3 branchA-2 cpu
job 4 branchB-1 cpu
job 5 branchB-2 cpu
job 6 merge cpu
job 7 publish io
edge 0 1 5
edge 1 2 8
edge 1 4 8
edge 2 3 4
edge 4 5 4
edge 3 6 6
edge 5 6 6
edge 6 7 3
)";

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  dag::Dag workflow;
  if (args.has("dag")) {
    std::ifstream in(args.get("dag", ""));
    if (!in) {
      std::cerr << "cannot open " << args.get("dag", "") << "\n";
      return 1;
    }
    workflow = dag::read_dag(in);
  } else {
    workflow = dag::read_dag_string(kDemoDag);
    std::cout << "(no --dag given: using the built-in demo pipeline)\n";
  }
  std::cout << "loaded '" << workflow.name() << "': "
            << workflow.job_count() << " jobs, " << workflow.edge_count()
            << " edges\n\n";

  // Grid: three machines; one joins late, one dies mid-run.
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "stable", .arrival = 0.0});
  pool.add(grid::Resource{.name = "doomed", .arrival = 0.0});
  pool.add(grid::Resource{.name = "late", .arrival = 20.0});

  RngStream rng(seed);
  grid::MachineModel model(workflow.job_count(), pool.universe_size());
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    const double base = rng.uniform(5.0, 15.0);
    for (grid::ResourceId j = 0; j < pool.universe_size(); ++j) {
      model.set_compute_cost(i, j, base * rng.uniform(0.75, 1.25));
    }
  }
  // "doomed" leaves halfway through the fault-free plan.
  {
    const core::Schedule probe = core::heft_schedule(workflow, model, pool);
    pool.set_departure(1, probe.makespan() / 2.0);
    std::cout << "machine 'doomed' will leave the grid at t="
              << probe.makespan() / 2.0 << "\n\n";
  }

  core::PlannerConfig config;
  config.scheduler.order_candidates = 4;
  sim::TraceRecorder trace;
  core::AdaptivePlanner planner(workflow, model, model, pool, config,
                                &trace);
  const core::AdaptiveResult result = planner.run();

  std::cout << "decision log:\n";
  for (const core::AdoptionRecord& d : result.decisions) {
    std::ostringstream line;
    line << "  t=" << d.time << " [" << d.event << "] "
         << d.current_makespan << " -> " << d.candidate_makespan;
    if (d.forced) {
      line << " (forced)";
    }
    line << (d.adopted ? "  adopted" : "  declined");
    std::cout << line.str() << "\n";
  }
  std::cout << "\nrealized makespan: " << result.makespan
            << " (initial plan: " << result.initial_makespan
            << ", restarted jobs: " << result.restarts << ")\n\n";

  std::vector<std::string> jobs;
  std::vector<std::string> machines;
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    jobs.push_back(workflow.job(i).name);
  }
  for (const grid::Resource& r : pool.all()) {
    machines.push_back(r.name);
  }
  std::cout << "execution trace:\n" << trace.gantt(jobs, machines);
  return 0;
}
