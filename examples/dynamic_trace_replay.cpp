// Record-then-replay through the trace subsystem: generate a volatile
// grid with the "bursty" scenario source, run AHEFT on it, persist the
// environment to a plain-text grid trace, then reload the file through
// the "trace" scenario source and verify the replay reproduces the
// identical makespan and grid-event sequence.
//
// Usage: dynamic_trace_replay [--dag=path] [--seed=3] [--out=path]
//                             [--source=bursty|synthetic]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/heft.h"
#include "core/planner.h"
#include "dag/io.h"
#include "support/env.h"
#include "support/rng.h"
#include "traces/compiler.h"
#include "traces/scenario_source.h"
#include "traces/trace_format.h"

using namespace aheft;

namespace {

constexpr const char* kDemoDag = R"(# demo pipeline: two parallel branches
dag demo-pipeline
job 0 ingest io
job 1 partition cpu
job 2 branchA-1 cpu
job 3 branchA-2 cpu
job 4 branchB-1 cpu
job 5 branchB-2 cpu
job 6 merge cpu
job 7 publish io
edge 0 1 5
edge 1 2 8
edge 1 4 8
edge 2 3 4
edge 4 5 4
edge 3 6 6
edge 5 6 6
edge 6 7 3
)";

grid::MachineModel make_costs(const dag::Dag& workflow,
                              std::size_t universe, std::uint64_t seed) {
  // Deterministic per (seed, job, resource) so the model regenerates
  // identically however large the universe is.
  grid::MachineModel model(workflow.job_count(), universe);
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    RngStream row(mix64(seed, i));
    const double base = row.uniform(5.0, 15.0);
    for (grid::ResourceId j = 0; j < universe; ++j) {
      RngStream cell(mix64(seed, (static_cast<std::uint64_t>(i) << 24) ^ j));
      model.set_compute_cost(i, j, base * cell.uniform(0.75, 1.25));
    }
  }
  return model;
}

core::AdaptiveResult run_once(const dag::Dag& workflow,
                              const traces::CompiledScenario& scenario,
                              std::uint64_t seed,
                              sim::TraceRecorder* trace) {
  const grid::MachineModel model =
      make_costs(workflow, scenario.pool.universe_size(), seed);
  core::PlannerConfig config;
  config.scheduler.order_candidates = 4;
  config.load = scenario.load.empty() ? nullptr : &scenario.load;
  core::AdaptivePlanner planner(workflow, model, model, scenario.pool,
                                config, trace);
  return planner.run();
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const std::string out_path = args.get("out", "demo_run.trace");
  const std::string source = args.get("source", "bursty");

  dag::Dag workflow;
  if (args.has("dag")) {
    std::ifstream in(args.get("dag", ""));
    if (!in) {
      std::cerr << "cannot open " << args.get("dag", "") << "\n";
      return 1;
    }
    workflow = dag::read_dag(in);
  } else {
    workflow = dag::read_dag_string(kDemoDag);
    std::cout << "(no --dag given: using the built-in demo pipeline)\n";
  }
  std::cout << "loaded '" << workflow.name() << "': "
            << workflow.job_count() << " jobs, " << workflow.edge_count()
            << " edges\n\n";

  // --- 1. generate a volatile environment through the registry ---------
  traces::ScenarioRequest request;
  request.dynamics.initial = 3;
  request.dynamics.interval = 20.0;
  request.dynamics.fraction = 0.4;
  request.seed = seed;
  request.bursty.mean_calm = 25.0;
  request.bursty.mean_burst = 15.0;
  request.bursty.calm_arrival_mean = 30.0;
  request.bursty.burst_arrival_mean = 8.0;

  // Size the horizon off a static plan over the t = 0 pool.
  request.horizon = sim::kTimeZero;
  const traces::CompiledScenario sizing =
      traces::build_scenario(source, request);
  const grid::MachineModel sizing_model =
      make_costs(workflow, sizing.pool.universe_size(), seed);
  request.horizon =
      2.0 * core::heft_schedule(workflow, sizing_model, sizing.pool)
                .makespan();

  traces::CompiledScenario scenario = traces::build_scenario(source, request);

  // Inject one predictable failure (paper §3.3): a machine from the
  // initial pool leaves halfway through the static plan, forcing the
  // planner to reschedule (and restart) whatever it hosted. Pick one
  // without load segments — a load spike could stretch a job past the
  // window, which the executor rejects as unsupported. The mutation is
  // part of the environment: it gets recorded and replayed like
  // everything else.
  {
    const sim::Time doom_at = request.horizon / 4.0;
    bool doomed = false;
    for (const grid::Resource& r : scenario.pool.all()) {
      // Only segments starting before the departure matter: the engine
      // samples the load factor at job start, and no job starts on the
      // machine after it is gone.
      const bool spiked_before_doom = std::any_of(
          scenario.load.segments().begin(), scenario.load.segments().end(),
          [&r, doom_at](const traces::LoadSegment& s) {
            return s.resource == r.id && s.start < doom_at;
          });
      if (!spiked_before_doom && r.arrival == sim::kTimeZero) {
        scenario.pool.set_departure(r.id, doom_at);
        scenario.events =
            traces::derive_events(scenario.pool, scenario.load);
        std::cout << "machine '" << r.name
                  << "' will leave the grid at t=" << doom_at << "\n";
        doomed = true;
        break;
      }
    }
    if (!doomed) {
      std::cout << "(every initial machine is load-spiked before t="
                << doom_at << "; skipping failure injection)\n";
    }
  }

  std::cout << "scenario source '" << source << "': "
            << scenario.pool.universe_size() << " resources, "
            << scenario.load.segments().size() << " load segments, "
            << scenario.events.size() << " grid events\n";
  for (const grid::GridEvent& event : scenario.events) {
    std::cout << "  " << grid::describe(event) << "\n";
  }

  // --- 2. run AHEFT on the live scenario -------------------------------
  sim::TraceRecorder exec_trace;
  const core::AdaptiveResult result =
      run_once(workflow, scenario, seed, &exec_trace);

  std::cout << "\ndecision log:\n";
  for (const core::AdoptionRecord& d : result.decisions) {
    std::ostringstream line;
    line << "  t=" << d.time << " [" << d.event << "] "
         << d.current_makespan << " -> " << d.candidate_makespan;
    if (d.forced) {
      line << " (forced)";
    }
    line << (d.adopted ? "  adopted" : "  declined");
    std::cout << line.str() << "\n";
  }
  std::cout << "\nrealized makespan: " << result.makespan
            << " (initial plan: " << result.initial_makespan
            << ", restarted jobs: " << result.restarts << ")\n\n";

  // --- 3. record the environment to a trace file -----------------------
  const traces::GridTrace recorded =
      traces::record_scenario(scenario, workflow.name());
  traces::write_trace_file(out_path, recorded);
  std::cout << "environment recorded to " << out_path << "\n";

  // --- 4. replay the file through the 'trace' source and verify -------
  traces::ScenarioRequest replay_request;
  replay_request.trace_path = out_path;
  const traces::CompiledScenario replay =
      traces::build_scenario("trace", replay_request);
  const core::AdaptiveResult replayed =
      run_once(workflow, replay, seed, nullptr);

  const bool same_makespan = replayed.makespan == result.makespan;
  const bool same_events = replay.events == scenario.events;
  std::cout << "replayed makespan:  " << replayed.makespan
            << (same_makespan ? "  (identical)" : "  (MISMATCH!)") << "\n"
            << "event sequence:     "
            << (same_events ? "identical" : "MISMATCH") << " ("
            << replay.events.size() << " events)\n\n";

  std::vector<std::string> jobs;
  std::vector<std::string> machines;
  for (dag::JobId i = 0; i < workflow.job_count(); ++i) {
    jobs.push_back(workflow.job(i).name);
  }
  for (const grid::Resource& r : scenario.pool.all()) {
    machines.push_back(r.name);
  }
  std::cout << "execution trace:\n" << exec_trace.gantt(jobs, machines);

  if (!same_makespan || !same_events) {
    std::cerr << "replay diverged from the recorded run\n";
    return 1;
  }
  return 0;
}
