// Montage pipeline: the third real workflow named in the paper's §4.3
// discussion (11 unique operations; we model the 9 core ones). The example
// also demonstrates DOT export for visualizing generated workflows.
//
// Usage: montage_pipeline [--n=16] [--ccr=2.0] [--seed=5] [--dot=path.dot]
#include <fstream>
#include <iostream>

#include "core/heft.h"
#include "core/strategy.h"
#include "dag/algorithms.h"
#include "dag/dot.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/table.h"
#include "workloads/apps.h"
#include "workloads/scenario.h"

using namespace aheft;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  workloads::AppParams params;
  params.parallelism = static_cast<std::size_t>(args.get_int("n", 16));
  params.ccr = args.get_double("ccr", 2.0);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  RngStream rng(seed);
  RngStream dag_stream = rng.child("dag");
  const workloads::Workload montage =
      workloads::generate_montage(params, dag_stream);

  std::cout << "Montage mosaic with " << params.parallelism
            << " input images: " << montage.dag.job_count() << " jobs, "
            << montage.dag.edge_count() << " edges, "
            << montage.dag.operations().size() << " unique operations, depth "
            << dag::level_widths(montage.dag).size() << ".\n";

  if (args.has("dot")) {
    const std::string path = args.get("dot", "montage.dot");
    std::ofstream out(path);
    out << dag::to_dot(montage.dag);
    std::cout << "DAG written to " << path << " (render with graphviz).\n";
  }

  const workloads::ResourceDynamics dynamics{6, 120.0, 0.3};
  grid::ResourcePool initial;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    initial.add(grid::Resource{});
  }
  const grid::MachineModel probe = workloads::build_machine_model(
      montage, dynamics.initial, 0.5, mix64(seed, 17));
  const double horizon =
      core::heft_schedule(montage.dag, probe, initial).makespan() * 4.0;
  const grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, horizon);
  const grid::MachineModel model = workloads::build_machine_model(
      montage, pool.universe_size(), 0.5, mix64(seed, 17));

  core::SessionEnvironment env;
  env.pool = &pool;
  const core::StrategyOutcome heft = core::run_strategy(
      core::StrategyKind::kStaticHeft, montage.dag, model, model, env);
  const core::StrategyOutcome aheft = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, montage.dag, model, model, env);
  const core::StrategyOutcome minmin = core::run_strategy(
      core::StrategyKind::kDynamic, montage.dag, model, model, env);

  AsciiTable table({"strategy", "makespan", "vs HEFT"});
  table.add_row({"HEFT", format_double(heft.makespan, 1), "1.00"});
  table.add_row({"AHEFT", format_double(aheft.makespan, 1),
                 format_double(aheft.makespan / heft.makespan, 2)});
  table.add_row({"Min-Min", format_double(minmin.makespan, 1),
                 format_double(minmin.makespan / heft.makespan, 2)});
  std::cout << "\n" << table.to_string();
  return 0;
}
