// Workload generator tests: random parametric DAGs, BLAST, WIEN2K,
// Montage, Gaussian elimination, and the grid scenario builder.
#include <gtest/gtest.h>

#include "dag/algorithms.h"
#include "support/rng.h"
#include "workloads/apps.h"
#include "workloads/random_dag.h"
#include "workloads/sample.h"
#include "workloads/scenario.h"
#include "workloads/workload.h"

namespace aheft::workloads {
namespace {

TEST(RandomDag, RespectsJobCountAndConnectivity) {
  RngStream rng(1);
  RandomDagParams params;
  params.jobs = 50;
  const Workload w = generate_random_workload(params, rng);
  EXPECT_EQ(w.dag.job_count(), 50u);
  EXPECT_EQ(w.base_cost.size(), 50u);
  // Single entry (node 0), and every other node has a predecessor.
  EXPECT_EQ(w.dag.entry_jobs(), (std::vector<dag::JobId>{0}));
  for (dag::JobId i = 1; i < 50; ++i) {
    EXPECT_FALSE(w.dag.predecessors(i).empty());
  }
}

TEST(RandomDag, RespectsOutDegreeCap) {
  RngStream rng(2);
  RandomDagParams params;
  params.jobs = 40;
  params.out_degree = 0.1;  // cap = 4
  const Workload w = generate_random_workload(params, rng);
  // The orphan-connection pass can add at most a handful above the cap.
  for (dag::JobId i = 0; i < 40; ++i) {
    EXPECT_LE(w.dag.successors(i).size(), 4u + 4u);
  }
}

TEST(RandomDag, IsDeterministicPerSeed) {
  RandomDagParams params;
  RngStream a(99);
  RngStream b(99);
  const Workload wa = generate_random_workload(params, a);
  const Workload wb = generate_random_workload(params, b);
  ASSERT_EQ(wa.dag.edge_count(), wb.dag.edge_count());
  for (std::size_t e = 0; e < wa.dag.edge_count(); ++e) {
    EXPECT_EQ(wa.dag.edges()[e].from, wb.dag.edges()[e].from);
    EXPECT_EQ(wa.dag.edges()[e].to, wb.dag.edges()[e].to);
    EXPECT_DOUBLE_EQ(wa.dag.edges()[e].data, wb.dag.edges()[e].data);
  }
  EXPECT_EQ(wa.base_cost, wb.base_cost);
}

TEST(RandomDag, CcrShapesCommunicationCosts) {
  RandomDagParams low;
  low.jobs = 60;
  low.ccr = 0.1;
  RandomDagParams high = low;
  high.ccr = 10.0;
  RngStream rng_low(5);
  RngStream rng_high(5);
  const Workload wl = generate_random_workload(low, rng_low);
  const Workload wh = generate_random_workload(high, rng_high);
  EXPECT_NEAR(realized_ccr(wl), 0.1, 0.08);
  EXPECT_NEAR(realized_ccr(wh), 10.0, 4.0);
}

TEST(RandomDag, BaseCostsArePositiveWithExpectedMean) {
  RngStream rng(6);
  RandomDagParams params;
  params.jobs = 100;
  params.avg_compute = 100.0;
  const Workload w = generate_random_workload(params, rng);
  for (const double c : w.base_cost) {
    EXPECT_GT(c, 0.0);
    EXPECT_LE(c, 200.0);
  }
  EXPECT_NEAR(mean_base_cost(w), 100.0, 25.0);
}

TEST(RandomDag, RejectsInvalidParameters) {
  RngStream rng(1);
  RandomDagParams bad;
  bad.jobs = 1;
  EXPECT_THROW(generate_random_workload(bad, rng), std::invalid_argument);
  bad = RandomDagParams{};
  bad.out_degree = 0.0;
  EXPECT_THROW(generate_random_workload(bad, rng), std::invalid_argument);
  bad = RandomDagParams{};
  bad.avg_compute = -1.0;
  EXPECT_THROW(generate_random_workload(bad, rng), std::invalid_argument);
}

TEST(Blast, HasPublishedShape) {
  RngStream rng(7);
  AppParams params;
  params.parallelism = 8;
  const Workload w = generate_blast(params, rng);
  // 2N + 2 jobs: split, N x (ID006 -> ID007), merge (paper Fig. 6).
  EXPECT_EQ(w.dag.job_count(), 18u);
  EXPECT_EQ(w.dag.entry_jobs().size(), 1u);
  EXPECT_EQ(w.dag.exit_jobs().size(), 1u);
  EXPECT_EQ(dag::max_parallelism(w.dag), 8u);
  EXPECT_EQ(dag::level_widths(w.dag),
            (std::vector<std::uint32_t>{1, 8, 8, 1}));
  // Four unique operations.
  EXPECT_EQ(w.dag.operations().size(), 4u);
}

TEST(Blast, InstancesOfAnOperationShareCosts) {
  RngStream rng(8);
  AppParams params;
  params.parallelism = 5;
  const Workload w = generate_blast(params, rng);
  // Jobs 1, 3, 5, ... are the ID006 stage: identical base cost.
  const double c = w.base_cost[1];
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_DOUBLE_EQ(w.base_cost[1 + 2 * b], c);
  }
}

TEST(Wien2k, HasPublishedShape) {
  RngStream rng(9);
  AppParams params;
  params.parallelism = 6;
  const Workload w = generate_wien2k(params, rng);
  // 2N + 8 jobs (paper Fig. 7).
  EXPECT_EQ(w.dag.job_count(), 20u);
  EXPECT_EQ(w.dag.entry_jobs().size(), 1u);
  EXPECT_EQ(w.dag.exit_jobs().size(), 1u);
  // N LAPW1 jobs plus the bypassing LCore share a level.
  EXPECT_EQ(dag::max_parallelism(w.dag), 7u);

  // LAPW2_FERMI is the single job on its level, gating the LAPW2 section —
  // the structural bottleneck the paper blames for WIEN2K's small gains.
  dag::JobId fermi = dag::kInvalidJob;
  for (dag::JobId i = 0; i < w.dag.job_count(); ++i) {
    if (w.dag.job(i).operation == "LAPW2_FERMI") {
      fermi = i;
    }
  }
  ASSERT_NE(fermi, dag::kInvalidJob);
  EXPECT_EQ(w.dag.predecessors(fermi).size(), 6u);
  EXPECT_EQ(w.dag.successors(fermi).size(), 6u);
  const auto levels = dag::levels(w.dag);
  const auto widths = dag::level_widths(w.dag);
  EXPECT_EQ(widths[levels[fermi]], 1u);
}

TEST(Wien2k, LCoreBypassesTheParallelSections) {
  RngStream rng(10);
  AppParams params;
  params.parallelism = 3;
  const Workload w = generate_wien2k(params, rng);
  dag::JobId lcore = dag::kInvalidJob;
  dag::JobId mixer = dag::kInvalidJob;
  dag::JobId lapw0 = dag::kInvalidJob;
  for (dag::JobId i = 0; i < w.dag.job_count(); ++i) {
    if (w.dag.job(i).operation == "LCORE") lcore = i;
    if (w.dag.job(i).operation == "MIXER") mixer = i;
    if (w.dag.job(i).operation == "LAPW0") lapw0 = i;
  }
  ASSERT_NE(lcore, dag::kInvalidJob);
  EXPECT_EQ(w.dag.predecessors(lcore), (std::vector<dag::JobId>{lapw0}));
  EXPECT_EQ(w.dag.successors(lcore), (std::vector<dag::JobId>{mixer}));
}

TEST(Montage, HasExpectedShapeAndOperations) {
  RngStream rng(11);
  AppParams params;
  params.parallelism = 6;
  const Workload w = generate_montage(params, rng);
  // 3N + 5 jobs, 9 unique operations.
  EXPECT_EQ(w.dag.job_count(), 23u);
  EXPECT_EQ(w.dag.operations().size(), 9u);
  EXPECT_EQ(w.dag.entry_jobs().size(), 6u);  // the mProject stage
  EXPECT_EQ(w.dag.exit_jobs().size(), 1u);   // mJPEG
}

TEST(Gaussian, JobCountFollowsClosedForm) {
  RngStream rng(12);
  AppParams params;
  params.parallelism = 6;  // matrix dimension m
  const Workload w = generate_gaussian(params, rng);
  EXPECT_EQ(w.dag.job_count(), (6u * 6u + 6u - 2u) / 2u);  // 20
  EXPECT_EQ(w.dag.entry_jobs().size(), 1u);  // first pivot
}

TEST(Apps, ParallelismValidation) {
  RngStream rng(13);
  AppParams bad;
  bad.parallelism = 1;
  EXPECT_THROW(generate_montage(bad, rng), std::invalid_argument);
  EXPECT_THROW(generate_gaussian(bad, rng), std::invalid_argument);
}

TEST(Scenario, DynamicPoolAddsResourcesOnSchedule) {
  const ResourceDynamics dynamics{10, 400.0, 0.15};
  EXPECT_EQ(arrivals_per_change(dynamics), 2u);  // round(0.15 * 10)
  const grid::ResourcePool pool = build_dynamic_pool(dynamics, 1700.0);
  // Changes at 400, 800, 1200, 1600: 10 + 4 * 2 = 18 resources.
  EXPECT_EQ(pool.universe_size(), 18u);
  EXPECT_EQ(pool.count_available_at(0.0), 10u);
  EXPECT_EQ(pool.count_available_at(400.0), 12u);
  EXPECT_EQ(pool.count_available_at(1650.0), 18u);
  EXPECT_EQ(pool.change_times(0.0, 1e9),
            (std::vector<sim::Time>{400.0, 800.0, 1200.0, 1600.0}));
}

TEST(Scenario, AtLeastOneResourcePerChange) {
  const ResourceDynamics dynamics{4, 100.0, 0.01};  // round(0.04) = 0 -> 1
  EXPECT_EQ(arrivals_per_change(dynamics), 1u);
}

TEST(Scenario, MachineModelRespectsBetaLaw) {
  RngStream rng(14);
  RandomDagParams params;
  params.jobs = 30;
  const Workload w = generate_random_workload(params, rng);
  const double beta = 0.5;
  const grid::MachineModel model = build_machine_model(w, 8, beta, 42);
  for (dag::JobId i = 0; i < 30; ++i) {
    for (grid::ResourceId j = 0; j < 8; ++j) {
      const double cost = model.compute_cost(i, j);
      EXPECT_GE(cost, w.base_cost[i] * (1.0 - beta / 2.0) - 1e-9);
      EXPECT_LE(cost, w.base_cost[i] * (1.0 + beta / 2.0) + 1e-9);
    }
  }
}

TEST(Scenario, HomogeneousWhenBetaZero) {
  RngStream rng(15);
  RandomDagParams params;
  const Workload w = generate_random_workload(params, rng);
  const grid::MachineModel model = build_machine_model(w, 4, 0.0, 7);
  for (dag::JobId i = 0; i < w.dag.job_count(); ++i) {
    for (grid::ResourceId j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(model.compute_cost(i, j), w.base_cost[i]);
    }
  }
}

TEST(Scenario, UniverseExtensionKeepsExistingColumns) {
  RngStream rng(16);
  RandomDagParams params;
  params.jobs = 20;
  const Workload w = generate_random_workload(params, rng);
  const grid::MachineModel small = build_machine_model(w, 5, 0.75, 99);
  const grid::MachineModel large = build_machine_model(w, 12, 0.75, 99);
  for (dag::JobId i = 0; i < 20; ++i) {
    for (grid::ResourceId j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(small.compute_cost(i, j), large.compute_cost(i, j));
    }
  }
}

TEST(Scenario, RejectsInvalidBetaAndEmptyUniverse) {
  RngStream rng(17);
  RandomDagParams params;
  const Workload w = generate_random_workload(params, rng);
  EXPECT_THROW(build_machine_model(w, 4, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(build_machine_model(w, 0, 0.5, 1), std::invalid_argument);
}

TEST(Sample, MatchesThePaperTable) {
  const SampleScenario scenario = sample_scenario(15.0);
  EXPECT_DOUBLE_EQ(scenario.model.compute_cost(0, 2), 9.0);   // n1 on r3
  EXPECT_DOUBLE_EQ(scenario.model.compute_cost(7, 0), 5.0);   // n8 on r1
  EXPECT_DOUBLE_EQ(scenario.model.compute_cost(9, 1), 7.0);   // n10 on r2
  EXPECT_DOUBLE_EQ(scenario.model.compute_cost(4, 3), 14.0);  // n5 on r4
  EXPECT_DOUBLE_EQ(scenario.dag.data(0, 1), 18.0);
  EXPECT_DOUBLE_EQ(scenario.dag.data(8, 9), 13.0);
  EXPECT_DOUBLE_EQ(scenario.pool.resource(3).arrival, 15.0);
}

}  // namespace
}  // namespace aheft::workloads
