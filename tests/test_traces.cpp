// Trace subsystem tests: format round-trip, malformed-input rejection
// with line numbers, compiler output, the scenario-source registry, load
// scaling in the execution engine, and deterministic record/replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <variant>

#include "core/strategy.h"
#include "core/strategy.h"
#include "exp/case.h"
#include "exp/sweeps.h"
#include "grid/machine_model.h"
#include "traces/compiler.h"
#include "traces/load_timeline.h"
#include "traces/scenario_source.h"
#include "traces/trace_format.h"
#include "workloads/scenario.h"

namespace aheft::traces {
namespace {

GridTrace sample_trace() {
  GridTrace trace;
  trace.name = "sample";
  trace.resources = {
      {0, 0.0, sim::kTimeInfinity, "stable"},
      {1, 0.0, 512.0, "doomed"},
      {2, 0.1234567890123456789, sim::kTimeInfinity, "late"},
  };
  trace.load = {
      {0, 10.0, 20.0, 2.5},
      {2, 1.0 / 3.0, sim::kTimeInfinity, 1.75},
  };
  trace.jobs = {{0, 0.0, "ingest"}, {1, 3.5, "transform"}};
  return trace;
}

// ------------------------------------------------------------- format --

TEST(TraceFormat, WriteReadRoundTripIsIdentical) {
  const GridTrace original = sample_trace();
  const GridTrace reread = read_trace_string(write_trace_string(original));
  EXPECT_EQ(original, reread);
  // And the serialized form is a fixed point.
  EXPECT_EQ(write_trace_string(original), write_trace_string(reread));
}

TEST(TraceFormat, RoundTripsExactDoubles) {
  GridTrace trace;
  trace.name = "doubles";
  trace.resources = {{0, 0.1 + 0.2, sim::kTimeInfinity, "r1"}};
  trace.load = {{0, 1e-300, 1e300, 1.0000000000000002}};
  const GridTrace reread = read_trace_string(write_trace_string(trace));
  EXPECT_EQ(trace.resources[0].arrival, reread.resources[0].arrival);
  EXPECT_EQ(trace.load[0].start, reread.load[0].start);
  EXPECT_EQ(trace.load[0].end, reread.load[0].end);
  EXPECT_EQ(trace.load[0].multiplier, reread.load[0].multiplier);
}

TEST(TraceFormat, IgnoresCommentsAndBlankLines) {
  const GridTrace trace = read_trace_string(
      "# leading comment\n"
      "\n"
      "gridtrace v1 demo  # trailing comment\n"
      "resource 0 0 inf r1\n"
      "\n"
      "load 0 5 10 2.0\n");
  EXPECT_EQ(trace.name, "demo");
  ASSERT_EQ(trace.resources.size(), 1u);
  EXPECT_EQ(trace.resources[0].departure, sim::kTimeInfinity);
  ASSERT_EQ(trace.load.size(), 1u);
}

void expect_rejects(const std::string& text, std::size_t line,
                    const std::string& message_fragment) {
  try {
    (void)read_trace_string(text);
    FAIL() << "expected TraceParseError for: " << text;
  } catch (const TraceParseError& error) {
    EXPECT_EQ(error.line(), line) << error.what();
    EXPECT_NE(std::string(error.what()).find(message_fragment),
              std::string::npos)
        << error.what();
  }
}

TEST(TraceFormat, RejectsMalformedInputWithLineNumbers) {
  expect_rejects("", 1, "missing");
  expect_rejects("resource 0 0 inf r1\n", 1, "header");
  expect_rejects("gridtrace v2 x\n", 1, "version");
  expect_rejects("gridtrace v1 x\nfrobnicate 1 2\n", 2, "unknown directive");
  expect_rejects("gridtrace v1 x\nresource 1 0 inf r1\n", 2, "dense");
  expect_rejects("gridtrace v1 x\nresource 0 -1 inf r1\n", 2,
                 "non-negative");
  expect_rejects("gridtrace v1 x\nresource 0 5 5 r1\n", 2, "later than");
  expect_rejects("gridtrace v1 x\nresource 0 zero inf r1\n", 2,
                 "malformed");
  expect_rejects("gridtrace v1 x\nresource 0 0 inf\n", 2, "5 fields");
  expect_rejects("gridtrace v1 x\nload 0 0 1 2\n", 2, "undeclared");
  expect_rejects("gridtrace v1 x\nresource 0 0 inf r1\nload 0 3 2 2\n", 3,
                 "end after");
  expect_rejects("gridtrace v1 x\nresource 0 0 inf r1\nload 0 0 1 0\n", 3,
                 "multiplier");
  expect_rejects("gridtrace v1 x\nresource 0 0 inf r1\nload 0 0 1 inf\n",
                 3, "multiplier");
  expect_rejects("gridtrace v1 x\njob 3 0 late\n", 2, "dense");
}

TEST(TraceFormat, SanitizesControlCharactersInNames) {
  GridTrace trace;
  trace.name = "multi word";
  trace.resources = {{0, 0.0, sim::kTimeInfinity, "host\nevil"},
                     {1, 0.0, sim::kTimeInfinity, "tab\there"}};
  // A name with embedded newlines must not split the record: the
  // serialized form has to parse back with the same record count.
  const GridTrace reread = read_trace_string(write_trace_string(trace));
  EXPECT_EQ(reread.name, "multi_word");
  ASSERT_EQ(reread.resources.size(), 2u);
  EXPECT_EQ(reread.resources[0].name, "host_evil");
  EXPECT_EQ(reread.resources[1].name, "tab_here");
}

TEST(TraceFormat, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/grid.trace"),
               std::runtime_error);
}

// ------------------------------------------------------- load timeline --

TEST(LoadTimeline, ComposesOverlappingSegments) {
  LoadTimeline timeline;
  timeline.add(0, 0.0, 10.0, 2.0);
  timeline.add(0, 5.0, 15.0, 3.0);
  timeline.add(1, 0.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(timeline.factor(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(timeline.factor(0, 5.0), 6.0);   // both overlap
  EXPECT_DOUBLE_EQ(timeline.factor(0, 10.0), 3.0);  // [start, end)
  EXPECT_DOUBLE_EQ(timeline.factor(0, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(timeline.factor(2, 5.0), 1.0);
}

TEST(LoadTimeline, ValidatesSegments) {
  LoadTimeline timeline;
  EXPECT_THROW(timeline.add(0, -1.0, 2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(timeline.add(0, 2.0, 2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(timeline.add(0, 0.0, 2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(timeline.add(0, 0.0, 2.0, -3.0), std::invalid_argument);
}

// ----------------------------------------------------------- compiler --

TEST(TraceCompiler, BuildsPoolLoadAndEventStream) {
  const CompiledScenario scenario =
      TraceCompiler().compile(sample_trace());
  EXPECT_EQ(scenario.pool.universe_size(), 3u);
  EXPECT_EQ(scenario.pool.resource(1).departure, 512.0);
  EXPECT_EQ(scenario.pool.resource(2).name, "late");
  EXPECT_EQ(scenario.pool.count_available_at(0.0), 2u);
  EXPECT_EQ(scenario.pool.departures_at(512.0),
            (std::vector<grid::ResourceId>{1}));
  EXPECT_TRUE(scenario.pool.departures_at(100.0).empty());
  EXPECT_DOUBLE_EQ(scenario.load.factor(0, 15.0), 2.5);
  ASSERT_EQ(scenario.job_arrivals.size(), 2u);

  // Events: late's arrival, doomed's removal, two load onsets — sorted.
  ASSERT_EQ(scenario.events.size(), 4u);
  for (std::size_t i = 1; i < scenario.events.size(); ++i) {
    EXPECT_LE(scenario.events[i - 1].time, scenario.events[i].time);
  }
  EXPECT_TRUE(std::holds_alternative<grid::PerformanceVarianceEvent>(
      scenario.events[1].payload));  // late arrives at ~0.123 after 1/3? no:
  // order: t=0.123.. (late arrival), t=1/3 (load r2), t=10 (load r0),
  // t=512 (doomed removed)
  EXPECT_TRUE(std::holds_alternative<grid::ResourceAddedEvent>(
      scenario.events[0].payload));
  EXPECT_TRUE(std::holds_alternative<grid::ResourceRemovedEvent>(
      scenario.events[3].payload));
}

TEST(TraceCompiler, RecordCompileRoundTrip) {
  const CompiledScenario scenario =
      TraceCompiler().compile(sample_trace());
  const GridTrace recorded = record_scenario(scenario, "sample");
  const CompiledScenario again = TraceCompiler().compile(recorded);
  EXPECT_EQ(scenario.load, again.load);
  EXPECT_EQ(scenario.events, again.events);
  ASSERT_EQ(scenario.pool.universe_size(), again.pool.universe_size());
  for (grid::ResourceId id = 0; id < scenario.pool.universe_size(); ++id) {
    EXPECT_EQ(scenario.pool.resource(id).arrival,
              again.pool.resource(id).arrival);
    EXPECT_EQ(scenario.pool.resource(id).departure,
              again.pool.resource(id).departure);
    EXPECT_EQ(scenario.pool.resource(id).name,
              again.pool.resource(id).name);
  }
}

// ----------------------------------------------------------- registry --

TEST(ScenarioRegistry, ListsBuiltinSources) {
  const std::vector<std::string> names =
      ScenarioSourceRegistry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "synthetic"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "trace"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bursty"), names.end());
  // The archive backends (src/archive) register through the same ctor.
  EXPECT_NE(std::find(names.begin(), names.end(), "archive"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fitted"), names.end());
  for (const std::string& name : names) {
    const ScenarioSource* source =
        ScenarioSourceRegistry::instance().find(name);
    ASSERT_NE(source, nullptr);
    EXPECT_EQ(source->name(), name);
    EXPECT_FALSE(source->description().empty());
  }
}

TEST(ScenarioRegistry, UnknownSourceThrowsListingKnownNames) {
  try {
    (void)build_scenario("swf-archive", ScenarioRequest{});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("swf-archive"), std::string::npos);
    EXPECT_NE(what.find("synthetic"), std::string::npos);
    EXPECT_NE(what.find("bursty"), std::string::npos);
  }
}

TEST(ScenarioRegistry, SyntheticMatchesBuildDynamicPool) {
  ScenarioRequest request;
  request.dynamics = {4, 100.0, 0.5};
  request.horizon = 350.0;
  const CompiledScenario scenario = build_scenario("synthetic", request);
  const grid::ResourcePool direct =
      workloads::build_dynamic_pool(request.dynamics, request.horizon);
  ASSERT_EQ(scenario.pool.universe_size(), direct.universe_size());
  for (grid::ResourceId id = 0; id < direct.universe_size(); ++id) {
    EXPECT_EQ(scenario.pool.resource(id).arrival,
              direct.resource(id).arrival);
  }
  EXPECT_TRUE(scenario.load.empty());
  // 3 changes x 2 arrivals each.
  EXPECT_EQ(scenario.events.size(), 6u);
}

TEST(ScenarioRegistry, TraceSourceNeedsPathOrText) {
  EXPECT_THROW((void)build_scenario("trace", ScenarioRequest{}),
               std::invalid_argument);
}

TEST(ScenarioRegistry, SweepAxisValidatesEagerly) {
  std::vector<exp::CaseSpec> specs(1);
  EXPECT_THROW(exp::set_scenario_source(specs, "no-such-source"),
               std::invalid_argument);
  // --scenario-source=trace without --trace must fail before the sweep.
  EXPECT_THROW(exp::set_scenario_source(specs, "trace"),
               std::invalid_argument);
  exp::set_scenario_source(specs, "bursty");
  EXPECT_EQ(specs[0].scenario_source, "bursty");
}

TEST(ScenarioRegistry, BurstyIsDeterministicPerSeedAndVariesAcrossSeeds) {
  ScenarioRequest request;
  request.dynamics.initial = 5;
  request.horizon = 5000.0;
  request.seed = 7;
  const CompiledScenario a = build_scenario("bursty", request);
  const CompiledScenario b = build_scenario("bursty", request);
  EXPECT_EQ(record_scenario(a, "x"), record_scenario(b, "x"));
  EXPECT_EQ(a.events, b.events);

  request.seed = 8;
  const CompiledScenario c = build_scenario("bursty", request);
  EXPECT_NE(record_scenario(a, "x"), record_scenario(c, "x"));
}

TEST(ScenarioRegistry, BurstyHonorsInitialPoolAndHorizon) {
  ScenarioRequest request;
  request.dynamics.initial = 3;
  request.horizon = sim::kTimeZero;
  request.seed = 11;
  const CompiledScenario sizing = build_scenario("bursty", request);
  EXPECT_EQ(sizing.pool.universe_size(), 3u);
  EXPECT_TRUE(sizing.load.empty());

  request.horizon = 4000.0;
  const CompiledScenario full = build_scenario("bursty", request);
  EXPECT_GE(full.pool.universe_size(), 3u);
  EXPECT_EQ(full.pool.count_available_at(0.0), 3u);
  for (const grid::Resource& r : full.pool.all()) {
    EXPECT_LE(r.arrival, request.horizon);
    EXPECT_EQ(r.departure, sim::kTimeInfinity);  // assumption 3
  }
  for (const LoadSegment& segment : full.load.segments()) {
    EXPECT_LE(segment.start, request.horizon);
    EXPECT_GT(segment.multiplier, 1.0);
  }
}

TEST(ScenarioRegistry, GeneratorsEmitWorkflowArrivalRecords) {
  ScenarioRequest request;
  request.dynamics = {4, 300.0, 0.2};
  request.horizon = 1000.0;
  request.seed = 3;
  request.stream.jobs = 5;
  request.stream.interarrival_mean = 120.0;

  // synthetic: fixed spacing, workflow 0 at t = 0.
  const CompiledScenario synthetic = build_scenario("synthetic", request);
  ASSERT_EQ(synthetic.job_arrivals.size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(synthetic.job_arrivals[k].job, k);
    EXPECT_DOUBLE_EQ(synthetic.job_arrivals[k].arrival, 120.0 * k);
  }

  // bursty: exponential gaps — ascending, first at 0, deterministic.
  const CompiledScenario bursty = build_scenario("bursty", request);
  ASSERT_EQ(bursty.job_arrivals.size(), 5u);
  EXPECT_DOUBLE_EQ(bursty.job_arrivals.front().arrival, 0.0);
  for (std::size_t k = 1; k < 5; ++k) {
    EXPECT_GT(bursty.job_arrivals[k].arrival,
              bursty.job_arrivals[k - 1].arrival);
  }
  EXPECT_EQ(bursty.job_arrivals,
            build_scenario("bursty", request).job_arrivals);

  // Arrival records ride the trace round trip like every other record.
  const GridTrace recorded = record_scenario(bursty, "stream");
  EXPECT_EQ(read_trace_string(write_trace_string(recorded)).jobs,
            recorded.jobs);
}

TEST(ScenarioRegistry, FailureBurstsEmitCorrelatedDeparturesWithRepairs) {
  ScenarioRequest request;
  request.dynamics.initial = 8;
  request.horizon = 6000.0;
  request.seed = 21;
  request.bursty.mean_calm = 250.0;
  request.bursty.mean_burst = 120.0;
  request.bursty.failure_fraction = 0.5;
  request.bursty.repair_mean = 200.0;
  const CompiledScenario scenario = build_scenario("bursty", request);

  // Departures exist now, in correlated groups (>= 2 at one burst onset),
  // and each failure is matched by a later replacement arrival.
  std::map<double, std::size_t> departures_at;
  std::size_t failed = 0;
  for (const grid::Resource& r : scenario.pool.all()) {
    if (r.departure < sim::kTimeInfinity) {
      ++failed;
      ++departures_at[r.departure];
      EXPECT_GT(r.departure, r.arrival);
    }
  }
  ASSERT_GT(failed, 0u);
  const bool correlated =
      std::any_of(departures_at.begin(), departures_at.end(),
                  [](const auto& entry) { return entry.second >= 2; });
  EXPECT_TRUE(correlated) << "no burst failed >= 2 machines together";
  std::size_t replacements = 0;
  for (const grid::Resource& r : scenario.pool.all()) {
    replacements += r.arrival > 0.0 ? 1 : 0;
  }
  EXPECT_GE(replacements, failed);

  // The grid never empties, and the compiled event stream carries the
  // removals for the planner to react to.
  for (const auto& [when, count] : departures_at) {
    EXPECT_GE(scenario.pool.count_available_at(when), 1u);
  }
  const bool has_removal_event = std::any_of(
      scenario.events.begin(), scenario.events.end(),
      [](const grid::GridEvent& event) {
        return std::holds_alternative<grid::ResourceRemovedEvent>(
            event.payload);
      });
  EXPECT_TRUE(has_removal_event);

  // Bit-identical replay and round trip still hold with failures on.
  EXPECT_EQ(record_scenario(scenario, "f"),
            record_scenario(build_scenario("bursty", request), "f"));
  const GridTrace recorded = record_scenario(scenario, "f");
  EXPECT_EQ(read_trace_string(write_trace_string(recorded)), recorded);
}

TEST(ScenarioRegistry, AheftSurvivesFailureBursts) {
  // Only the adaptive strategy reschedules around announced departures;
  // this pins that a failure-burst scenario runs to completion through
  // the session path with forced adoptions.
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = 25;
  spec.dynamics = {6, 200.0, 0.2};
  spec.seed = 97;
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 200.0;
  spec.bursty.mean_burst = 100.0;
  spec.bursty.failure_fraction = 0.3;
  spec.bursty.repair_mean = 400.0;
  // Departures only: load spikes that stretch a job past a failed
  // machine's window need restart semantics (DepartureAction::kRequeue,
  // exercised by bench_checkpoint_restart); this historical-mode case
  // keeps them off.
  spec.bursty.spike_fraction = 0.0;
  spec.horizon_factor = 2.0;
  const exp::CaseEnvironment env = exp::build_case_environment(spec);

  core::SessionEnvironment session;
  session.pool = &env.scenario.pool;
  session.load = env.scenario.load.empty() ? nullptr : &env.scenario.load;
  const core::StrategyOutcome outcome =
      core::run_strategy(core::StrategyKind::kAdaptiveAheft,
                         env.workload.dag, env.model, env.model, session);
  EXPECT_GT(outcome.makespan, 0.0);
}

// -------------------------------------------- engine load consumption --

TEST(LoadScaling, StaticRunStretchesBySegmentMultiplier) {
  // Chain of two jobs on a single resource: makespan is the cost sum,
  // and a uniform 2x load segment must exactly double it.
  dag::Dag dag("chain");
  dag.add_job("a");
  dag.add_job("b");
  dag.add_edge(0, 1, 0.0);
  dag.finalize();

  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "only"});
  grid::MachineModel model(2, 1);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(1, 0, 5.0);

  core::SessionEnvironment nominal_env;
  nominal_env.pool = &pool;
  const core::StrategyOutcome nominal = core::run_strategy(
      core::StrategyKind::kStaticHeft, dag, model, model, nominal_env);
  EXPECT_DOUBLE_EQ(nominal.makespan, 15.0);

  LoadTimeline load;
  load.add(0, 0.0, sim::kTimeInfinity, 2.0);
  core::SessionEnvironment loaded_env;
  loaded_env.pool = &pool;
  loaded_env.load = &load;
  const core::StrategyOutcome stretched = core::run_strategy(
      core::StrategyKind::kStaticHeft, dag, model, model, loaded_env);
  EXPECT_DOUBLE_EQ(stretched.makespan, 30.0);
}

TEST(LoadScaling, DepartureOverrunReportsClearErrorNotInvariant) {
  // A legal trace can combine a load segment with a finite departure;
  // when the stretch pushes a planned job past the window the engine
  // must explain the unsupported combination, not claim an internal
  // invariant broke.
  dag::Dag dag("single");
  dag.add_job("a");
  dag.finalize();

  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "only", .arrival = 0.0, .departure = 12.0});
  grid::MachineModel model(1, 1);
  model.set_compute_cost(0, 0, 10.0);  // fits nominally: 10 <= 12

  LoadTimeline load;
  load.add(0, 0.0, sim::kTimeInfinity, 2.0);  // realized 20 > 12
  core::SessionEnvironment env;
  env.pool = &pool;
  env.load = &load;
  try {
    (void)core::run_strategy(core::StrategyKind::kStaticHeft, dag, model,
                             model, env);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("load-stretched"), std::string::npos) << what;
    EXPECT_NE(what.find("restart semantics"), std::string::npos) << what;
  }
}

// ------------------------------------------------ deterministic replay --

exp::CaseSpec volatile_spec(const std::string& source) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = 30;
  spec.dynamics = {5, 150.0, 0.25};
  spec.seed = 1234;
  spec.scenario_source = source;
  spec.bursty.mean_calm = 200.0;
  spec.bursty.mean_burst = 80.0;
  spec.bursty.calm_arrival_mean = 300.0;
  spec.bursty.burst_arrival_mean = 30.0;
  return spec;
}

TEST(Replay, SameSpecSameSeedIsBitIdentical) {
  const exp::CaseSpec spec = volatile_spec("bursty");
  const exp::CaseResult a = exp::run_case(spec);
  const exp::CaseResult b = exp::run_case(spec);
  EXPECT_EQ(a.aheft_makespan, b.aheft_makespan);
  EXPECT_EQ(a.heft_makespan, b.heft_makespan);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(exp::build_case_environment(spec).scenario.events,
            exp::build_case_environment(spec).scenario.events);
}

/// Records `source`'s environment for a spec, replays it through the
/// "trace" source, and expects the identical makespan and event log.
void expect_faithful_replay(const std::string& source) {
  const exp::CaseSpec spec = volatile_spec(source);
  const exp::CaseEnvironment env = exp::build_case_environment(spec);

  const std::string path = testing::TempDir() + "replay_" + source +
                           ".trace";
  write_trace_file(path, record_scenario(env.scenario, "recorded"));

  exp::CaseSpec replay = spec;
  replay.scenario_source = "trace";
  replay.trace_path = path;
  const exp::CaseEnvironment replay_env =
      exp::build_case_environment(replay);

  EXPECT_EQ(env.scenario.events, replay_env.scenario.events);
  EXPECT_EQ(env.scenario.load, replay_env.scenario.load);

  const exp::CaseResult live = exp::run_case(spec);
  const exp::CaseResult replayed = exp::run_case(replay);
  EXPECT_EQ(live.aheft_makespan, replayed.aheft_makespan);
  EXPECT_EQ(live.heft_makespan, replayed.heft_makespan);
  EXPECT_EQ(live.evaluations, replayed.evaluations);
  EXPECT_EQ(live.adoptions, replayed.adoptions);
  EXPECT_EQ(live.universe, replayed.universe);
  std::remove(path.c_str());
}

TEST(Replay, RecordedSyntheticRunReplaysIdentically) {
  expect_faithful_replay("synthetic");
}

TEST(Replay, RecordedBurstyRunReplaysIdentically) {
  expect_faithful_replay("bursty");
}

// --------------------------------------------------- dynamics checking --

TEST(ResourceDynamics, RejectsDegenerateInputsWithClearErrors) {
  workloads::ResourceDynamics dynamics;
  dynamics.interval = 0.0;
  try {
    workloads::validate(dynamics);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("interval"),
              std::string::npos);
  }

  dynamics = {};
  dynamics.interval = -5.0;
  EXPECT_THROW(workloads::validate(dynamics), std::invalid_argument);
  EXPECT_THROW(
      (void)workloads::build_dynamic_pool(dynamics, 100.0),
      std::invalid_argument);

  dynamics = {};
  dynamics.fraction = -0.1;
  try {
    workloads::validate(dynamics);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("fraction"),
              std::string::npos);
  }

  dynamics = {};
  dynamics.initial = 0;
  EXPECT_THROW(workloads::validate(dynamics), std::invalid_argument);

  // And the scenario sources funnel through the same validation.
  ScenarioRequest request;
  request.dynamics.interval = 0.0;
  EXPECT_THROW((void)build_scenario("synthetic", request),
               std::invalid_argument);
}

}  // namespace
}  // namespace aheft::traces
