// CPOP tests: the [19] companion heuristic used as an extra static
// baseline (extension).
#include <gtest/gtest.h>

#include "core/cpop.h"
#include "core/heft.h"
#include "helpers.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

TEST(Cpop, CriticalPathOfSampleDag) {
  const auto scenario = workloads::sample_scenario();
  const std::vector<grid::ResourceId> initial{0, 1, 2};
  const auto cp =
      cpop_critical_path(scenario.dag, scenario.model, initial);
  // |CP| = max priority = ranku(n1) = 108: n1 -> n2 -> n9 -> n10 in [19].
  EXPECT_EQ(cp, (std::vector<dag::JobId>{0, 1, 8, 9}));
}

TEST(Cpop, ReproducesPublishedSampleMakespan) {
  // Topcuoglu et al. [19] Fig. 3(b): CPOP schedules the sample DAG with
  // makespan 86 on three resources (vs HEFT's 80).
  const auto scenario = workloads::sample_scenario();
  const Schedule s =
      cpop_schedule(scenario.dag, scenario.model, scenario.pool);
  validate_static(s, scenario.dag, scenario.model, scenario.pool);
  EXPECT_DOUBLE_EQ(s.makespan(), 86.0);
}

TEST(Cpop, CriticalPathJobsShareOneResource) {
  const auto scenario = workloads::sample_scenario();
  const std::vector<grid::ResourceId> initial{0, 1, 2};
  const auto cp =
      cpop_critical_path(scenario.dag, scenario.model, initial);
  const Schedule s =
      cpop_schedule(scenario.dag, scenario.model, scenario.pool);
  const grid::ResourceId pinned = s.assignment(cp.front()).resource;
  for (const dag::JobId i : cp) {
    EXPECT_EQ(s.assignment(i).resource, pinned)
        << scenario.dag.job(i).name;
  }
}

// Contention-aware planning's compat fence, CPOP side: an empty
// AvailabilityView leaves the plan bit-identical to the view-less pass.
TEST(Cpop, EmptyViewIsBitIdenticalOnTheSample) {
  const auto scenario = workloads::sample_scenario();
  const AvailabilityView empty;
  const Schedule blind =
      cpop_schedule(scenario.dag, scenario.model, scenario.pool);
  const Schedule viewed =
      cpop_schedule(scenario.dag, scenario.model, scenario.pool, {},
                    sim::kTimeZero, &empty);
  test::expect_bit_identical(blind, viewed);
  EXPECT_DOUBLE_EQ(viewed.makespan(), 86.0);
}

class CpopProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpopProperty, ProducesValidStaticSchedules) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const Schedule s = cpop_schedule(c.workload.dag, c.model, c.pool);
  validate_static(s, c.workload.dag, c.model, c.pool);
  EXPECT_TRUE(s.complete());
}

TEST_P(CpopProperty, WithinAFewPercentOfHeftOnAverage) {
  // The claim the paper cites from [10]: list heuristics differ by a few
  // percent. Checked as an aggregate over the sweep, not per case.
  static double heft_total = 0.0;
  static double cpop_total = 0.0;
  const test::RandomCase c = test::make_random_case(GetParam());
  heft_total += heft_schedule(c.workload.dag, c.model, c.pool).makespan();
  cpop_total += cpop_schedule(c.workload.dag, c.model, c.pool).makespan();
  // Once all seeds accumulated, the ratio must stay moderate. (CPOP is
  // usually a bit worse; allow up to 35% on this small sample.)
  EXPECT_LT(cpop_total, heft_total * 1.35);
}

TEST_P(CpopProperty, EmptyViewIsBitIdentical) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const AvailabilityView empty;
  const Schedule blind = cpop_schedule(c.workload.dag, c.model, c.pool);
  const Schedule viewed = cpop_schedule(c.workload.dag, c.model, c.pool, {},
                                        sim::kTimeZero, &empty);
  test::expect_bit_identical(blind, viewed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpopProperty,
                         ::testing::Values(3, 6, 9, 12, 15, 18, 21, 24));

}  // namespace
}  // namespace aheft::core
