// ResourceLedger unit tests: entry lifecycle (pending -> held ->
// committed / withdrawn), the committed-overlap invariant, wait-baseline
// carrying across withdrawals, truncation of cancelled commitments, and
// the backfill hole-finder's no-delay guarantees.
#include <gtest/gtest.h>

#include "core/resource_ledger.h"
#include "support/assert.h"

namespace aheft::core {
namespace {

constexpr grid::ResourceId kR = 0;

ReservationEntry& upsert(ResourceLedger& ledger, std::size_t participant,
                         std::uint64_t tag, sim::Time ready,
                         double duration) {
  return ledger.upsert(participant, kR, tag, ready, duration,
                       /*priority=*/1.0, /*active_since=*/0.0,
                       /*planned_span=*/0.0);
}

TEST(ResourceLedger, UpsertRegistersOnceAndRefreshesInPlace) {
  ResourceLedger ledger;
  const ReservationEntry& first = upsert(ledger, 0, 7, 5.0, 10.0);
  EXPECT_EQ(first.state, ReservationState::kPending);
  EXPECT_DOUBLE_EQ(first.first_ready, 5.0);
  const std::uint64_t id = first.id;

  // A refresh for the same work keeps the id, queue slot, and baseline.
  upsert(ledger, 0, 7, 9.0, 12.0);
  ASSERT_EQ(ledger.queue(kR).size(), 1u);
  const ReservationEntry& refreshed = ledger.queue(kR).front();
  EXPECT_EQ(refreshed.id, id);
  EXPECT_DOUBLE_EQ(refreshed.ready, 9.0);
  EXPECT_DOUBLE_EQ(refreshed.duration, 12.0);
  EXPECT_DOUBLE_EQ(refreshed.first_ready, 5.0);

  // Different work of the same participant queues separately.
  upsert(ledger, 0, 8, 0.0, 3.0);
  EXPECT_EQ(ledger.queue(kR).size(), 2u);
  EXPECT_EQ(ledger.queued_count(), 2u);
}

TEST(ResourceLedger, CommitMovesEntryToTimeline) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 10.0);
  upsert(ledger, 1, 1, 0.0, 5.0);
  const ReservationEntry committed = ledger.commit(0, kR, 1, 0.0, 10.0);
  EXPECT_EQ(committed.state, ReservationState::kCommitted);
  EXPECT_EQ(ledger.queue(kR).size(), 1u);  // participant 1 still queued
  EXPECT_DOUBLE_EQ(ledger.committed_until(kR), 10.0);
  EXPECT_DOUBLE_EQ(ledger.committed_until_excluding(kR, 0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.committed_until_excluding(kR, 1), 10.0);
  ASSERT_EQ(ledger.committed_windows(kR).size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.committed_windows(kR).front().end, 10.0);
}

TEST(ResourceLedger, OverlappingCommitsViolateTheInvariant) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 10.0);
  (void)ledger.commit(0, kR, 1, 0.0, 10.0);
  upsert(ledger, 1, 1, 0.0, 5.0);
  EXPECT_THROW((void)ledger.commit(1, kR, 1, 5.0, 10.0), AssertionError);
  // Adjacent windows are legal: [10, 15) touches [0, 10) without overlap.
  upsert(ledger, 2, 1, 0.0, 5.0);
  EXPECT_NO_THROW((void)ledger.commit(2, kR, 1, 10.0, 15.0));
  // Backfilled windows land in holes BEFORE existing windows: committing
  // [20, 30) then [16, 18) is legal, [17, 22) is not.
  upsert(ledger, 0, 2, 20.0, 10.0);
  (void)ledger.commit(0, kR, 2, 20.0, 30.0);
  upsert(ledger, 1, 2, 16.0, 2.0);
  EXPECT_NO_THROW((void)ledger.commit(1, kR, 2, 16.0, 18.0));
  upsert(ledger, 2, 2, 17.0, 5.0);
  EXPECT_THROW((void)ledger.commit(2, kR, 2, 17.0, 22.0), AssertionError);
}

TEST(ResourceLedger, WithdrawCarriesTheWaitBaseline) {
  ResourceLedger ledger;
  upsert(ledger, 0, 7, 5.0, 10.0);
  const std::vector<grid::ResourceId> touched = ledger.withdraw_all(0);
  ASSERT_EQ(touched.size(), 1u);
  EXPECT_EQ(touched.front(), kR);
  EXPECT_EQ(ledger.queue(kR).size(), 0u);
  // Re-registration for the same work resumes the wait clock (min of the
  // carried and fresh ready), even at a later feasible time.
  const ReservationEntry& again = upsert(ledger, 0, 7, 30.0, 10.0);
  EXPECT_DOUBLE_EQ(again.first_ready, 5.0);
  // ...but only once: the carried baseline is consumed.
  ledger.withdraw_all(0);
  upsert(ledger, 0, 7, 12.0, 10.0);
  EXPECT_DOUBLE_EQ(ledger.queue(kR).front().first_ready, 5.0);
}

TEST(ResourceLedger, SingleWithdrawRemovesOnlyTheKeyedEntry) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 10.0);
  upsert(ledger, 0, 2, 0.0, 10.0);
  EXPECT_FALSE(ledger.withdraw(0, kR, 99));
  EXPECT_TRUE(ledger.withdraw(0, kR, 1));
  ASSERT_EQ(ledger.queue(kR).size(), 1u);
  EXPECT_EQ(ledger.queue(kR).front().tag, 2u);
}

TEST(ResourceLedger, TruncateReleasesTheCancelledRemainder) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 40.0);
  (void)ledger.commit(0, kR, 1, 0.0, 40.0);
  EXPECT_DOUBLE_EQ(ledger.committed_until_excluding(kR, 1), 40.0);
  // The running job behind the window is cancelled at t=15.
  ledger.truncate_commit(0, kR, 1, 15.0);
  EXPECT_DOUBLE_EQ(ledger.committed_until_excluding(kR, 1), 15.0);
  // The freed remainder is committable again without overlap.
  upsert(ledger, 1, 1, 15.0, 10.0);
  EXPECT_NO_THROW((void)ledger.commit(1, kR, 1, 15.0, 25.0));
  // Truncating an unknown window is a harmless no-op.
  ledger.truncate_commit(0, kR, 42, 0.0);
}

TEST(ResourceLedger, HoldKeepsTheClaimQueuedAndReportsMoves) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 10.0);
  EXPECT_TRUE(ledger.hold(0, kR, 1, 20.0));   // fresh hold: moved
  EXPECT_FALSE(ledger.hold(0, kR, 1, 20.0));  // unchanged: silent
  EXPECT_TRUE(ledger.hold(0, kR, 1, 30.0));   // re-arbitrated: moved
  const ReservationEntry* entry = ledger.find(0, kR, 1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, ReservationState::kHeld);
  EXPECT_DOUBLE_EQ(entry->held_start, 30.0);
  EXPECT_EQ(ledger.queue(kR).size(), 1u);  // still visible to policies
}

// ------------------------------------------------------------- backfill --

TEST(ResourceLedger, BackfillFindsTheFirstFittingHole) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 50.0, 10.0);
  (void)ledger.commit(0, kR, 1, 50.0, 60.0);
  // Entries are copied out: later upserts may grow (and reallocate) the
  // queue, and backfill_start only needs the request's fields.
  const ReservationEntry request = upsert(ledger, 1, 1, 0.0, 5.0);
  // Deferred to 60 by the floor, but [0, 5) fits before the window.
  const auto hole = ledger.backfill_start(request, /*now=*/0.0,
                                          /*policy_grant=*/60.0);
  ASSERT_TRUE(hole.has_value());
  EXPECT_DOUBLE_EQ(*hole, 0.0);
  // A 55-unit request cannot fit before the window; sliding past it
  // reaches the policy grant, so there is nothing to gain. (The 5-unit
  // sibling entry is withdrawn so it does not fence its own owner.)
  ledger.withdraw(1, kR, 1);
  const ReservationEntry big = upsert(ledger, 1, 2, 0.0, 55.0);
  EXPECT_FALSE(ledger.backfill_start(big, 0.0, 60.0).has_value());
  // An undeferred request has nothing to gain either.
  EXPECT_FALSE(ledger.backfill_start(big, 0.0, 0.0).has_value());
}

TEST(ResourceLedger, BackfillRespectsQueuedRequestsAndHeldClaims) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 50.0, 10.0);
  (void)ledger.commit(0, kR, 1, 50.0, 60.0);
  // A pending competitor feasible at t=2 fences the hole.
  upsert(ledger, 2, 1, 2.0, 20.0);
  const ReservationEntry request = upsert(ledger, 1, 1, 0.0, 5.0);
  EXPECT_FALSE(
      ledger.backfill_start(request, 0.0, 60.0).has_value());  // 5 > 2
  ledger.withdraw(1, kR, 1);
  const ReservationEntry tiny = upsert(ledger, 1, 2, 0.0, 2.0);
  const auto hole = ledger.backfill_start(tiny, 0.0, 60.0);
  ASSERT_TRUE(hole.has_value());  // ends exactly at the fence
  EXPECT_DOUBLE_EQ(*hole, 0.0);
  // A held claim blocks its window like a committed one.
  ledger.withdraw(1, kR, 2);
  ledger.withdraw_all(2);
  upsert(ledger, 2, 2, 0.0, 10.0);
  ledger.hold(2, kR, 2, 0.0);  // claim [0, 10)
  const ReservationEntry after = upsert(ledger, 1, 3, 0.0, 5.0);
  const auto shifted = ledger.backfill_start(after, 0.0, 60.0);
  ASSERT_TRUE(shifted.has_value());
  EXPECT_DOUBLE_EQ(*shifted, 10.0);  // first hole after the claim
}

// ----- snapshot_view: the planner-side availability picture ---------------

TEST(SnapshotView, MergesAdjacentAndOverlappingWindows) {
  ResourceLedger ledger;
  // Participant 1 commits [0, 10) and the touching [10, 15); participant 2
  // overlaps neither but held-claims [12, 20) — 12 < 15, so from owner 0's
  // point of view the three spans merge into one busy block.
  upsert(ledger, 1, 1, 0.0, 10.0);
  (void)ledger.commit(1, kR, 1, 0.0, 10.0);
  upsert(ledger, 1, 2, 10.0, 5.0);
  (void)ledger.commit(1, kR, 2, 10.0, 15.0);
  upsert(ledger, 2, 1, 0.0, 8.0);
  ledger.hold(2, kR, 1, 12.0);  // claim [12, 20)
  upsert(ledger, 1, 3, 30.0, 5.0);
  (void)ledger.commit(1, kR, 3, 30.0, 35.0);

  const AvailabilityView view = ledger.snapshot_view(/*owner=*/0, 0.0);
  ASSERT_EQ(view.busy(kR).size(), 2u);
  EXPECT_EQ(view.busy(kR)[0], (BusyInterval{0.0, 20.0}));
  EXPECT_EQ(view.busy(kR)[1], (BusyInterval{30.0, 35.0}));
  // Earliest-fit walks the merged free gaps.
  EXPECT_DOUBLE_EQ(view.earliest_fit(kR, 0.0, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(view.earliest_fit(kR, 0.0, 5.0), 20.0);
  EXPECT_DOUBLE_EQ(view.earliest_fit(kR, 21.0, 20.0), 35.0);
}

TEST(SnapshotView, ExcludesTheOwnersOwnLoad) {
  ResourceLedger ledger;
  upsert(ledger, 0, 1, 0.0, 10.0);
  (void)ledger.commit(0, kR, 1, 0.0, 10.0);
  upsert(ledger, 0, 2, 0.0, 5.0);
  ledger.hold(0, kR, 2, 10.0);
  upsert(ledger, 1, 1, 20.0, 5.0);
  (void)ledger.commit(1, kR, 1, 20.0, 25.0);

  // Owner 0 sees only participant 1's window; owner 1 only 0's.
  const AvailabilityView mine = ledger.snapshot_view(0, 0.0);
  ASSERT_EQ(mine.busy(kR).size(), 1u);
  EXPECT_EQ(mine.busy(kR)[0], (BusyInterval{20.0, 25.0}));
  const AvailabilityView theirs = ledger.snapshot_view(1, 0.0);
  ASSERT_EQ(theirs.busy(kR).size(), 1u);
  EXPECT_EQ(theirs.busy(kR)[0], (BusyInterval{0.0, 15.0}));
  // A third workflow sees everything.
  EXPECT_EQ(ledger.snapshot_view(2, 0.0).interval_count(), 2u);
}

TEST(SnapshotView, FiltersHeldVersusCommittedAndElapsedLoad) {
  ResourceLedger ledger;
  // Committed history fully behind the snapshot instant: invisible.
  upsert(ledger, 1, 1, 0.0, 10.0);
  (void)ledger.commit(1, kR, 1, 0.0, 10.0);
  // Committed window straddling the instant: visible.
  upsert(ledger, 1, 2, 10.0, 10.0);
  (void)ledger.commit(1, kR, 2, 10.0, 20.0);
  // A pending entry has no granted start: invisible.
  upsert(ledger, 2, 1, 0.0, 50.0);
  // A held claim is granted load: visible.
  upsert(ledger, 3, 1, 0.0, 5.0);
  ledger.hold(3, kR, 1, 25.0);  // claim [25, 30)
  // A truncated-to-nothing commitment: invisible.
  upsert(ledger, 1, 3, 40.0, 10.0);
  (void)ledger.commit(1, kR, 3, 40.0, 50.0);
  ledger.truncate_commit(1, kR, 3, 40.0);

  const AvailabilityView view = ledger.snapshot_view(/*owner=*/0, 15.0);
  EXPECT_DOUBLE_EQ(view.snapshot_time(), 15.0);
  ASSERT_EQ(view.busy(kR).size(), 2u);
  EXPECT_EQ(view.busy(kR)[0], (BusyInterval{10.0, 20.0}));
  EXPECT_EQ(view.busy(kR)[1], (BusyInterval{25.0, 30.0}));
}

TEST(SnapshotView, SameInstantSnapshotsAreByteEqual) {
  ResourceLedger ledger;
  for (std::size_t p = 1; p <= 4; ++p) {
    const auto base = static_cast<sim::Time>(10 * p);
    upsert(ledger, p, 1, base, 6.0);
    (void)ledger.commit(p, kR, 1, base, base + 6.0);
    upsert(ledger, p, 2, 0.0, 3.0);
    ledger.hold(p, kR, 2, base + 50.0);
  }
  const AvailabilityView a = ledger.snapshot_view(0, 12.0);
  const AvailabilityView b = ledger.snapshot_view(0, 12.0);
  EXPECT_TRUE(a == b);
  // A view is a frozen value: later ledger motion must not leak into it.
  const AvailabilityView before = ledger.snapshot_view(0, 12.0);
  upsert(ledger, 1, 9, 100.0, 5.0);
  (void)ledger.commit(1, kR, 9, 100.0, 105.0);
  EXPECT_TRUE(before == a);
  EXPECT_FALSE(ledger.snapshot_view(0, 12.0) == a);
}

TEST(SnapshotView, EmptyViewConstrainsNothing) {
  const AvailabilityView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.interval_count(), 0u);
  EXPECT_DOUBLE_EQ(view.earliest_fit(kR, 17.0, 100.0), 17.0);
}

}  // namespace
}  // namespace aheft::core
