// Archive subsystem tests: SWF/GWA parsing with line-numbered rejection,
// write/read round-trips, the usable-job filter, distribution fitting,
// the seeded O(1)-state generator, and the `archive` / `fitted`
// ScenarioSource backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "archive/archive_source.h"
#include "archive/fitted_model.h"
#include "archive/swf_reader.h"
#include "support/rng.h"
#include "traces/scenario_source.h"

namespace aheft::archive {
namespace {

std::string fixture(const std::string& name) {
  return std::string(AHEFT_TEST_DATA_DIR) + "/" + name;
}

/// Asserts `text` is rejected at `line` with `fragment` in the message.
void expect_rejects(const std::string& text, std::size_t line,
                    const std::string& fragment) {
  try {
    (void)read_swf_string(text);
    FAIL() << "expected SwfParseError with: " << fragment;
  } catch (const SwfParseError& error) {
    EXPECT_EQ(error.line(), line) << error.what();
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << error.what();
  }
}

constexpr const char* kTinyLog =
    "; MaxNodes: 4\n"
    "; UnixStartTime: 1167609600\n"
    "1 0 5 120 2 -1 -1 2 300 -1 1 101 10 7 1 -1 -1 -1\n"
    "2 30 12 95 2 -1 -1 2 300 -1 1 101 10 7 1 -1 -1 -1\n"
    "3 400 60 3600 4 -1 -1 4 7200 -1 1 202 20 3 1 -1 -1 -1\n";

// ------------------------------------------------------------- reader --

TEST(SwfReader, ParsesHeaderCommentsAndRecords) {
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  EXPECT_EQ(log.header.value("Version"), "2.2");
  EXPECT_EQ(log.header.max_nodes(), 8u);
  EXPECT_EQ(log.header.max_procs(), 32u);
  EXPECT_EQ(log.header.unix_start_time(), 1167609600u);
  // Free-text comments (even with colons in running text) are not fields.
  EXPECT_EQ(log.header.value("note that free-text comments like this one"),
            "");
  ASSERT_EQ(log.jobs.size(), 42u);

  const SwfJob& first = log.jobs.front();
  EXPECT_EQ(first.id, 1);
  EXPECT_EQ(first.submit, 0.0);
  EXPECT_EQ(first.wait, 5.0);
  EXPECT_EQ(first.runtime, 120.0);
  EXPECT_EQ(first.procs, 2);
  EXPECT_EQ(first.requested_procs, 2);
  EXPECT_EQ(first.requested_time, 300.0);
  EXPECT_TRUE(first.completed());
  EXPECT_EQ(first.user, 101);
}

TEST(SwfReader, ToleratesGwaExtraFields) {
  // Records 24/25 of the fixture carry trailing GWA columns.
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  const auto it = std::find_if(log.jobs.begin(), log.jobs.end(),
                               [](const SwfJob& j) { return j.id == 24; });
  ASSERT_NE(it, log.jobs.end());
  EXPECT_EQ(it->runtime, 150.0);
}

TEST(SwfReader, RejectsWithLineNumbers) {
  expect_rejects("1 0 5 120 2 -1 -1 2\n", 1, "expected 18 fields");
  expect_rejects(std::string(kTinyLog) + "4 x 0 1 1 -1 -1 1 1 -1 1 1 1 1 1 "
                                         "-1 -1 -1\n",
                 6, "malformed submit time");
  expect_rejects(std::string(kTinyLog) + "4 -5 0 1 1 -1 -1 1 1 -1 1 1 1 1 1 "
                                         "-1 -1 -1\n",
                 6, "non-negative");
  // SWF logs are submit-ordered by definition.
  expect_rejects(std::string(kTinyLog) + "4 10 0 1 1 -1 -1 1 1 -1 1 1 1 1 1 "
                                         "-1 -1 -1\n",
                 6, "non-decreasing");
  expect_rejects("1 0 5 nan 2 -1 -1 2 300 -1 1 101 10 7 1 -1 -1 -1\n", 1,
                 "malformed run time");
}

TEST(SwfReader, MalformedFixtureNamesTheOffendingLine) {
  try {
    (void)read_swf_file(fixture("sample_malformed.swf"));
    FAIL() << "expected SwfParseError";
  } catch (const SwfParseError& error) {
    EXPECT_EQ(error.line(), 6u);
    EXPECT_NE(std::string(error.what()).find("malformed run time"),
              std::string::npos);
  }
}

TEST(SwfReader, WriteReadRoundTripIsIdentical) {
  const SwfLog original = read_swf_file(fixture("sample_clean.swf"));
  const SwfLog reread = read_swf_string(write_swf_string(original));
  // The writer drops fields the struct never stores, so compare what is
  // stored: headers and the job records themselves.
  EXPECT_EQ(original.header.fields, reread.header.fields);
  EXPECT_EQ(original.jobs, reread.jobs);
  // And the serialized form is a fixed point.
  EXPECT_EQ(write_swf_string(original), write_swf_string(reread));
}

TEST(SwfReader, RoundTripsExactDoubles) {
  SwfLog log;
  SwfJob job;
  job.id = 1;
  job.submit = 0.1 + 0.2;  // not representable as a short decimal
  job.runtime = 1.0000000000000002;
  job.procs = 1;
  job.status = 1;
  log.jobs.push_back(job);
  const SwfLog reread = read_swf_string(write_swf_string(log));
  ASSERT_EQ(reread.jobs.size(), 1u);
  EXPECT_EQ(reread.jobs[0].submit, job.submit);
  EXPECT_EQ(reread.jobs[0].runtime, job.runtime);
}

TEST(SwfReader, UsableJobsFiltersAndFallsBack) {
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  const std::vector<SwfJob> usable = usable_jobs(log);
  // 42 records minus: 1 cancelled (id 8), 2 failed (ids 5, 27), 1 with
  // zero runtime (id 15).
  EXPECT_EQ(usable.size(), 38u);
  for (const SwfJob& job : usable) {
    EXPECT_TRUE(job.completed());
    EXPECT_GT(job.runtime, 0.0);
    EXPECT_GT(job.procs, 0);
  }
  // id 16 had procs = -1 and falls back to requested_procs = 4.
  const auto it = std::find_if(usable.begin(), usable.end(),
                               [](const SwfJob& j) { return j.id == 16; });
  ASSERT_NE(it, usable.end());
  EXPECT_EQ(it->procs, 4);
  // include_failed keeps the failed (but not the runtime-less) records.
  EXPECT_EQ(usable_jobs(log, /*include_failed=*/true).size(), 40u);
}

// ------------------------------------------------------------ fitting --

TEST(ArchiveFit, FitsTheCleanFixture) {
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  const ArchiveFit fit = fit_archive(log);
  EXPECT_EQ(fit.fitted_jobs, 38u);
  EXPECT_GT(fit.span_seconds, 0.0);
  EXPECT_GT(fit.mean_rate, 0.0);
  EXPECT_GE(fit.peak_rate, fit.mean_rate);
  EXPECT_GT(fit.mean_runtime, 0.0);
  EXPECT_GE(fit.mean_bag_size, 1.0);
  EXPECT_GT(fit.bag_size_p, 0.0);
  EXPECT_LE(fit.bag_size_p, 1.0);
  EXPECT_GE(fit.runtime_correlation, 0.0);
  EXPECT_LE(fit.runtime_correlation, 0.95);
  // The chosen distribution is the KS winner.
  const double chosen = fit.runtime_is_log_normal ? fit.runtime_ks_log_normal
                                                  : fit.runtime_ks_weibull;
  EXPECT_LE(chosen, std::max(fit.runtime_ks_log_normal,
                             fit.runtime_ks_weibull));
  // The procs CDF ends at probability exactly 1 and is monotone.
  ASSERT_FALSE(fit.procs_cdf.empty());
  EXPECT_EQ(fit.procs_cdf.back().first, 1.0);
  for (std::size_t i = 1; i < fit.procs_cdf.size(); ++i) {
    EXPECT_GT(fit.procs_cdf[i].first, fit.procs_cdf[i - 1].first);
    EXPECT_GT(fit.procs_cdf[i].second, fit.procs_cdf[i - 1].second);
  }
  // The fixture has multi-job bags, so the empirical intra-bag gap
  // quantile table is populated, non-decreasing, and interpolation stays
  // within its range.
  ASSERT_EQ(fit.intra_gap_quantiles.size(), ArchiveFit::kGapQuantileSteps);
  for (std::size_t i = 1; i < fit.intra_gap_quantiles.size(); ++i) {
    EXPECT_GE(fit.intra_gap_quantiles[i], fit.intra_gap_quantiles[i - 1]);
  }
  EXPECT_EQ(fit.intra_gap_from_uniform(0.0), fit.intra_gap_quantiles.front());
  EXPECT_EQ(fit.intra_gap_from_uniform(1.0), fit.intra_gap_quantiles.back());
  const double mid = fit.intra_gap_from_uniform(0.5);
  EXPECT_GE(mid, fit.intra_gap_quantiles.front());
  EXPECT_LE(mid, fit.intra_gap_quantiles.back());
}

TEST(ArchiveFit, RejectsUnfittableLogs) {
  EXPECT_THROW((void)fit_archive(SwfLog{}), std::invalid_argument);
  // Two usable jobs at the same instant: no span to estimate rates from.
  const SwfLog log = read_swf_string(
      "1 0 0 10 1 -1 -1 1 10 -1 1 1 1 1 1 -1 -1 -1\n"
      "2 0 0 20 1 -1 -1 1 20 -1 1 1 1 1 1 -1 -1 -1\n");
  EXPECT_THROW((void)fit_archive(log), std::invalid_argument);
}

TEST(FittedJobStream, IsBitDeterministicAtFixedSeed) {
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  const ArchiveFit fit = fit_archive(log);
  FittedJobStream a(fit, 1234);
  FittedJobStream b(fit, 1234);
  FittedJobStream other(fit, 5678);
  bool any_difference = false;
  double last_arrival = 0.0;
  for (std::size_t i = 0; i < 500; ++i) {
    const GeneratedJob ja = a.next();
    const GeneratedJob jb = b.next();
    const GeneratedJob jo = other.next();
    // Bit-identical across instances, not merely close.
    EXPECT_EQ(ja.arrival, jb.arrival);
    EXPECT_EQ(ja.runtime, jb.runtime);
    EXPECT_EQ(ja.procs, jb.procs);
    EXPECT_EQ(ja.bag, jb.bag);
    any_difference |= jo.arrival != ja.arrival;

    EXPECT_EQ(ja.index, i);
    EXPECT_GE(ja.arrival, last_arrival);
    last_arrival = ja.arrival;
    EXPECT_GT(ja.runtime, 0.0);
    EXPECT_GT(ja.procs, 0);
  }
  EXPECT_TRUE(any_difference) << "seed must matter";
}

TEST(FittedJobStream, DrawsProcsFromTheObservedSupport) {
  const SwfLog log = read_swf_file(fixture("sample_clean.swf"));
  const ArchiveFit fit = fit_archive(log);
  std::set<std::int64_t> support;
  for (const auto& [probability, procs] : fit.procs_cdf) {
    support.insert(procs);
  }
  FittedJobStream stream(fit, 7);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(support.contains(stream.next().procs));
  }
}

// ----------------------------------------------------------- backends --

traces::ScenarioRequest archive_request() {
  traces::ScenarioRequest request;
  request.archive.path = fixture("sample_clean.swf");
  request.horizon = 4000.0;
  request.seed = 99;
  return request;
}

TEST(ArchiveSource, ReplaysTheFixture) {
  const traces::ScenarioRequest request = archive_request();
  const traces::CompiledScenario scenario =
      traces::build_scenario("archive", request);
  // MaxNodes: 8 sizes the pool.
  EXPECT_EQ(scenario.pool.universe_size(), 8u);
  // One arrival per usable job, shifted to t = 0, submit-ordered.
  ASSERT_EQ(scenario.job_arrivals.size(), 38u);
  EXPECT_EQ(scenario.job_arrivals.front().arrival, 0.0);
  EXPECT_EQ(scenario.job_arrivals.front().name, "swf1");
  for (std::size_t i = 1; i < scenario.job_arrivals.size(); ++i) {
    EXPECT_GE(scenario.job_arrivals[i].arrival,
              scenario.job_arrivals[i - 1].arrival);
  }
  // Replay is horizon-insensitive (fixed timeline, like `trace`).
  EXPECT_FALSE(
      traces::ScenarioSourceRegistry::instance().require("archive")
          .horizon_sensitive());
  // Identical requests compile identically (same parse, same buckets).
  const traces::CompiledScenario again =
      traces::build_scenario("archive", request);
  EXPECT_EQ(scenario.job_arrivals, again.job_arrivals);
  EXPECT_EQ(scenario.load.segments(), again.load.segments());
}

TEST(ArchiveSource, AppliesStreamCapAndTimeScale) {
  traces::ScenarioRequest request = archive_request();
  request.stream.jobs = 5;
  request.archive.time_scale = 0.5;
  request.archive.machines = 3;
  const traces::CompiledScenario scenario =
      traces::build_scenario("archive", request);
  EXPECT_EQ(scenario.pool.universe_size(), 3u);
  ASSERT_EQ(scenario.job_arrivals.size(), 5u);
  // Fixture job 4 (4th usable record) submits at 400 -> scaled to 200.
  EXPECT_EQ(scenario.job_arrivals[3].arrival, 200.0);
}

TEST(ArchiveSource, RequiresAPathOrText) {
  traces::ScenarioRequest request;
  EXPECT_THROW((void)traces::build_scenario("archive", request),
               std::invalid_argument);
  EXPECT_THROW((void)traces::build_scenario("fitted", request),
               std::invalid_argument);
}

TEST(FittedSource, GeneratesASeededStream) {
  traces::ScenarioRequest request = archive_request();
  request.stream.jobs = 25;
  const traces::CompiledScenario scenario =
      traces::build_scenario("fitted", request);
  ASSERT_EQ(scenario.job_arrivals.size(), 25u);
  for (std::size_t i = 1; i < scenario.job_arrivals.size(); ++i) {
    EXPECT_GE(scenario.job_arrivals[i].arrival,
              scenario.job_arrivals[i - 1].arrival);
  }
  // Same request, same stream — bit-identical.
  const traces::CompiledScenario again =
      traces::build_scenario("fitted", request);
  EXPECT_EQ(scenario.job_arrivals, again.job_arrivals);
  // A different seed yields a different stream.
  traces::ScenarioRequest reseeded = request;
  reseeded.seed = 1000;
  EXPECT_NE(traces::build_scenario("fitted", reseeded).job_arrivals,
            scenario.job_arrivals);
}

TEST(FittedSource, InlineTextWorksLikeAFile) {
  traces::ScenarioRequest request;
  request.archive.text = kTinyLog;
  request.stream.jobs = 3;
  request.seed = 5;
  const traces::CompiledScenario scenario =
      traces::build_scenario("fitted", request);
  EXPECT_EQ(scenario.pool.universe_size(), 4u);  // MaxNodes: 4
  EXPECT_EQ(scenario.job_arrivals.size(), 3u);
}

}  // namespace
}  // namespace aheft::archive
