// Unit tests for the DAG substrate: construction, topology, algorithms,
// serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "dag/algorithms.h"
#include "dag/dag.h"
#include "dag/dot.h"
#include "dag/io.h"
#include "workloads/sample.h"

namespace aheft::dag {
namespace {

Dag diamond() {
  Dag d("diamond");
  const JobId a = d.add_job("a", "op1");
  const JobId b = d.add_job("b", "op2");
  const JobId c = d.add_job("c", "op2");
  const JobId e = d.add_job("e", "op3");
  d.add_edge(a, b, 10.0);
  d.add_edge(a, c, 20.0);
  d.add_edge(b, e, 5.0);
  d.add_edge(c, e, 1.0);
  d.finalize();
  return d;
}

TEST(Dag, BasicTopology) {
  const Dag d = diamond();
  EXPECT_EQ(d.job_count(), 4u);
  EXPECT_EQ(d.edge_count(), 4u);
  EXPECT_EQ(d.entry_jobs(), (std::vector<JobId>{0}));
  EXPECT_EQ(d.exit_jobs(), (std::vector<JobId>{3}));
  EXPECT_EQ(d.predecessors(3), (std::vector<JobId>{1, 2}));
  EXPECT_EQ(d.successors(0), (std::vector<JobId>{1, 2}));
  EXPECT_DOUBLE_EQ(d.data(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(d.data(1, 2), 0.0);  // no such edge
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = diamond();
  const auto& order = d.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (const Edge& e : d.edges()) {
    EXPECT_LT(position[e.from], position[e.to]);
  }
}

TEST(Dag, RejectsCycle) {
  Dag d;
  const JobId a = d.add_job("a");
  const JobId b = d.add_job("b");
  d.add_edge(a, b, 1.0);
  d.add_edge(b, a, 1.0);
  EXPECT_THROW(d.finalize(), std::invalid_argument);
}

TEST(Dag, RejectsSelfLoop) {
  Dag d;
  const JobId a = d.add_job("a");
  EXPECT_THROW(d.add_edge(a, a, 1.0), std::invalid_argument);
}

TEST(Dag, RejectsDuplicateEdge) {
  Dag d;
  const JobId a = d.add_job("a");
  const JobId b = d.add_job("b");
  d.add_edge(a, b, 1.0);
  d.add_edge(a, b, 2.0);
  EXPECT_THROW(d.finalize(), std::invalid_argument);
}

TEST(Dag, RejectsNegativeDataAndBadIds) {
  Dag d;
  const JobId a = d.add_job("a");
  const JobId b = d.add_job("b");
  EXPECT_THROW(d.add_edge(a, b, -1.0), std::invalid_argument);
  EXPECT_THROW(d.add_edge(a, 99, 1.0), std::invalid_argument);
  EXPECT_THROW(d.add_edge(99, b, 1.0), std::invalid_argument);
}

TEST(Dag, RejectsEmptyGraphAndMutationAfterFinalize) {
  Dag empty;
  EXPECT_THROW(empty.finalize(), std::invalid_argument);

  Dag d = diamond();
  EXPECT_THROW(d.add_job("late"), std::invalid_argument);
  EXPECT_THROW(d.add_edge(0, 1, 1.0), std::invalid_argument);
}

TEST(Dag, AccessorsRequireFinalize) {
  Dag d;
  d.add_job("a");
  EXPECT_THROW((void)d.topological_order(), std::invalid_argument);
  EXPECT_THROW((void)d.entry_jobs(), std::invalid_argument);
}

TEST(Dag, FinalizeIsIdempotent) {
  Dag d = diamond();
  d.finalize();
  EXPECT_EQ(d.job_count(), 4u);
}

TEST(Dag, OperationsListedInFirstAppearanceOrder) {
  const Dag d = diamond();
  EXPECT_EQ(d.operations(),
            (std::vector<std::string>{"op1", "op2", "op3"}));
}

TEST(DagAlgorithms, CriticalPathOfDiamond) {
  const Dag d = diamond();
  const std::vector<double> node_cost{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> edge_cost{10.0, 20.0, 5.0, 1.0};
  const CriticalPath cp = critical_path(d, node_cost, edge_cost);
  // a -> c -> e: 1 + 20 + 3 + 1 + 4 = 29 vs a -> b -> e: 1+10+2+5+4 = 22.
  EXPECT_DOUBLE_EQ(cp.length, 29.0);
  EXPECT_EQ(cp.path, (std::vector<JobId>{0, 2, 3}));
}

TEST(DagAlgorithms, LevelsAndWidths) {
  const Dag d = diamond();
  EXPECT_EQ(levels(d), (std::vector<std::uint32_t>{0, 1, 1, 2}));
  EXPECT_EQ(level_widths(d), (std::vector<std::uint32_t>{1, 2, 1}));
  EXPECT_EQ(max_parallelism(d), 2u);
}

TEST(DagAlgorithms, Reachability) {
  const Dag d = diamond();
  EXPECT_TRUE(reaches(d, 0, 3));
  EXPECT_TRUE(reaches(d, 1, 3));
  EXPECT_FALSE(reaches(d, 1, 2));
  EXPECT_TRUE(reaches(d, 2, 2));
}

TEST(DagAlgorithms, SampleDagShape) {
  const auto scenario = workloads::sample_scenario();
  EXPECT_EQ(scenario.dag.job_count(), 10u);
  EXPECT_EQ(scenario.dag.edge_count(), 15u);
  EXPECT_EQ(scenario.dag.entry_jobs(), (std::vector<JobId>{0}));
  EXPECT_EQ(scenario.dag.exit_jobs(), (std::vector<JobId>{9}));
  EXPECT_EQ(max_parallelism(scenario.dag), 5u);
}

TEST(DagIo, RoundTripPreservesEverything) {
  const Dag original = diamond();
  const std::string text = write_dag_string(original);
  const Dag parsed = read_dag_string(text);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.job_count(), original.job_count());
  ASSERT_EQ(parsed.edge_count(), original.edge_count());
  for (JobId i = 0; i < original.job_count(); ++i) {
    EXPECT_EQ(parsed.job(i).name, original.job(i).name);
    EXPECT_EQ(parsed.job(i).operation, original.job(i).operation);
  }
  for (std::size_t e = 0; e < original.edge_count(); ++e) {
    EXPECT_EQ(parsed.edges()[e].from, original.edges()[e].from);
    EXPECT_EQ(parsed.edges()[e].to, original.edges()[e].to);
    EXPECT_DOUBLE_EQ(parsed.edges()[e].data, original.edges()[e].data);
  }
}

TEST(DagIo, ParsesCommentsAndBlankLines) {
  const Dag d = read_dag_string(
      "# a comment\n"
      "dag tiny\n"
      "\n"
      "job 0 start boot   # trailing comment\n"
      "job 1 end shutdown\n"
      "edge 0 1 3.5\n");
  EXPECT_EQ(d.name(), "tiny");
  EXPECT_EQ(d.job_count(), 2u);
  EXPECT_DOUBLE_EQ(d.data(0, 1), 3.5);
}

TEST(DagIo, RejectsMalformedInput) {
  EXPECT_THROW(read_dag_string("job zero a b\n"), std::invalid_argument);
  EXPECT_THROW(read_dag_string("dag x\njob 1 late op\n"),
               std::invalid_argument);
  EXPECT_THROW(read_dag_string("what 1 2\n"), std::invalid_argument);
  EXPECT_THROW(read_dag_string("dag x\ndag y\n"), std::invalid_argument);
}

TEST(DagDot, EmitsNodesAndLabeledEdges) {
  const std::string dot = to_dot(diamond());
  EXPECT_NE(dot.find("digraph \"diamond\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"20.0\""), std::string::npos);
}

}  // namespace
}  // namespace aheft::dag
