#include "helpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "support/rng.h"
#include "workloads/random_dag.h"

namespace aheft::test {

RandomCase make_random_case(std::uint64_t seed,
                            const RandomCaseOptions& options) {
  RngStream rng(seed);
  workloads::RandomDagParams params;
  params.jobs = options.jobs;
  params.ccr = options.ccr;
  params.out_degree = options.out_degree;
  RngStream dag_stream = rng.child("dag");
  workloads::Workload workload =
      workloads::generate_random_workload(params, dag_stream);

  workloads::ResourceDynamics dynamics{options.initial_resources,
                                       options.interval, options.fraction};
  grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, options.horizon);
  grid::MachineModel model = workloads::build_machine_model(
      workload, pool.universe_size(), options.beta, mix64(seed, 17));
  return RandomCase{std::move(workload), std::move(pool), std::move(model)};
}

void expect_bit_identical(const core::Schedule& a, const core::Schedule& b) {
  ASSERT_EQ(a.job_count(), b.job_count());
  for (dag::JobId i = 0; i < a.job_count(); ++i) {
    const core::Assignment& x = a.assignment(i);
    const core::Assignment& y = b.assignment(i);
    EXPECT_EQ(x.resource, y.resource) << "job " << i;
    EXPECT_EQ(x.start, y.start) << "job " << i;
    EXPECT_EQ(x.finish, y.finish) << "job " << i;
  }
}

void expect_valid_trace(const sim::TraceRecorder& trace, const dag::Dag& dag,
                        const grid::CostProvider& costs,
                        const grid::ResourcePool& pool) {
  // Group compute intervals per job; a job may have cancelled partial runs
  // before its completed one, which is chronologically last.
  std::map<std::uint32_t, std::vector<sim::TraceInterval>> by_job;
  std::map<std::uint32_t, std::vector<sim::TraceInterval>> by_resource;
  for (const sim::TraceInterval& interval : trace.intervals()) {
    if (interval.kind != sim::IntervalKind::kCompute) {
      continue;
    }
    by_job[interval.job].push_back(interval);
    by_resource[interval.resource].push_back(interval);
  }

  ASSERT_EQ(by_job.size(), dag.job_count()) << "some job never computed";

  // The completed run of each job: last interval, exact duration, inside
  // the resource's availability window.
  std::map<std::uint32_t, sim::TraceInterval> completed;
  for (auto& [job, intervals] : by_job) {
    std::stable_sort(intervals.begin(), intervals.end(),
                     [](const sim::TraceInterval& a,
                        const sim::TraceInterval& b) {
                       return a.start < b.start;
                     });
    const sim::TraceInterval& last = intervals.back();
    const double w = costs.compute_cost(last.job, last.resource);
    EXPECT_TRUE(sim::time_eq(last.end - last.start, w))
        << "job " << dag.job(last.job).name
        << " completed run duration " << (last.end - last.start)
        << " != cost " << w;
    const grid::Resource& machine = pool.resource(last.resource);
    EXPECT_TRUE(sim::time_ge(last.start, machine.arrival));
    EXPECT_TRUE(sim::time_le(last.end, machine.departure));
    completed.emplace(job, last);
  }

  // Per-resource disjointness over all runs (including cancelled ones).
  for (auto& [resource, intervals] : by_resource) {
    std::stable_sort(intervals.begin(), intervals.end(),
                     [](const sim::TraceInterval& a,
                        const sim::TraceInterval& b) {
                       return a.start < b.start;
                     });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_TRUE(sim::time_le(intervals[i - 1].end, intervals[i].start))
          << "overlap on resource " << pool.resource(resource).name;
    }
  }

  // Precedence + minimum transfer latency: every run of a consumer starts
  // after each producer finished, plus the link cost when the consumer ran
  // on a different resource than the producer (any staging path costs at
  // least one direct transfer).
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const dag::Edge& edge = dag.edges()[e];
    const sim::TraceInterval& producer = completed.at(edge.from);
    for (const sim::TraceInterval& run : by_job.at(edge.to)) {
      sim::Time earliest = producer.end;
      if (run.resource != producer.resource) {
        earliest += costs.comm_cost(edge, producer.resource, run.resource);
      }
      EXPECT_TRUE(sim::time_ge(run.start, earliest))
          << dag.job(edge.to).name << " started at " << run.start
          << " before input from " << dag.job(edge.from).name
          << " could arrive at " << earliest;
    }
  }
}

}  // namespace aheft::test
