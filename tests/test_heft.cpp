// HEFT and upward-rank tests, anchored on the paper's published example.
#include <gtest/gtest.h>

#include "core/heft.h"
#include "core/ranking.h"
#include "core/schedule.h"
#include "helpers.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

class SampleHeft : public ::testing::Test {
 protected:
  workloads::SampleScenario scenario_ = workloads::sample_scenario();
  std::vector<grid::ResourceId> initial_{0, 1, 2};
};

TEST_F(SampleHeft, UpwardRanksMatchPublishedValues) {
  const auto ranks =
      upward_ranks(scenario_.dag, scenario_.model, initial_);
  // Values from Topcuoglu et al. [19], Table 4 (same DAG and costs).
  const std::vector<double> expected{108.0,   77.0,     80.0,  80.0, 69.0,
                                     63.3333, 42.6667, 35.6667, 44.3333,
                                     14.6667};
  ASSERT_EQ(ranks.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(ranks[i], expected[i], 1e-3) << "rank of n" << i + 1;
  }
}

TEST_F(SampleHeft, RankOrderMatchesPublishedOrder) {
  const auto ranks =
      upward_ranks(scenario_.dag, scenario_.model, initial_);
  const auto order = rank_order(ranks);
  const std::vector<dag::JobId> expected{0, 2, 3, 1, 4, 5, 8, 6, 7, 9};
  EXPECT_EQ(order, expected);  // n1 n3 n4 n2 n5 n6 n9 n7 n8 n10
}

TEST_F(SampleHeft, ReproducesPublishedMakespan80) {
  const Schedule s =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
  EXPECT_DOUBLE_EQ(s.makespan(), 80.0);
  validate_static(s, scenario_.dag, scenario_.model, scenario_.pool);
}

TEST_F(SampleHeft, ReproducesPublishedPlacements) {
  const Schedule s =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
  // Fig. 5(a): r3 runs n1,n3,n5,n7; r2 runs n4,n6,n9,n10; r1 runs n2,n8.
  EXPECT_EQ(s.assignment(0).resource, 2u);
  EXPECT_DOUBLE_EQ(s.assignment(0).start, 0.0);
  EXPECT_EQ(s.assignment(2).resource, 2u);
  EXPECT_DOUBLE_EQ(s.assignment(2).start, 9.0);
  EXPECT_EQ(s.assignment(3).resource, 1u);
  EXPECT_DOUBLE_EQ(s.assignment(3).start, 18.0);
  EXPECT_EQ(s.assignment(1).resource, 0u);
  EXPECT_EQ(s.assignment(9).resource, 1u);
  EXPECT_DOUBLE_EQ(s.assignment(9).start, 73.0);
}

TEST_F(SampleHeft, IgnoresNotYetAvailableResources) {
  // r4 arrives at t=15; static HEFT at t=0 must not use it.
  const Schedule s =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
  for (dag::JobId i = 0; i < 10; ++i) {
    EXPECT_NE(s.assignment(i).resource, 3u);
  }
}

TEST_F(SampleHeft, GreedyIsNotMonotoneInResources) {
  // A classic list-scheduling anomaly: with r4 present from t=0 greedy
  // HEFT routes n5 onto it, which cascades into makespan 87 — *worse* than
  // the 3-resource plan (80). This is exactly why AHEFT's adoption filter
  // (Fig. 2 line 7) matters: a candidate plan must prove itself better
  // before it replaces the incumbent.
  const auto available = workloads::sample_scenario(0.0);
  const Schedule s =
      heft_schedule(available.dag, available.model, available.pool);
  validate_static(s, available.dag, available.model, available.pool);
  EXPECT_DOUBLE_EQ(s.makespan(), 87.0);
  EXPECT_EQ(s.assignment(4).resource, 3u);  // n5 lured onto r4
}

TEST_F(SampleHeft, EndOfQueuePolicyIsValidAndNoBetter) {
  SchedulerConfig config;
  config.slot_policy = SlotPolicy::kEndOfQueue;
  const Schedule s =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool, config);
  validate_static(s, scenario_.dag, scenario_.model, scenario_.pool);
  const Schedule insertion =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
  EXPECT_GE(s.makespan() + sim::kTimeEpsilon, insertion.makespan());
}

TEST_F(SampleHeft, SingleResourceSerializesEverything) {
  const Schedule s = heft_schedule(scenario_.dag, scenario_.model,
                                   scenario_.pool, {0});
  validate_static(s, scenario_.dag, scenario_.model, scenario_.pool);
  double total = 0.0;
  for (dag::JobId i = 0; i < 10; ++i) {
    EXPECT_EQ(s.assignment(i).resource, 0u);
    total += scenario_.model.compute_cost(i, 0);
  }
  // No communication on a single resource: makespan = sum of costs.
  EXPECT_DOUBLE_EQ(s.makespan(), total);
}

TEST_F(SampleHeft, DelayedClockShiftsSchedule) {
  const Schedule s = heft_schedule(scenario_.dag, scenario_.model,
                                   scenario_.pool, {}, /*clock=*/100.0);
  for (dag::JobId i = 0; i < 10; ++i) {
    EXPECT_GE(s.assignment(i).start, 100.0);
  }
}

TEST(HeftRanking, DownwardRanksOfSample) {
  const auto scenario = workloads::sample_scenario();
  const std::vector<grid::ResourceId> initial{0, 1, 2};
  const auto down = downward_ranks(scenario.dag, scenario.model, initial);
  EXPECT_DOUBLE_EQ(down[0], 0.0);  // entry job
  // rankd(n2) = w̄(n1) + c(1,2) = 13 + 18 = 31.
  EXPECT_NEAR(down[1], 31.0, 1e-9);
  // Exit job dominates: rankd + ranku is maximal on the critical path.
}

TEST(HeftRanking, RanksNeedResources) {
  const auto scenario = workloads::sample_scenario();
  EXPECT_THROW(upward_ranks(scenario.dag, scenario.model, {}),
               std::invalid_argument);
}

// The compat fence of contention-aware planning: a default-constructed
// (empty) AvailabilityView must leave every plan bit-identical to the
// view-less pass (test::expect_bit_identical).
TEST_F(SampleHeft, EmptyViewIsBitIdenticalOnTheFig5Example) {
  const AvailabilityView empty;
  const Schedule blind =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
  const Schedule viewed =
      heft_schedule(scenario_.dag, scenario_.model, scenario_.pool, {},
                    sim::kTimeZero, &empty);
  test::expect_bit_identical(blind, viewed);
  EXPECT_DOUBLE_EQ(viewed.makespan(), 80.0);
}

// ----- property sweep: HEFT output is always a valid static schedule -----

class HeftProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeftProperty, ProducesValidStaticSchedules) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const Schedule s = heft_schedule(c.workload.dag, c.model, c.pool);
  validate_static(s, c.workload.dag, c.model, c.pool);
  EXPECT_GT(s.makespan(), 0.0);
}

TEST_P(HeftProperty, EndOfQueueAlsoValid) {
  const test::RandomCase c = test::make_random_case(GetParam());
  SchedulerConfig config;
  config.slot_policy = SlotPolicy::kEndOfQueue;
  const Schedule s = heft_schedule(c.workload.dag, c.model, c.pool, config);
  validate_static(s, c.workload.dag, c.model, c.pool);
}

TEST_P(HeftProperty, MoreResourcesNeverHurtThePlan) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const auto t0 = c.pool.available_at(0.0);
  std::vector<grid::ResourceId> halved(
      t0.begin(), t0.begin() + static_cast<std::ptrdiff_t>((t0.size() + 1) / 2));
  const Schedule small =
      heft_schedule(c.workload.dag, c.model, c.pool, halved);
  const Schedule big = heft_schedule(c.workload.dag, c.model, c.pool, t0);
  // Greedy HEFT is not formally monotone, but with the insertion policy a
  // superset of resources should essentially never lose; allow 5% slack.
  EXPECT_LE(big.makespan(), small.makespan() * 1.05);
}

TEST_P(HeftProperty, EmptyViewIsBitIdentical) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const AvailabilityView empty;
  for (const SlotPolicy policy :
       {SlotPolicy::kInsertion, SlotPolicy::kEndOfQueue}) {
    SchedulerConfig config;
    config.slot_policy = policy;
    const Schedule blind =
        heft_schedule(c.workload.dag, c.model, c.pool, config);
    const Schedule viewed = heft_schedule(c.workload.dag, c.model, c.pool,
                                          config, sim::kTimeZero, &empty);
    test::expect_bit_identical(blind, viewed);
  }
}

TEST_P(HeftProperty, ForeignLoadDelaysOrMovesButStaysValid) {
  // A non-empty view must still yield structurally valid plans, and
  // blocking every machine over [0, T) can only push the makespan out.
  const test::RandomCase c = test::make_random_case(GetParam());
  AvailabilityView view(0.0);
  for (const grid::ResourceId r : c.pool.available_at(0.0)) {
    view.add_busy(r, 0.0, 40.0);
  }
  view.normalize();
  const Schedule blind = heft_schedule(c.workload.dag, c.model, c.pool);
  const Schedule viewed = heft_schedule(c.workload.dag, c.model, c.pool, {},
                                        sim::kTimeZero, &view);
  validate_structure(viewed, c.workload.dag, c.model, c.pool);
  EXPECT_GE(viewed.makespan(), blind.makespan());
  // No job of the initial pool may start inside the foreign block.
  for (dag::JobId i = 0; i < c.workload.dag.job_count(); ++i) {
    const Assignment& a = viewed.assignment(i);
    if (c.pool.resource(a.resource).arrival == 0.0) {
      EXPECT_GE(a.start, 40.0) << "job " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeftProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace aheft::core
