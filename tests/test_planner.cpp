// Planner loop tests: the generic adaptive rescheduling algorithm (paper
// Fig. 2) coupled to the executor.
#include <gtest/gtest.h>

#include "core/heft.h"
#include "core/strategy.h"
#include "core/planner.h"
#include "grid/predictor.h"
#include "helpers.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

TEST(Planner, StaticRunRealizesTheInitialPlan) {
  const auto scenario = workloads::sample_scenario(15.0);
  SessionEnvironment env;
  env.pool = &scenario.pool;
  const StrategyOutcome outcome =
      run_strategy(StrategyKind::kStaticHeft, scenario.dag, scenario.model,
                   scenario.model, env);
  EXPECT_DOUBLE_EQ(outcome.makespan, 80.0);
  EXPECT_EQ(outcome.adoptions, 0u);
  EXPECT_EQ(outcome.evaluations, 0u);
}

TEST(Planner, Fig5AdoptionRealizesPublished76) {
  const auto scenario = workloads::sample_scenario(15.0);
  PlannerConfig config;
  config.scheduler.order_candidates = 8;  // see DESIGN.md: one tie swap
  AdaptivePlanner planner(scenario.dag, scenario.model, scenario.model,
                          scenario.pool, config);
  const AdaptiveResult result = planner.run();
  EXPECT_DOUBLE_EQ(result.initial_makespan, 80.0);
  EXPECT_DOUBLE_EQ(result.makespan, 76.0);
  EXPECT_EQ(result.adoptions, 1u);
  EXPECT_EQ(result.evaluations, 1u);
  ASSERT_EQ(result.decisions.size(), 1u);
  EXPECT_TRUE(result.decisions[0].adopted);
  EXPECT_DOUBLE_EQ(result.decisions[0].time, 15.0);
  EXPECT_DOUBLE_EQ(result.decisions[0].current_makespan, 80.0);
  EXPECT_DOUBLE_EQ(result.decisions[0].candidate_makespan, 76.0);
  EXPECT_EQ(result.decisions[0].event, "resource-arrival");
}

TEST(Planner, StrictTransfersDeclineNonImprovingReschedule) {
  const auto scenario = workloads::sample_scenario(15.0);
  PlannerConfig config;
  config.scheduler.transfer_policy = TransferPolicy::kRetransmitFromClock;
  AdaptivePlanner planner(scenario.dag, scenario.model, scenario.model,
                          scenario.pool, config);
  const AdaptiveResult result = planner.run();
  EXPECT_DOUBLE_EQ(result.makespan, 80.0);
  EXPECT_EQ(result.adoptions, 0u);
  EXPECT_EQ(result.evaluations, 1u);
  ASSERT_EQ(result.decisions.size(), 1u);
  EXPECT_FALSE(result.decisions[0].adopted);
}

TEST(Planner, AdoptionThresholdSuppressesSmallGains) {
  const auto scenario = workloads::sample_scenario(15.0);
  PlannerConfig config;
  config.scheduler.order_candidates = 8;
  config.scheduler.adoption_threshold = 0.10;  // demand >10% improvement
  AdaptivePlanner planner(scenario.dag, scenario.model, scenario.model,
                          scenario.pool, config);
  const AdaptiveResult result = planner.run();
  // 76 is only a 5% improvement over 80: rejected under the threshold.
  EXPECT_DOUBLE_EQ(result.makespan, 80.0);
  EXPECT_EQ(result.adoptions, 0u);
}

TEST(Planner, EventPerPoolChange) {
  const auto c = test::make_random_case(1234);
  PlannerConfig config;
  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, config);
  const AdaptiveResult result = planner.run();
  // Every arrival before completion is evaluated; none after.
  const auto changes =
      c.pool.change_times(sim::kTimeZero, result.makespan);
  EXPECT_LE(result.evaluations, changes.size());
  EXPECT_EQ(result.decisions.size(), result.evaluations);
}

TEST(Planner, ResourceDepartureForcesAdoption) {
  // r1 departs at t=7, too early for the chain a -> b to finish there, so
  // the initial plan already routes b to r2; the departure event then
  // forces a (no-op) adoption while b is mid-execution on r2.
  dag::Dag graph;
  const dag::JobId a = graph.add_job("a");
  const dag::JobId b = graph.add_job("b");
  graph.add_edge(a, b, 1.0);
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "r1", .arrival = 0.0});
  pool.add(grid::Resource{.name = "r2", .arrival = 0.0});
  pool.set_departure(0, 7.0);
  grid::MachineModel model(2, 2);
  model.set_compute_cost(a, 0, 5.0);
  model.set_compute_cost(a, 1, 6.0);
  model.set_compute_cost(b, 0, 5.0);
  model.set_compute_cost(b, 1, 20.0);

  AdaptivePlanner planner(graph, model, model, pool, {});
  const AdaptiveResult result = planner.run();
  ASSERT_FALSE(result.decisions.empty());
  EXPECT_TRUE(result.decisions.back().forced);
  EXPECT_EQ(result.decisions.back().event, "resource-departure");
  EXPECT_GE(result.adoptions, 1u);
  // b cannot fit on r1 before its departure, so it runs on r2.
  EXPECT_EQ(result.final_schedule.assignment(b).resource, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 26.0);  // 5 + 1 (transfer) + 20
}

TEST(Planner, HistoryRepositoryCollectsActuals) {
  const auto scenario = workloads::sample_scenario(15.0);
  grid::PerformanceHistoryRepository history;
  PlannerConfig config;
  AdaptivePlanner planner(scenario.dag, scenario.model, scenario.model,
                          scenario.pool, config, nullptr, &history);
  (void)planner.run();
  EXPECT_EQ(history.total_observations(), 10u);
  // All sample jobs share one operation; r3 ran n1 (9), n3 (19), ...
  EXPECT_TRUE(history.estimate("sample", 2).has_value());
}

TEST(Planner, VarianceEventsTriggerEvaluations) {
  const auto c = test::make_random_case(777);
  // Estimates are 30% off from reality: the monitor should fire.
  const grid::NoisyPredictor estimates(c.model, 0.30, 99);
  PlannerConfig config;
  config.react_to_pool_changes = false;
  config.react_to_variance = true;
  config.variance_threshold = 0.05;
  AdaptivePlanner planner(c.workload.dag, estimates, c.model, c.pool,
                          config);
  const AdaptiveResult result = planner.run();
  EXPECT_GT(result.evaluations, 0u);
  for (const AdoptionRecord& record : result.decisions) {
    EXPECT_EQ(record.event, "performance-variance");
  }
}

TEST(Planner, NoVarianceEventsUnderPerfectPrediction) {
  const auto c = test::make_random_case(778);
  PlannerConfig config;
  config.react_to_pool_changes = false;
  config.react_to_variance = true;
  config.variance_threshold = 0.05;
  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, config);
  const AdaptiveResult result = planner.run();
  EXPECT_EQ(result.evaluations, 0u);
}

// ----- contention-aware planning ------------------------------------------

TEST(Planner, ContentionAwareSoloMatchesBlindAndStampsFreshSnapshots) {
  // A solo session's ledger carries no foreign load, so the availability
  // view is always empty and the contention-aware run must realize the
  // exact blind outcome — while still stamping every decision with a
  // fresh snapshot time.
  const auto scenario = workloads::sample_scenario(15.0);
  PlannerConfig blind;
  blind.scheduler.order_candidates = 8;
  PlannerConfig aware = blind;
  aware.contention_aware = true;

  AdaptivePlanner blind_planner(scenario.dag, scenario.model, scenario.model,
                                scenario.pool, blind);
  const AdaptiveResult a = blind_planner.run();
  AdaptivePlanner aware_planner(scenario.dag, scenario.model, scenario.model,
                                scenario.pool, aware);
  const AdaptiveResult b = aware_planner.run();

  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(b.makespan, 76.0);
  EXPECT_EQ(a.adoptions, b.adoptions);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.decisions[i].candidate_makespan,
                     b.decisions[i].candidate_makespan);
    EXPECT_EQ(a.decisions[i].adopted, b.decisions[i].adopted);
    // Blind decisions carry no snapshot; aware decisions carry one taken
    // at the evaluation instant.
    EXPECT_DOUBLE_EQ(a.decisions[i].view_snapshot, -1.0);
    EXPECT_DOUBLE_EQ(b.decisions[i].view_snapshot, b.decisions[i].time);
  }
}

TEST(Planner, ReEvaluationSnapshotsAreFresh) {
  // Two identical workflows contend in one session; the second releases
  // mid-flight of the first. Every planner evaluation in the shared run
  // must re-snapshot the ledger at its own instant — a reused (stale)
  // view would surface as view_snapshot != time.
  const auto c = test::make_random_case(4242);
  SessionEnvironment env;
  env.pool = &c.pool;
  PlannerConfig config;
  config.contention_aware = true;

  SimulationSession session(env);
  AdaptivePlanner first(c.workload.dag, c.model, c.model, c.pool, config);
  AdaptivePlanner second(c.workload.dag, c.model, c.model, c.pool, config);
  AdaptiveResult first_result;
  AdaptiveResult second_result;
  bool first_done = false;
  bool second_done = false;
  first.launch(session, sim::kTimeZero, [&](const AdaptiveResult& r) {
    first_result = r;
    first_done = true;
  });
  second.launch(session, 25.0, [&](const AdaptiveResult& r) {
    second_result = r;
    second_done = true;
  });
  session.run();
  ASSERT_TRUE(first_done);
  ASSERT_TRUE(second_done);

  std::size_t stamped = 0;
  for (const AdaptiveResult* result : {&first_result, &second_result}) {
    for (const AdoptionRecord& record : result->decisions) {
      EXPECT_DOUBLE_EQ(record.view_snapshot, record.time);
      ++stamped;
    }
  }
  // The volatile pool guarantees evaluations actually happened.
  EXPECT_GT(stamped, 0u);
}

TEST(Planner, ContentionAwarePlansRouteAroundForeignLoad) {
  // One machine, one competitor occupying it over [0, 50): a blind plan
  // believes the machine is free and predicts an immediate start; a
  // contention-aware plan prices the committed window and predicts the
  // realized post-window start.
  dag::Dag graph;
  const dag::JobId only = graph.add_job("only");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "r1", .arrival = 0.0});
  grid::MachineModel model(1, 1);
  model.set_compute_cost(only, 0, 10.0);

  class Occupier final : public SessionParticipant {};

  for (const bool aware : {false, true}) {
    SessionEnvironment env;
    env.pool = &pool;
    SimulationSession session(env);
    Occupier occupier;
    session.add_participant(&occupier);
    (void)session.acquire(&occupier, 0, 0.0, 50.0, /*tag=*/1);
    session.commit(&occupier, 0, /*tag=*/1, 0.0, 50.0);

    PlannerConfig config;
    config.contention_aware = aware;
    AdaptivePlanner planner(graph, model, model, pool, config);
    AdaptiveResult result;
    bool done = false;
    planner.launch(session, sim::kTimeZero, [&](const AdaptiveResult& r) {
      result = r;
      done = true;
    });
    session.run();
    ASSERT_TRUE(done);
    // Both runs realize the same post-window start (FCFS serializes
    // them), but only the aware plan predicted it.
    EXPECT_DOUBLE_EQ(result.makespan, 60.0);
    EXPECT_DOUBLE_EQ(result.initial_makespan, aware ? 60.0 : 10.0);
  }
}

// ----- the paper's core guarantee, as a property sweep --------------------

struct SweepParam {
  std::uint64_t seed;
  double ccr;
  std::size_t jobs;
};

class PlannerProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PlannerProperty, AheftNeverWorseThanHeftAndRealizesPrediction) {
  const SweepParam param = GetParam();
  test::RandomCaseOptions options;
  options.jobs = param.jobs;
  options.ccr = param.ccr;
  const test::RandomCase c = test::make_random_case(param.seed, options);

  const Schedule heft = heft_schedule(c.workload.dag, c.model, c.pool);
  PlannerConfig config;
  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, config);
  const AdaptiveResult result = planner.run();

  // Initial plan matches static HEFT.
  EXPECT_NEAR(result.initial_makespan, heft.makespan(), 1e-9);
  // Adaptive rescheduling adopts only strict improvements, so under
  // accurate estimates the realized makespan never exceeds static HEFT.
  EXPECT_LE(result.makespan, heft.makespan() + 1e-6);
  // Each adopted reschedule's prediction is realized exactly.
  if (!result.decisions.empty()) {
    sim::Time last_adopted = result.initial_makespan;
    for (const AdoptionRecord& record : result.decisions) {
      if (record.adopted) {
        EXPECT_LT(record.candidate_makespan, record.current_makespan);
        last_adopted = record.candidate_makespan;
      }
    }
    EXPECT_NEAR(result.makespan, last_adopted, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlannerProperty,
    ::testing::Values(SweepParam{1, 0.1, 20}, SweepParam{2, 1.0, 20},
                      SweepParam{3, 10.0, 20}, SweepParam{4, 0.1, 60},
                      SweepParam{5, 1.0, 60}, SweepParam{6, 10.0, 60},
                      SweepParam{7, 5.0, 40}, SweepParam{8, 0.5, 80},
                      SweepParam{9, 1.0, 100}, SweepParam{10, 5.0, 100}));

}  // namespace
}  // namespace aheft::core
