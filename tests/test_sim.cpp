// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(5.0, [&] { fired.push_back(5); });
  queue.push(1.0, [&] { fired.push_back(1); });
  queue.push(3.0, [&] { fired.push_back(3); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(2.0, [&] { fired.push_back(1); });
  queue.push(2.0, [&] { fired.push_back(2); });
  queue.push(2.0, [&] { fired.push_back(3); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // double cancel reports failure
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.push(1.0, [] {});
  queue.push(4.0, [] {});
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.next_time(), 4.0);
  EXPECT_EQ(queue.live_count(), 1u);
}

TEST(EventQueue, RejectsNullAndInfinite) {
  EventQueue queue;
  EXPECT_THROW(queue.push(1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(queue.push(kTimeInfinity, [] {}), std::invalid_argument);
}

TEST(Simulator, AdvancesClockMonotonically) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.schedule_at(10.0, [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(4.0, [&] {
    stamps.push_back(sim.now());
    sim.schedule_in(2.0, [&] { stamps.push_back(sim.now()); });
  });
  EXPECT_DOUBLE_EQ(sim.run(), 10.0);
  EXPECT_EQ(stamps, (std::vector<Time>{4.0, 6.0, 10.0}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtHorizonAndResumes) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(7.0, [&] { fired.push_back(7); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idles forward to the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 7}));
}

TEST(Simulator, EventAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(2.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Trace, RecordsAndSortsIntervals) {
  TraceRecorder trace;
  trace.record_compute(1, 0, 5.0, 9.0);
  trace.record_compute(0, 0, 0.0, 5.0);
  trace.record_transfer(0, 1, 1, 5.0, 8.0);
  const auto computes = trace.sorted(IntervalKind::kCompute);
  ASSERT_EQ(computes.size(), 2u);
  EXPECT_EQ(computes[0].job, 0u);
  EXPECT_EQ(computes[1].job, 1u);
  const auto transfers = trace.sorted(IntervalKind::kTransfer);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].consumer, 1u);
}

TEST(Trace, RejectsBackwardIntervals) {
  TraceRecorder trace;
  EXPECT_THROW(trace.record_compute(0, 0, 5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(trace.record_transfer(0, 1, 0, 5.0, 4.0),
               std::invalid_argument);
}

TEST(Trace, GanttNamesRowsByResource) {
  TraceRecorder trace;
  trace.record_compute(0, 0, 0.0, 2.0);
  trace.record_compute(1, 1, 2.0, 3.0);
  const std::string gantt = trace.gantt({"a", "b"}, {"r1", "r2"});
  EXPECT_NE(gantt.find("r1"), std::string::npos);
  EXPECT_NE(gantt.find("a[0.0,2.0)"), std::string::npos);
  EXPECT_NE(gantt.find("b[2.0,3.0)"), std::string::npos);
}

TEST(TimeHelpers, ToleranceComparisons) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_eq(1.0, 1.001));
  EXPECT_TRUE(time_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0 + 1e-12, 1.0));
  EXPECT_TRUE(time_ge(5.0, 4.999999999999));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

}  // namespace
}  // namespace aheft::sim
