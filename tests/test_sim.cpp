// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "support/thread_pool.h"

namespace aheft::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(5.0, [&] { fired.push_back(5); });
  queue.push(1.0, [&] { fired.push_back(1); });
  queue.push(3.0, [&] { fired.push_back(3); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.push(2.0, [&] { fired.push_back(1); });
  queue.push(2.0, [&] { fired.push_back(2); });
  queue.push(2.0, [&] { fired.push_back(3); });
  while (!queue.empty()) {
    queue.pop().action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // double cancel reports failure
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  const EventId early = queue.push(1.0, [] {});
  queue.push(4.0, [] {});
  queue.cancel(early);
  EXPECT_DOUBLE_EQ(queue.next_time(), 4.0);
  EXPECT_EQ(queue.live_count(), 1u);
}

TEST(EventQueue, RejectsNullAndInfinite) {
  EventQueue queue;
  EXPECT_THROW(queue.push(1.0, nullptr), std::invalid_argument);
  EXPECT_THROW(queue.push(kTimeInfinity, [] {}), std::invalid_argument);
}

TEST(EventQueue, CancelChurnDoesNotGrowHeapUnbounded) {
  // Regression: cancel() used to leave the heap key behind until skim()
  // reached it, so scheduling-then-cancelling far-future events (the
  // two-phase dynamic hold pattern under churn) grew the heap without
  // bound. One live near event keeps skim() from ever reaching the
  // orphans, forcing the compaction path to do the reclaiming.
  EventQueue queue;
  queue.push(1.0, [] {});
  for (int i = 0; i < 100000; ++i) {
    const EventId id = queue.push(1e9 + i, [] {});
    queue.cancel(id);
    EXPECT_LE(queue.key_count(),
              std::max(2 * queue.live_count(), EventQueue::kCompactionFloor))
        << "orphaned heap keys exceeded the compaction bound at churn " << i;
  }
  EXPECT_EQ(queue.live_count(), 1u);
  EXPECT_DOUBLE_EQ(queue.next_time(), 1.0);
}

TEST(EventQueue, CompactionPreservesPopOrder) {
  // Interleave live and cancelled entries so compaction (triggered by
  // the cancels) has to rebuild the heap mid-stream, then verify the
  // drain is still strict (time, insertion) order.
  EventQueue queue;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 300; ++i) {
    const double when = static_cast<double>((i * 7919) % 100);
    if (i % 2 == 0) {
      queue.push(when, [&fired, i] { fired.push_back(i); });
    } else {
      doomed.push_back(queue.push(when + 1000.0, [] {}));
    }
  }
  for (const EventId id : doomed) {
    EXPECT_TRUE(queue.cancel(id));
  }
  double last_time = -1.0;
  while (!queue.empty()) {
    const auto event = queue.pop();
    EXPECT_GE(event.time, last_time);
    last_time = event.time;
    event.action();
  }
  EXPECT_EQ(fired.size(), 150u);
  // Same-time ties broke by insertion id: within each timestamp the
  // recorded indices must ascend.
  for (std::size_t i = 1; i < fired.size(); ++i) {
    const double t_prev = static_cast<double>((fired[i - 1] * 7919) % 100);
    const double t_cur = static_cast<double>((fired[i] * 7919) % 100);
    if (t_prev == t_cur) {
      EXPECT_LT(fired[i - 1], fired[i]);
    }
  }
}

TEST(Simulator, AdvancesClockMonotonically) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.schedule_at(10.0, [&] { stamps.push_back(sim.now()); });
  sim.schedule_at(4.0, [&] {
    stamps.push_back(sim.now());
    sim.schedule_in(2.0, [&] { stamps.push_back(sim.now()); });
  });
  EXPECT_DOUBLE_EQ(sim.run(), 10.0);
  EXPECT_EQ(stamps, (std::vector<Time>{4.0, 6.0, 10.0}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtHorizonAndResumes) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(7.0, [&] { fired.push_back(7); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // idles forward to the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 7}));
}

TEST(Simulator, EventAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(2.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(ShardedSimulator, SingleShardMatchesSerialLoop) {
  // The compat fence: shards=1 must execute the exact serial loop.
  Simulator serial;
  ShardedSimulator sharded(1);
  std::vector<int> serial_fired;
  std::vector<int> sharded_fired;
  for (Simulator* sim : {&serial, &sharded.shard(0)}) {
    std::vector<int>* out =
        sim == &serial ? &serial_fired : &sharded_fired;
    sim->schedule_at(2.0, [out, sim] {
      out->push_back(2);
      sim->schedule_in(1.0, [out] { out->push_back(3); });
    });
    sim->schedule_at(2.0, [out] { out->push_back(-2); });
    sim->schedule_at(1.0, [out] { out->push_back(1); });
  }
  const Time serial_end = serial.run();
  const Time sharded_end = sharded.run(nullptr);
  EXPECT_EQ(serial_fired, sharded_fired);
  EXPECT_DOUBLE_EQ(serial_end, sharded_end);
  EXPECT_EQ(serial.executed_events(), sharded.executed_events());
  EXPECT_EQ(sharded.epochs(), 0u);  // epoch machinery bypassed
}

TEST(ShardedSimulator, ShardsDrainSameTimeEventsInOneEpoch) {
  ShardedSimulator sharded(3);
  std::vector<std::vector<int>> fired(3);
  for (std::size_t s = 0; s < 3; ++s) {
    auto* out = &fired[s];
    sharded.shard(s).schedule_at(1.0, [out] { out->push_back(1); });
    sharded.shard(s).schedule_at(2.0, [out] { out->push_back(2); });
  }
  ThreadPool pool(2);
  EXPECT_DOUBLE_EQ(sharded.run(&pool), 2.0);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(fired[s], (std::vector<int>{1, 2})) << "shard " << s;
  }
  // One epoch per distinct timestamp: all shards' t=1 events ran in the
  // first epoch, all t=2 events in the second.
  EXPECT_EQ(sharded.epochs(), 2u);
  EXPECT_EQ(sharded.executed_events(), 6u);
}

TEST(ShardedSimulator, CrossShardPostsApplyAtBarriersDeterministically) {
  // Shards 0 and 1 each post to shard 2 from events at t=1; both runs
  // must deliver in (time, origin, sequence) order regardless of which
  // worker drains which shard first.
  const auto run_once = [](ThreadPool* pool) {
    ShardedSimulator sharded(3);
    std::vector<int> delivered;
    for (std::size_t s : {std::size_t{0}, std::size_t{1}}) {
      sharded.shard(s).schedule_at(1.0, [&sharded, &delivered, s] {
        // Two messages per origin: sequence order within an origin must
        // hold as well as origin order across shards.
        sharded.post(2, 5.0, [&delivered, s] {
          delivered.push_back(static_cast<int>(s) * 10);
        });
        sharded.post(2, 5.0, [&delivered, s] {
          delivered.push_back(static_cast<int>(s) * 10 + 1);
        });
      });
    }
    sharded.run(pool);
    return delivered;
  };
  ThreadPool pool(3);
  const std::vector<int> inline_order = run_once(nullptr);
  EXPECT_EQ(inline_order, (std::vector<int>{0, 1, 10, 11}));
  for (int repeat = 0; repeat < 10; ++repeat) {
    EXPECT_EQ(run_once(&pool), inline_order) << "repeat " << repeat;
  }
}

TEST(ShardedSimulator, LateCrossShardPostClampsToTargetClock) {
  // Shard 1's clock reaches t=9 in the epoch where shard 0 posts a
  // message timestamped t=2 (conservative delivery: the message cannot
  // rewind the target, it lands at the target's clock instead).
  ShardedSimulator sharded(2);
  Time delivered_at = -1.0;
  sharded.shard(1).schedule_at(9.0, [] {});
  sharded.shard(0).schedule_at(9.0, [&sharded, &delivered_at] {
    sharded.post(1, 2.0, [&sharded, &delivered_at] {
      delivered_at = sharded.shard(1).now();
    });
  });
  sharded.run(nullptr);
  EXPECT_DOUBLE_EQ(delivered_at, 9.0);
  EXPECT_EQ(sharded.staged_messages(), 1u);
  EXPECT_GE(sharded.staging_high_water(), 1u);
}

TEST(ShardedSimulator, FixedEpochWidthCoalescesBarriers) {
  // Events at t=1..4 on both shards: width 0 takes one barrier per
  // distinct timestamp, a width of 1.5 folds neighbouring timestamps
  // into shared epochs without changing any shard's execution order.
  const auto run_once = [](Time width) {
    ShardedSimulator sharded(2, width);
    std::vector<std::vector<int>> fired(2);
    for (std::size_t s = 0; s < 2; ++s) {
      auto* out = &fired[s];
      for (int t = 1; t <= 4; ++t) {
        sharded.shard(s).schedule_at(static_cast<Time>(t),
                                     [out, t] { out->push_back(t); });
      }
    }
    sharded.run(nullptr);
    return std::pair{sharded.epochs(), fired};
  };
  const auto [narrow_epochs, narrow_fired] = run_once(0.0);
  const auto [wide_epochs, wide_fired] = run_once(1.5);
  EXPECT_EQ(narrow_epochs, 4u);
  EXPECT_LT(wide_epochs, narrow_epochs);
  EXPECT_EQ(narrow_fired, wide_fired);
}

TEST(ShardedSimulator, AdaptiveWidthLooksAheadToTheSecondFrontier) {
  // Shard 0 is dense (t=1..4), shard 1 wakes at t=100. Width 0 pays a
  // barrier per timestamp; the adaptive lookahead sees the second
  // frontier at t=100 and drains everything up to it in one epoch.
  const auto run_once = [](const EpochConfig& epoch) {
    ShardedSimulator sharded(2, epoch);
    std::vector<int> fired;
    for (int t = 1; t <= 4; ++t) {
      sharded.shard(0).schedule_at(static_cast<Time>(t),
                                   [&fired, t] { fired.push_back(t); });
    }
    sharded.shard(1).schedule_at(100.0, [&fired] { fired.push_back(100); });
    sharded.run(nullptr);
    return std::pair{sharded.epochs(), fired};
  };
  const auto [fixed_epochs, fixed_fired] = run_once(EpochConfig{});
  const auto [adaptive_epochs, adaptive_fired] =
      run_once(EpochConfig{.width = 0.0, .adaptive = true});
  EXPECT_EQ(fixed_epochs, 5u);
  EXPECT_EQ(adaptive_epochs, 1u);  // lookahead reaches t=100 inclusive
  EXPECT_EQ(fixed_fired, adaptive_fired);
}

TEST(ShardedSimulator, AdaptiveMaxWidthClampsTheLookahead) {
  // Same shape, but the lookahead is capped at 10: the first epoch stops
  // at t=1+10 and a second epoch handles the t=100 frontier.
  ShardedSimulator sharded(
      2, EpochConfig{.width = 0.0, .adaptive = true, .max_width = 10.0});
  int fired = 0;
  for (int t = 1; t <= 4; ++t) {
    sharded.shard(0).schedule_at(static_cast<Time>(t), [&fired] { ++fired; });
  }
  sharded.shard(1).schedule_at(100.0, [&fired] { ++fired; });
  sharded.run(nullptr);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sharded.epochs(), 2u);
}

TEST(ShardedSimulator, AdaptiveSingleActiveShardDrainsToMaxWidth) {
  // Only one shard has pending events, so nothing another shard could
  // observe constrains the epoch: the lookahead is max_width outright
  // (infinite by default — the whole backlog drains in one epoch).
  ShardedSimulator sharded(2, EpochConfig{.width = 0.0, .adaptive = true});
  int fired = 0;
  for (const Time t : {1.0, 50.0, 900.0}) {
    sharded.shard(0).schedule_at(t, [&fired] { ++fired; });
  }
  sharded.run(nullptr);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sharded.epochs(), 1u);
}

TEST(ShardedSimulator, EpochConfigRejectsBadWidths) {
  EXPECT_THROW(ShardedSimulator(2, EpochConfig{.width = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(ShardedSimulator(2, EpochConfig{.width = kTimeInfinity}),
               std::invalid_argument);
  EXPECT_THROW(
      ShardedSimulator(2, EpochConfig{.width = 0.0, .adaptive = true,
                                      .max_width = -2.0}),
      std::invalid_argument);
}

TEST(ShardedSimulator, BarrierHookRunsOncePerEpoch) {
  ShardedSimulator sharded(2);
  int barriers = 0;
  sharded.set_barrier_hook([&barriers] { ++barriers; });
  for (int t = 1; t <= 3; ++t) {
    sharded.shard(0).schedule_at(static_cast<Time>(t), [] {});
  }
  sharded.run(nullptr);
  EXPECT_EQ(barriers, static_cast<int>(sharded.epochs()));
  EXPECT_EQ(barriers, 3);

  // The single-shard serial fast path has no barriers, so the hook must
  // never fire there.
  ShardedSimulator serial(1);
  int serial_barriers = 0;
  serial.set_barrier_hook([&serial_barriers] { ++serial_barriers; });
  serial.shard(0).schedule_at(1.0, [] {});
  serial.run(nullptr);
  EXPECT_EQ(serial_barriers, 0);
}

TEST(ShardedSimulator, StagingHighWaterIsBoundedByOutstandingPosts) {
  // One event stages five messages before its barrier: the high-water
  // mark records exactly that bound and never exceeds the staged total.
  ShardedSimulator sharded(2);
  int delivered = 0;
  sharded.shard(0).schedule_at(1.0, [&sharded, &delivered] {
    for (int i = 0; i < 5; ++i) {
      sharded.post(1, 2.0, [&delivered] { ++delivered; });
    }
  });
  sharded.run(nullptr);
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(sharded.staged_messages(), 5u);
  EXPECT_EQ(sharded.staging_high_water(), 5u);
  EXPECT_LE(sharded.staging_high_water(), sharded.staged_messages());
}

TEST(ShardedSimulator, PostBeforeRunSchedulesDirectly) {
  ShardedSimulator sharded(2);
  std::vector<int> fired;
  sharded.post(0, 1.0, [&fired] { fired.push_back(0); });
  sharded.post(1, 1.0, [&fired] { fired.push_back(1); });
  sharded.run(nullptr);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sharded.staged_messages(), 0u);  // nothing needed staging
}

TEST(ShardedSimulator, RejectsZeroShardsAndBadTargets) {
  EXPECT_THROW(ShardedSimulator(0), std::invalid_argument);
  ShardedSimulator sharded(2);
  EXPECT_THROW(sharded.post(2, 1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(sharded.shard(2)), std::invalid_argument);
}

TEST(Trace, RecordsAndSortsIntervals) {
  TraceRecorder trace;
  trace.record_compute(1, 0, 5.0, 9.0);
  trace.record_compute(0, 0, 0.0, 5.0);
  trace.record_transfer(0, 1, 1, 5.0, 8.0);
  const auto computes = trace.sorted(IntervalKind::kCompute);
  ASSERT_EQ(computes.size(), 2u);
  EXPECT_EQ(computes[0].job, 0u);
  EXPECT_EQ(computes[1].job, 1u);
  const auto transfers = trace.sorted(IntervalKind::kTransfer);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(transfers[0].consumer, 1u);
}

TEST(Trace, RejectsBackwardIntervals) {
  TraceRecorder trace;
  EXPECT_THROW(trace.record_compute(0, 0, 5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(trace.record_transfer(0, 1, 0, 5.0, 4.0),
               std::invalid_argument);
}

TEST(Trace, GanttNamesRowsByResource) {
  TraceRecorder trace;
  trace.record_compute(0, 0, 0.0, 2.0);
  trace.record_compute(1, 1, 2.0, 3.0);
  const std::string gantt = trace.gantt({"a", "b"}, {"r1", "r2"});
  EXPECT_NE(gantt.find("r1"), std::string::npos);
  EXPECT_NE(gantt.find("a[0.0,2.0)"), std::string::npos);
  EXPECT_NE(gantt.find("b[2.0,3.0)"), std::string::npos);
}

TEST(TimeHelpers, ToleranceComparisons) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_eq(1.0, 1.001));
  EXPECT_TRUE(time_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0 + 1e-12, 1.0));
  EXPECT_TRUE(time_ge(5.0, 4.999999999999));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

}  // namespace
}  // namespace aheft::sim
