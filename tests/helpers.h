// Shared fixtures and validators for the aheft test suite.
#ifndef AHEFT_TESTS_HELPERS_H_
#define AHEFT_TESTS_HELPERS_H_

#include <cstdint>

#include "core/schedule.h"
#include "grid/machine_model.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"
#include "workloads/scenario.h"
#include "workloads/workload.h"

namespace aheft::test {

/// A fully generated random case: workload + dynamic pool + cost matrix.
struct RandomCase {
  workloads::Workload workload;
  grid::ResourcePool pool;
  grid::MachineModel model;
};

struct RandomCaseOptions {
  std::size_t jobs = 30;
  double ccr = 1.0;
  double out_degree = 0.3;
  double beta = 0.5;
  std::size_t initial_resources = 4;
  double interval = 150.0;
  double fraction = 0.25;
  double horizon = 3000.0;
};

/// Deterministic random case from a seed.
[[nodiscard]] RandomCase make_random_case(std::uint64_t seed,
                                          const RandomCaseOptions& options = {});

/// Asserts two schedules are bit-identical: every job on the same
/// resource with the exact same start and finish (no epsilon). The
/// compat fence of contention-aware planning — an empty
/// AvailabilityView must not perturb a plan — is stated through this.
void expect_bit_identical(const core::Schedule& a, const core::Schedule& b);

/// Checks that an execution trace is a legal run of `dag` on the grid:
/// per-resource compute intervals are disjoint and inside availability
/// windows, every job has exactly one completed compute interval whose
/// duration matches the cost model, and every consumer starts only after
/// each predecessor's output could have reached its resource.
void expect_valid_trace(const sim::TraceRecorder& trace, const dag::Dag& dag,
                        const grid::CostProvider& costs,
                        const grid::ResourcePool& pool);

}  // namespace aheft::test

#endif  // AHEFT_TESTS_HELPERS_H_
