// End-to-end integration tests: full planner/executor co-simulation on the
// paper's application workflows, cross-strategy orderings, and the trace
// validator over complete adaptive runs.
#include <gtest/gtest.h>

#include "core/strategy.h"
#include "core/heft.h"
#include "exp/case.h"
#include "grid/predictor.h"
#include "helpers.h"
#include "support/rng.h"
#include "workloads/apps.h"
#include "workloads/scenario.h"

namespace aheft {
namespace {

struct AppRun {
  double heft = 0.0;
  double aheft = 0.0;
  std::size_t adoptions = 0;
};

AppRun run_app(exp::AppKind app, std::size_t parallelism, double ccr,
               std::uint64_t seed, sim::TraceRecorder* trace = nullptr) {
  RngStream rng(seed);
  workloads::AppParams params;
  params.parallelism = parallelism;
  params.ccr = ccr;
  RngStream dag_stream = rng.child("dag");
  workloads::Workload w = app == exp::AppKind::kBlast
                              ? workloads::generate_blast(params, dag_stream)
                              : workloads::generate_wien2k(params, dag_stream);

  const workloads::ResourceDynamics dynamics{8, 100.0, 0.25};
  grid::ResourcePool initial;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    initial.add(grid::Resource{});
  }
  const grid::MachineModel first_model = workloads::build_machine_model(
      w, dynamics.initial, 0.5, mix64(seed, 3));
  const core::Schedule plan =
      core::heft_schedule(w.dag, first_model, initial);

  const grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, plan.makespan());
  const grid::MachineModel model = workloads::build_machine_model(
      w, pool.universe_size(), 0.5, mix64(seed, 3));

  core::SessionEnvironment env;
  env.pool = &pool;
  env.trace = trace;
  const core::StrategyOutcome outcome = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, w.dag, model, model, env);
  AppRun result;
  result.heft = plan.makespan();
  result.aheft = outcome.makespan;
  result.adoptions = outcome.adoptions;

  if (trace != nullptr) {
    test::expect_valid_trace(*trace, w.dag, model, pool);
  }
  return result;
}

TEST(Integration, BlastAdaptiveRunIsValidAndNoWorse) {
  sim::TraceRecorder trace;
  const AppRun run = run_app(exp::AppKind::kBlast, 24, 1.0, 1, &trace);
  EXPECT_LE(run.aheft, run.heft + 1e-6);
}

TEST(Integration, Wien2kAdaptiveRunIsValidAndNoWorse) {
  sim::TraceRecorder trace;
  const AppRun run = run_app(exp::AppKind::kWien2k, 24, 1.0, 2, &trace);
  EXPECT_LE(run.aheft, run.heft + 1e-6);
}

TEST(Integration, BlastGainsMoreThanWien2kOnAverage) {
  // The paper's Table 6 headline: the wide, balanced BLAST profits far more
  // from new resources than the FERMI-gated WIEN2K. Averaged over seeds at
  // matching sizes, BLAST's improvement rate should dominate.
  double blast_heft = 0.0;
  double blast_aheft = 0.0;
  double wien_heft = 0.0;
  double wien_aheft = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AppRun blast = run_app(exp::AppKind::kBlast, 32, 1.0, seed);
    const AppRun wien = run_app(exp::AppKind::kWien2k, 32, 1.0, seed);
    blast_heft += blast.heft;
    blast_aheft += blast.aheft;
    wien_heft += wien.heft;
    wien_aheft += wien.aheft;
  }
  const double blast_improvement = (blast_heft - blast_aheft) / blast_heft;
  const double wien_improvement = (wien_heft - wien_aheft) / wien_heft;
  EXPECT_GE(blast_improvement, wien_improvement - 0.02);
  EXPECT_GT(blast_improvement, 0.0);
}

TEST(Integration, AdoptionsHappenWhenResourcesArriveEarly) {
  // A resource-starved initial pool plus frequent arrivals: the planner
  // should adopt at least one reschedule on a wide DAG.
  std::size_t total_adoptions = 0;
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    total_adoptions += run_app(exp::AppKind::kBlast, 24, 1.0, seed).adoptions;
  }
  EXPECT_GT(total_adoptions, 0u);
}

TEST(Integration, DynamicBaselineLosesOnDataIntensiveRandomDags) {
  // §4.2's headline ordering: HEFT ~ AHEFT << Min-Min for data-intensive
  // workloads, because just-in-time decisions serialize the transfers.
  double heft_total = 0.0;
  double aheft_total = 0.0;
  double minmin_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    exp::CaseSpec spec;
    spec.app = exp::AppKind::kRandom;
    spec.size = 40;
    spec.ccr = 5.0;
    spec.out_degree = 0.3;
    spec.beta = 0.5;
    spec.dynamics = {8, 200.0, 0.2};
    spec.seed = mix64(99, seed);
    spec.run_dynamic = true;
    spec.horizon_factor = 4.0;
    const exp::CaseResult result = exp::run_case(spec);
    heft_total += result.heft_makespan;
    aheft_total += result.aheft_makespan;
    minmin_total += result.minmin_makespan;
  }
  EXPECT_LE(aheft_total, heft_total + 1e-6);
  EXPECT_GT(minmin_total, heft_total);
}

TEST(Integration, NoisyEstimatesStillCompleteAndStayReasonable) {
  const test::RandomCase c = test::make_random_case(2024);
  const grid::NoisyPredictor estimates(c.model, 0.25, 7);
  core::PlannerConfig config;
  config.react_to_variance = true;
  config.variance_threshold = 0.15;
  grid::PerformanceHistoryRepository history;
  sim::TraceRecorder trace;
  core::SessionEnvironment env;
  env.pool = &c.pool;
  env.trace = &trace;
  env.history = &history;
  core::StrategyConfig strategy;
  strategy.planner = config;
  const core::StrategyOutcome outcome =
      core::run_strategy(core::StrategyKind::kAdaptiveAheft, c.workload.dag,
                         estimates, c.model, env, strategy);
  EXPECT_GT(outcome.makespan, 0.0);
  EXPECT_GT(history.total_observations(), 0u);
  test::expect_valid_trace(trace, c.workload.dag, c.model, c.pool);
}

TEST(Integration, FailureInjectionRestartsAndCompletes) {
  // Kill the resource that hosts the most work halfway through the plan;
  // the forced reschedule must migrate everything and still finish.
  test::RandomCaseOptions options;
  options.jobs = 24;
  options.initial_resources = 3;
  options.interval = 1e8;  // no arrivals: isolate the failure event
  test::RandomCase c = test::make_random_case(555, options);
  const core::Schedule plan =
      core::heft_schedule(c.workload.dag, c.model, c.pool);

  // Find the busiest resource in the plan and schedule its departure.
  grid::ResourceId busiest = 0;
  std::size_t most = 0;
  for (const grid::ResourceId r : plan.used_resources()) {
    if (plan.timeline(r).size() > most) {
      most = plan.timeline(r).size();
      busiest = r;
    }
  }
  c.pool.set_departure(busiest, plan.makespan() / 2.0);

  sim::TraceRecorder trace;
  core::SessionEnvironment env;
  env.pool = &c.pool;
  env.trace = &trace;
  const core::StrategyOutcome outcome = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, c.workload.dag, c.model, c.model,
      env);
  EXPECT_GT(outcome.makespan, 0.0);
  EXPECT_GE(outcome.adoptions, 1u);
  test::expect_valid_trace(trace, c.workload.dag, c.model, c.pool);
}

}  // namespace
}  // namespace aheft
