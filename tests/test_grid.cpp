// Unit tests for the grid substrate: pool, machine model, predictors,
// history repository, events.
#include <gtest/gtest.h>

#include "dag/dag.h"
#include "grid/events.h"
#include "support/assert.h"
#include "grid/history.h"
#include "grid/machine_model.h"
#include "grid/predictor.h"
#include "grid/resource_pool.h"

namespace aheft::grid {
namespace {

ResourcePool small_pool() {
  ResourcePool pool;
  pool.add(Resource{.name = "r1", .arrival = 0.0});
  pool.add(Resource{.name = "r2", .arrival = 0.0});
  pool.add(Resource{.name = "r3", .arrival = 15.0});
  pool.add(Resource{.name = "r4", .arrival = 30.0});
  return pool;
}

TEST(ResourcePool, AvailabilityFollowsArrivals) {
  const ResourcePool pool = small_pool();
  EXPECT_EQ(pool.universe_size(), 4u);
  EXPECT_EQ(pool.available_at(0.0), (std::vector<ResourceId>{0, 1}));
  EXPECT_EQ(pool.available_at(15.0), (std::vector<ResourceId>{0, 1, 2}));
  EXPECT_EQ(pool.available_at(100.0), (std::vector<ResourceId>{0, 1, 2, 3}));
  EXPECT_EQ(pool.count_available_at(20.0), 3u);
}

TEST(ResourcePool, ChangeTimesAreSortedAndDeduplicated) {
  ResourcePool pool = small_pool();
  pool.add(Resource{.name = "r5", .arrival = 30.0});  // duplicate time
  EXPECT_EQ(pool.change_times(0.0, 100.0),
            (std::vector<sim::Time>{15.0, 30.0}));
  EXPECT_EQ(pool.change_times(15.0, 100.0), (std::vector<sim::Time>{30.0}));
  EXPECT_DOUBLE_EQ(pool.next_change_after(0.0), 15.0);
  EXPECT_DOUBLE_EQ(pool.next_change_after(15.0), 30.0);
  EXPECT_EQ(pool.next_change_after(30.0), sim::kTimeInfinity);
}

TEST(ResourcePool, ArrivalsAtExactTime) {
  const ResourcePool pool = small_pool();
  EXPECT_EQ(pool.arrivals_at(15.0), (std::vector<ResourceId>{2}));
  EXPECT_TRUE(pool.arrivals_at(16.0).empty());
}

TEST(ResourcePool, DeparturesRestrictAvailability) {
  ResourcePool pool = small_pool();
  pool.set_departure(0, 50.0);
  EXPECT_EQ(pool.available_at(60.0), (std::vector<ResourceId>{1, 2, 3}));
  EXPECT_EQ(pool.change_times(40.0, 100.0), (std::vector<sim::Time>{50.0}));
  EXPECT_THROW(pool.set_departure(2, 10.0), std::invalid_argument);
}

TEST(ResourcePool, NamesAreGeneratedWhenEmpty) {
  ResourcePool pool;
  pool.add(Resource{});
  EXPECT_EQ(pool.resource(0).name, "r1");
}

TEST(MachineModel, StoresCostsAndComputesComm) {
  MachineModel model(2, 2, LinkModel{.latency = 1.0, .bandwidth = 2.0});
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(0, 1, 20.0);
  model.set_compute_cost(1, 0, 5.0);
  model.set_compute_cost(1, 1, 5.0);
  EXPECT_DOUBLE_EQ(model.compute_cost(0, 1), 20.0);

  const dag::Edge edge{0, 1, 8.0};
  EXPECT_DOUBLE_EQ(model.comm_cost(edge, 0, 0), 0.0);  // same resource
  EXPECT_DOUBLE_EQ(model.comm_cost(edge, 0, 1), 1.0 + 8.0 / 2.0);
  EXPECT_DOUBLE_EQ(model.mean_comm_cost(edge), 5.0);

  const std::vector<ResourceId> both{0, 1};
  EXPECT_DOUBLE_EQ(model.mean_compute_cost(0, both), 15.0);
}

TEST(MachineModel, RejectsInvalidConstructionAndAccess) {
  EXPECT_THROW(MachineModel(0, 1), std::invalid_argument);
  EXPECT_THROW(MachineModel(1, 1, LinkModel{.latency = -1.0, .bandwidth = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(MachineModel(1, 1, LinkModel{.latency = 0.0, .bandwidth = 0.0}),
               std::invalid_argument);
  MachineModel model(1, 1);
  EXPECT_THROW(model.set_compute_cost(0, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(model.set_compute_cost(1, 0, 1.0), std::invalid_argument);
  model.set_compute_cost(0, 0, 2.0);
  EXPECT_THROW((void)model.compute_cost(0, 3), std::invalid_argument);
}

TEST(MachineModel, UnsetCostIsAnInvariantViolation) {
  MachineModel model(1, 2);
  model.set_compute_cost(0, 0, 2.0);
  EXPECT_THROW((void)model.compute_cost(0, 1), AssertionError);
}

TEST(Predictor, PerfectPassesThrough) {
  MachineModel model(1, 1);
  model.set_compute_cost(0, 0, 7.0);
  const PerfectPredictor perfect(model);
  EXPECT_DOUBLE_EQ(perfect.compute_cost(0, 0), 7.0);
  const dag::Edge edge{0, 0, 4.0};
  EXPECT_DOUBLE_EQ(perfect.mean_comm_cost(edge), model.mean_comm_cost(edge));
}

TEST(Predictor, NoisyIsDeterministicAndBounded) {
  MachineModel model(3, 3);
  for (dag::JobId i = 0; i < 3; ++i) {
    for (ResourceId j = 0; j < 3; ++j) {
      model.set_compute_cost(i, j, 100.0);
    }
  }
  const NoisyPredictor noisy(model, 0.3, 99);
  bool any_different = false;
  for (dag::JobId i = 0; i < 3; ++i) {
    for (ResourceId j = 0; j < 3; ++j) {
      const double estimate = noisy.compute_cost(i, j);
      EXPECT_DOUBLE_EQ(estimate, noisy.compute_cost(i, j));  // repeatable
      EXPECT_GE(estimate, 70.0);
      EXPECT_LE(estimate, 130.0);
      any_different |= estimate != 100.0;
    }
  }
  EXPECT_TRUE(any_different);
  EXPECT_THROW(NoisyPredictor(model, 1.5, 1), std::invalid_argument);
}

TEST(History, SmoothsObservations) {
  PerformanceHistoryRepository history(0.5);
  EXPECT_FALSE(history.estimate("op", 0).has_value());
  history.record("op", 0, 100.0);
  EXPECT_DOUBLE_EQ(*history.estimate("op", 0), 100.0);
  history.record("op", 0, 50.0);
  EXPECT_DOUBLE_EQ(*history.estimate("op", 0), 75.0);
  EXPECT_EQ(history.observations("op", 0), 2u);
  EXPECT_EQ(history.observations("op", 1), 0u);
  EXPECT_EQ(history.total_observations(), 2u);
  history.clear();
  EXPECT_EQ(history.total_observations(), 0u);
}

TEST(History, DistinguishesOperationAndResource) {
  PerformanceHistoryRepository history;
  history.record("a", 0, 10.0);
  history.record("a", 1, 20.0);
  history.record("b", 0, 30.0);
  EXPECT_DOUBLE_EQ(*history.estimate("a", 0), 10.0);
  EXPECT_DOUBLE_EQ(*history.estimate("a", 1), 20.0);
  EXPECT_DOUBLE_EQ(*history.estimate("b", 0), 30.0);
}

TEST(Predictor, HistoryBlendingPrefersObservations) {
  dag::Dag graph;
  graph.add_job("j1", "opA");
  graph.add_job("j2", "opA");
  graph.finalize();
  MachineModel prior(2, 1);
  prior.set_compute_cost(0, 0, 100.0);
  prior.set_compute_cost(1, 0, 100.0);
  PerformanceHistoryRepository history(1.0);
  const HistoryBlendingPredictor predictor(prior, graph, history);
  EXPECT_DOUBLE_EQ(predictor.compute_cost(0, 0), 100.0);  // prior
  history.record("opA", 0, 42.0);
  // Both jobs share the operation, so one observation fixes both.
  EXPECT_DOUBLE_EQ(predictor.compute_cost(0, 0), 42.0);
  EXPECT_DOUBLE_EQ(predictor.compute_cost(1, 0), 42.0);
}

TEST(Events, DescribeRendersEachKind) {
  GridEvent added{10.0, ResourceAddedEvent{3}};
  EXPECT_NE(describe(added).find("r4 added"), std::string::npos);
  GridEvent removed{11.0, ResourceRemovedEvent{0}};
  EXPECT_NE(describe(removed).find("r1 removed"), std::string::npos);
  GridEvent variance{12.0, PerformanceVarianceEvent{1, 2, 10.0, 14.0}};
  const std::string text = describe(variance);
  EXPECT_NE(text.find("n2"), std::string::npos);
  EXPECT_NE(text.find("r3"), std::string::npos);
}

}  // namespace
}  // namespace aheft::grid
