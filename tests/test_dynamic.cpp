// Dynamic just-in-time baseline tests (Min-Min / Max-Min / Sufferage).
#include <gtest/gtest.h>

#include "core/dynamic_scheduler.h"
#include "core/heft.h"
#include "helpers.h"
#include "traces/load_timeline.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

TEST(Dynamic, RunsSampleDagToCompletion) {
  const auto scenario = workloads::sample_scenario();
  sim::TraceRecorder trace;
  const DynamicRunResult result = run_dynamic(
      scenario.dag, scenario.model, scenario.pool,
      DynamicHeuristic::kMinMin, &trace);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GE(result.batches, 1u);
  EXPECT_TRUE(result.schedule.complete());
  test::expect_valid_trace(trace, scenario.dag, scenario.model,
                           scenario.pool);
}

TEST(Dynamic, DeferredTransfersMakeItNoBetterThanHeft) {
  // On the worked example the just-in-time strategy cannot beat the static
  // plan: every cross-resource input waits for a decision before moving.
  const auto scenario = workloads::sample_scenario();
  const DynamicRunResult minmin =
      run_dynamic(scenario.dag, scenario.model, scenario.pool);
  const Schedule heft =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  EXPECT_GE(minmin.makespan, heft.makespan() - sim::kTimeEpsilon);
}

TEST(Dynamic, SingleJobMatchesFastestResource) {
  dag::Dag graph;
  graph.add_job("only");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  pool.add(grid::Resource{});
  grid::MachineModel model(1, 2);
  model.set_compute_cost(0, 0, 9.0);
  model.set_compute_cost(0, 1, 4.0);
  const DynamicRunResult result = run_dynamic(graph, model, pool);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  EXPECT_EQ(result.schedule.assignment(0).resource, 1u);
}

TEST(Dynamic, MinMinPrefersShortJobFirstOnContention) {
  // Two independent jobs, one resource: Min-Min runs the shorter first.
  dag::Dag graph;
  graph.add_job("long");
  graph.add_job("short");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 1);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(1, 0, 2.0);
  const DynamicRunResult result = run_dynamic(graph, model, pool);
  EXPECT_DOUBLE_EQ(result.schedule.assignment(1).start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.assignment(0).start, 2.0);
  EXPECT_DOUBLE_EQ(result.makespan, 12.0);
}

TEST(Dynamic, MaxMinPrefersLongJobFirstOnContention) {
  dag::Dag graph;
  graph.add_job("long");
  graph.add_job("short");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 1);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(1, 0, 2.0);
  const DynamicRunResult result =
      run_dynamic(graph, model, pool, DynamicHeuristic::kMaxMin);
  EXPECT_DOUBLE_EQ(result.schedule.assignment(0).start, 0.0);
  EXPECT_DOUBLE_EQ(result.schedule.assignment(1).start, 10.0);
}

TEST(Dynamic, UsesResourcesThatArriveMidRun) {
  // A chain head delays two parallel successors past r2's arrival; the
  // just-in-time scheduler should exploit the newcomer.
  dag::Dag graph;
  const dag::JobId head = graph.add_job("head");
  const dag::JobId left = graph.add_job("left");
  const dag::JobId right = graph.add_job("right");
  graph.add_edge(head, left, 0.0);
  graph.add_edge(head, right, 0.0);
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "r1", .arrival = 0.0});
  pool.add(grid::Resource{.name = "r2", .arrival = 5.0});
  grid::MachineModel model(3, 2);
  for (dag::JobId i = 0; i < 3; ++i) {
    model.set_compute_cost(i, 0, 10.0);
    model.set_compute_cost(i, 1, 10.0);
  }
  const DynamicRunResult result = run_dynamic(graph, model, pool);
  // head on r1 [0,10); then left/right in parallel on r1 and r2.
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
  EXPECT_NE(result.schedule.assignment(left).resource,
            result.schedule.assignment(right).resource);
}

TEST(Dynamic, ChainPaysTransferAtDecisionTime) {
  // a -> b with data 6; two resources; b's best completion includes the
  // decision-time transfer, so same-resource execution wins.
  dag::Dag graph;
  const dag::JobId a = graph.add_job("a");
  const dag::JobId b = graph.add_job("b");
  graph.add_edge(a, b, 6.0);
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 2);
  model.set_compute_cost(0, 0, 5.0);
  model.set_compute_cost(0, 1, 5.0);
  model.set_compute_cost(1, 0, 4.0);
  model.set_compute_cost(1, 1, 3.0);
  const DynamicRunResult result = run_dynamic(graph, model, pool);
  // On r0 (with a): 5 + 4 = 9. On r1: 5 + 6 (transfer from t=5) + 3 = 14.
  EXPECT_EQ(result.schedule.assignment(b).resource, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 9.0);
}

TEST(Dynamic, RejectsEmptyInitialPool) {
  dag::Dag graph;
  graph.add_job("a");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "late", .arrival = 10.0});
  grid::MachineModel model(1, 1);
  model.set_compute_cost(0, 0, 1.0);
  EXPECT_THROW(run_dynamic(graph, model, pool), std::invalid_argument);
}

TEST(Dynamic, LoadProfileStretchesRealizedRunTimes) {
  // Chain of two jobs on one machine under a uniform 2x load: decisions
  // keep using nominal costs, but the realized makespan must double —
  // the baseline now compares with HEFT/AHEFT under the same load.
  dag::Dag graph;
  graph.add_job("a");
  graph.add_job("b");
  graph.add_edge(0, 1, 0.0);
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 1);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(1, 0, 5.0);

  const DynamicRunResult nominal = run_dynamic(graph, model, pool);
  EXPECT_DOUBLE_EQ(nominal.makespan, 15.0);

  traces::LoadTimeline load;
  load.add(0, 0.0, sim::kTimeInfinity, 2.0);
  const DynamicRunResult stretched = run_dynamic(
      graph, model, pool, DynamicHeuristic::kMinMin, nullptr, &load);
  EXPECT_DOUBLE_EQ(stretched.makespan, 30.0);
  EXPECT_NE(stretched.makespan, nominal.makespan);
}

TEST(Dynamic, LoadSegmentSampledAtRealizedStart) {
  // The 2x segment covers only the second job's (delayed) start window,
  // so exactly that job stretches: 10 + 2*5 = 20.
  dag::Dag graph;
  graph.add_job("a");
  graph.add_job("b");
  graph.add_edge(0, 1, 0.0);
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 1);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(1, 0, 5.0);

  traces::LoadTimeline load;
  load.add(0, 10.0, sim::kTimeInfinity, 2.0);
  const DynamicRunResult result = run_dynamic(
      graph, model, pool, DynamicHeuristic::kMinMin, nullptr, &load);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
}

TEST(Dynamic, SkipsMachinesThatDepartBeforeCompletion) {
  // The nominally fastest machine departs too soon; the just-in-time
  // decision must route around the announced window.
  dag::Dag graph;
  graph.add_job("a");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "fast-but-doomed", .departure = 5.0});
  pool.add(grid::Resource{.name = "slow"});
  grid::MachineModel model(1, 2);
  model.set_compute_cost(0, 0, 6.0);  // would outlive the window
  model.set_compute_cost(0, 1, 9.0);
  const DynamicRunResult result = run_dynamic(graph, model, pool);
  EXPECT_EQ(result.schedule.assignment(0).resource, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 9.0);
}

TEST(Dynamic, ReportsWhenNoMachineCanFinishBeforeDeparting) {
  dag::Dag graph;
  graph.add_job("a");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "doomed", .departure = 5.0});
  grid::MachineModel model(1, 1);
  model.set_compute_cost(0, 0, 10.0);
  EXPECT_THROW(run_dynamic(graph, model, pool), std::runtime_error);
}

TEST(Dynamic, HeuristicNames) {
  EXPECT_EQ(to_string(DynamicHeuristic::kMinMin), "min-min");
  EXPECT_EQ(to_string(DynamicHeuristic::kMaxMin), "max-min");
  EXPECT_EQ(to_string(DynamicHeuristic::kSufferage), "sufferage");
}

// ----- property sweep ------------------------------------------------------

class DynamicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicProperty, ProducesValidExecutions) {
  const test::RandomCase c = test::make_random_case(GetParam());
  for (const auto heuristic :
       {DynamicHeuristic::kMinMin, DynamicHeuristic::kMaxMin,
        DynamicHeuristic::kSufferage}) {
    sim::TraceRecorder trace;
    const DynamicRunResult result =
        run_dynamic(c.workload.dag, c.model, c.pool, heuristic, &trace);
    EXPECT_GT(result.makespan, 0.0);
    test::expect_valid_trace(trace, c.workload.dag, c.model, c.pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace aheft::core
