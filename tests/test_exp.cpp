// Experiment-harness tests: case execution, determinism, sweep building,
// aggregation, CSV dumps.
#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "exp/case.h"
#include "exp/paper_params.h"
#include "exp/report.h"
#include "exp/runner.h"
#include "exp/sweeps.h"

namespace aheft::exp {
namespace {

CaseSpec small_spec(std::uint64_t seed) {
  CaseSpec spec;
  spec.app = AppKind::kRandom;
  spec.size = 25;
  spec.ccr = 1.0;
  spec.out_degree = 0.3;
  spec.beta = 0.5;
  spec.dynamics = {5, 150.0, 0.2};
  spec.seed = seed;
  return spec;
}

TEST(Case, AheftNeverWorseThanHeft) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const CaseResult result = run_case(small_spec(seed));
    EXPECT_GT(result.heft_makespan, 0.0);
    EXPECT_LE(result.aheft_makespan, result.heft_makespan + 1e-6)
        << "seed " << seed;
    EXPECT_EQ(result.jobs, 25u);
    EXPECT_GE(result.universe, 5u);
  }
}

TEST(Case, DeterministicAcrossRuns) {
  const CaseResult a = run_case(small_spec(42));
  const CaseResult b = run_case(small_spec(42));
  EXPECT_DOUBLE_EQ(a.heft_makespan, b.heft_makespan);
  EXPECT_DOUBLE_EQ(a.aheft_makespan, b.aheft_makespan);
  EXPECT_EQ(a.adoptions, b.adoptions);
}

TEST(Case, DynamicBaselineRunsWhenRequested) {
  CaseSpec spec = small_spec(7);
  spec.run_dynamic = true;
  spec.horizon_factor = 4.0;
  const CaseResult result = run_case(spec);
  EXPECT_GT(result.minmin_makespan, 0.0);

  CaseSpec no_dynamic = small_spec(7);
  const CaseResult without = run_case(no_dynamic);
  EXPECT_DOUBLE_EQ(without.minmin_makespan, 0.0);
}

TEST(Case, AppKindsAreRunnable) {
  for (const AppKind app :
       {AppKind::kBlast, AppKind::kWien2k, AppKind::kMontage,
        AppKind::kGaussian}) {
    CaseSpec spec = small_spec(11);
    spec.app = app;
    spec.size = 10;
    const CaseResult result = run_case(spec);
    EXPECT_GT(result.heft_makespan, 0.0) << to_string(app);
    EXPECT_LE(result.aheft_makespan, result.heft_makespan + 1e-6);
  }
}

TEST(Case, ToStringCoversAllApps) {
  EXPECT_EQ(to_string(AppKind::kRandom), "random");
  EXPECT_EQ(to_string(AppKind::kBlast), "blast");
  EXPECT_EQ(to_string(AppKind::kWien2k), "wien2k");
  EXPECT_EQ(to_string(AppKind::kMontage), "montage");
  EXPECT_EQ(to_string(AppKind::kGaussian), "gaussian");
}

TEST(Runner, ThreadCountDoesNotChangeResults) {
  std::vector<CaseSpec> specs;
  for (std::uint64_t s = 1; s <= 8; ++s) {
    specs.push_back(small_spec(s));
  }
  const SweepOutcome serial = run_sweep(specs, 1);
  const SweepOutcome parallel = run_sweep(specs, 4);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.results[i].heft_makespan,
                     parallel.results[i].heft_makespan);
    EXPECT_DOUBLE_EQ(serial.results[i].aheft_makespan,
                     parallel.results[i].aheft_makespan);
  }
}

TEST(Report, GroupByAndOverall) {
  std::vector<CaseSpec> specs;
  for (const double ccr : {0.5, 5.0}) {
    for (std::uint64_t s = 1; s <= 3; ++s) {
      CaseSpec spec = small_spec(s);
      spec.ccr = ccr;
      specs.push_back(spec);
    }
  }
  const SweepOutcome outcome = run_sweep(specs, 2);
  const auto groups =
      group_by(outcome, [](const CaseSpec& s) { return s.ccr; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at(0.5).heft.count(), 3u);
  EXPECT_EQ(groups.at(5.0).aheft.count(), 3u);
  const GroupStats total = overall(outcome);
  EXPECT_EQ(total.heft.count(), 6u);
  // Improvement rate is consistent with the accumulated means.
  EXPECT_NEAR(total.improvement(),
              (total.heft.mean() - total.aheft.mean()) / total.heft.mean(),
              1e-12);
  EXPECT_GE(total.improvement(), -1e-9);
}

TEST(Report, DumpCsvWritesOneRowPerCase) {
  std::vector<CaseSpec> specs{small_spec(1), small_spec(2)};
  const SweepOutcome outcome = run_sweep(specs, 1);
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  dump_csv(outcome, path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 cases
}

TEST(Sweeps, CaseSeedIsStableAndSensitive) {
  const CaseSpec a = small_spec(0);
  CaseSpec b = a;
  EXPECT_EQ(case_seed(1, a, 0), case_seed(1, b, 0));
  b.ccr = 2.0;
  EXPECT_NE(case_seed(1, a, 0), case_seed(1, b, 0));
  EXPECT_NE(case_seed(1, a, 0), case_seed(1, a, 1));
  EXPECT_NE(case_seed(1, a, 0), case_seed(2, a, 0));
  // Resource dynamics do NOT enter the seed: the same DAG instance is
  // paired with every resource model, as in the paper's design.
  CaseSpec c = a;
  c.dynamics = {40, 1600.0, 0.25};
  EXPECT_EQ(case_seed(1, a, 0), case_seed(1, c, 0));
}

TEST(Sweeps, RandomSweepSizesPerScale) {
  const auto smoke = build_random_sweep(Scale::kSmoke, 1, false);
  EXPECT_EQ(smoke.size(), 2u * 2u * 1u * 1u * 1u * 1u * 1u);
  const auto def = build_random_sweep(Scale::kDefault, 1, false);
  EXPECT_EQ(def.size(), 625u * 3u * 2u * 2u);  // types x thinned models
  const auto paper = build_random_sweep(Scale::kPaper, 1, false);
  EXPECT_EQ(paper.size(), 500000u);  // the paper's case count
}

TEST(Sweeps, AppSweepCoversParallelismCcrAndPool) {
  const auto specs = build_app_sweep(AppKind::kBlast, Scale::kDefault, 1);
  EXPECT_EQ(specs.size(), 5u * 5u * 5u * 2u);  // N x CCR x R x instances
  bool seen_n1000 = false;
  for (const CaseSpec& spec : specs) {
    EXPECT_EQ(spec.app, AppKind::kBlast);
    seen_n1000 |= spec.size == 1000;
  }
  EXPECT_TRUE(seen_n1000);
  EXPECT_THROW(build_app_sweep(AppKind::kRandom, Scale::kDefault, 1),
               std::invalid_argument);
}

TEST(Sweeps, Fig8SweepVariesExactlyOneAxis) {
  for (const SweepAxis axis :
       {SweepAxis::kCcr, SweepAxis::kBeta, SweepAxis::kJobs, SweepAxis::kPool,
        SweepAxis::kInterval, SweepAxis::kFraction}) {
    const auto specs =
        build_fig8_sweep(AppKind::kWien2k, axis, Scale::kSmoke, 1);
    ASSERT_FALSE(specs.empty());
    std::set<double> values;
    for (const CaseSpec& spec : specs) {
      values.insert(axis_value(axis, spec));
      if (axis != SweepAxis::kCcr) {
        EXPECT_DOUBLE_EQ(spec.ccr, kBaseCcr);
      }
      if (axis != SweepAxis::kBeta) {
        EXPECT_DOUBLE_EQ(spec.beta, kBaseBeta);
      }
    }
    EXPECT_GE(values.size(), 4u) << to_string(axis);
  }
}

TEST(Sweeps, SeedsDifferAcrossWorkloadsButPairAcrossModels) {
  const auto specs = build_app_sweep(AppKind::kBlast, Scale::kDefault, 7);
  std::set<std::uint64_t> seeds;
  for (const CaseSpec& spec : specs) {
    seeds.insert(spec.seed);
  }
  // 5 N x 5 CCR x 2 instances distinct workloads, each paired with every
  // pool size (5), so distinct seeds = cases / pools.
  EXPECT_EQ(seeds.size(), specs.size() / 5u);
}

}  // namespace
}  // namespace aheft::exp
