// Execution-engine tests: faithful replay, mid-run snapshots, schedule
// replacement semantics, file-transfer bookkeeping.
#include <gtest/gtest.h>

#include "core/execution_engine.h"
#include "core/heft.h"
#include "helpers.h"
#include "sim/simulator.h"
#include "support/assert.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

TEST(Engine, ReplaysHeftScheduleExactly) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  sim::TraceRecorder trace;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool,
                         &trace);
  engine.submit(plan);
  sim.run();
  ASSERT_TRUE(engine.finished());
  EXPECT_DOUBLE_EQ(engine.makespan(), 80.0);
  EXPECT_EQ(engine.restarted_jobs(), 0u);

  // Every compute interval matches the plan.
  const auto computes = trace.sorted(sim::IntervalKind::kCompute);
  ASSERT_EQ(computes.size(), 10u);
  for (const auto& interval : computes) {
    const Assignment& a = plan.assignment(interval.job);
    EXPECT_EQ(interval.resource, a.resource);
    EXPECT_DOUBLE_EQ(interval.start, a.start);
    EXPECT_DOUBLE_EQ(interval.end, a.finish);
  }
  test::expect_valid_trace(trace, scenario.dag, scenario.model,
                           scenario.pool);
}

TEST(Engine, RecordsCrossResourceTransfers) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  sim::TraceRecorder trace;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool,
                         &trace);
  engine.submit(plan);
  sim.run();
  const auto transfers = trace.sorted(sim::IntervalKind::kTransfer);
  // n1 (r3) feeds n2 (r1) and n4, n6 (r2): at least those transfers exist.
  EXPECT_GE(transfers.size(), 3u);
  for (const auto& t : transfers) {
    EXPECT_LT(t.start, t.end);  // real links take time in this scenario
  }
}

TEST(Engine, SnapshotMidRunMatchesReality) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool);
  engine.submit(plan);
  sim.run_until(30.0);
  const ExecutionSnapshot snap = engine.snapshot();
  EXPECT_DOUBLE_EQ(snap.clock(), 30.0);
  // By t=30: n1 [0,9) and n3 [9,28) finished on r3; n4 [18,26) on r2.
  EXPECT_TRUE(snap.finished(0));
  EXPECT_TRUE(snap.finished(2));
  EXPECT_TRUE(snap.finished(3));
  EXPECT_EQ(snap.finished_count(), 3u);
  // n2 [27,40) and n5 [28,38) and n6 [26,42) are running.
  EXPECT_TRUE(snap.running_info(1).has_value());
  EXPECT_TRUE(snap.running_info(4).has_value());
  EXPECT_TRUE(snap.running_info(5).has_value());
  EXPECT_DOUBLE_EQ(snap.running_info(1)->expected_finish, 40.0);
  // n1 -> n2 transfer (edge 0) reached r1 at 9 + 18 = 27.
  const auto& arrivals = snap.arrivals(0);
  ASSERT_TRUE(arrivals.count(0));
  EXPECT_DOUBLE_EQ(arrivals.at(0), 27.0);
  ASSERT_TRUE(arrivals.count(2));  // copy kept at the producer
  EXPECT_DOUBLE_EQ(arrivals.at(2), 9.0);
}

TEST(Engine, ResubmittingSamePlanIsANoop) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool);
  engine.submit(plan);
  sim.run_until(30.0);
  engine.submit(plan);  // identical plan: nothing restarts
  sim.run();
  EXPECT_DOUBLE_EQ(engine.makespan(), 80.0);
  EXPECT_EQ(engine.restarted_jobs(), 0u);
}

TEST(Engine, ReplacementMovesPendingJob) {
  // Two independent jobs on one resource; the replacement moves the second
  // job to a second resource.
  dag::Dag graph;
  const dag::JobId a = graph.add_job("a");
  const dag::JobId b = graph.add_job("b");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  pool.add(grid::Resource{});
  grid::MachineModel model(2, 2);
  for (dag::JobId i = 0; i < 2; ++i) {
    for (grid::ResourceId r = 0; r < 2; ++r) {
      model.set_compute_cost(i, r, 10.0);
    }
  }
  Schedule serial(2);
  serial.assign(Assignment{a, 0, 0.0, 10.0});
  serial.assign(Assignment{b, 0, 10.0, 20.0});

  sim::Simulator sim;
  ExecutionEngine engine(sim, graph, model, pool);
  engine.submit(serial);
  sim.run_until(5.0);

  Schedule parallel(2);
  parallel.assign(Assignment{a, 0, 0.0, 10.0});  // keep running job
  parallel.assign(Assignment{b, 1, 5.0, 15.0});
  engine.submit(parallel);
  sim.run();
  EXPECT_DOUBLE_EQ(engine.makespan(), 15.0);
  EXPECT_EQ(engine.restarted_jobs(), 0u);
}

TEST(Engine, ReplacementRestartsRunningJob) {
  dag::Dag graph;
  const dag::JobId a = graph.add_job("a");
  graph.finalize();
  grid::ResourcePool pool;
  pool.add(grid::Resource{});
  pool.add(grid::Resource{});
  grid::MachineModel model(1, 2);
  model.set_compute_cost(0, 0, 10.0);
  model.set_compute_cost(0, 1, 3.0);

  Schedule slow(1);
  slow.assign(Assignment{a, 0, 0.0, 10.0});
  sim::Simulator sim;
  sim::TraceRecorder trace;
  ExecutionEngine engine(sim, graph, model, pool, &trace);
  engine.submit(slow);
  sim.run_until(4.0);

  Schedule fast(1);
  fast.assign(Assignment{a, 1, 4.0, 7.0});  // restart elsewhere
  engine.submit(fast);
  sim.run();
  EXPECT_DOUBLE_EQ(engine.makespan(), 7.0);
  EXPECT_EQ(engine.restarted_jobs(), 1u);
  // The cancelled partial run is visible in the trace.
  const auto computes = trace.sorted(sim::IntervalKind::kCompute);
  ASSERT_EQ(computes.size(), 2u);
  EXPECT_DOUBLE_EQ(computes[0].end, 4.0);   // aborted at the switch
  EXPECT_DOUBLE_EQ(computes[1].start, 4.0);
}

TEST(Engine, RewritingHistoryIsRejected) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool);
  engine.submit(plan);
  sim.run_until(15.0);  // n1 finished at 9 on r3

  Schedule rewrite(10);
  rewrite.assign(Assignment{0, 0, 0.0, 14.0});  // pretend n1 ran on r1
  for (dag::JobId i = 1; i < 10; ++i) {
    const Assignment& original = plan.assignment(i);
    rewrite.assign(Assignment{i, original.resource,
                              original.start + 100.0,
                              original.finish + 100.0});
  }
  EXPECT_THROW(engine.submit(rewrite), AssertionError);
}

TEST(Engine, CompletionHookObservesEveryJob) {
  const auto scenario = workloads::sample_scenario();
  const Schedule plan =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);
  sim::Simulator sim;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool);
  std::size_t completions = 0;
  double last_finish = 0.0;
  engine.set_completion_hook([&](dag::JobId, grid::ResourceId, sim::Time,
                                 sim::Time aft) {
    ++completions;
    EXPECT_GE(aft, last_finish);
    last_finish = aft;
  });
  engine.submit(plan);
  sim.run();
  EXPECT_EQ(completions, 10u);
  EXPECT_DOUBLE_EQ(last_finish, 80.0);
}

TEST(Engine, RequiresCompleteSchedule) {
  const auto scenario = workloads::sample_scenario();
  sim::Simulator sim;
  ExecutionEngine engine(sim, scenario.dag, scenario.model, scenario.pool);
  Schedule partial(10);
  partial.assign(Assignment{0, 2, 0.0, 9.0});
  EXPECT_THROW(engine.submit(partial), std::invalid_argument);
  EXPECT_THROW((void)engine.current_schedule(), std::invalid_argument);
}

// ----- property sweep: replay fidelity over random cases ------------------

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, RealizedEqualsPlannedUnderPerfectPrediction) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const Schedule plan = heft_schedule(c.workload.dag, c.model, c.pool);
  sim::Simulator sim;
  sim::TraceRecorder trace;
  ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool, &trace);
  engine.submit(plan);
  sim.run();
  ASSERT_TRUE(engine.finished());
  EXPECT_NEAR(engine.makespan(), plan.makespan(), 1e-6);
  test::expect_valid_trace(trace, c.workload.dag, c.model, c.pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56, 63,
                                           70));

}  // namespace
}  // namespace aheft::core
