// What-if query tests (paper §3.3's proactive evaluation extension).
#include <gtest/gtest.h>

#include "core/execution_engine.h"
#include "core/planner.h"
#include "core/heft.h"
#include "core/whatif.h"
#include "helpers.h"
#include "sim/simulator.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

class WhatIf : public ::testing::Test {
 protected:
  void run_to(sim::Time t) {
    plan_ = heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
    engine_.submit(plan_);
    sim_.run_until(t);
    snapshot_ = engine_.snapshot();
  }

  workloads::SampleScenario scenario_ = workloads::sample_scenario(1e9);
  sim::Simulator sim_;
  ExecutionEngine engine_{sim_, scenario_.dag, scenario_.model,
                          scenario_.pool};
  Schedule plan_;
  ExecutionSnapshot snapshot_ = ExecutionSnapshot::initial(10, 15);
};

TEST_F(WhatIf, CurrentPredictionCannotBeatThePlanUnderNoChange) {
  run_to(15.0);
  SchedulerConfig config;
  config.order_candidates = 8;
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool, config);
  // No new resources: continuing the current plan is already EFT-greedy
  // optimal for this DAG, so the prediction equals the plan.
  EXPECT_NEAR(analyzer.predict_current(snapshot_, plan_), 80.0, 1e-9);
}

TEST_F(WhatIf, AddingR4NowPredictsTheFig5Improvement) {
  run_to(15.0);
  SchedulerConfig config;
  config.order_candidates = 8;
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool, config);
  // "What if r4 joined right now (t=15)?" — exactly Fig. 5(b): 76.
  EXPECT_NEAR(analyzer.predict_with_added(snapshot_, plan_, 3), 76.0, 1e-9);
}

TEST_F(WhatIf, AddedPredictionMatchesRealizedOutcome) {
  run_to(15.0);
  SchedulerConfig config;
  config.order_candidates = 8;
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool, config);
  const sim::Time predicted =
      analyzer.predict_with_added(snapshot_, plan_, 3);

  // Make the hypothesis come true in a separate co-simulation: r4 really
  // arrives at t=15 and the planner (same config) reacts.
  const auto real = workloads::sample_scenario(15.0);
  PlannerConfig planner_config;
  planner_config.scheduler = config;
  AdaptivePlanner planner(real.dag, real.model, real.model, real.pool,
                          planner_config);
  EXPECT_NEAR(planner.run().makespan, predicted, 1e-9);
}

TEST_F(WhatIf, RemovingAResourceNeverImprovesPrediction) {
  run_to(15.0);
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool);
  const sim::Time baseline = analyzer.predict_current(snapshot_, plan_);
  for (const grid::ResourceId r : {0u, 1u}) {
    EXPECT_GE(analyzer.predict_with_removed(snapshot_, plan_, r) + 1e-9,
              baseline);
  }
}

TEST_F(WhatIf, RemovingTheBusiestResourceForcesMigration) {
  run_to(15.0);
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool);
  // r3 hosts the running n3 and most future work: losing it must hurt.
  const sim::Time without_r3 =
      analyzer.predict_with_removed(snapshot_, plan_, 2);
  EXPECT_GT(without_r3, 80.0);
}

TEST_F(WhatIf, ValidatesArguments) {
  run_to(15.0);
  const WhatIfAnalyzer analyzer(scenario_.dag, scenario_.model,
                                scenario_.pool);
  // r1 is visible: cannot be "added"; r4 is not visible: cannot be removed.
  EXPECT_THROW((void)analyzer.predict_with_added(snapshot_, plan_, 0),
               std::invalid_argument);
  EXPECT_THROW((void)analyzer.predict_with_removed(snapshot_, plan_, 3),
               std::invalid_argument);
}

TEST(WhatIfProperty, AddingAResourceNeverHurtsPrediction) {
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    test::RandomCaseOptions options;
    options.initial_resources = 4;
    options.interval = 1e8;  // no scheduled arrivals
    test::RandomCase c = test::make_random_case(seed, options);
    // Hold resource 3 back so it can serve as the what-if hypothesis.
    c.pool.set_arrival(3, 1e9);
    const Schedule plan = heft_schedule(c.workload.dag, c.model, c.pool);

    sim::Simulator sim;
    ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool);
    engine.submit(plan);
    sim.run_until(plan.makespan() / 3.0);
    const ExecutionSnapshot snap = engine.snapshot();

    const WhatIfAnalyzer analyzer(c.workload.dag, c.model, c.pool);
    const sim::Time current = analyzer.predict_current(snap, plan);
    // Universe resources beyond the initial 3 have not arrived yet.
    const sim::Time with_extra =
        analyzer.predict_with_added(snap, plan, 3);
    EXPECT_LE(with_extra, current + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace aheft::core
