// Unit tests for tools/detlint — the determinism & concurrency linter.
//
// The linter guards the repo's bit-determinism invariant, so it gets the
// same treatment as any other subsystem: tokenizer edge cases, positive
// and negative cases per rule, the suppression grammar, the JSON report
// shape, and an end-to-end sweep over the seeded fixture files (one
// deliberately-violating file plus a clean twin per rule).
#include "detlint/detlint.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using detlint::Finding;
using detlint::Options;
using detlint::Token;
using detlint::TokenKind;

std::vector<Finding> lint(const std::string& path, const std::string& code) {
  return detlint::lint_text(path, code, Options{});
}

int count_rule(const std::vector<Finding>& findings, const std::string& rule,
               bool include_suppressed = false) {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && (include_suppressed || !f.suppressed)) {
      ++count;
    }
  }
  return count;
}

int unsuppressed(const std::vector<Finding>& findings) {
  int count = 0;
  for (const Finding& f : findings) {
    count += f.suppressed ? 0 : 1;
  }
  return count;
}

// ============================================================ tokenizer ==

TEST(DetlintTokenizer, RawStringContainingCommentMarkers) {
  const auto tokens = detlint::tokenize(
      "auto s = R\"(// not a comment /* nor this */)\"; int x;");
  ASSERT_GE(tokens.size(), 4u);
  bool saw_raw = false;
  for (const Token& t : tokens) {
    EXPECT_NE(t.kind, TokenKind::kComment)
        << "comment token leaked out of a raw string: " << t.text;
    if (t.kind == TokenKind::kRawString) {
      saw_raw = true;
      EXPECT_EQ(t.text, "// not a comment /* nor this */");
    }
  }
  EXPECT_TRUE(saw_raw);
}

TEST(DetlintTokenizer, RawStringWithCustomDelimiter) {
  const auto tokens =
      detlint::tokenize("auto s = R\"xy(a )\" b)xy\"; // tail");
  bool saw_raw = false;
  bool saw_comment = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kRawString) {
      saw_raw = true;
      EXPECT_EQ(t.text, "a )\" b");
    }
    if (t.kind == TokenKind::kComment) {
      saw_comment = true;
      EXPECT_EQ(t.text, " tail");
    }
  }
  EXPECT_TRUE(saw_raw);
  EXPECT_TRUE(saw_comment);
}

TEST(DetlintTokenizer, BlockCommentSpansLinesAndTracksLineNumbers) {
  const auto tokens = detlint::tokenize("/* one\ntwo\nthree */\nint after;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[0].line, 1);
  // `int` starts on line 4: the block comment swallowed lines 1-3.
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 4);
}

TEST(DetlintTokenizer, MacroLineContinuationsFoldIntoOneDirective) {
  const std::string source =
      "#define CHECK(cond, msg) \\\n"
      "  do {                   \\\n"
      "    if (!(cond)) fail(msg); \\\n"
      "  } while (false)\n"
      "int after;";
  const auto tokens = detlint::tokenize(source);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreprocessor);
  // The folded directive contains the whole macro body...
  EXPECT_NE(tokens[0].text.find("while"), std::string::npos);
  // ...and the code after it starts on the right line.
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 5);
}

TEST(DetlintTokenizer, StringInsideDirectiveHidesCommentMarkers) {
  const auto tokens =
      detlint::tokenize("#define URL \"http://example.com\"\nint x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(tokens[0].text.find("http://example.com"), std::string::npos);
  EXPECT_EQ(tokens[1].text, "int");
}

TEST(DetlintTokenizer, LineCommentWithTrailingBackslashContinues) {
  const auto tokens =
      detlint::tokenize("// first \\\n   still the same comment\nint x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_NE(tokens[0].text.find("still the same comment"),
            std::string::npos);
  EXPECT_EQ(tokens[1].text, "int");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(DetlintTokenizer, DigitSeparatorsAndScopeToken) {
  const auto tokens = detlint::tokenize("std::size_t n = 1'000'000;");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "std");
  EXPECT_EQ(tokens[1].text, "::");
  EXPECT_EQ(tokens[1].kind, TokenKind::kPunct);
  bool saw_number = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) {
      saw_number = true;
      EXPECT_EQ(t.text, "1'000'000");
    }
    EXPECT_NE(t.kind, TokenKind::kCharacter)
        << "digit separator misread as char literal";
  }
  EXPECT_TRUE(saw_number);
}

TEST(DetlintTokenizer, EscapedQuoteInsideString) {
  const auto tokens = detlint::tokenize("auto s = \"a \\\" // b\"; int x;");
  for (const Token& t : tokens) {
    EXPECT_NE(t.kind, TokenKind::kComment);
  }
}

// ========================================================= no-wallclock ==

TEST(DetlintNoWallclock, FlagsClockNowAndEntropySources) {
  const auto findings = lint("src/core/foo.cpp",
                             "auto t = std::chrono::steady_clock::now();\n"
                             "int r = std::rand();\n"
                             "std::random_device dev;\n"
                             "const char* e = std::getenv(\"X\");\n"
                             "long s = time(nullptr);\n");
  EXPECT_EQ(count_rule(findings, "no-wallclock"), 5);
}

TEST(DetlintNoWallclock, AllowsStopwatchEnvShimAndBenches) {
  const std::string clocky = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(unsuppressed(lint("src/support/stopwatch.h", clocky)), 0);
  EXPECT_EQ(unsuppressed(lint("bench/bench_foo.cpp", clocky)), 0);
  EXPECT_EQ(unsuppressed(lint("src/support/env.cpp",
                              "const char* v = std::getenv(\"A\");\n")),
            0);
}

TEST(DetlintNoWallclock, IgnoresLookalikes) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "double when = job.time(slot);\n"       // member named time
      "int r = mylib::rand(stream);\n"        // someone else's rand
      "sim::Time time(Time base);\n"          // declaration, not time(0)
      "// std::chrono::steady_clock::now in a comment\n"
      "const char* s = \"std::random_device\";\n");
  EXPECT_EQ(count_rule(findings, "no-wallclock"), 0);
}

// ============================================== no-unordered-iteration ==

TEST(DetlintUnorderedIteration, FlagsRangeForOverUnorderedMember) {
  const auto findings = lint(
      "src/workloads/foo.cpp",
      "std::unordered_map<int, double> weights_;\n"
      "double sum() {\n"
      "  double total = 0;\n"
      "  for (const auto& [k, v] : weights_) { total += v; }\n"
      "  return total;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
}

TEST(DetlintUnorderedIteration, FlagsIteratorWalk) {
  const auto findings = lint(
      "src/workloads/foo.cpp",
      "std::unordered_set<int> ready;\n"
      "void drain() { for (auto it = ready.begin(); it != ready.end();"
      " ++it) {} }\n");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 1);
}

TEST(DetlintUnorderedIteration, ProbeOnlyUseIsClean) {
  const auto findings = lint(
      "src/workloads/foo.cpp",
      "std::unordered_map<int, double> cache_;\n"
      "bool has(int k) { return cache_.find(k) != cache_.end(); }\n");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 0);
}

TEST(DetlintUnorderedIteration, DeclarationAloneFlaggedInSimVisibleDirs) {
  const std::string decl = "std::unordered_map<int, int> table_;\n";
  // src/sim is sim-visible: the declaration alone is a finding.
  EXPECT_EQ(count_rule(lint("src/sim/foo.h", decl),
                       "no-unordered-iteration"),
            1);
  // src/workloads is not: a never-iterated declaration is fine.
  EXPECT_EQ(count_rule(lint("src/workloads/foo.h", decl),
                       "no-unordered-iteration"),
            0);
}

TEST(DetlintUnorderedIteration, OrderedContainersAreClean) {
  const auto findings = lint(
      "src/sim/foo.h",
      "std::map<int, double> by_id_;\n"
      "double sum() { double t = 0; for (auto& [k, v] : by_id_) t += v;"
      " return t; }\n");
  EXPECT_EQ(count_rule(findings, "no-unordered-iteration"), 0);
}

// ====================================================== no-pointer-order ==

TEST(DetlintPointerOrder, FlagsPointerKeysAndLess) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::set<Job*> live_;\n"
      "std::map<const Job*, double> eft_;\n"
      "std::less<Job*> cmp;\n");
  EXPECT_EQ(count_rule(findings, "no-pointer-order"), 3);
}

TEST(DetlintPointerOrder, FlagsComparatorOrderingRawPointers) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "void f(std::vector<Job*>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Job* a, const Job* b) { return a < b; });\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "no-pointer-order"), 1);
}

TEST(DetlintPointerOrder, StableIdComparatorAndValueKeysAreClean) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::map<std::pair<int, int>, double> eft_;\n"
      "void f(std::vector<Job*>& v) {\n"
      "  std::sort(v.begin(), v.end(),\n"
      "            [](const Job* a, const Job* b) {"
      " return a->id < b->id; });\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "no-pointer-order"), 0);
}

TEST(DetlintPointerOrder, MapWithPointerValueTypeIsClean) {
  // Only the KEY drives ordering; pointer mapped-to values are fine.
  const auto findings =
      lint("src/core/foo.cpp", "std::map<int, Job*> by_id_;\n");
  EXPECT_EQ(count_rule(findings, "no-pointer-order"), 0);
}

// ====================================================== confined-threads ==

TEST(DetlintConfinedThreads, FlagsRawPrimitivesOutsideSupport) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;\n"
      "std::thread worker_;\n"
      "std::atomic<int> count_{0};\n"
      "std::condition_variable cv_;\n"
      "std::atomic_bool done_{false};\n");
  EXPECT_EQ(count_rule(findings, "confined-threads"), 5);
}

TEST(DetlintConfinedThreads, SupportAndRegistryAreAllowed) {
  const std::string source = "std::mutex m_;\n";
  EXPECT_EQ(unsuppressed(lint("src/support/thread_pool.h", source)), 0);

  Options options;
  options.concurrency_registry = {"src/core/strategy.cpp"};
  EXPECT_EQ(unsuppressed(detlint::lint_text("src/core/strategy.cpp", source,
                                            options)),
            0);
  // ...but the registry entry does not leak to siblings.
  EXPECT_EQ(count_rule(detlint::lint_text("src/core/other.cpp", source,
                                          options),
                       "confined-threads"),
            1);
}

TEST(DetlintConfinedThreads, RegistryParserSkipsCommentsAndBlanks) {
  const auto entries = detlint::parse_registry(
      "# audited modules\n"
      "\n"
      "src/core/strategy.cpp  # launch registry lock\n"
      "  tests/test_support.cpp\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], "src/core/strategy.cpp");
  EXPECT_EQ(entries[1], "tests/test_support.cpp");
}

// =================================================== require-has-message ==

TEST(DetlintRequireHasMessage, FlagsMissingAndEmptyMessages) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "void f(int n) {\n"
      "  AHEFT_REQUIRE(n > 0);\n"
      "  AHEFT_ASSERT(n < 100, \"\");\n"
      "  AHEFT_ASSERT(n != 13, \"n must not be 13\");\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "require-has-message"), 2);
}

TEST(DetlintRequireHasMessage, ConditionWithCommaAndComparisons) {
  // `a < b` must not swallow the message comma; a message built from an
  // expression counts as non-empty.
  const auto findings = lint(
      "src/core/foo.cpp",
      "void f(int a, int b) {\n"
      "  AHEFT_REQUIRE(a < b, \"a must precede b\");\n"
      "  AHEFT_ASSERT(std::max(a, b) < 100,\n"
      "               \"bound exceeded: \" + std::to_string(b));\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, "require-has-message"), 0);
}

// ========================================================= suppressions ==

TEST(DetlintSuppression, SameLineSuppressesWithReason) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(confined-threads): registry lock, "
      "audited 2026-08\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_NE(findings[0].reason.find("registry lock"), std::string::npos);
  EXPECT_EQ(unsuppressed(findings), 0);
}

TEST(DetlintSuppression, CommentOnlyLineShieldsTheNextLine) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "// NOLINT-DET(confined-threads): cache lock, never sim-visible\n"
      "std::mutex m_;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(DetlintSuppression, WildcardCoversEveryRule) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(*): fixture needs raw primitives\n");
  EXPECT_EQ(unsuppressed(findings), 0);
}

TEST(DetlintSuppression, WrongRuleDoesNotSuppress) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(no-wallclock): misdirected\n");
  EXPECT_EQ(count_rule(findings, "confined-threads"), 1);
}

TEST(DetlintSuppression, StaleNamedSuppressionIsAFinding) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "int x = 0;  // NOLINT-DET(no-wallclock): shielded a clock call "
      "that has since moved\n");
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "unused-suppression") {
      EXPECT_EQ(f.stale_rule, "no-wallclock");
      EXPECT_EQ(f.line, 1);
      EXPECT_FALSE(f.suppressed);
    }
  }
}

TEST(DetlintSuppression, UsedSuppressionIsNotStale) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(confined-threads): audited lock\n");
  EXPECT_EQ(count_rule(findings, "unused-suppression"), 0);
  EXPECT_EQ(unsuppressed(findings), 0);
}

TEST(DetlintSuppression, StaleWildcardIsAFinding) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "int x = 0;  // NOLINT-DET(*): blanket shield over nothing\n");
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1);
  EXPECT_EQ(findings[0].stale_rule, "*");
}

TEST(DetlintSuppression, PartiallyStaleRuleListFlagsOnlyTheDeadRule) {
  // confined-threads fires and is absorbed; no-wallclock never fires on
  // the line, so that half of the list is stale.
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(confined-threads,no-wallclock): "
      "lock audited, clock long gone\n");
  EXPECT_EQ(count_rule(findings, "confined-threads", true), 1);
  EXPECT_EQ(count_rule(findings, "confined-threads"), 0);  // suppressed
  ASSERT_EQ(count_rule(findings, "unused-suppression"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "unused-suppression") {
      EXPECT_EQ(f.stale_rule, "no-wallclock");
    }
  }
}

TEST(DetlintSuppression, UnusedSuppressionCannotBeSuppressed) {
  // Line 1 names unused-suppression and shields line 2; line 2 carries a
  // stale shield. Both end up as unsuppressed unused-suppression
  // findings: the stale one on line 2 cannot be shielded, and the
  // would-be shield on line 1 is itself unused.
  const auto findings = lint(
      "src/core/foo.cpp",
      "// NOLINT-DET(unused-suppression): trying to shield a stale shield\n"
      "int x = 0;  // NOLINT-DET(no-wallclock): stale\n");
  EXPECT_EQ(count_rule(findings, "unused-suppression"), 2);
  EXPECT_EQ(count_rule(findings, "unused-suppression", true), 2);
}

TEST(DetlintSuppression, MissingReasonIsItselfAFindingAndSuppressesNothing) {
  const auto findings = lint(
      "src/core/foo.cpp",
      "std::mutex m_;  // NOLINT-DET(confined-threads)\n");
  EXPECT_EQ(count_rule(findings, "bad-suppression"), 1);
  EXPECT_EQ(count_rule(findings, "confined-threads"), 1);
}

TEST(DetlintSuppression, EmptyReasonAndUnknownRuleAreFindings) {
  EXPECT_EQ(count_rule(lint("a.cpp", "// NOLINT-DET(no-wallclock):   \n"),
                       "bad-suppression"),
            1);
  EXPECT_EQ(count_rule(lint("a.cpp", "// NOLINT-DET(bogus): because\n"),
                       "bad-suppression"),
            1);
  EXPECT_EQ(count_rule(lint("a.cpp", "// NOLINT-DET no parens\n"),
                       "bad-suppression"),
            1);
}

// ========================================================== JSON report ==

TEST(DetlintJson, ReportCarriesEnvelopeRowsAndFindings) {
  detlint::Report report;
  report.files_scanned = 3;
  report.findings = lint("src/core/foo.cpp",
                         "std::mutex a_;\n"
                         "std::mutex b_;  // NOLINT-DET(confined-threads): "
                         "audited \"quoted\" lock\n");
  const std::string json = detlint::to_json(report);
  // BENCH_*.json envelope.
  EXPECT_NE(json.find("\"bench\": \"detlint\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": ["), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  // Per-rule counts: one open, one suppressed, no stale shields.
  EXPECT_NE(json.find("{\"labels\": {\"rule\": \"confined-threads\"}, "
                      "\"metrics\": {\"findings\": 1, \"suppressed\": 1, "
                      "\"stale_suppressions\": 0}}"),
            std::string::npos);
  // Finding records with escaped reason text.
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
  EXPECT_NE(json.find("audited \\\"quoted\\\" lock"), std::string::npos);
}

TEST(DetlintJson, RuleListIsStableAndDocumented) {
  const auto& rules = detlint::rules();
  std::set<std::string> names;
  for (const auto& rule : rules) {
    EXPECT_FALSE(rule.summary.empty()) << rule.name;
    names.insert(rule.name);
  }
  for (const char* expected :
       {"no-wallclock", "no-unordered-iteration", "no-pointer-order",
        "confined-threads", "require-has-message", "bad-suppression",
        "unused-suppression"}) {
    EXPECT_TRUE(names.count(expected) == 1) << expected;
  }
}

TEST(DetlintJson, StaleSuppressionCountsLandInPerRuleRows) {
  detlint::Report report;
  report.files_scanned = 1;
  report.findings = lint(
      "src/core/foo.cpp",
      "int x = 0;  // NOLINT-DET(no-wallclock): stale shield\n");
  const std::string json = detlint::to_json(report);
  // The stale count lands on the rule that was named...
  EXPECT_NE(json.find("{\"labels\": {\"rule\": \"no-wallclock\"}, "
                      "\"metrics\": {\"findings\": 0, \"suppressed\": 0, "
                      "\"stale_suppressions\": 1}}"),
            std::string::npos);
  // ...and the unused-suppression row carries the finding itself.
  EXPECT_NE(json.find("{\"labels\": {\"rule\": \"unused-suppression\"}, "
                      "\"metrics\": {\"findings\": 1, \"suppressed\": 0, "
                      "\"stale_suppressions\": 0}}"),
            std::string::npos);
}

// ============================================================= fixtures ==

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every rule ships a fixture pair: `<rule>.bad.cpp` must surface that
/// exact rule (so a regressing rule fails loudly) and `<rule>.clean.cpp`
/// must lint clean.
TEST(DetlintFixtures, EveryRuleHasABadFixtureThatFiresExactlyThatRule) {
  const fs::path dir = AHEFT_DETLINT_FIXTURE_DIR;
  int pairs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const std::size_t mark = name.find(".bad.cpp");
    if (mark == std::string::npos) {
      continue;
    }
    ++pairs;
    const std::string rule = name.substr(0, mark);
    const auto findings =
        lint("tools/detlint/fixtures/" + name, slurp(entry.path()));
    EXPECT_GE(count_rule(findings, rule), 1)
        << name << " no longer triggers its own rule";
    for (const Finding& f : findings) {
      EXPECT_EQ(f.rule, rule)
          << name << " leaks a foreign finding: " << f.rule << ": "
          << f.message;
    }

    const fs::path clean = dir / (rule + ".clean.cpp");
    ASSERT_TRUE(fs::exists(clean)) << "missing clean twin for " << name;
    const auto clean_findings =
        lint("tools/detlint/fixtures/" + rule + ".clean.cpp", slurp(clean));
    EXPECT_EQ(unsuppressed(clean_findings), 0)
        << rule << ".clean.cpp is not clean";
  }
  // One pair per rule (bad-suppression included).
  EXPECT_EQ(pairs, static_cast<int>(detlint::rules().size()));
}

TEST(DetlintFixtures, BadFixturesSeedTheExpectedFindingCounts) {
  const fs::path dir = AHEFT_DETLINT_FIXTURE_DIR;
  const std::vector<std::pair<std::string, int>> expected = {
      {"no-wallclock", 5},          {"no-unordered-iteration", 2},
      {"no-pointer-order", 4},      {"confined-threads", 3},
      {"require-has-message", 2},   {"bad-suppression", 4},
      {"unused-suppression", 3},
  };
  for (const auto& [rule, count] : expected) {
    const fs::path bad = dir / (rule + ".bad.cpp");
    const auto findings =
        lint("tools/detlint/fixtures/" + rule + ".bad.cpp", slurp(bad));
    EXPECT_EQ(count_rule(findings, rule), count) << rule;
  }
}

/// The committed registry must parse and keep covering the audited
/// modules the tree actually relies on.
TEST(DetlintFixtures, CommittedRegistryParsesAndCoversKnownModules) {
  const fs::path registry =
      fs::path(AHEFT_REPO_ROOT) / "tools/detlint/concurrency_registry.txt";
  const auto entries = detlint::parse_registry(slurp(registry));
  ASSERT_FALSE(entries.empty());
  const std::set<std::string> set(entries.begin(), entries.end());
  EXPECT_TRUE(set.count("src/core/strategy.cpp") == 1);
  EXPECT_TRUE(set.count("src/core/contention_policy.cpp") == 1);
}

}  // namespace
