// Unit tests for the support layer: RNG, stats, tables, CSV, env, pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>

#include "support/assert.h"
#include "support/csv.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace aheft {
namespace {

// ----- assert ------------------------------------------------------------

TEST(Assert, ThrowsAssertionErrorWithContext) {
  try {
    AHEFT_ASSERT(1 == 2, "one is not two");
    FAIL() << "expected AssertionError";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
}

TEST(Assert, RequireThrowsInvalidArgument) {
  EXPECT_THROW(AHEFT_REQUIRE(false, "bad arg"), std::invalid_argument);
}

// ----- rng ---------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  RngStream a(1);
  RngStream b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ChildStreamsAreIndependentOfParentDraws) {
  RngStream parent(7);
  const RngStream child_before = parent.child("x");
  parent.next_u64();
  parent.next_u64();
  const RngStream child_after = parent.child("x");
  EXPECT_EQ(child_before.seed(), child_after.seed());
}

TEST(Rng, ChildTagsProduceDistinctStreams) {
  RngStream parent(7);
  EXPECT_NE(parent.child("a").seed(), parent.child("b").seed());
  EXPECT_NE(parent.child(1).seed(), parent.child(2).seed());
}

TEST(Rng, UniformRespectsBounds) {
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  RngStream rng(11);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += rng.uniform01();
  }
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  RngStream rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(1, 6);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntRejectsBadRange) {
  RngStream rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, IndexStaysBelowBound) {
  RngStream rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, NormalMeanAndSpread) {
  RngStream rng(13);
  double total = 0.0;
  double total_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    total += x;
    total_sq += x * x;
  }
  const double mean = total / n;
  const double var = total_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  RngStream rng(17);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += rng.exponential(4.0);
  }
  EXPECT_NEAR(total / n, 4.0, 0.2);
}

TEST(Rng, ShuffleIsAPermutation) {
  RngStream rng(19);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, Hash64IsStableAndSpread) {
  EXPECT_EQ(hash64("abc"), hash64("abc"));
  EXPECT_NE(hash64("abc"), hash64("abd"));
  EXPECT_NE(hash64(""), hash64("a"));
}

// ----- stats ---------------------------------------------------------------

TEST(Stats, MeanVarianceMinMax) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats left;
  OnlineStats right;
  RngStream rng(23);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(Stats, MergeWithEmpty) {
  OnlineStats a;
  OnlineStats b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Stats, ImprovementRate) {
  EXPECT_NEAR(improvement_rate(4939.3, 3933.1), 0.2037, 1e-3);
  EXPECT_DOUBLE_EQ(improvement_rate(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_rate(10.0, 12.0), -0.2);
}

TEST(Stats, JainFairnessIndexOnKnownVectors) {
  // Perfect equality — index 1 regardless of the common value.
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({7.5, 7.5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({42.0}), 1.0);
  // One of n served: index 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  // {1, 3}: (1+3)^2 / (2 * (1+9)) = 0.8.
  EXPECT_DOUBLE_EQ(jain_fairness_index({1.0, 3.0}), 0.8);
  // {4, 2, 2}: 64 / (3 * 24).
  EXPECT_DOUBLE_EQ(jain_fairness_index({4.0, 2.0, 2.0}), 64.0 / 72.0);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(jain_fairness_index({10.0, 30.0}),
                   jain_fairness_index({1.0, 3.0}));
  // Degenerate inputs count as perfectly fair.
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0}), 1.0);
}

TEST(Stats, NormalCdfOnKnownValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.96), 0.024997895148220435, 1e-12);
  EXPECT_NEAR(normal_cdf(6.0), 1.0, 1e-9);
}

TEST(Stats, LogNormalAndWeibullClosedForms) {
  const LogNormalParams ln{1.0, 0.5};
  // CDF at the median exp(mu) is exactly one half.
  EXPECT_DOUBLE_EQ(ln.cdf(std::exp(1.0)), 0.5);
  EXPECT_DOUBLE_EQ(ln.quantile_from_normal(0.0), std::exp(1.0));
  EXPECT_NEAR(ln.mean(), std::exp(1.0 + 0.25 / 2.0), 1e-12);

  const WeibullParams wb{2.0, 3.0};
  // CDF at the scale is 1 - 1/e for every shape.
  EXPECT_NEAR(wb.cdf(3.0), 1.0 - std::exp(-1.0), 1e-12);
  // quantile is the exact inverse of cdf.
  for (const double u : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(wb.cdf(wb.quantile(u)), u, 1e-12);
  }
}

TEST(Stats, FitLogNormalRecoversParameters) {
  RngStream rng(42);
  std::vector<double> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    sample.push_back(rng.log_normal(2.0, 0.75));
  }
  const LogNormalParams fitted = fit_log_normal(sample);
  EXPECT_NEAR(fitted.mu, 2.0, 0.02);
  EXPECT_NEAR(fitted.sigma, 0.75, 0.02);
  // MLE on a log-normal sample beats the Weibull alternative in KS.
  const WeibullParams wrong = fit_weibull(sample);
  const double ks_right = ks_distance(
      sample, [&](double x) { return fitted.cdf(x); });
  const double ks_wrong = ks_distance(
      sample, [&](double x) { return wrong.cdf(x); });
  EXPECT_LT(ks_right, ks_wrong);
}

TEST(Stats, FitWeibullRecoversParameters) {
  RngStream rng(7);
  std::vector<double> sample;
  sample.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    sample.push_back(rng.weibull(1.6, 300.0));
  }
  const WeibullParams fitted = fit_weibull(sample);
  EXPECT_NEAR(fitted.shape, 1.6, 0.03);
  EXPECT_NEAR(fitted.scale, 300.0, 5.0);
}

TEST(Stats, FittersRejectNonPositiveSamples) {
  EXPECT_THROW((void)fit_log_normal({}), std::invalid_argument);
  EXPECT_THROW((void)fit_log_normal({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_weibull({1.0, -2.0}), std::invalid_argument);
}

TEST(Stats, EmpiricalQuantileMatchesR) {
  // R's default (type 7) on 1..5: quantile(x, .25) = 2, .5 = 3, .1 = 1.4.
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(empirical_quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(empirical_quantile(sorted, 1.0), 5.0);
  EXPECT_NEAR(empirical_quantile(sorted, 0.1), 1.4, 1e-12);
}

TEST(Stats, KsDistanceOnKnownVectors) {
  // Sample {0.25, 0.75} vs U(0,1): sup gap is 0.25 at both points.
  const double d = ks_distance({0.25, 0.75}, [](double x) { return x; });
  EXPECT_DOUBLE_EQ(d, 0.25);
  // Identical two-sample inputs: distance 0; disjoint ones: distance 1.
  EXPECT_DOUBLE_EQ(ks_distance({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance({1.0, 2.0}, {10.0, 20.0}), 1.0);
  // Known partial overlap: {1,2} vs {2,3} -> sup |F1 - F2| = 1/2 at 1.
  EXPECT_DOUBLE_EQ(ks_distance({1.0, 2.0}, {2.0, 3.0}), 0.5);
}

TEST(Rng, LogNormalWeibullGeometricMoments) {
  RngStream rng(11);
  double ln_sum = 0.0;
  double wb_sum = 0.0;
  double geo_sum = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ln_sum += rng.log_normal(0.0, 0.5);
    wb_sum += rng.weibull(2.0, 1.0);
    geo_sum += static_cast<double>(rng.geometric(0.25));
  }
  EXPECT_NEAR(ln_sum / n, std::exp(0.125), 0.02);        // exp(sigma^2/2)
  EXPECT_NEAR(wb_sum / n, std::sqrt(std::numbers::pi) / 2.0,
              0.01);                                     // Gamma(1.5)
  EXPECT_NEAR(geo_sum / n, 4.0, 0.05);                   // 1/p
  EXPECT_EQ(RngStream(3).geometric(1.0), 1u);
  EXPECT_THROW((void)RngStream(3).geometric(0.0), std::invalid_argument);
}

// ----- table ---------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  AsciiTable table({"name", "value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"b", "22.25"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("  1.5 |"), std::string::npos);  // right-aligned number
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(4075.0, 0), "4075");
  EXPECT_EQ(format_percent(0.204, 1), "20.4%");
}

// ----- csv -----------------------------------------------------------------

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/aheft_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.write_row({"1", "2"});
    EXPECT_THROW(csv.write_row({"only"}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

// ----- env -----------------------------------------------------------------

TEST(Env, ScaleRoundTrip) {
  EXPECT_EQ(parse_scale("smoke"), Scale::kSmoke);
  EXPECT_EQ(parse_scale("default"), Scale::kDefault);
  EXPECT_EQ(parse_scale("paper"), Scale::kPaper);
  EXPECT_EQ(parse_scale("full"), Scale::kPaper);
  EXPECT_FALSE(parse_scale("bogus").has_value());
  EXPECT_EQ(to_string(Scale::kPaper), "paper");
}

TEST(Env, ArgParserParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--scale=smoke", "--jobs=40", "--flag",
                        "positional"};
  ArgParser args(5, argv);
  EXPECT_EQ(args.scale(), Scale::kSmoke);
  EXPECT_EQ(args.get_int("jobs", 0), 40);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("ccr", 1.5), 1.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

// ----- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForInlineWithoutPool) {
  std::vector<int> hits(50, 0);
  parallel_for(nullptr, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::size_t i) {
                     if (i == 37) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(&pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesExceptionWithUnitChunks) {
  // chunk_size=1 is the sharded simulator's epoch-barrier configuration:
  // every index is its own pool task, and a throwing shard drain must
  // still surface at the barrier after the other chunks settle.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(
                   &pool, 16,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1);
                     if (i == 3) {
                       throw std::runtime_error("shard failed");
                     }
                   },
                   /*chunk_size=*/1),
               std::runtime_error);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedByTasks) {
  // A task that fans out further tasks (rescheduling cascades) must be
  // fully settled — children included — when wait_idle() returns.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &done] {
      pool.submit([&pool, &done] {
        pool.submit([&done] { done.fetch_add(1); });
        done.fetch_add(1);
      });
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 24);
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  // The destructor contract: outstanding tasks run before the workers
  // join, so work queued behind a slow task is never dropped.
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&completed] { completed.fetch_add(1); });
    }
    // No wait_idle(): destruction itself must flush the queue.
  }
  EXPECT_EQ(completed.load(), 32);
}

}  // namespace
}  // namespace aheft
