// Resilience unit tests: the Daly checkpoint model (optimum interval,
// segment occupancy, interrupted-segment decomposition), config
// validation, revocation bookkeeping in the ledger (truncate_commit
// carrying wait baselines into the requeue, revoking around a two-phase
// hold), and EventQueue cancel/compaction under revocation churn.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/resource_ledger.h"
#include "resilience/checkpoint_model.h"
#include "sim/event_queue.h"

namespace aheft {
namespace {

using core::ReservationEntry;
using core::ReservationState;
using core::ResourceLedger;
using resilience::CheckpointModel;
using resilience::ResilienceConfig;
using resilience::SegmentProgress;

// ---------------------------------------------------------------------
// Daly interval

TEST(DalyInterval, MatchesTheHigherOrderFormula) {
  const double delta = 0.5;
  const double mtbf = 250.0;
  const double ratio = delta / (2.0 * mtbf);
  const double expected = std::sqrt(2.0 * delta * mtbf) *
                              (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
                          delta;
  EXPECT_DOUBLE_EQ(resilience::daly_interval(delta, mtbf), expected);
  // Sanity on the magnitude: sqrt(2 * 0.5 * 250) ~ 15.8, minus delta.
  EXPECT_NEAR(resilience::daly_interval(delta, mtbf), 15.46, 0.1);
}

TEST(DalyInterval, ExpensiveDumpsDegenerateToOncePerFailure) {
  // delta >= M/2: checkpoint once per expected failure.
  EXPECT_DOUBLE_EQ(resilience::daly_interval(50.0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(resilience::daly_interval(80.0, 100.0), 100.0);
}

TEST(DalyInterval, RejectsNonPositiveInputs) {
  EXPECT_THROW((void)resilience::daly_interval(0.0, 100.0),
               std::invalid_argument);
  EXPECT_THROW((void)resilience::daly_interval(1.0, 0.0),
               std::invalid_argument);
}

TEST(DalyInterval, CheaperWritesCheckpointMoreOften) {
  // The optimum interval shrinks ~sqrt(delta): halving the write cost
  // must shorten the interval (finer retention granularity).
  EXPECT_LT(resilience::daly_interval(0.25, 250.0),
            resilience::daly_interval(0.5, 250.0));
  EXPECT_LT(resilience::daly_interval(0.5, 250.0),
            resilience::daly_interval(2.0, 250.0));
}

TEST(EffectiveInterval, ExplicitKnobOverridesDaly) {
  CheckpointModel model;
  model.enabled = true;
  model.write_cost = 0.5;
  model.mtbf = 250.0;
  EXPECT_DOUBLE_EQ(resilience::effective_interval(model),
                   resilience::daly_interval(0.5, 250.0));
  model.interval = 42.0;
  EXPECT_DOUBLE_EQ(resilience::effective_interval(model), 42.0);
}

TEST(EffectiveInterval, DisabledModelThrows) {
  EXPECT_THROW((void)resilience::effective_interval(CheckpointModel{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Segment occupancy

CheckpointModel explicit_model(double interval, double write_cost) {
  CheckpointModel model;
  model.enabled = true;
  model.write_cost = write_cost;
  model.interval = interval;
  return model;
}

TEST(SegmentOccupancy, InterleavesWritesBetweenCyclesOnly) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  // One cycle or less: completion persists the result, no write.
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(model, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(model, 4.0), 4.0);
  // 25 units = 3 cycles (10, 10, 5) with 2 interleaved writes.
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(model, 25.0), 27.0);
  // Exact multiple: the final cycle still ends on completion, not a write.
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(model, 30.0), 32.0);
}

TEST(SegmentOccupancy, DisabledOrEmptySegmentsPassThrough) {
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(CheckpointModel{}, 25.0),
                   25.0);
  EXPECT_DOUBLE_EQ(resilience::segment_occupancy(explicit_model(10.0, 1.0),
                                                 0.0),
                   0.0);
}

// ---------------------------------------------------------------------
// Segment progress (interrupted runs)

TEST(SegmentProgress, DegenerateModelLosesEverything) {
  const SegmentProgress p =
      resilience::segment_progress(CheckpointModel{}, 17.0, 40.0);
  EXPECT_DOUBLE_EQ(p.retained, 0.0);
  EXPECT_DOUBLE_EQ(p.overhead, 0.0);
  EXPECT_DOUBLE_EQ(p.lost, 17.0);
}

TEST(SegmentProgress, InterruptionBeforeFirstCheckpointLosesAll) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  // Interrupted mid-first-cycle: no image exists yet.
  const SegmentProgress p = resilience::segment_progress(model, 9.5, 40.0);
  EXPECT_DOUBLE_EQ(p.retained, 0.0);
  EXPECT_DOUBLE_EQ(p.lost, 9.5);
}

TEST(SegmentProgress, PartialWriteIsLostNotRetained) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  // Interrupted half-way through the first write (elapsed 10.5 of cycle
  // 11): the image is incomplete, so nothing is retained yet.
  const SegmentProgress p = resilience::segment_progress(model, 10.5, 40.0);
  EXPECT_DOUBLE_EQ(p.retained, 0.0);
  EXPECT_DOUBLE_EQ(p.lost, 10.5);
}

TEST(SegmentProgress, CompletedCheckpointsFloorTheProgress) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  // Two full cycles (22 elapsed) plus 3 units into the third: the image
  // holds 20 units; the write overhead is paid, the 3 units are lost.
  const SegmentProgress p = resilience::segment_progress(model, 25.0, 40.0);
  EXPECT_DOUBLE_EQ(p.retained, 20.0);
  EXPECT_DOUBLE_EQ(p.overhead, 2.0);
  EXPECT_DOUBLE_EQ(p.lost, 3.0);
  // Decomposition is exact: retained + overhead + lost == elapsed.
  EXPECT_DOUBLE_EQ(p.retained + p.overhead + p.lost, 25.0);
}

TEST(SegmentProgress, ElapsedIsClampedToTheSegmentOccupancy) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  // 25 units of work occupy 27; an "interruption" past that clamps, and
  // the final partial cycle (5 units) never wrote, so it counts as lost.
  const SegmentProgress p = resilience::segment_progress(model, 100.0, 25.0);
  EXPECT_DOUBLE_EQ(p.retained, 20.0);
  EXPECT_DOUBLE_EQ(p.overhead, 2.0);
  EXPECT_DOUBLE_EQ(p.lost, 5.0);
}

TEST(SegmentProgress, ZeroElapsedOrZeroWorkIsEmpty) {
  const CheckpointModel model = explicit_model(10.0, 1.0);
  const SegmentProgress a = resilience::segment_progress(model, 0.0, 40.0);
  EXPECT_DOUBLE_EQ(a.retained + a.overhead + a.lost, 0.0);
  const SegmentProgress b = resilience::segment_progress(model, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(b.retained + b.overhead + b.lost, 0.0);
}

// ---------------------------------------------------------------------
// Config validation

TEST(ResilienceValidate, DefaultConfigIsValidAndInactive) {
  const ResilienceConfig config;
  EXPECT_FALSE(config.active());
  EXPECT_NO_THROW(resilience::validate(config));
}

TEST(ResilienceValidate, RejectsInconsistentKnobs) {
  ResilienceConfig config;
  config.checkpoint.enabled = true;  // no write cost, no interval source
  EXPECT_THROW(resilience::validate(config), std::invalid_argument);

  config.checkpoint.write_cost = 1.0;
  EXPECT_THROW(resilience::validate(config), std::invalid_argument);
  config.checkpoint.mtbf = 100.0;
  EXPECT_NO_THROW(resilience::validate(config));

  config.preemption = true;
  config.preemption_ratio = 1.0;  // must be > 1
  EXPECT_THROW(resilience::validate(config), std::invalid_argument);
  config.preemption_ratio = 1.25;
  EXPECT_NO_THROW(resilience::validate(config));

  config.max_revocations_per_job = 0;
  EXPECT_THROW(resilience::validate(config), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Ledger revocation bookkeeping

constexpr grid::ResourceId kR = 0;
constexpr grid::ResourceId kOther = 1;

ReservationEntry& upsert(ResourceLedger& ledger, std::size_t participant,
                         std::uint64_t tag, sim::Time ready,
                         double duration,
                         grid::ResourceId resource = kR) {
  return ledger.upsert(participant, resource, tag, ready, duration,
                       /*priority=*/1.0, /*active_since=*/0.0,
                       /*planned_span=*/0.0);
}

TEST(LedgerRevocation, TruncateWithCarryResumesTheWaitClock) {
  ResourceLedger ledger;
  upsert(ledger, 0, 7, /*ready=*/2.0, /*duration=*/30.0);
  ledger.commit(0, kR, 7, 10.0, 40.0);

  // Revocation at t=18: the window shrinks and the baseline is carried.
  ledger.truncate_commit(0, kR, 7, 18.0, /*carry_baseline=*/true);
  ASSERT_EQ(ledger.committed_windows(kR).size(), 1u);
  EXPECT_DOUBLE_EQ(ledger.committed_windows(kR).front().end, 18.0);
  EXPECT_DOUBLE_EQ(ledger.committed_until(kR), 18.0);

  // The requeue re-registers the remainder — on a different machine, as
  // the revocation path does — and resumes the original wait clock
  // instead of restarting it at the requeue time.
  const ReservationEntry& requeued =
      upsert(ledger, 0, 7, /*ready=*/18.0, /*duration=*/22.0, kOther);
  EXPECT_DOUBLE_EQ(requeued.first_ready, 2.0);
}

TEST(LedgerRevocation, TruncateWithoutCarryRestartsTheWaitClock) {
  ResourceLedger ledger;
  upsert(ledger, 0, 7, /*ready=*/2.0, /*duration=*/30.0);
  ledger.commit(0, kR, 7, 10.0, 40.0);

  // The historical reschedule path truncates without carrying.
  ledger.truncate_commit(0, kR, 7, 18.0);
  const ReservationEntry& again =
      upsert(ledger, 0, 7, /*ready=*/18.0, /*duration=*/22.0);
  EXPECT_DOUBLE_EQ(again.first_ready, 18.0);
}

TEST(LedgerRevocation, TruncationPastTheWindowEndIsANoOp) {
  ResourceLedger ledger;
  upsert(ledger, 0, 7, 0.0, 10.0);
  ledger.commit(0, kR, 7, 0.0, 10.0);
  ledger.truncate_commit(0, kR, 7, 25.0, /*carry_baseline=*/true);
  EXPECT_DOUBLE_EQ(ledger.committed_until(kR), 10.0);
  // No revocation happened, so no baseline was carried either.
  const ReservationEntry& fresh = upsert(ledger, 0, 7, 30.0, 5.0);
  EXPECT_DOUBLE_EQ(fresh.first_ready, 30.0);
}

TEST(LedgerRevocation, TruncateToTheStartEmptiesTheWindow) {
  ResourceLedger ledger;
  upsert(ledger, 0, 7, 0.0, 10.0);
  ledger.commit(0, kR, 7, 5.0, 15.0);
  // Revoked before it began running any useful wall time: the window
  // collapses to nothing and the floor falls back to zero.
  ledger.truncate_commit(0, kR, 7, 5.0, /*carry_baseline=*/true);
  EXPECT_TRUE(ledger.committed_windows(kR).empty());
  EXPECT_DOUBLE_EQ(ledger.committed_until(kR), 0.0);
}

TEST(LedgerRevocation, RevokingAroundATwoPhaseHoldLeavesTheClaimIntact) {
  ResourceLedger ledger;
  // Participant 0 runs committed work [0, 30); participant 1 holds a
  // two-phase claim behind it at [30, 40).
  upsert(ledger, 0, 1, 0.0, 30.0);
  ledger.commit(0, kR, 1, 0.0, 30.0);
  upsert(ledger, 1, 2, 0.0, 10.0);
  EXPECT_TRUE(ledger.hold(1, kR, 2, 30.0));

  // Participant 0's job is revoked at t=12. The held claim must survive
  // untouched — a hold is a granted start, not a committed occupation.
  ledger.truncate_commit(0, kR, 1, 12.0, /*carry_baseline=*/true);
  ASSERT_EQ(ledger.queue(kR).size(), 1u);
  const ReservationEntry& held = ledger.queue(kR).front();
  EXPECT_EQ(held.state, ReservationState::kHeld);
  EXPECT_DOUBLE_EQ(held.held_start, 30.0);

  // The holder can still re-arbitrate (earlier now that the machine
  // freed) and commit through the normal lifecycle.
  EXPECT_TRUE(ledger.hold(1, kR, 2, 12.0));
  const ReservationEntry committed = ledger.commit(1, kR, 2, 12.0, 22.0);
  EXPECT_EQ(committed.state, ReservationState::kCommitted);
  EXPECT_DOUBLE_EQ(ledger.committed_until_excluding(kR, 0), 22.0);
}

TEST(LedgerRevocation, WithdrawingAHeldClaimCarriesItsBaseline) {
  ResourceLedger ledger;
  upsert(ledger, 1, 2, /*ready=*/3.0, /*duration=*/10.0);
  ledger.hold(1, kR, 2, 20.0);
  // The machine departs before the re-arbitrated start: the two-phase
  // path abandons the held placement entirely.
  EXPECT_TRUE(ledger.withdraw(1, kR, 2));
  EXPECT_TRUE(ledger.queue(kR).empty());
  // The re-registration elsewhere resumes the wait clock.
  const ReservationEntry& moved =
      upsert(ledger, 1, 2, /*ready=*/25.0, /*duration=*/10.0, kOther);
  EXPECT_DOUBLE_EQ(moved.first_ready, 3.0);
}

// ---------------------------------------------------------------------
// EventQueue under revocation churn

TEST(EventQueueChurn, CancelCompactionInvariantHoldsUnderChurn) {
  sim::EventQueue queue;
  // Revocation churn: repeatedly schedule far-future completions (the
  // planned finish of a committed job) and cancel them (the job was
  // revoked and requeued). The heap must not grow without bound.
  std::vector<sim::EventId> live;
  for (int round = 0; round < 200; ++round) {
    std::vector<sim::EventId> doomed;
    for (int i = 0; i < 10; ++i) {
      doomed.push_back(
          queue.push(1000.0 + round * 10.0 + i, [] {}));
    }
    live.push_back(queue.push(500.0 + round, [] {}));
    for (const sim::EventId id : doomed) {
      EXPECT_TRUE(queue.cancel(id));
    }
    EXPECT_LE(queue.key_count(),
              std::max(2 * queue.live_count(),
                       sim::EventQueue::kCompactionFloor));
  }
  EXPECT_EQ(queue.live_count(), live.size());

  // Double-cancel and cancel-after-fire both report false.
  EXPECT_TRUE(queue.cancel(live.back()));
  EXPECT_FALSE(queue.cancel(live.back()));
  live.pop_back();

  // The survivors drain in time order despite the compactions.
  sim::Time last = -1.0;
  std::size_t fired = 0;
  while (!queue.empty()) {
    const sim::EventQueue::Fired event = queue.pop();
    EXPECT_GT(event.time, last);
    last = event.time;
    ++fired;
    EXPECT_FALSE(queue.cancel(event.id));
  }
  EXPECT_EQ(fired, live.size());
}

TEST(EventQueueChurn, CancelledHeadNeverFires) {
  sim::EventQueue queue;
  bool cancelled_ran = false;
  bool kept_ran = false;
  const sim::EventId head = queue.push(1.0, [&] { cancelled_ran = true; });
  queue.push(2.0, [&] { kept_ran = true; });
  EXPECT_TRUE(queue.cancel(head));
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  queue.pop().action();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace aheft
