// Strategy-driver / session / multi-DAG workflow-stream tests: session
// equivalence with the legacy entry points, cross-workflow contention,
// arrival-time ordering, and stream determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/adaptive_run.h"
#include "core/strategy.h"
#include "core/workflow_stream.h"
#include "exp/case.h"
#include "helpers.h"

namespace aheft::core {
namespace {

/// A two-job chain (10 + 5) on one always-on resource.
struct ChainCase {
  dag::Dag dag{"chain"};
  grid::ResourcePool pool;
  grid::MachineModel model{2, 1};

  ChainCase() {
    dag.add_job("a");
    dag.add_job("b");
    dag.add_edge(0, 1, 0.0);
    dag.finalize();
    pool.add(grid::Resource{.name = "only"});
    model.set_compute_cost(0, 0, 10.0);
    model.set_compute_cost(1, 0, 5.0);
  }
};

// --------------------------------------------------- session equivalence --

/// Every legacy entry point must produce the identical result as the
/// unified session path it now wraps: same makespan, same counters.
TEST(Session, LegacyEntryPointsMatchRunStrategy) {
  const test::RandomCase c = test::make_random_case(99);
  SessionEnvironment env;
  env.pool = &c.pool;

  const StrategyOutcome heft_old =
      run_static_heft(c.workload.dag, c.model, c.model, c.pool);
  const StrategyOutcome heft_new = run_strategy(
      StrategyKind::kStaticHeft, c.workload.dag, c.model, c.model, env);
  EXPECT_DOUBLE_EQ(heft_old.makespan, heft_new.makespan);
  EXPECT_EQ(heft_old.evaluations, heft_new.evaluations);

  const StrategyOutcome aheft_old =
      run_adaptive_aheft(c.workload.dag, c.model, c.model, c.pool, {});
  const StrategyOutcome aheft_new = run_strategy(
      StrategyKind::kAdaptiveAheft, c.workload.dag, c.model, c.model, env);
  EXPECT_DOUBLE_EQ(aheft_old.makespan, aheft_new.makespan);
  EXPECT_EQ(aheft_old.evaluations, aheft_new.evaluations);
  EXPECT_EQ(aheft_old.adoptions, aheft_new.adoptions);
  EXPECT_EQ(aheft_old.restarts, aheft_new.restarts);

  const StrategyOutcome dyn_old =
      run_dynamic_baseline(c.workload.dag, c.model, c.pool);
  const StrategyOutcome dyn_new = run_strategy(
      StrategyKind::kDynamic, c.workload.dag, c.model, c.model, env);
  EXPECT_DOUBLE_EQ(dyn_old.makespan, dyn_new.makespan);
  EXPECT_EQ(dyn_old.evaluations, dyn_new.evaluations);
}

/// The planner's own run() (a private session) and an explicit launch
/// into a caller-owned session agree as well.
TEST(Session, ExplicitLaunchMatchesPlannerRun) {
  const test::RandomCase c = test::make_random_case(7);
  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, {});
  const AdaptiveResult direct = planner.run();

  SessionEnvironment env;
  env.pool = &c.pool;
  SimulationSession session(env);
  AdaptivePlanner launched(c.workload.dag, c.model, c.model, c.pool, {});
  AdaptiveResult via_launch;
  bool completed = false;
  launched.launch(session, sim::kTimeZero, [&](const AdaptiveResult& r) {
    via_launch = r;
    completed = true;
  });
  session.run();
  ASSERT_TRUE(completed);
  EXPECT_DOUBLE_EQ(direct.makespan, via_launch.makespan);
  EXPECT_EQ(direct.adoptions, via_launch.adoptions);
}

TEST(Session, RejectsMissingPool) {
  EXPECT_THROW(SimulationSession{SessionEnvironment{}},
               std::invalid_argument);
}

TEST(Session, LaunchIntoForeignPoolSessionIsRejected) {
  const ChainCase c;
  grid::ResourcePool other;
  other.add(grid::Resource{});
  SessionEnvironment env;
  env.pool = &other;
  SimulationSession session(env);
  AdaptivePlanner planner(c.dag, c.model, c.model, c.pool, {});
  EXPECT_THROW(planner.launch(session, sim::kTimeZero, {}),
               std::invalid_argument);
}

// ------------------------------------------------------------ contention --

/// Two identical chains on a single machine must serialize: the winner
/// runs uncontended, the loser waits for the full winner makespan.
TEST(Stream, ContentionSerializesOneMachine) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  SessionEnvironment env;
  env.pool = &c.pool;

  std::vector<WorkflowInstance> instances(2);
  for (std::size_t i = 0; i < 2; ++i) {
    instances[i].name = i == 0 ? "first" : "second";
    instances[i].dag = &c.dag;
    instances[i].estimates = &c.model;
    instances[i].actual = &c.model;
    instances[i].arrival = sim::kTimeZero;
  }
  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);

  ASSERT_EQ(outcome.workflows.size(), 2u);
  EXPECT_DOUBLE_EQ(outcome.workflows[0].makespan, 15.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].makespan, 30.0);
  EXPECT_DOUBLE_EQ(outcome.span, 30.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].slowdown, 2.0);
  EXPECT_DOUBLE_EQ(outcome.mean_slowdown, 1.5);
  EXPECT_DOUBLE_EQ(outcome.throughput, 2.0 / 30.0);
}

/// The dynamic strategy contends through the same arbitration.
TEST(Stream, DynamicWorkflowsContendToo) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kDynamic);
  SessionEnvironment env;
  env.pool = &c.pool;

  std::vector<WorkflowInstance> instances(2);
  for (std::size_t i = 0; i < 2; ++i) {
    instances[i].name = "wf";
    instances[i].dag = &c.dag;
    instances[i].estimates = &c.model;
    instances[i].actual = &c.model;
    instances[i].arrival = sim::kTimeZero;
  }
  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);
  EXPECT_DOUBLE_EQ(outcome.span, 30.0);
  EXPECT_DOUBLE_EQ(outcome.max_makespan, 30.0);
}

// ------------------------------------------------------ arrival ordering --

TEST(Stream, ArrivalTimesGateLaunches) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kAdaptiveAheft);
  SessionEnvironment env;
  env.pool = &c.pool;

  // Add out of arrival order on purpose; results stay in insertion order
  // but launches happen by arrival, so the t=40 instance finds the
  // machine free and runs uncontended.
  std::vector<WorkflowInstance> instances(2);
  instances[0].name = "late";
  instances[0].dag = &c.dag;
  instances[0].estimates = &c.model;
  instances[0].actual = &c.model;
  instances[0].arrival = 40.0;
  instances[1].name = "early";
  instances[1].dag = &c.dag;
  instances[1].estimates = &c.model;
  instances[1].actual = &c.model;
  instances[1].arrival = 0.0;

  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);
  ASSERT_EQ(outcome.workflows.size(), 2u);
  const WorkflowResult& late = outcome.workflows[0];
  const WorkflowResult& early = outcome.workflows[1];
  EXPECT_DOUBLE_EQ(early.arrival, 0.0);
  EXPECT_DOUBLE_EQ(early.finish, 15.0);
  EXPECT_DOUBLE_EQ(late.arrival, 40.0);
  // No work may predate the arrival: the finish is release + makespan.
  EXPECT_DOUBLE_EQ(late.finish, 55.0);
  EXPECT_DOUBLE_EQ(late.makespan, 15.0);
  EXPECT_DOUBLE_EQ(late.slowdown, 1.0);
}

TEST(Stream, RejectsEmptyAndMalformedInstances) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  SessionEnvironment env;
  env.pool = &c.pool;
  EXPECT_THROW((void)run_workflow_stream(env, *driver, {}),
               std::invalid_argument);
  std::vector<WorkflowInstance> missing_dag(1);
  EXPECT_THROW((void)run_workflow_stream(env, *driver, missing_dag),
               std::invalid_argument);
}

// ---------------------------------------------------- stream determinism --

exp::CaseSpec stream_spec() {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = 20;
  spec.ccr = 1.0;
  spec.dynamics = {5, 200.0, 0.2};
  spec.seed = 4242;
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 250.0;
  spec.bursty.mean_burst = 100.0;
  spec.bursty.calm_arrival_mean = 400.0;
  spec.bursty.burst_arrival_mean = 50.0;
  spec.react_to_variance = true;
  spec.horizon_factor = 2.0;
  spec.stream_jobs = 4;
  spec.stream_interarrival = 150.0;
  return spec;
}

TEST(Stream, SameSeedIsBitIdentical) {
  const exp::StreamCaseResult a = exp::run_stream_case(stream_spec());
  const exp::StreamCaseResult b = exp::run_stream_case(stream_spec());
  ASSERT_EQ(a.workflows, 4u);
  EXPECT_EQ(a.heft.makespans, b.heft.makespans);
  EXPECT_EQ(a.aheft.makespans, b.aheft.makespans);
  EXPECT_EQ(a.minmin.makespans, b.minmin.makespans);
  EXPECT_EQ(a.heft.slowdowns, b.heft.slowdowns);
  EXPECT_EQ(a.aheft.adoptions, b.aheft.adoptions);
  EXPECT_DOUBLE_EQ(a.minmin.throughput, b.minmin.throughput);
}

TEST(Stream, DifferentSeedsDiffer) {
  const exp::StreamCaseResult a = exp::run_stream_case(stream_spec());
  exp::CaseSpec other = stream_spec();
  other.seed = 777;
  const exp::StreamCaseResult b = exp::run_stream_case(other);
  EXPECT_NE(a.aheft.makespans, b.aheft.makespans);
}

TEST(Stream, CaseProducesSaneAggregates) {
  const exp::StreamCaseResult result =
      exp::run_stream_case(stream_spec());
  for (const exp::StreamStrategySummary* s :
       {&result.heft, &result.aheft, &result.minmin}) {
    ASSERT_EQ(s->makespans.size(), 4u);
    ASSERT_EQ(s->slowdowns.size(), 4u);
    EXPECT_GT(s->span, 0.0);
    EXPECT_GT(s->throughput, 0.0);
    EXPECT_GT(s->mean_makespan, 0.0);
    EXPECT_GE(s->max_makespan, s->mean_makespan);
    EXPECT_DOUBLE_EQ(
        *std::max_element(s->makespans.begin(), s->makespans.end()),
        s->max_makespan);
    // Slowdowns can dip below 1 only marginally (a competitor's arrival
    // can perturb tie-breaks), never collapse.
    for (const double slowdown : s->slowdowns) {
      EXPECT_GT(slowdown, 0.5);
    }
  }
}

/// Specs carrying a multi-workflow axis must not slip into the
/// single-DAG path, where the axis would silently shift the environment.
TEST(Stream, RunCaseRejectsMultiWorkflowSpecs) {
  EXPECT_THROW((void)exp::run_case(stream_spec()), std::invalid_argument);
}

/// A stream of one workflow must reduce exactly to the single-DAG case.
TEST(Stream, SingletonStreamMatchesSingleDagRun) {
  exp::CaseSpec spec = stream_spec();
  spec.stream_jobs = 1;
  spec.run_dynamic = true;
  spec.horizon_factor = 4.0;
  const exp::StreamCaseResult stream = exp::run_stream_case(spec);
  const exp::CaseResult single = exp::run_case(spec);
  ASSERT_EQ(stream.workflows, 1u);
  EXPECT_DOUBLE_EQ(stream.aheft.makespans[0], single.aheft_makespan);
  EXPECT_DOUBLE_EQ(stream.minmin.makespans[0], single.minmin_makespan);
  EXPECT_DOUBLE_EQ(stream.heft.makespans[0], single.heft_makespan);
}

}  // namespace
}  // namespace aheft::core
