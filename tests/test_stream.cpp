// Strategy-driver / session / multi-DAG workflow-stream tests: session
// equivalence with the legacy entry points, cross-workflow contention
// under every contention policy, arrival-time ordering, wait-time
// accounting, and stream determinism.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/contention_policy.h"
#include "core/dynamic_scheduler.h"
#include "core/resource_ledger.h"
#include "core/strategy.h"
#include "core/workflow_stream.h"
#include "exp/case.h"
#include "exp/sweeps.h"
#include "helpers.h"

namespace aheft::core {
namespace {

/// A two-job chain (10 + 5) on one always-on resource.
struct ChainCase {
  dag::Dag dag{"chain"};
  grid::ResourcePool pool;
  grid::MachineModel model{2, 1};

  ChainCase() {
    dag.add_job("a");
    dag.add_job("b");
    dag.add_edge(0, 1, 0.0);
    dag.finalize();
    pool.add(grid::Resource{.name = "only"});
    model.set_compute_cost(0, 0, 10.0);
    model.set_compute_cost(1, 0, 5.0);
  }
};

/// A long chain (6 x 10) and a short single job (10) competing for one
/// machine: the canonical starvation scenario the contention policies
/// must arbitrate differently.
struct CollisionCase {
  dag::Dag long_dag{"long"};
  dag::Dag short_dag{"short"};
  grid::ResourcePool pool;
  grid::MachineModel long_model{6, 1};
  grid::MachineModel short_model{1, 1};

  CollisionCase() {
    for (int i = 0; i < 6; ++i) {
      long_dag.add_job("l" + std::to_string(i));
      if (i > 0) {
        long_dag.add_edge(i - 1, i, 0.0);
      }
    }
    long_dag.finalize();
    short_dag.add_job("s0");
    short_dag.finalize();
    pool.add(grid::Resource{.name = "only"});
    for (dag::JobId i = 0; i < 6; ++i) {
      long_model.set_compute_cost(i, 0, 10.0);
    }
    short_model.set_compute_cost(0, 0, 10.0);
  }

  /// Long workflow first (it launches first and wins the machine),
  /// short second; both arrive at t = 0.
  [[nodiscard]] std::vector<WorkflowInstance> instances(
      double long_priority = 1.0, double short_priority = 1.0) const {
    std::vector<WorkflowInstance> result(2);
    result[0].name = "long";
    result[0].dag = &long_dag;
    result[0].estimates = &long_model;
    result[0].actual = &long_model;
    result[0].priority = long_priority;
    result[1].name = "short";
    result[1].dag = &short_dag;
    result[1].estimates = &short_model;
    result[1].actual = &short_model;
    result[1].priority = short_priority;
    return result;
  }
};

// --------------------------------------------------- session equivalence --

/// The classic per-strategy entry points (the planner's own run(), the
/// one-call dynamic simulation) must produce the identical result as the
/// unified session path: same makespan, same counters.
TEST(Session, ClassicEntryPointsMatchRunStrategy) {
  const test::RandomCase c = test::make_random_case(99);
  SessionEnvironment env;
  env.pool = &c.pool;

  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, {});
  const AdaptiveResult aheft_old = planner.run();
  const StrategyOutcome aheft_new = run_strategy(
      StrategyKind::kAdaptiveAheft, c.workload.dag, c.model, c.model, env);
  EXPECT_DOUBLE_EQ(aheft_old.makespan, aheft_new.makespan);
  EXPECT_EQ(aheft_old.evaluations, aheft_new.evaluations);
  EXPECT_EQ(aheft_old.adoptions, aheft_new.adoptions);
  EXPECT_EQ(aheft_old.restarts, aheft_new.restarts);

  const DynamicRunResult dyn_old =
      run_dynamic(c.workload.dag, c.model, c.pool);
  const StrategyOutcome dyn_new = run_strategy(
      StrategyKind::kDynamic, c.workload.dag, c.model, c.model, env);
  EXPECT_DOUBLE_EQ(dyn_old.makespan, dyn_new.makespan);
  EXPECT_EQ(dyn_old.batches, dyn_new.evaluations);
}

/// The planner's own run() (a private session) and an explicit launch
/// into a caller-owned session agree as well.
TEST(Session, ExplicitLaunchMatchesPlannerRun) {
  const test::RandomCase c = test::make_random_case(7);
  AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool, {});
  const AdaptiveResult direct = planner.run();

  SessionEnvironment env;
  env.pool = &c.pool;
  SimulationSession session(env);
  AdaptivePlanner launched(c.workload.dag, c.model, c.model, c.pool, {});
  AdaptiveResult via_launch;
  bool completed = false;
  launched.launch(session, sim::kTimeZero, [&](const AdaptiveResult& r) {
    via_launch = r;
    completed = true;
  });
  session.run();
  ASSERT_TRUE(completed);
  EXPECT_DOUBLE_EQ(direct.makespan, via_launch.makespan);
  EXPECT_EQ(direct.adoptions, via_launch.adoptions);
}

TEST(Session, RejectsMissingPool) {
  EXPECT_THROW(SimulationSession{SessionEnvironment{}},
               std::invalid_argument);
}

TEST(Session, LaunchIntoForeignPoolSessionIsRejected) {
  const ChainCase c;
  grid::ResourcePool other;
  other.add(grid::Resource{});
  SessionEnvironment env;
  env.pool = &other;
  SimulationSession session(env);
  AdaptivePlanner planner(c.dag, c.model, c.model, c.pool, {});
  EXPECT_THROW(planner.launch(session, sim::kTimeZero, {}),
               std::invalid_argument);
}

// ------------------------------------------------------------ contention --

/// Two identical chains on a single machine must serialize: the winner
/// runs uncontended, the loser waits for the full winner makespan.
TEST(Stream, ContentionSerializesOneMachine) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  SessionEnvironment env;
  env.pool = &c.pool;

  std::vector<WorkflowInstance> instances(2);
  for (std::size_t i = 0; i < 2; ++i) {
    instances[i].name = i == 0 ? "first" : "second";
    instances[i].dag = &c.dag;
    instances[i].estimates = &c.model;
    instances[i].actual = &c.model;
    instances[i].arrival = sim::kTimeZero;
  }
  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);

  ASSERT_EQ(outcome.workflows.size(), 2u);
  EXPECT_DOUBLE_EQ(outcome.workflows[0].makespan, 15.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].makespan, 30.0);
  EXPECT_DOUBLE_EQ(outcome.span, 30.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].slowdown, 2.0);
  EXPECT_DOUBLE_EQ(outcome.mean_slowdown, 1.5);
  EXPECT_DOUBLE_EQ(outcome.max_slowdown, 2.0);
  EXPECT_DOUBLE_EQ(outcome.throughput, 2.0 / 30.0);
  // Wait accounting: the winner never waited; the loser's first job
  // waited out the winner's full 15-unit makespan, its second none.
  EXPECT_DOUBLE_EQ(outcome.workflows[0].wait, 0.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].wait, 15.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].max_wait, 15.0);
  EXPECT_DOUBLE_EQ(outcome.mean_wait, 7.5);
  EXPECT_DOUBLE_EQ(outcome.max_wait, 15.0);
  // Jain's index over the slowdowns {1, 2}: 9 / (2 * 5).
  EXPECT_DOUBLE_EQ(outcome.jain_fairness, 0.9);
}

/// The dynamic strategy contends through the same arbitration.
TEST(Stream, DynamicWorkflowsContendToo) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kDynamic);
  SessionEnvironment env;
  env.pool = &c.pool;

  std::vector<WorkflowInstance> instances(2);
  for (std::size_t i = 0; i < 2; ++i) {
    instances[i].name = "wf";
    instances[i].dag = &c.dag;
    instances[i].estimates = &c.model;
    instances[i].actual = &c.model;
    instances[i].arrival = sim::kTimeZero;
  }
  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);
  EXPECT_DOUBLE_EQ(outcome.span, 30.0);
  EXPECT_DOUBLE_EQ(outcome.max_makespan, 30.0);
}

// ----------------------------------------------------- contention policy --

SessionEnvironment policy_env(const grid::ResourcePool& pool,
                              const std::string& policy) {
  SessionEnvironment env;
  env.pool = &pool;
  env.contention_policy = policy;
  return env;
}

TEST(ContentionPolicy, StringRoundTrip) {
  for (const ContentionPolicyKind kind :
       {ContentionPolicyKind::kFcfs, ContentionPolicyKind::kPriority,
        ContentionPolicyKind::kFairShare}) {
    const auto parsed = contention_policy_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    EXPECT_EQ(make_contention_policy(kind)->kind(), kind);
    EXPECT_EQ(make_contention_policy(kind)->name(), to_string(kind));
  }
  EXPECT_FALSE(contention_policy_from_string("round-robin").has_value());
}

TEST(ContentionPolicy, RegistryKnowsBuiltinsAndRejectsUnknown) {
  ContentionPolicyRegistry& registry = ContentionPolicyRegistry::instance();
  for (const char* name : {"fcfs", "priority", "fair-share"}) {
    EXPECT_TRUE(registry.contains(name));
    EXPECT_EQ(registry.create(name)->name(), name);
  }
  EXPECT_FALSE(registry.contains("round-robin"));
  try {
    (void)registry.create("round-robin");
    FAIL() << "unknown policy must throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("fair-share"),
              std::string::npos);
  }
}

TEST(ContentionPolicy, StrategyFromStringRoundTrips) {
  for (const StrategyKind kind :
       {StrategyKind::kStaticHeft, StrategyKind::kAdaptiveAheft,
        StrategyKind::kDynamic}) {
    const auto parsed = strategy_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(strategy_from_string("minmin").has_value());
}

TEST(ContentionPolicy, SessionRejectsUnknownPolicyAndBadPriority) {
  const ChainCase c;
  EXPECT_THROW(SimulationSession{policy_env(c.pool, "round-robin")},
               std::invalid_argument);
  SimulationSession session(policy_env(c.pool, "fcfs"));
  ExecutionEngine engine(session, c.dag, c.model);
  EXPECT_THROW(session.add_participant(nullptr), std::invalid_argument);
  ExecutionEngine standalone(session.simulator(), c.dag, c.model, c.pool);
  EXPECT_THROW(session.add_participant(&standalone, 0.0),
               std::invalid_argument);
  EXPECT_THROW(session.add_participant(&standalone, -2.0),
               std::invalid_argument);
}

/// FCFS convoy: the long workflow launches first and keeps the machine
/// through its entire chain; the short workflow starves behind it, which
/// the wait metrics and Jain's index must price.
TEST(ContentionPolicy, FcfsStarvesTheShortWorkflow) {
  const CollisionCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  const StreamOutcome outcome = run_workflow_stream(
      policy_env(c.pool, "fcfs"), *driver, c.instances());
  ASSERT_EQ(outcome.workflows.size(), 2u);
  EXPECT_DOUBLE_EQ(outcome.workflows[0].makespan, 60.0);  // long: solo pace
  EXPECT_DOUBLE_EQ(outcome.workflows[1].makespan, 70.0);  // short: starved
  EXPECT_DOUBLE_EQ(outcome.workflows[0].wait, 0.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].wait, 60.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].slowdown, 7.0);
  EXPECT_DOUBLE_EQ(outcome.max_slowdown, 7.0);
  EXPECT_DOUBLE_EQ(outcome.max_wait, 60.0);
}

/// Fair share breaks the convoy once the short workflow's stretch (wall
/// time over its own solo makespan) runs past the deadband: it bounds
/// the worst slowdown and strictly improves Jain's index over FCFS.
TEST(ContentionPolicy, FairShareBoundsMaxSlowdown) {
  const CollisionCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  const StreamOutcome fcfs = run_workflow_stream(
      policy_env(c.pool, "fcfs"), *driver, c.instances());
  const StreamOutcome fair = run_workflow_stream(
      policy_env(c.pool, "fair-share"), *driver, c.instances());
  ASSERT_EQ(fair.workflows.size(), 2u);
  // The short workflow is admitted at t = 30 (stretch 3 > deadband),
  // the long one resumes afterwards.
  EXPECT_DOUBLE_EQ(fair.workflows[1].makespan, 40.0);
  EXPECT_DOUBLE_EQ(fair.workflows[1].wait, 30.0);
  EXPECT_DOUBLE_EQ(fair.workflows[0].makespan, 70.0);
  EXPECT_DOUBLE_EQ(fair.workflows[0].wait, 10.0);
  EXPECT_LT(fair.max_slowdown, fcfs.max_slowdown);
  EXPECT_GT(fair.jain_fairness, fcfs.jain_fairness);
}

/// Strict priorities displace regardless of stretch: a high-priority
/// short workflow preempts the queue order immediately, a low-priority
/// one starves exactly like FCFS.
TEST(ContentionPolicy, PriorityArbitratesByRank) {
  const CollisionCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  const StreamOutcome high = run_workflow_stream(
      policy_env(c.pool, "priority"), *driver,
      c.instances(/*long=*/1.0, /*short=*/10.0));
  EXPECT_DOUBLE_EQ(high.workflows[1].makespan, 20.0);
  EXPECT_DOUBLE_EQ(high.workflows[1].wait, 10.0);
  EXPECT_DOUBLE_EQ(high.workflows[0].makespan, 70.0);

  const StreamOutcome low = run_workflow_stream(
      policy_env(c.pool, "priority"), *driver,
      c.instances(/*long=*/10.0, /*short=*/1.0));
  EXPECT_DOUBLE_EQ(low.workflows[0].makespan, 60.0);
  EXPECT_DOUBLE_EQ(low.workflows[1].makespan, 70.0);
  EXPECT_DOUBLE_EQ(low.workflows[1].wait, 60.0);
}

/// Identical workflows arriving at the same instant: every policy must
/// break the tie the same deterministic way (launch order) and reproduce
/// it bit-identically across runs.
TEST(ContentionPolicy, DeterministicTieBreakForIdenticalArrivals) {
  const ChainCase c;
  for (const char* policy : {"fcfs", "priority", "fair-share"}) {
    const std::unique_ptr<StrategyDriver> driver =
        make_strategy_driver(StrategyKind::kStaticHeft);
    std::vector<WorkflowInstance> instances(2);
    for (std::size_t i = 0; i < 2; ++i) {
      instances[i].name = i == 0 ? "first" : "second";
      instances[i].dag = &c.dag;
      instances[i].estimates = &c.model;
      instances[i].actual = &c.model;
    }
    const StreamOutcome a = run_workflow_stream(policy_env(c.pool, policy),
                                                *driver, instances);
    const StreamOutcome b = run_workflow_stream(policy_env(c.pool, policy),
                                                *driver, instances);
    ASSERT_EQ(a.workflows.size(), 2u) << policy;
    // The first-launched workflow wins the machine under every policy
    // (equal priorities and equal stretch mean no displacement).
    EXPECT_DOUBLE_EQ(a.workflows[0].makespan, 15.0) << policy;
    EXPECT_DOUBLE_EQ(a.workflows[1].makespan, 30.0) << policy;
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_DOUBLE_EQ(a.workflows[i].makespan, b.workflows[i].makespan)
          << policy;
      EXPECT_DOUBLE_EQ(a.workflows[i].wait, b.workflows[i].wait) << policy;
    }
  }
}

/// The default session policy is FCFS, and an explicit "fcfs" selection
/// reproduces the default stream results bit-identically (the acquisition
/// API is a pure refactor of the PR 2 behavior under FCFS).
TEST(ContentionPolicy, ExplicitFcfsMatchesDefaultBitIdentically) {
  exp::CaseSpec base;
  base.app = exp::AppKind::kRandom;
  base.size = 20;
  base.ccr = 1.0;
  base.dynamics = {5, 200.0, 0.2};
  base.seed = 4242;
  base.scenario_source = "bursty";
  base.react_to_variance = true;
  base.horizon_factor = 2.0;
  base.stream_jobs = 4;
  base.stream_interarrival = 150.0;
  exp::CaseSpec explicit_fcfs = base;
  explicit_fcfs.contention_policy = "fcfs";
  const exp::StreamCaseResult a = exp::run_stream_case(base);
  const exp::StreamCaseResult b = exp::run_stream_case(explicit_fcfs);
  EXPECT_EQ(a.heft.makespans, b.heft.makespans);
  EXPECT_EQ(a.aheft.makespans, b.aheft.makespans);
  EXPECT_EQ(a.minmin.makespans, b.minmin.makespans);
  EXPECT_EQ(a.heft.waits, b.heft.waits);
  EXPECT_EQ(a.aheft.waits, b.aheft.waits);
  EXPECT_EQ(a.minmin.waits, b.minmin.waits);
}

TEST(ContentionPolicy, SetContentionPolicyAppliesAndValidates) {
  std::vector<exp::CaseSpec> specs(2);
  exp::set_contention_policy(specs, "fair-share");
  EXPECT_EQ(specs[0].contention_policy, "fair-share");
  EXPECT_EQ(specs[1].contention_policy, "fair-share");
  EXPECT_THROW(exp::set_contention_policy(specs, "round-robin"),
               std::invalid_argument);
}

TEST(ContentionPolicy, StreamPrioritiesCycleOverInstances) {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = 10;
  spec.dynamics = {4, 500.0, 0.0};
  spec.seed = 11;
  spec.stream_jobs = 5;
  spec.stream_priorities = {4.0, 1.0};
  const exp::CaseEnvironment env = exp::build_case_environment(spec);
  const exp::StreamSetup setup = exp::build_stream_setup(spec, env);
  ASSERT_EQ(setup.instances.size(), 5u);
  for (std::size_t k = 0; k < setup.instances.size(); ++k) {
    EXPECT_DOUBLE_EQ(setup.instances[k].priority, k % 2 == 0 ? 4.0 : 1.0);
  }
}

// ------------------------------------------- two-phase dynamic dispatch --

/// A wide just-in-time workflow (6 independent jobs) books one machine
/// end to end under FCFS (instant advance booking), convoying a short
/// workflow behind its whole span. Two-phase dispatch keeps the claims
/// displaceable, so fair share lets the short workflow in earlier.
struct WideDynamicCase {
  dag::Dag wide_dag{"wide"};
  dag::Dag short_dag{"short"};
  grid::ResourcePool pool;
  grid::MachineModel wide_model{6, 1};
  grid::MachineModel short_model{1, 1};

  WideDynamicCase() {
    for (int i = 0; i < 6; ++i) {
      wide_dag.add_job("w" + std::to_string(i));
    }
    wide_dag.finalize();
    short_dag.add_job("s0");
    short_dag.finalize();
    pool.add(grid::Resource{.name = "only"});
    for (dag::JobId i = 0; i < 6; ++i) {
      wide_model.set_compute_cost(i, 0, 10.0);
    }
    short_model.set_compute_cost(0, 0, 10.0);
  }

  [[nodiscard]] std::vector<WorkflowInstance> instances() const {
    std::vector<WorkflowInstance> result(2);
    result[0].name = "wide";
    result[0].dag = &wide_dag;
    result[0].estimates = &wide_model;
    result[0].actual = &wide_model;
    result[1].name = "short";
    result[1].dag = &short_dag;
    result[1].estimates = &short_model;
    result[1].actual = &short_model;
    return result;
  }
};

TEST(TwoPhaseDynamic, FcfsAdvanceBookingConvoysTheShortWorkflow) {
  const WideDynamicCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kDynamic);
  const StreamOutcome outcome = run_workflow_stream(
      policy_env(c.pool, "fcfs"), *driver, c.instances());
  ASSERT_EQ(outcome.workflows.size(), 2u);
  // The wide workflow's first decision round books [0,60) in one go; the
  // short workflow lands behind the whole convoy.
  EXPECT_DOUBLE_EQ(outcome.workflows[0].makespan, 60.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].makespan, 70.0);
  EXPECT_DOUBLE_EQ(outcome.workflows[1].wait, 60.0);
}

TEST(TwoPhaseDynamic, FairShareDisplacesHeldClaims) {
  const WideDynamicCase c;
  const std::unique_ptr<StrategyDriver> fcfs_driver =
      make_strategy_driver(StrategyKind::kDynamic);
  const StreamOutcome fcfs = run_workflow_stream(
      policy_env(c.pool, "fcfs"), *fcfs_driver, c.instances());
  const std::unique_ptr<StrategyDriver> fair_driver =
      make_strategy_driver(StrategyKind::kDynamic);
  const StreamOutcome fair = run_workflow_stream(
      policy_env(c.pool, "fair-share"), *fair_driver, c.instances());
  ASSERT_EQ(fair.workflows.size(), 2u);
  // Two-phase dispatch keeps the wide workflow's future slots held (not
  // committed), so once the short workflow's stretch passes the jump
  // threshold it starts ahead of the remaining claims.
  EXPECT_LT(fair.workflows[1].makespan, fcfs.workflows[1].makespan);
  EXPECT_GE(fair.workflows[0].makespan, 60.0);
  EXPECT_LT(fair.max_slowdown, fcfs.max_slowdown);
  EXPECT_GT(fair.jain_fairness, fcfs.jain_fairness);
  // The displaced machine still runs some job whenever work is ready:
  // total committed time is conserved.
  EXPECT_DOUBLE_EQ(fair.span, fcfs.span);
}

TEST(TwoPhaseDynamic, DeterministicUnderArbitratingPolicies) {
  const WideDynamicCase c;
  for (const char* policy : {"priority", "fair-share"}) {
    const std::unique_ptr<StrategyDriver> driver =
        make_strategy_driver(StrategyKind::kDynamic);
    const StreamOutcome a = run_workflow_stream(policy_env(c.pool, policy),
                                                *driver, c.instances());
    const StreamOutcome b = run_workflow_stream(policy_env(c.pool, policy),
                                                *driver, c.instances());
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_DOUBLE_EQ(a.workflows[i].makespan, b.workflows[i].makespan)
          << policy;
      EXPECT_DOUBLE_EQ(a.workflows[i].wait, b.workflows[i].wait) << policy;
    }
  }
}

// ------------------------------------------------- session-level ledger --

/// Minimal participant for driving the session's ledger API directly.
struct Probe : SessionParticipant {};

SessionEnvironment backfill_env(const grid::ResourcePool& pool,
                                bool backfill) {
  SessionEnvironment env;
  env.pool = &pool;
  env.backfill = backfill;
  return env;
}

TEST(SessionLedger, BackfillGrantsProvablyHarmlessHole) {
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "only"});
  Probe advance;
  Probe filler;

  // Without backfill: the FCFS floor parks the 5-unit job behind the
  // advance booking even though [0, 50) idles.
  {
    SimulationSession session(backfill_env(pool, false));
    session.add_participant(&advance);
    session.add_participant(&filler);
    ASSERT_DOUBLE_EQ(session.acquire(&advance, 0, 50.0, 10.0, 1), 50.0);
    session.commit(&advance, 0, 1, 50.0, 60.0);
    EXPECT_DOUBLE_EQ(session.acquire(&filler, 0, 0.0, 5.0, 1), 60.0);
  }
  // With backfill: the hole before the booking is granted.
  {
    SimulationSession session(backfill_env(pool, true));
    session.add_participant(&advance);
    session.add_participant(&filler);
    ASSERT_DOUBLE_EQ(session.acquire(&advance, 0, 50.0, 10.0, 1), 50.0);
    session.commit(&advance, 0, 1, 50.0, 60.0);
    EXPECT_DOUBLE_EQ(session.acquire(&filler, 0, 0.0, 5.0, 1), 0.0);
  }
}

TEST(SessionLedger, BackfillNeverDelaysAnEarlierRequest) {
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "only"});
  Probe advance;
  Probe earlier;
  Probe filler;
  SimulationSession session(backfill_env(pool, true));
  session.add_participant(&advance);
  session.add_participant(&earlier);
  session.add_participant(&filler);
  ASSERT_DOUBLE_EQ(session.acquire(&advance, 0, 50.0, 10.0, 1), 50.0);
  session.commit(&advance, 0, 1, 50.0, 60.0);
  // A queued request becomes feasible at t=2 but is too long for the
  // hole before the booking (2 + 55 > 50): its grant is the floor.
  const sim::Time earlier_grant = session.acquire(&earlier, 0, 2.0, 55.0, 1);
  EXPECT_DOUBLE_EQ(earlier_grant, 60.0);
  // A 5-unit filler would run [0, 5) — past the earlier request's
  // feasible start, so granting it could delay that request: refused.
  EXPECT_DOUBLE_EQ(session.acquire(&filler, 0, 0.0, 5.0, 1), 60.0);
  session.withdraw_all(&filler);
  // A 2-unit filler ends exactly when the earlier request could start:
  // provably harmless, granted the hole.
  EXPECT_DOUBLE_EQ(session.acquire(&filler, 0, 0.0, 2.0, 2), 0.0);
  // The earlier request's grant is unchanged by the backfilled entry.
  EXPECT_DOUBLE_EQ(session.acquire(&earlier, 0, 2.0, 55.0, 1),
                   earlier_grant);
}

TEST(SessionLedger, WithdrawPreservesWaitBaselines) {
  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "only"});
  Probe owner;
  Probe competitor;
  SimulationSession session(backfill_env(pool, false));
  session.add_participant(&owner);
  session.add_participant(&competitor);
  ASSERT_DOUBLE_EQ(session.acquire(&competitor, 0, 0.0, 20.0, 1), 0.0);
  session.commit(&competitor, 0, 1, 0.0, 20.0);
  // The owner's work first became feasible at t=0 and was deferred.
  EXPECT_DOUBLE_EQ(session.acquire(&owner, 0, 0.0, 10.0, 7), 20.0);
  // A reschedule withdraws and re-registers the same work (same tag)
  // with a later feasible time; the wait clock must not restart.
  session.withdraw_all(&owner);
  EXPECT_DOUBLE_EQ(session.acquire(&owner, 0, 5.0, 10.0, 7), 20.0);
  session.commit(&owner, 0, 7, 20.0, 30.0);
  const ContentionStats stats = session.contention_stats(&owner);
  EXPECT_DOUBLE_EQ(stats.total_wait, 20.0);  // from t=0, not t=5
  EXPECT_DOUBLE_EQ(stats.max_wait, 20.0);
  EXPECT_EQ(stats.grants, 1u);
}

// ------------------------------------------------------ arrival ordering --

TEST(Stream, ArrivalTimesGateLaunches) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kAdaptiveAheft);
  SessionEnvironment env;
  env.pool = &c.pool;

  // Add out of arrival order on purpose; results stay in insertion order
  // but launches happen by arrival, so the t=40 instance finds the
  // machine free and runs uncontended.
  std::vector<WorkflowInstance> instances(2);
  instances[0].name = "late";
  instances[0].dag = &c.dag;
  instances[0].estimates = &c.model;
  instances[0].actual = &c.model;
  instances[0].arrival = 40.0;
  instances[1].name = "early";
  instances[1].dag = &c.dag;
  instances[1].estimates = &c.model;
  instances[1].actual = &c.model;
  instances[1].arrival = 0.0;

  const StreamOutcome outcome =
      run_workflow_stream(env, *driver, instances);
  ASSERT_EQ(outcome.workflows.size(), 2u);
  const WorkflowResult& late = outcome.workflows[0];
  const WorkflowResult& early = outcome.workflows[1];
  EXPECT_DOUBLE_EQ(early.arrival, 0.0);
  EXPECT_DOUBLE_EQ(early.finish, 15.0);
  EXPECT_DOUBLE_EQ(late.arrival, 40.0);
  // No work may predate the arrival: the finish is release + makespan.
  EXPECT_DOUBLE_EQ(late.finish, 55.0);
  EXPECT_DOUBLE_EQ(late.makespan, 15.0);
  EXPECT_DOUBLE_EQ(late.slowdown, 1.0);
}

TEST(Stream, RejectsEmptyAndMalformedInstances) {
  const ChainCase c;
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(StrategyKind::kStaticHeft);
  SessionEnvironment env;
  env.pool = &c.pool;
  EXPECT_THROW((void)run_workflow_stream(env, *driver, {}),
               std::invalid_argument);
  std::vector<WorkflowInstance> missing_dag(1);
  EXPECT_THROW((void)run_workflow_stream(env, *driver, missing_dag),
               std::invalid_argument);
}

// ---------------------------------------------------- stream determinism --

exp::CaseSpec stream_spec() {
  exp::CaseSpec spec;
  spec.app = exp::AppKind::kRandom;
  spec.size = 20;
  spec.ccr = 1.0;
  spec.dynamics = {5, 200.0, 0.2};
  spec.seed = 4242;
  spec.scenario_source = "bursty";
  spec.bursty.mean_calm = 250.0;
  spec.bursty.mean_burst = 100.0;
  spec.bursty.calm_arrival_mean = 400.0;
  spec.bursty.burst_arrival_mean = 50.0;
  spec.react_to_variance = true;
  spec.horizon_factor = 2.0;
  spec.stream_jobs = 4;
  spec.stream_interarrival = 150.0;
  return spec;
}

TEST(Stream, SameSeedIsBitIdentical) {
  const exp::StreamCaseResult a = exp::run_stream_case(stream_spec());
  const exp::StreamCaseResult b = exp::run_stream_case(stream_spec());
  ASSERT_EQ(a.workflows, 4u);
  EXPECT_EQ(a.heft.makespans, b.heft.makespans);
  EXPECT_EQ(a.aheft.makespans, b.aheft.makespans);
  EXPECT_EQ(a.minmin.makespans, b.minmin.makespans);
  EXPECT_EQ(a.heft.slowdowns, b.heft.slowdowns);
  EXPECT_EQ(a.aheft.adoptions, b.aheft.adoptions);
  EXPECT_DOUBLE_EQ(a.minmin.throughput, b.minmin.throughput);
}

TEST(Stream, DifferentSeedsDiffer) {
  const exp::StreamCaseResult a = exp::run_stream_case(stream_spec());
  exp::CaseSpec other = stream_spec();
  other.seed = 777;
  const exp::StreamCaseResult b = exp::run_stream_case(other);
  EXPECT_NE(a.aheft.makespans, b.aheft.makespans);
}

TEST(Stream, CaseProducesSaneAggregates) {
  const exp::StreamCaseResult result =
      exp::run_stream_case(stream_spec());
  for (const exp::StreamStrategySummary* s :
       {&result.heft, &result.aheft, &result.minmin}) {
    ASSERT_EQ(s->makespans.size(), 4u);
    ASSERT_EQ(s->slowdowns.size(), 4u);
    EXPECT_GT(s->span, 0.0);
    EXPECT_GT(s->throughput, 0.0);
    EXPECT_GT(s->mean_makespan, 0.0);
    EXPECT_GE(s->max_makespan, s->mean_makespan);
    EXPECT_DOUBLE_EQ(
        *std::max_element(s->makespans.begin(), s->makespans.end()),
        s->max_makespan);
    // Slowdowns can dip below 1 only marginally (a competitor's arrival
    // can perturb tie-breaks), never collapse.
    for (const double slowdown : s->slowdowns) {
      EXPECT_GT(slowdown, 0.5);
    }
  }
}

/// Specs carrying a multi-workflow axis must not slip into the
/// single-DAG path, where the axis would silently shift the environment.
TEST(Stream, RunCaseRejectsMultiWorkflowSpecs) {
  EXPECT_THROW((void)exp::run_case(stream_spec()), std::invalid_argument);
}

/// A stream of one workflow must reduce exactly to the single-DAG case.
TEST(Stream, SingletonStreamMatchesSingleDagRun) {
  exp::CaseSpec spec = stream_spec();
  spec.stream_jobs = 1;
  spec.run_dynamic = true;
  spec.horizon_factor = 4.0;
  const exp::StreamCaseResult stream = exp::run_stream_case(spec);
  const exp::CaseResult single = exp::run_case(spec);
  ASSERT_EQ(stream.workflows, 1u);
  EXPECT_DOUBLE_EQ(stream.aheft.makespans[0], single.aheft_makespan);
  EXPECT_DOUBLE_EQ(stream.minmin.makespans[0], single.minmin_makespan);
  EXPECT_DOUBLE_EQ(stream.heft.makespans[0], single.heft_makespan);
}

// ------------------------------------------------------- sharded streams --

/// Four machines, six three-job chains with staggered arrivals, uniform
/// unit-ish costs so any machine of an instance's home shard is a valid
/// placement. Shared const DAG/model across instances (what the sharded
/// stream also relies on in production use).
struct ShardedCase {
  dag::Dag dag{"chain3"};
  grid::ResourcePool pool;
  grid::MachineModel model{3, 4};

  ShardedCase() {
    for (int i = 0; i < 3; ++i) {
      dag.add_job("j" + std::to_string(i));
      if (i > 0) {
        dag.add_edge(i - 1, i, 1.0);
      }
    }
    dag.finalize();
    for (int m = 0; m < 4; ++m) {
      pool.add(grid::Resource{.name = "m" + std::to_string(m)});
    }
    for (dag::JobId i = 0; i < 3; ++i) {
      for (grid::ResourceId r = 0; r < 4; ++r) {
        model.set_compute_cost(i, r, 2.0 + 0.25 * static_cast<double>(r));
      }
    }
  }

  [[nodiscard]] std::vector<WorkflowInstance> instances() const {
    std::vector<WorkflowInstance> result(6);
    for (std::size_t i = 0; i < result.size(); ++i) {
      result[i].name = "wf" + std::to_string(i);
      result[i].dag = &dag;
      result[i].estimates = &model;
      result[i].actual = &model;
      result[i].arrival = 0.5 * static_cast<double>(i);
    }
    return result;
  }

  [[nodiscard]] StreamOutcome run(StrategyKind kind, std::size_t shards,
                                  ThreadPool* workers,
                                  sim::TraceRecorder* trace = nullptr,
                                  grid::PerformanceHistoryRepository* history =
                                      nullptr,
                                  sim::EpochConfig epoch = {}) const {
    SessionEnvironment env;
    env.pool = &pool;
    env.shards = shards;
    env.shard_workers = workers;
    env.trace = trace;
    env.history = history;
    env.epoch = epoch;
    const auto driver = make_strategy_driver(kind);
    StreamConfig config;
    config.workers = workers;
    return run_workflow_stream(env, *driver, instances(), config);
  }
};

/// Exact equality over every numeric field of two stream outcomes — the
/// twin-run byte comparison (EXPECT_EQ on doubles is bitwise-exact for
/// non-NaN values).
void expect_outcomes_identical(const StreamOutcome& a,
                               const StreamOutcome& b) {
  ASSERT_EQ(a.workflows.size(), b.workflows.size());
  for (std::size_t i = 0; i < a.workflows.size(); ++i) {
    SCOPED_TRACE("workflow " + std::to_string(i));
    EXPECT_EQ(a.workflows[i].finish, b.workflows[i].finish);
    EXPECT_EQ(a.workflows[i].makespan, b.workflows[i].makespan);
    EXPECT_EQ(a.workflows[i].slowdown, b.workflows[i].slowdown);
    EXPECT_EQ(a.workflows[i].wait, b.workflows[i].wait);
    EXPECT_EQ(a.workflows[i].max_wait, b.workflows[i].max_wait);
    EXPECT_EQ(a.workflows[i].outcome.makespan, b.workflows[i].outcome.makespan);
    EXPECT_EQ(a.workflows[i].outcome.evaluations,
              b.workflows[i].outcome.evaluations);
  }
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.mean_makespan, b.mean_makespan);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
}

/// Byte-exact comparison of two merged trace recorders (field order and
/// values — the merged sink contract, not just aggregate counts).
void expect_traces_identical(const sim::TraceRecorder& a,
                             const sim::TraceRecorder& b) {
  ASSERT_EQ(a.intervals().size(), b.intervals().size());
  for (std::size_t i = 0; i < a.intervals().size(); ++i) {
    SCOPED_TRACE("interval " + std::to_string(i));
    EXPECT_EQ(a.intervals()[i].kind, b.intervals()[i].kind);
    EXPECT_EQ(a.intervals()[i].job, b.intervals()[i].job);
    EXPECT_EQ(a.intervals()[i].consumer, b.intervals()[i].consumer);
    EXPECT_EQ(a.intervals()[i].resource, b.intervals()[i].resource);
    EXPECT_EQ(a.intervals()[i].start, b.intervals()[i].start);
    EXPECT_EQ(a.intervals()[i].end, b.intervals()[i].end);
  }
}

/// Byte-exact comparison of two merged history repositories: identical
/// totals and identical per-key smoothed estimates (EWMA state depends
/// on observation order, so this checks the merge order too).
void expect_histories_identical(
    const grid::PerformanceHistoryRepository& a,
    const grid::PerformanceHistoryRepository& b) {
  EXPECT_EQ(a.total_observations(), b.total_observations());
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    SCOPED_TRACE("key " + std::to_string(i));
    EXPECT_EQ(sa[i].operation, sb[i].operation);
    EXPECT_EQ(sa[i].resource, sb[i].resource);
    EXPECT_EQ(sa[i].smoothed, sb[i].smoothed);
    EXPECT_EQ(sa[i].count, sb[i].count);
  }
}

/// The determinism contract for a fixed shard count > 1: twin runs on a
/// real multi-threaded pool must agree bit-for-bit, every strategy kind.
TEST(ShardedStream, FixedShardCountIsBitDeterministicRunToRun) {
  const ShardedCase c;
  for (const StrategyKind kind :
       {StrategyKind::kStaticHeft, StrategyKind::kAdaptiveAheft,
        StrategyKind::kDynamic}) {
    SCOPED_TRACE(to_string(kind));
    ThreadPool workers_a(3);
    const StreamOutcome a = c.run(kind, 2, &workers_a);
    ThreadPool workers_b(3);
    const StreamOutcome b = c.run(kind, 2, &workers_b);
    expect_outcomes_identical(a, b);
  }
}

/// The compat fence: shards=1 (even with a worker pool supplied) must be
/// bit-identical to the default serial configuration.
TEST(ShardedStream, SingleShardMatchesSerialBitIdentically) {
  const ShardedCase c;
  ThreadPool workers(3);
  const StreamOutcome serial = c.run(StrategyKind::kAdaptiveAheft, 1, nullptr);
  const StreamOutcome sharded =
      c.run(StrategyKind::kAdaptiveAheft, 1, &workers);
  expect_outcomes_identical(serial, sharded);
}

/// Tentpole contract: shared mutable sinks compose with sharded runs,
/// and the merged output is byte-identical twin to twin — at every
/// shard count, because each shard stages privately and the session
/// replays the stamped records at barriers in (time, origin shard,
/// origin seq) order.
TEST(ShardedStream, MergedSinksAreBitDeterministicRunToRun) {
  const ShardedCase c;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    sim::TraceRecorder trace_a;
    grid::PerformanceHistoryRepository history_a;
    ThreadPool workers_a(3);
    const StreamOutcome a = c.run(StrategyKind::kAdaptiveAheft, shards,
                                  &workers_a, &trace_a, &history_a);
    sim::TraceRecorder trace_b;
    grid::PerformanceHistoryRepository history_b;
    ThreadPool workers_b(3);
    const StreamOutcome b = c.run(StrategyKind::kAdaptiveAheft, shards,
                                  &workers_b, &trace_b, &history_b);
    expect_outcomes_identical(a, b);
    expect_traces_identical(trace_a, trace_b);
    expect_histories_identical(history_a, history_b);
    // The sinks actually saw the run: every job of every workflow left a
    // compute interval and a history observation.
    EXPECT_GE(trace_a.intervals().size(), 18u);  // 6 workflows x 3 jobs
    EXPECT_GE(history_a.total_observations(), 18u);
  }
}

/// The compat fence extends to sinks: shards=1 with recorders attached
/// must be byte-identical to the plain serial session, recorders
/// included (the serial fast path hands the shared sinks out directly).
TEST(ShardedStream, SingleShardWithSinksMatchesSerialByteForByte) {
  const ShardedCase c;
  sim::TraceRecorder serial_trace;
  grid::PerformanceHistoryRepository serial_history;
  const StreamOutcome serial =
      c.run(StrategyKind::kAdaptiveAheft, 1, nullptr, &serial_trace,
            &serial_history);
  sim::TraceRecorder sharded_trace;
  grid::PerformanceHistoryRepository sharded_history;
  ThreadPool workers(3);
  const StreamOutcome sharded =
      c.run(StrategyKind::kAdaptiveAheft, 1, &workers, &sharded_trace,
            &sharded_history);
  expect_outcomes_identical(serial, sharded);
  expect_traces_identical(serial_trace, sharded_trace);
  expect_histories_identical(serial_history, sharded_history);
}

/// Adaptive epoch width changes barrier frequency, never observable
/// output: outcomes and merged sinks must match the fixed-width run
/// byte for byte.
TEST(ShardedStream, AdaptiveEpochWidthMatchesFixedWidthByteForByte) {
  const ShardedCase c;
  sim::TraceRecorder fixed_trace;
  grid::PerformanceHistoryRepository fixed_history;
  ThreadPool workers_a(3);
  const StreamOutcome fixed =
      c.run(StrategyKind::kAdaptiveAheft, 2, &workers_a, &fixed_trace,
            &fixed_history, sim::EpochConfig{});
  sim::TraceRecorder adaptive_trace;
  grid::PerformanceHistoryRepository adaptive_history;
  ThreadPool workers_b(3);
  const StreamOutcome adaptive = c.run(
      StrategyKind::kAdaptiveAheft, 2, &workers_b, &adaptive_trace,
      &adaptive_history, sim::EpochConfig{.width = 0.0, .adaptive = true});
  expect_outcomes_identical(fixed, adaptive);
  expect_traces_identical(fixed_trace, adaptive_trace);
  expect_histories_identical(fixed_history, adaptive_history);
}

/// A sharded stream must finish every workflow and keep the instances on
/// their home shards' machines (the masked pool never exposes foreign
/// machines, so participant counts split across shard tables).
TEST(ShardedStream, PartitionsParticipantsAcrossShards) {
  const ShardedCase c;
  ThreadPool workers(2);
  const StreamOutcome outcome = c.run(StrategyKind::kStaticHeft, 2, &workers);
  ASSERT_EQ(outcome.workflows.size(), 6u);
  for (const WorkflowResult& wf : outcome.workflows) {
    EXPECT_GT(wf.makespan, 0.0) << wf.name;
    EXPECT_GE(wf.slowdown, 0.99) << wf.name;
  }
}

TEST(ShardedSession, MaskedPoolHidesForeignMachines) {
  const ShardedCase c;
  SessionEnvironment env;
  env.pool = &c.pool;
  env.shards = 2;
  SimulationSession session(env);
  ASSERT_EQ(session.shard_count(), 2u);
  {
    const auto binding = session.bind_shard(0);
    const auto visible = session.pool().available_at(0.0);
    EXPECT_EQ(visible, (std::vector<grid::ResourceId>{0, 1}));
    // Ids are universe ids: the masked pool holds all four machines.
    EXPECT_EQ(session.pool().universe_size(), 4u);
    // Foreign machines never produce visibility-change events either.
    EXPECT_TRUE(session.pool().change_times(0.0, sim::kTimeInfinity).empty());
  }
  {
    const auto binding = session.bind_shard(1);
    const auto visible = session.pool().available_at(0.0);
    EXPECT_EQ(visible, (std::vector<grid::ResourceId>{2, 3}));
  }
}

TEST(ShardedSession, ConfinementRejectsForeignResourceAcquire) {
  const ShardedCase c;
  SessionEnvironment env;
  env.pool = &c.pool;
  env.shards = 2;
  SimulationSession session(env);
  Probe probe;
  const auto binding = session.bind_shard(0);
  session.add_participant(&probe);
  // Machine 3 belongs to shard 1; acquiring it from shard 0 must throw.
  EXPECT_THROW((void)session.acquire(&probe, 3, 0.0, 1.0),
               std::invalid_argument);
  // The home shard's machines work normally.
  EXPECT_DOUBLE_EQ(session.acquire(&probe, 0, 0.0, 1.0), 0.0);
}

TEST(ShardedSession, SharedSinksComposeWithShardedSessions) {
  // Shared mutable sinks used to force shards=1; now each shard gets a
  // private stamped staging buffer the session merges at tick barriers,
  // so construction succeeds and a bound shard sees its own sink rather
  // than the shared recorder.
  const ShardedCase c;
  sim::TraceRecorder trace;
  grid::PerformanceHistoryRepository history;
  SessionEnvironment env;
  env.pool = &c.pool;
  env.shards = 2;
  env.trace = &trace;
  env.history = &history;
  SimulationSession session(env);
  ASSERT_EQ(session.shard_count(), 2u);
  const auto binding = session.bind_shard(1);
  EXPECT_NE(session.trace(), static_cast<sim::TraceRecorder*>(&trace));
  EXPECT_NE(session.history(),
            static_cast<grid::PerformanceHistoryRepository*>(&history));
}

TEST(ShardedSession, SerialSessionsHandOutTheSharedSinksDirectly) {
  const ShardedCase c;
  sim::TraceRecorder trace;
  grid::PerformanceHistoryRepository history;
  SessionEnvironment env;
  env.pool = &c.pool;
  env.shards = 1;
  env.trace = &trace;
  env.history = &history;
  SimulationSession session(env);
  EXPECT_EQ(session.trace(), &trace);
  EXPECT_EQ(session.history(), &history);
}

TEST(ShardedSession, ShardCountClampsToUniverse) {
  const ShardedCase c;  // 4 machines
  SessionEnvironment env;
  env.pool = &c.pool;
  env.shards = 64;
  SimulationSession session(env);
  EXPECT_EQ(session.shard_count(), 4u);
  // Every machine maps to a valid shard and every shard owns a machine.
  std::vector<bool> seen(session.shard_count(), false);
  for (grid::ResourceId r = 0; r < 4; ++r) {
    seen[session.shard_of(r)] = true;
  }
  for (std::size_t s = 0; s < seen.size(); ++s) {
    EXPECT_TRUE(seen[s]) << "shard " << s << " owns no machine";
  }
}

}  // namespace
}  // namespace aheft::core
