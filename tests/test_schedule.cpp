// Unit tests for the schedule representation, slot search, and validators.
#include <gtest/gtest.h>

#include "core/schedule.h"
#include "support/assert.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

TEST(Schedule, AssignAndLookup) {
  Schedule s(3);
  EXPECT_FALSE(s.assigned(0));
  s.assign(Assignment{0, 1, 0.0, 5.0});
  EXPECT_TRUE(s.assigned(0));
  EXPECT_EQ(s.assignment(0).resource, 1u);
  EXPECT_DOUBLE_EQ(s.assignment(0).duration(), 5.0);
  EXPECT_EQ(s.assigned_count(), 1u);
  EXPECT_FALSE(s.complete());
  s.assign(Assignment{1, 1, 5.0, 7.0});
  s.assign(Assignment{2, 0, 0.0, 1.0});
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.makespan(), 7.0);
  EXPECT_EQ(s.used_resources(), (std::vector<grid::ResourceId>{0, 1}));
}

TEST(Schedule, TimelineSortedByStart) {
  Schedule s(3);
  s.assign(Assignment{0, 0, 10.0, 12.0});
  s.assign(Assignment{1, 0, 0.0, 5.0});
  s.assign(Assignment{2, 0, 5.0, 10.0});
  const auto& slots = s.timeline(0);
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].job, 1u);
  EXPECT_EQ(slots[1].job, 2u);
  EXPECT_EQ(slots[2].job, 0u);
  EXPECT_TRUE(s.timeline(9).empty());
}

TEST(Schedule, RejectsDoubleAssignmentAndOverlap) {
  Schedule s(3);
  s.assign(Assignment{0, 0, 0.0, 5.0});
  EXPECT_THROW(s.assign(Assignment{0, 1, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(s.assign(Assignment{1, 0, 4.0, 6.0}), std::invalid_argument);
  s.assign(Assignment{1, 0, 5.0, 6.0});  // touching is allowed
  EXPECT_THROW(s.assign(Assignment{2, 0, 0.0, 20.0}), std::invalid_argument);
}

TEST(Schedule, InsertionSlotFindsGaps) {
  Schedule s(4);
  s.assign(Assignment{0, 0, 10.0, 20.0});
  s.assign(Assignment{1, 0, 30.0, 40.0});
  const auto policy = SlotPolicy::kInsertion;
  // Fits before the first slot.
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 0.0, 10.0, policy, 0.0, sim::kTimeInfinity), 0.0);
  // Too long for the head gap -> lands in the middle gap.
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 5.0, 8.0, policy, 0.0, sim::kTimeInfinity), 20.0);
  // Too long for any gap -> after the last slot.
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 0.0, 15.0, policy, 0.0, sim::kTimeInfinity), 40.0);
  // not_before pushes past a gap.
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 0.0, 5.0, policy, 22.0, sim::kTimeInfinity), 22.0);
}

TEST(Schedule, EndOfQueueIgnoresGaps) {
  Schedule s(4);
  s.assign(Assignment{0, 0, 10.0, 20.0});
  s.assign(Assignment{1, 0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 5.0, SlotPolicy::kEndOfQueue, 0.0,
                                   sim::kTimeInfinity),
                   40.0);
}

TEST(Schedule, DeadlineMakesSlotInfeasible) {
  Schedule s(2);
  s.assign(Assignment{0, 0, 0.0, 10.0});
  EXPECT_EQ(s.earliest_slot(0, 0.0, 5.0, SlotPolicy::kInsertion, 0.0, 12.0),
            sim::kTimeInfinity);
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 0.0, 5.0, SlotPolicy::kInsertion, 0.0, 15.0), 10.0);
}

TEST(Schedule, EmptyResourceSlotUsesReadyAndFloor) {
  const Schedule s(1);
  EXPECT_DOUBLE_EQ(s.earliest_slot(5, 3.0, 2.0, SlotPolicy::kInsertion, 7.0,
                                   sim::kTimeInfinity),
                   7.0);
}

TEST(Schedule, ForeignViewGapsAreSearchedJointlyWithOwnSlots) {
  // Own slots [10, 20) and [30, 40); a competitor holds [0, 8) and
  // [22, 28). Free gaps of the merged picture: [8, 10), [20, 22),
  // [28, 30), [40, inf).
  Schedule s(4);
  s.assign(Assignment{0, 0, 10.0, 20.0});
  s.assign(Assignment{1, 0, 30.0, 40.0});
  AvailabilityView view(0.0);
  view.add_busy(0, 0.0, 8.0);
  view.add_busy(0, 22.0, 28.0);
  view.normalize();
  const auto policy = SlotPolicy::kInsertion;
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 2.0, policy, 0.0,
                                   sim::kTimeInfinity, &view),
                   8.0);
  // Too long for [8, 10) -> the next joint gap that fits is [20, 22).
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 2.0, policy, 9.0,
                                   sim::kTimeInfinity, &view),
                   20.0);
  // Nothing shorter than 3 fits before the last own slot ends.
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 3.0, policy, 9.0,
                                   sim::kTimeInfinity, &view),
                   40.0);
  // The deadline check runs against the joint fit.
  EXPECT_EQ(s.earliest_slot(0, 0.0, 3.0, policy, 9.0, 41.0, &view),
            sim::kTimeInfinity);
  // End-of-queue still appends after own slots, then avoids foreign load.
  AvailabilityView tail(0.0);
  tail.add_busy(0, 39.0, 50.0);
  tail.normalize();
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 5.0, SlotPolicy::kEndOfQueue,
                                   0.0, sim::kTimeInfinity, &tail),
                   50.0);
  // A null or empty view changes nothing.
  const AvailabilityView empty;
  EXPECT_DOUBLE_EQ(s.earliest_slot(0, 0.0, 2.0, policy, 0.0,
                                   sim::kTimeInfinity, &empty),
                   0.0);
  EXPECT_DOUBLE_EQ(
      s.earliest_slot(0, 0.0, 2.0, policy, 0.0, sim::kTimeInfinity), 0.0);
}

TEST(ScheduleValidation, AcceptsHeftScheduleOnSample) {
  const auto scenario = workloads::sample_scenario();
  Schedule s(10);
  // The published HEFT schedule (paper Fig. 5a).
  s.assign(Assignment{0, 2, 0.0, 9.0});     // n1 r3
  s.assign(Assignment{2, 2, 9.0, 28.0});    // n3 r3
  s.assign(Assignment{3, 1, 18.0, 26.0});   // n4 r2
  s.assign(Assignment{1, 0, 27.0, 40.0});   // n2 r1
  s.assign(Assignment{4, 2, 28.0, 38.0});   // n5 r3
  s.assign(Assignment{5, 1, 26.0, 42.0});   // n6 r2
  s.assign(Assignment{8, 1, 56.0, 68.0});   // n9 r2
  s.assign(Assignment{6, 2, 38.0, 49.0});   // n7 r3
  s.assign(Assignment{7, 0, 57.0, 62.0});   // n8 r1
  s.assign(Assignment{9, 1, 73.0, 80.0});   // n10 r2
  validate_static(s, scenario.dag, scenario.model, scenario.pool);
  EXPECT_DOUBLE_EQ(s.makespan(), 80.0);
}

TEST(ScheduleValidation, DetectsCommViolation) {
  const auto scenario = workloads::sample_scenario();
  Schedule s(10);
  s.assign(Assignment{0, 2, 0.0, 9.0});  // n1 on r3
  // n2 on r1 must wait for 9 + c(1,2) = 27, but starts at 20.
  s.assign(Assignment{1, 0, 20.0, 33.0});
  for (const dag::JobId j : {2, 3, 4, 5, 6, 7, 8}) {
    // Park remaining jobs far in the future so only the n2 edge violates.
    s.assign(Assignment{static_cast<dag::JobId>(j), 3,
                        1000.0 + 100.0 * j,
                        1000.0 + 100.0 * j +
                            scenario.model.compute_cost(
                                static_cast<dag::JobId>(j), 3)});
  }
  s.assign(Assignment{9, 3, 5000.0,
                      5000.0 + scenario.model.compute_cost(9, 3)});
  validate_structure(s, scenario.dag, scenario.model, scenario.pool);
  EXPECT_THROW(
      validate_static(s, scenario.dag, scenario.model, scenario.pool),
      AssertionError);
}

TEST(ScheduleValidation, DetectsWrongDurationAndMissingJob) {
  const auto scenario = workloads::sample_scenario();
  Schedule incomplete(10);
  incomplete.assign(Assignment{0, 2, 0.0, 9.0});
  EXPECT_THROW(validate_structure(incomplete, scenario.dag, scenario.model,
                                  scenario.pool),
               AssertionError);

  Schedule wrong(10);
  wrong.assign(Assignment{0, 2, 0.0, 10.0});  // n1 on r3 costs 9, not 10
  EXPECT_THROW(
      validate_structure(wrong, scenario.dag, scenario.model, scenario.pool),
      AssertionError);
}

TEST(ScheduleValidation, DetectsResourceWindowViolation) {
  const auto scenario = workloads::sample_scenario(15.0);  // r4 arrives at 15
  Schedule s(10);
  s.assign(Assignment{0, 3, 0.0, 14.0});  // n1 on r4 before it arrives
  EXPECT_THROW(
      validate_structure(s, scenario.dag, scenario.model, scenario.pool),
      AssertionError);
}

TEST(Schedule, GanttMentionsJobsAndResources) {
  const auto scenario = workloads::sample_scenario();
  Schedule s(10);
  s.assign(Assignment{0, 2, 0.0, 9.0});
  const std::string gantt = s.gantt(scenario.dag, scenario.pool);
  EXPECT_NE(gantt.find("r3"), std::string::npos);
  EXPECT_NE(gantt.find("n1[0.0,9.0)"), std::string::npos);
}

}  // namespace
}  // namespace aheft::core
