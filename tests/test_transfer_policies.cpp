// Transfer-policy semantics: the three file-movement models must behave
// identically in the planner's FEA and in the executor, and the realized
// makespan must match the adopted prediction under every model.
#include <gtest/gtest.h>

#include "core/execution_engine.h"
#include "core/heft.h"
#include "core/planner.h"
#include "core/rescheduler.h"
#include "helpers.h"
#include "sim/simulator.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

/// Producer a (cost 5, on r1) feeds b (data 10). A filler job occupies r0
/// so b — scheduled behind it — is still pending when the test reschedules
/// b onto r2. The edge a->b is edge index 0.
struct MoveFixture {
  explicit MoveFixture(double filler_cost, sim::Time r2_arrival)
      : model(3, 3) {
    a = graph.add_job("a");
    b = graph.add_job("b");
    filler = graph.add_job("filler");
    graph.add_edge(a, b, 10.0);
    graph.finalize();
    pool.add(grid::Resource{});                            // r0
    pool.add(grid::Resource{});                            // r1
    pool.add(grid::Resource{.name = "", .arrival = r2_arrival});  // r2
    for (grid::ResourceId r = 0; r < 3; ++r) {
      model.set_compute_cost(a, r, 5.0);
      model.set_compute_cost(b, r, 5.0);
      model.set_compute_cost(filler, r, filler_cost);
    }
    filler_cost_ = filler_cost;
  }

  /// Initial plan: filler r0 [0,F), a r1 [0,5), b r0 [F, F+5).
  [[nodiscard]] Schedule initial_plan() const {
    Schedule plan(3);
    plan.assign(Assignment{filler, 0, 0.0, filler_cost_});
    plan.assign(Assignment{a, 1, 0.0, 5.0});
    plan.assign(Assignment{b, 0, filler_cost_, filler_cost_ + 5.0});
    return plan;
  }

  /// Runs to `clock`, then reschedules b onto r2 starting at `b_start`.
  /// Returns b's realized start time.
  sim::Time move_b_to_r2(TransferPolicy policy, sim::Time clock,
                         sim::Time b_start) {
    sim::Simulator sim;
    ExecutionEngine engine(sim, graph, model, pool);
    engine.set_transfer_policy(policy);
    engine.submit(initial_plan());
    sim.run_until(clock);

    Schedule moved(3);
    moved.assign(Assignment{filler, 0, 0.0, filler_cost_});
    moved.assign(Assignment{a, 1, 0.0, 5.0});
    moved.assign(Assignment{b, 2, b_start, b_start + 5.0});
    engine.submit(moved);
    sim.run();
    EXPECT_TRUE(engine.finished());
    const ExecutionSnapshot end = engine.snapshot();
    return end.finished_info(b).ast;
  }

  dag::Dag graph;
  grid::ResourcePool pool;
  grid::MachineModel model;
  dag::JobId a{};
  dag::JobId b{};
  dag::JobId filler{};
  double filler_cost_ = 0.0;
};

TEST(TransferPolicies, StrictMoveWaitsForRetransmissionFromClock) {
  MoveFixture fx(30.0, 0.0);
  // a finished at 5 on r1; b moves to r2 at clock 20: the copy leaves at
  // 20 and lands at 30.
  EXPECT_DOUBLE_EQ(
      fx.move_b_to_r2(TransferPolicy::kRetransmitFromClock, 20.0, 30.0),
      30.0);
}

TEST(TransferPolicies, EagerMoveUsesTheProductionTimeCopy) {
  MoveFixture fx(30.0, 0.0);
  // The copy left r1 at AFT=5 and reached r2 at 15; b starts at the
  // reschedule clock.
  EXPECT_DOUBLE_EQ(
      fx.move_b_to_r2(TransferPolicy::kEagerReplicate, 20.0, 20.0), 20.0);
  MoveFixture fx2(30.0, 0.0);
  EXPECT_DOUBLE_EQ(
      fx2.move_b_to_r2(TransferPolicy::kPrestagedArrivals, 20.0, 20.0),
      20.0);
}

TEST(TransferPolicies, LateResourceDistinguishesEagerFromPrestaged) {
  // r2 joins at t=50, long after a finished at 5. Eager: the transfer can
  // only start at the join -> file at 60. Prestaged: the machine joins
  // already holding the file (staging counted from production) -> b can
  // start at the reschedule clock 55.
  {
    MoveFixture fx(60.0, 50.0);
    EXPECT_DOUBLE_EQ(
        fx.move_b_to_r2(TransferPolicy::kEagerReplicate, 55.0, 60.0), 60.0);
  }
  {
    MoveFixture fx(60.0, 50.0);
    EXPECT_DOUBLE_EQ(
        fx.move_b_to_r2(TransferPolicy::kPrestagedArrivals, 55.0, 55.0),
        55.0);
  }
}

TEST(TransferPolicies, FeaMatchesTheFileAvailabilityPerPolicy) {
  for (const auto& [policy, expected] :
       {std::pair{TransferPolicy::kRetransmitFromClock, 30.0},
        std::pair{TransferPolicy::kEagerReplicate, 15.0},
        std::pair{TransferPolicy::kPrestagedArrivals, 15.0}}) {
    MoveFixture fx(30.0, 0.0);
    sim::Simulator sim;
    ExecutionEngine engine(sim, fx.graph, fx.model, fx.pool);
    engine.set_transfer_policy(policy);
    engine.submit(fx.initial_plan());
    sim.run_until(20.0);
    const ExecutionSnapshot snap = engine.snapshot();

    RescheduleRequest req;
    req.dag = &fx.graph;
    req.estimates = &fx.model;
    req.pool = &fx.pool;
    req.resources = {0, 1, 2};
    req.clock = 20.0;
    req.snapshot = &snap;
    req.previous = &engine.current_schedule();
    req.config.transfer_policy = policy;

    Schedule s1(3);
    EXPECT_DOUBLE_EQ(file_available(req, 0, 2, s1), expected)
        << to_string(policy);
  }
}

TEST(TransferPolicies, AdoptedPredictionRealizedUnderEveryPolicy) {
  for (const TransferPolicy policy :
       {TransferPolicy::kRetransmitFromClock, TransferPolicy::kEagerReplicate,
        TransferPolicy::kPrestagedArrivals}) {
    for (const std::uint64_t seed : {61u, 62u, 63u}) {
      const test::RandomCase c = test::make_random_case(seed);
      PlannerConfig config;
      config.scheduler.transfer_policy = policy;
      sim::TraceRecorder trace;
      AdaptivePlanner planner(c.workload.dag, c.model, c.model, c.pool,
                              config, &trace);
      const AdaptiveResult result = planner.run();
      // Realized == last adopted prediction, and never worse than HEFT.
      sim::Time last = result.initial_makespan;
      for (const AdoptionRecord& record : result.decisions) {
        if (record.adopted) {
          last = record.candidate_makespan;
        }
      }
      EXPECT_NEAR(result.makespan, last, 1e-6)
          << to_string(policy) << " seed " << seed;
      EXPECT_LE(result.makespan, result.initial_makespan + 1e-6);
      test::expect_valid_trace(trace, c.workload.dag, c.model, c.pool);
    }
  }
}

TEST(TransferPolicies, OptimisticPoliciesNeverPredictLaterAvailability) {
  // For any finished producer and any target, availability under eager /
  // prestaged is never later than under the strict policy.
  const test::RandomCase c = test::make_random_case(77);
  const Schedule plan = heft_schedule(c.workload.dag, c.model, c.pool);
  sim::Simulator sim;
  ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool);
  engine.submit(plan);
  sim.run_until(plan.makespan() / 2.0);
  const ExecutionSnapshot snap = engine.snapshot();

  RescheduleRequest req;
  req.dag = &c.workload.dag;
  req.estimates = &c.model;
  req.pool = &c.pool;
  req.resources = c.pool.available_at(snap.clock());
  req.clock = snap.clock();
  req.snapshot = &snap;
  req.previous = &engine.current_schedule();

  Schedule s1(c.workload.dag.job_count());
  for (std::size_t e = 0; e < c.workload.dag.edge_count(); ++e) {
    if (!snap.finished(c.workload.dag.edges()[e].from)) {
      continue;
    }
    for (const grid::ResourceId r : req.resources) {
      req.config.transfer_policy = TransferPolicy::kRetransmitFromClock;
      const sim::Time strict = file_available(req, e, r, s1);
      req.config.transfer_policy = TransferPolicy::kEagerReplicate;
      EXPECT_LE(file_available(req, e, r, s1), strict + 1e-9);
      req.config.transfer_policy = TransferPolicy::kPrestagedArrivals;
      EXPECT_LE(file_available(req, e, r, s1), strict + 1e-9);
    }
  }
}

}  // namespace
}  // namespace aheft::core
