// AHEFT rescheduler tests: FEA cases (Eq. 1), snapshot pinning, the Fig. 5
// worked example, and policy behaviours.
#include <gtest/gtest.h>

#include "core/execution_engine.h"
#include "core/heft.h"
#include "core/rescheduler.h"
#include "helpers.h"
#include "sim/simulator.h"
#include "workloads/sample.h"

namespace aheft::core {
namespace {

/// Two jobs a -> b with data 10, two always-on resources, costs:
/// a: 5 on both; b: 5 on both. Used for surgical FEA checks.
struct TinyFixture {
  TinyFixture() : model(2, 3) {
    a = graph.add_job("a");
    b = graph.add_job("b");
    graph.add_edge(a, b, 10.0);
    graph.finalize();
    for (grid::ResourceId r = 0; r < 3; ++r) {
      pool.add(grid::Resource{.name = "", .arrival = 0.0});
      model.set_compute_cost(0, r, 5.0);
      model.set_compute_cost(1, r, 5.0);
    }
  }

  RescheduleRequest request(const ExecutionSnapshot* snapshot,
                            const Schedule* previous, sim::Time clock) {
    RescheduleRequest req;
    req.dag = &graph;
    req.estimates = &model;
    req.pool = &pool;
    req.resources = {0, 1, 2};
    req.clock = clock;
    req.snapshot = snapshot;
    req.previous = previous;
    return req;
  }

  dag::Dag graph;
  grid::ResourcePool pool;
  grid::MachineModel model;
  dag::JobId a{};
  dag::JobId b{};
};

TEST(FileAvailable, Case1FinishedOnTarget) {
  TinyFixture fx;
  ExecutionSnapshot snap(20.0, 2, 1);
  snap.mark_finished(fx.a, FinishedInfo{0, 0.0, 5.0});
  snap.record_arrival(0, 0, 5.0);  // output at its own resource at AFT
  Schedule s0(2);
  const auto req = fx.request(&snap, &s0, 20.0);
  Schedule s1(2);
  EXPECT_DOUBLE_EQ(file_available(req, 0, 0, s1), 5.0);  // AFT(a)
}

TEST(FileAvailable, Case2FinishedButNeverSentToTarget) {
  TinyFixture fx;
  ExecutionSnapshot snap(20.0, 2, 1);
  snap.mark_finished(fx.a, FinishedInfo{0, 0.0, 5.0});
  snap.record_arrival(0, 0, 5.0);
  Schedule s0(2);
  auto req = fx.request(&snap, &s0, 20.0);
  Schedule s1(2);
  // Literal Eq. 1 Case 2: retransmission starts at clock, 20 + 10 = 30.
  req.config.transfer_policy = TransferPolicy::kRetransmitFromClock;
  EXPECT_DOUBLE_EQ(file_available(req, 0, 1, s1), 30.0);
  // Eager replication: the copy left at AFT, 5 + 10 = 15.
  req.config.transfer_policy = TransferPolicy::kEagerReplicate;
  EXPECT_DOUBLE_EQ(file_available(req, 0, 1, s1), 15.0);
}

TEST(FileAvailable, EagerReplicationWaitsForTheTargetToExist) {
  TinyFixture fx;
  fx.pool.set_arrival(2, 12.0);  // r2 joins at t=12
  ExecutionSnapshot snap(20.0, 2, 1);
  snap.mark_finished(fx.a, FinishedInfo{0, 0.0, 5.0});
  snap.record_arrival(0, 0, 5.0);
  Schedule s0(2);
  auto req = fx.request(&snap, &s0, 20.0);
  Schedule s1(2);
  req.config.transfer_policy = TransferPolicy::kEagerReplicate;
  // Transfer to r2 could only start when r2 appeared: 12 + 10 = 22.
  EXPECT_DOUBLE_EQ(file_available(req, 0, 2, s1), 22.0);
}

TEST(FileAvailable, InFlightTransferKeepsItsArrival) {
  TinyFixture fx;
  ExecutionSnapshot snap(20.0, 2, 1);
  snap.mark_finished(fx.a, FinishedInfo{0, 0.0, 5.0});
  snap.record_arrival(0, 0, 5.0);
  snap.record_arrival(0, 2, 15.0);  // transfer initiated at AFT per S0
  Schedule s0(2);
  auto req = fx.request(&snap, &s0, 20.0);
  Schedule s1(2);
  // "Otherwise" with finished producer: SFT + c = 5 + 10 = 15.
  EXPECT_DOUBLE_EQ(file_available(req, 0, 2, s1), 15.0);
}

TEST(FileAvailable, Case3UnfinishedSameResource) {
  TinyFixture fx;
  auto req = fx.request(nullptr, nullptr, 0.0);
  Schedule s1(2);
  s1.assign(Assignment{fx.a, 1, 0.0, 5.0});
  EXPECT_DOUBLE_EQ(file_available(req, 0, 1, s1), 5.0);       // SFT
  EXPECT_DOUBLE_EQ(file_available(req, 0, 0, s1), 15.0);      // SFT + c
}

TEST(Rescheduler, InitialSchedulingEqualsHeft) {
  const auto scenario = workloads::sample_scenario();
  const Schedule heft =
      heft_schedule(scenario.dag, scenario.model, scenario.pool);

  RescheduleRequest req;
  req.dag = &scenario.dag;
  req.estimates = &scenario.model;
  req.pool = &scenario.pool;
  req.resources = scenario.pool.available_at(0.0);
  req.clock = 0.0;
  const Schedule direct = aheft_schedule(req);

  ASSERT_EQ(direct.job_count(), heft.job_count());
  for (dag::JobId i = 0; i < heft.job_count(); ++i) {
    EXPECT_EQ(direct.assignment(i).resource, heft.assignment(i).resource);
    EXPECT_DOUBLE_EQ(direct.assignment(i).start, heft.assignment(i).start);
  }
}

class Fig5 : public ::testing::Test {
 protected:
  /// Executes the published HEFT plan to t=15 and returns the reschedule
  /// request state at that moment.
  void run_to_15() {
    heft_ = heft_schedule(scenario_.dag, scenario_.model, scenario_.pool);
    engine_.submit(heft_);
    sim_.run_until(15.0);
    snapshot_ = engine_.snapshot();
  }

  RescheduleRequest request(SchedulerConfig config) {
    RescheduleRequest req;
    req.dag = &scenario_.dag;
    req.estimates = &scenario_.model;
    req.pool = &scenario_.pool;
    req.resources = scenario_.pool.available_at(15.0);
    req.clock = 15.0;
    req.snapshot = &snapshot_;
    req.previous = &heft_;
    req.config = config;
    return req;
  }

  workloads::SampleScenario scenario_ = workloads::sample_scenario(15.0);
  sim::Simulator sim_;
  ExecutionEngine engine_{sim_, scenario_.dag, scenario_.model,
                          scenario_.pool};
  Schedule heft_;
  ExecutionSnapshot snapshot_ = ExecutionSnapshot::initial(10, 15);
};

TEST_F(Fig5, SnapshotAt15SeesN1FinishedAndN3Running) {
  run_to_15();
  EXPECT_EQ(snapshot_.finished_count(), 1u);
  EXPECT_TRUE(snapshot_.finished(0));
  EXPECT_DOUBLE_EQ(snapshot_.finished_info(0).aft, 9.0);
  ASSERT_EQ(snapshot_.running().size(), 1u);
  EXPECT_EQ(snapshot_.running()[0].job, 2u);  // n3
  EXPECT_DOUBLE_EQ(snapshot_.running()[0].expected_finish, 28.0);
}

TEST_F(Fig5, StrictTransfersGreedyCannotBeatTheCurrentPlan) {
  // Under the literal Eq. 1 Case 2 ("transmission can not be earlier than
  // clock"), strict rank order finds nothing better than the incumbent 80.
  run_to_15();
  SchedulerConfig config;
  config.transfer_policy = TransferPolicy::kRetransmitFromClock;
  const Schedule candidate = aheft_schedule(request(config));
  EXPECT_GE(candidate.makespan(), 80.0 - sim::kTimeEpsilon);
}

TEST_F(Fig5, PrestagedGreedyPlacesN5OnR4AsDrawnButFallsIntoAGreedyTrap) {
  // Fig. 5(b) as drawn has n5 on the new r4 at [20, 34): its input counts
  // from AFT(n1) + c = 20 although r4 only joined at 15 — the pre-staged
  // transfer model. Greedy min-EFT under that model indeed makes exactly
  // this placement, but then sends n9 to r1 (EFT 67 beats r2's 68), which
  // blocks n8 and cascades to makespan 87; the adoption filter rightly
  // declines it. The published 76 therefore mixes pre-staged availability
  // with a placement strict rank-order greedy does not produce.
  run_to_15();
  SchedulerConfig config;
  config.transfer_policy = TransferPolicy::kPrestagedArrivals;
  const Schedule candidate = aheft_schedule(request(config));
  EXPECT_EQ(candidate.assignment(4).resource, 3u);  // n5 on r4, as drawn
  EXPECT_DOUBLE_EQ(candidate.assignment(4).start, 20.0);
  EXPECT_DOUBLE_EQ(candidate.assignment(4).finish, 34.0);
  EXPECT_DOUBLE_EQ(candidate.makespan(), 87.0);  // ... but the plan loses
}

TEST_F(Fig5, OrderExplorationReaches76EvenUnderStrictTransfers) {
  // The 76-unit makespan is also reachable under the conservative transfer
  // model — one near-tie order swap (n6 before n5) suffices.
  run_to_15();
  SchedulerConfig config;
  config.transfer_policy = TransferPolicy::kRetransmitFromClock;
  config.order_candidates = 8;
  const Schedule candidate = aheft_schedule(request(config));
  EXPECT_DOUBLE_EQ(candidate.makespan(), 76.0);
  // Fig. 5(b) structure: n3 keeps its r3 slot; n10 finishes at 76.
  EXPECT_EQ(candidate.assignment(2).resource, 2u);
  EXPECT_DOUBLE_EQ(candidate.assignment(2).start, 9.0);
  EXPECT_DOUBLE_EQ(candidate.assignment(9).finish, 76.0);
}

TEST_F(Fig5, RestartPolicyLosesN3Progress) {
  run_to_15();
  SchedulerConfig config;
  config.running_policy = RunningJobPolicy::kRestartable;
  const Schedule candidate = aheft_schedule(request(config));
  // n3 restarts no earlier than the reschedule clock.
  EXPECT_GE(candidate.assignment(2).start, 15.0);
}

TEST_F(Fig5, KeepRunningPinsN3) {
  run_to_15();
  SchedulerConfig config;
  config.running_policy = RunningJobPolicy::kKeepRunning;
  const Schedule candidate = aheft_schedule(request(config));
  EXPECT_EQ(candidate.assignment(2).resource, 2u);
  EXPECT_DOUBLE_EQ(candidate.assignment(2).start, 9.0);
  EXPECT_DOUBLE_EQ(candidate.assignment(2).finish, 28.0);
}

TEST_F(Fig5, FinishedJobsAreAlwaysPinned) {
  run_to_15();
  for (const auto policy :
       {RunningJobPolicy::kKeepRunning, RunningJobPolicy::kRestartable}) {
    SchedulerConfig config;
    config.running_policy = policy;
    config.order_candidates = 8;
    const Schedule candidate = aheft_schedule(request(config));
    EXPECT_EQ(candidate.assignment(0).resource, 2u);
    EXPECT_DOUBLE_EQ(candidate.assignment(0).start, 0.0);
    EXPECT_DOUBLE_EQ(candidate.assignment(0).finish, 9.0);
  }
}

TEST_F(Fig5, NewJobsNeverScheduledBeforeClock) {
  run_to_15();
  SchedulerConfig config;
  config.order_candidates = 8;
  const Schedule candidate = aheft_schedule(request(config));
  for (dag::JobId i = 0; i < 10; ++i) {
    if (i == 0 || i == 2) {
      continue;  // pinned history
    }
    EXPECT_GE(candidate.assignment(i).start, 15.0) << "n" << i + 1;
  }
}

TEST(Rescheduler, DepartedResourceForcesRunningJobOff) {
  TinyFixture fx;
  // Job a runs on r0 which departs at t=8, before a's expected finish 10.
  fx.pool.set_departure(0, 8.0);
  ExecutionSnapshot snap(6.0, 2, 1);
  snap.add_running(RunningInfo{fx.a, 0, 5.0, 10.0});
  Schedule s0(2);
  s0.assign(Assignment{fx.a, 0, 5.0, 10.0});
  s0.assign(Assignment{fx.b, 0, 10.0, 15.0});

  RescheduleRequest req = fx.request(&snap, &s0, 6.0);
  req.resources = {1, 2};  // r0 is gone
  req.config.running_policy = RunningJobPolicy::kKeepRunning;
  const Schedule s1 = aheft_schedule(req);
  EXPECT_NE(s1.assignment(fx.a).resource, 0u);
  EXPECT_GE(s1.assignment(fx.a).start, 6.0);
}

TEST(Rescheduler, RequestValidation) {
  TinyFixture fx;
  RescheduleRequest req = fx.request(nullptr, nullptr, 0.0);
  req.resources.clear();
  EXPECT_THROW(aheft_schedule(req), std::invalid_argument);

  RescheduleRequest bad = fx.request(nullptr, nullptr, 0.0);
  Schedule s0(2);
  bad.previous = &s0;  // previous without snapshot
  EXPECT_THROW(aheft_schedule(bad), std::invalid_argument);
}

// ----- property sweep: rescheduling mid-run stays consistent -------------

class ReschedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReschedulerProperty, MidRunRescheduleIsConsistent) {
  const test::RandomCase c = test::make_random_case(GetParam());
  const Schedule initial = heft_schedule(c.workload.dag, c.model, c.pool);

  sim::Simulator sim;
  ExecutionEngine engine(sim, c.workload.dag, c.model, c.pool);
  engine.submit(initial);
  const sim::Time pause = initial.makespan() / 2.0;
  sim.run_until(pause);
  const ExecutionSnapshot snap = engine.snapshot();

  RescheduleRequest req;
  req.dag = &c.workload.dag;
  req.estimates = &c.model;
  req.pool = &c.pool;
  req.resources = c.pool.available_at(pause);
  req.clock = pause;
  req.snapshot = &snap;
  req.previous = &engine.current_schedule();
  const Schedule candidate = aheft_schedule(req);

  // Complete, and everything not already done starts at/after the clock.
  EXPECT_TRUE(candidate.complete());
  for (dag::JobId i = 0; i < candidate.job_count(); ++i) {
    if (snap.finished(i)) {
      EXPECT_DOUBLE_EQ(candidate.assignment(i).finish,
                       snap.finished_info(i).aft);
    } else if (!snap.running_info(i).has_value()) {
      EXPECT_GE(candidate.assignment(i).start, pause - sim::kTimeEpsilon);
    }
  }
  // Submitting the candidate and running to completion must succeed and
  // realize exactly the predicted makespan (accurate estimates).
  engine.submit(candidate);
  sim.run();
  EXPECT_TRUE(engine.finished());
  EXPECT_NEAR(engine.makespan(), candidate.makespan(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReschedulerProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace aheft::core
