// Workflow DAG: G = (V, E) with data-transfer weights on edges.
//
// Mirrors the paper's model (§3.4): nodes are jobs, edge (i, j) means n_i
// must complete before n_j starts, and data_{i,j} is the amount of data
// shipped between them (in cost units; the machine model converts data
// amounts to communication costs).
#ifndef AHEFT_DAG_DAG_H_
#define AHEFT_DAG_DAG_H_

#include <span>
#include <string>
#include <vector>

#include "dag/job.h"

namespace aheft::dag {

/// A directed dependency with its data payload.
struct Edge {
  JobId from = kInvalidJob;
  JobId to = kInvalidJob;
  double data = 0.0;  ///< data_{from,to}; >= 0
};

/// Immutable-after-finalize DAG. Build with add_job/add_edge, then call
/// finalize() once; accessors other than the builders require a finalized
/// graph (enforced).
class Dag {
 public:
  Dag() = default;
  explicit Dag(std::string name) : name_(std::move(name)) {}

  // ----- construction -------------------------------------------------
  /// Adds a job; returns its dense id (0-based, in insertion order).
  JobId add_job(std::string name, std::string operation = "generic");
  /// Adds a dependency edge carrying `data` units of output.
  void add_edge(JobId from, JobId to, double data);
  /// Validates the graph (no cycles, self-loops, or duplicate edges) and
  /// builds the adjacency indexes. Throws std::invalid_argument on invalid
  /// input. Idempotent.
  void finalize();

  // ----- topology (finalized only) ------------------------------------
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] const JobInfo& job(JobId id) const;
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Indexes of edges entering `id` (the paper's pred(n_i)).
  [[nodiscard]] std::span<const std::uint32_t> in_edges(JobId id) const;
  /// Indexes of edges leaving `id` (the paper's succ(n_i)).
  [[nodiscard]] std::span<const std::uint32_t> out_edges(JobId id) const;

  [[nodiscard]] std::vector<JobId> predecessors(JobId id) const;
  [[nodiscard]] std::vector<JobId> successors(JobId id) const;

  /// Jobs with no predecessors / successors.
  [[nodiscard]] const std::vector<JobId>& entry_jobs() const;
  [[nodiscard]] const std::vector<JobId>& exit_jobs() const;

  /// A topological order (deterministic: Kahn's algorithm with a FIFO of
  /// ready jobs seeded in id order).
  [[nodiscard]] const std::vector<JobId>& topological_order() const;

  /// Data payload on edge (from, to); 0 when no such edge exists.
  [[nodiscard]] double data(JobId from, JobId to) const;

  /// List of distinct operation names, in first-appearance order.
  [[nodiscard]] std::vector<std::string> operations() const;

 private:
  void require_finalized() const;
  void require_job(JobId id) const;

  std::string name_ = "dag";
  std::vector<JobInfo> jobs_;
  std::vector<Edge> edges_;
  bool finalized_ = false;

  // CSR-style adjacency, built by finalize().
  std::vector<std::uint32_t> in_index_;    // edge indexes grouped by target
  std::vector<std::uint32_t> in_offsets_;  // size job_count()+1
  std::vector<std::uint32_t> out_index_;   // edge indexes grouped by source
  std::vector<std::uint32_t> out_offsets_;
  std::vector<JobId> entries_;
  std::vector<JobId> exits_;
  std::vector<JobId> topo_order_;
};

}  // namespace aheft::dag

#endif  // AHEFT_DAG_DAG_H_
