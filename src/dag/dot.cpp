#include "dag/dot.h"

#include <sstream>

#include "support/table.h"

namespace aheft::dag {

namespace {

std::string quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_dot(const Dag& dag) {
  std::ostringstream os;
  os << "digraph " << quote(dag.name()) << " {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (JobId i = 0; i < dag.job_count(); ++i) {
    const JobInfo& info = dag.job(i);
    os << "  n" << i << " [label=" << quote(info.name);
    if (info.operation != "generic" && info.operation != info.name) {
      os << ", tooltip=" << quote(info.operation);
    }
    os << "];\n";
  }
  for (const Edge& e : dag.edges()) {
    os << "  n" << e.from << " -> n" << e.to;
    if (e.data > 0.0) {
      os << " [label=" << quote(format_double(e.data, 1)) << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace aheft::dag
