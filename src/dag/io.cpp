#include "dag/io.h"

#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace aheft::dag {

void write_dag(std::ostream& os, const Dag& dag) {
  AHEFT_REQUIRE(dag.finalized(), "can only serialize finalized DAGs");
  os << "dag " << dag.name() << '\n';
  for (JobId i = 0; i < dag.job_count(); ++i) {
    const JobInfo& info = dag.job(i);
    os << "job " << i << ' ' << info.name << ' ' << info.operation << '\n';
  }
  for (const Edge& e : dag.edges()) {
    os << "edge " << e.from << ' ' << e.to << ' ' << e.data << '\n';
  }
}

std::string write_dag_string(const Dag& dag) {
  std::ostringstream os;
  write_dag(os, dag);
  return os.str();
}

Dag read_dag(std::istream& is) {
  Dag dag;
  std::string line;
  std::size_t line_no = 0;
  bool named = false;
  auto fail = [&](const std::string& why) {
    throw std::invalid_argument("dag parse error at line " +
                                std::to_string(line_no) + ": " + why);
  };
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) {
      continue;  // blank line
    }
    if (kind == "dag") {
      std::string name;
      if (!(ls >> name)) fail("dag record needs a name");
      if (named) fail("duplicate dag record");
      dag = Dag(name);
      named = true;
    } else if (kind == "job") {
      std::uint64_t id = 0;
      std::string name;
      std::string operation;
      if (!(ls >> id >> name >> operation)) fail("job record needs <id> <name> <operation>");
      const JobId assigned = dag.add_job(name, operation);
      if (assigned != id) fail("job ids must be dense and in order");
    } else if (kind == "edge") {
      std::uint32_t from = 0;
      std::uint32_t to = 0;
      double data = 0.0;
      if (!(ls >> from >> to >> data)) fail("edge record needs <from> <to> <data>");
      dag.add_edge(from, to, data);
    } else {
      fail("unknown record kind '" + kind + "'");
    }
  }
  dag.finalize();
  return dag;
}

Dag read_dag_string(const std::string& text) {
  std::istringstream is(text);
  return read_dag(is);
}

}  // namespace aheft::dag
