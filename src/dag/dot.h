// Graphviz export for workflow DAGs.
#ifndef AHEFT_DAG_DOT_H_
#define AHEFT_DAG_DOT_H_

#include <string>

#include "dag/dag.h"

namespace aheft::dag {

/// Renders the DAG in Graphviz dot syntax. Edge labels carry the data
/// payload; node labels the job name (and operation when it differs).
[[nodiscard]] std::string to_dot(const Dag& dag);

}  // namespace aheft::dag

#endif  // AHEFT_DAG_DOT_H_
