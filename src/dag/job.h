// Job (node) identity for workflow DAGs.
#ifndef AHEFT_DAG_JOB_H_
#define AHEFT_DAG_JOB_H_

#include <cstdint>
#include <limits>
#include <string>

namespace aheft::dag {

/// Dense job index within one DAG (the paper's n_i).
using JobId = std::uint32_t;

inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

/// Static description of one job. `operation` names the unique executable
/// the job instantiates — scientific workflows contain only a handful of
/// distinct operations (paper §4.3: Montage has 11, BLAST and WIEN2K
/// similar), and cost generators exploit this by assigning costs per
/// operation rather than per job instance.
struct JobInfo {
  std::string name;       ///< unique human-readable label, e.g. "LAPW1_K3"
  std::string operation;  ///< executable type, e.g. "LAPW1"
};

}  // namespace aheft::dag

#endif  // AHEFT_DAG_JOB_H_
