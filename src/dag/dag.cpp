#include "dag/dag.h"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

#include "support/assert.h"

namespace aheft::dag {

JobId Dag::add_job(std::string name, std::string operation) {
  AHEFT_REQUIRE(!finalized_, "cannot add jobs to a finalized DAG");
  AHEFT_REQUIRE(jobs_.size() < kInvalidJob, "too many jobs");
  jobs_.push_back(JobInfo{std::move(name), std::move(operation)});
  return static_cast<JobId>(jobs_.size() - 1);
}

void Dag::add_edge(JobId from, JobId to, double data) {
  AHEFT_REQUIRE(!finalized_, "cannot add edges to a finalized DAG");
  AHEFT_REQUIRE(from < jobs_.size(), "edge source does not exist");
  AHEFT_REQUIRE(to < jobs_.size(), "edge target does not exist");
  AHEFT_REQUIRE(from != to, "self-loop edges are not allowed");
  AHEFT_REQUIRE(data >= 0.0, "edge data must be non-negative");
  edges_.push_back(Edge{from, to, data});
}

void Dag::finalize() {
  if (finalized_) {
    return;
  }
  AHEFT_REQUIRE(!jobs_.empty(), "DAG must contain at least one job");

  // Reject duplicate edges.
  {
    std::set<std::pair<JobId, JobId>> seen;
    for (const Edge& e : edges_) {
      const bool inserted = seen.emplace(e.from, e.to).second;
      AHEFT_REQUIRE(inserted, "duplicate edge " + jobs_[e.from].name + " -> " +
                                  jobs_[e.to].name);
    }
  }

  const auto v = jobs_.size();
  std::vector<std::uint32_t> in_degree(v, 0);
  std::vector<std::uint32_t> out_degree(v, 0);
  for (const Edge& e : edges_) {
    ++in_degree[e.to];
    ++out_degree[e.from];
  }

  auto build_csr = [&](const std::vector<std::uint32_t>& degree,
                       std::vector<std::uint32_t>& offsets,
                       std::vector<std::uint32_t>& index, bool by_target) {
    offsets.assign(v + 1, 0);
    for (std::size_t i = 0; i < v; ++i) {
      offsets[i + 1] = offsets[i] + degree[i];
    }
    index.resize(edges_.size());
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
      const JobId key = by_target ? edges_[e].to : edges_[e].from;
      index[cursor[key]++] = e;
    }
  };
  build_csr(in_degree, in_offsets_, in_index_, /*by_target=*/true);
  build_csr(out_degree, out_offsets_, out_index_, /*by_target=*/false);

  // Kahn topological sort; deterministic FIFO order.
  topo_order_.clear();
  topo_order_.reserve(v);
  std::vector<std::uint32_t> remaining(in_degree);
  std::deque<JobId> ready;
  for (JobId i = 0; i < v; ++i) {
    if (remaining[i] == 0) {
      ready.push_back(i);
    }
  }
  while (!ready.empty()) {
    const JobId id = ready.front();
    ready.pop_front();
    topo_order_.push_back(id);
    for (const std::uint32_t e :
         std::span(out_index_).subspan(out_offsets_[id],
                                       out_offsets_[id + 1] -
                                           out_offsets_[id])) {
      const JobId target = edges_[e].to;
      if (--remaining[target] == 0) {
        ready.push_back(target);
      }
    }
  }
  AHEFT_REQUIRE(topo_order_.size() == v, "DAG contains a cycle");

  entries_.clear();
  exits_.clear();
  for (JobId i = 0; i < v; ++i) {
    if (in_degree[i] == 0) {
      entries_.push_back(i);
    }
    if (out_degree[i] == 0) {
      exits_.push_back(i);
    }
  }
  finalized_ = true;
}

void Dag::require_finalized() const {
  AHEFT_REQUIRE(finalized_, "DAG must be finalized first");
}

void Dag::require_job(JobId id) const {
  AHEFT_REQUIRE(id < jobs_.size(), "job id out of range");
}

const JobInfo& Dag::job(JobId id) const {
  require_job(id);
  return jobs_[id];
}

std::span<const std::uint32_t> Dag::in_edges(JobId id) const {
  require_finalized();
  require_job(id);
  return std::span(in_index_)
      .subspan(in_offsets_[id], in_offsets_[id + 1] - in_offsets_[id]);
}

std::span<const std::uint32_t> Dag::out_edges(JobId id) const {
  require_finalized();
  require_job(id);
  return std::span(out_index_)
      .subspan(out_offsets_[id], out_offsets_[id + 1] - out_offsets_[id]);
}

std::vector<JobId> Dag::predecessors(JobId id) const {
  std::vector<JobId> out;
  for (const std::uint32_t e : in_edges(id)) {
    out.push_back(edges_[e].from);
  }
  return out;
}

std::vector<JobId> Dag::successors(JobId id) const {
  std::vector<JobId> out;
  for (const std::uint32_t e : out_edges(id)) {
    out.push_back(edges_[e].to);
  }
  return out;
}

const std::vector<JobId>& Dag::entry_jobs() const {
  require_finalized();
  return entries_;
}

const std::vector<JobId>& Dag::exit_jobs() const {
  require_finalized();
  return exits_;
}

const std::vector<JobId>& Dag::topological_order() const {
  require_finalized();
  return topo_order_;
}

double Dag::data(JobId from, JobId to) const {
  require_finalized();
  require_job(from);
  require_job(to);
  for (const std::uint32_t e : out_edges(from)) {
    if (edges_[e].to == to) {
      return edges_[e].data;
    }
  }
  return 0.0;
}

std::vector<std::string> Dag::operations() const {
  // Insertion-ordered dedup without a hashed container: operation
  // alphabets are tiny (a handful per application), so the linear probe
  // costs nothing and keeps src/dag free of unordered containers whose
  // iteration order could one day leak into scheduling order.
  std::vector<std::string> ops;
  for (const JobInfo& info : jobs_) {
    if (std::find(ops.begin(), ops.end(), info.operation) == ops.end()) {
      ops.push_back(info.operation);
    }
  }
  return ops;
}

}  // namespace aheft::dag
