#include "dag/algorithms.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::dag {

CriticalPath critical_path(const Dag& dag,
                           const std::vector<double>& node_cost,
                           const std::vector<double>& edge_cost) {
  AHEFT_REQUIRE(node_cost.size() == dag.job_count(),
                "node_cost size mismatch");
  AHEFT_REQUIRE(edge_cost.size() == dag.edge_count(),
                "edge_cost size mismatch");

  const auto v = dag.job_count();
  std::vector<double> best(v, 0.0);
  std::vector<JobId> from(v, kInvalidJob);

  for (const JobId id : dag.topological_order()) {
    double incoming = 0.0;
    JobId via = kInvalidJob;
    for (const std::uint32_t e : dag.in_edges(id)) {
      const Edge& edge = dag.edges()[e];
      const double candidate = best[edge.from] + edge_cost[e];
      if (candidate > incoming) {
        incoming = candidate;
        via = edge.from;
      }
    }
    best[id] = incoming + node_cost[id];
    from[id] = via;
  }

  CriticalPath result;
  JobId tail = kInvalidJob;
  for (const JobId id : dag.exit_jobs()) {
    if (tail == kInvalidJob || best[id] > result.length) {
      result.length = best[id];
      tail = id;
    }
  }
  for (JobId id = tail; id != kInvalidJob; id = from[id]) {
    result.path.push_back(id);
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

std::vector<std::uint32_t> levels(const Dag& dag) {
  std::vector<std::uint32_t> level(dag.job_count(), 0);
  for (const JobId id : dag.topological_order()) {
    std::uint32_t depth = 0;
    for (const std::uint32_t e : dag.in_edges(id)) {
      depth = std::max(depth, level[dag.edges()[e].from] + 1);
    }
    level[id] = depth;
  }
  return level;
}

std::vector<std::uint32_t> level_widths(const Dag& dag) {
  const auto level = levels(dag);
  const std::uint32_t depth =
      level.empty() ? 0 : *std::max_element(level.begin(), level.end()) + 1;
  std::vector<std::uint32_t> width(depth, 0);
  for (const std::uint32_t l : level) {
    ++width[l];
  }
  return width;
}

std::uint32_t max_parallelism(const Dag& dag) {
  const auto widths = level_widths(dag);
  return widths.empty() ? 0
                        : *std::max_element(widths.begin(), widths.end());
}

bool reaches(const Dag& dag, JobId ancestor, JobId descendant) {
  if (ancestor == descendant) {
    return true;
  }
  std::vector<bool> visited(dag.job_count(), false);
  std::vector<JobId> stack{ancestor};
  visited[ancestor] = true;
  while (!stack.empty()) {
    const JobId id = stack.back();
    stack.pop_back();
    for (const std::uint32_t e : dag.out_edges(id)) {
      const JobId next = dag.edges()[e].to;
      if (next == descendant) {
        return true;
      }
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace aheft::dag
