// Graph analyses over workflow DAGs: critical path, levels, parallelism.
#ifndef AHEFT_DAG_ALGORITHMS_H_
#define AHEFT_DAG_ALGORITHMS_H_

#include <vector>

#include "dag/dag.h"

namespace aheft::dag {

/// Result of a critical-path computation.
struct CriticalPath {
  double length = 0.0;
  std::vector<JobId> path;  ///< entry ... exit, inclusive
};

/// Longest path through the DAG where node i contributes node_cost[i] and
/// edge e contributes edge_cost[e] (indexed like dag.edges()).
[[nodiscard]] CriticalPath critical_path(const Dag& dag,
                                         const std::vector<double>& node_cost,
                                         const std::vector<double>& edge_cost);

/// Topological level of each job: entry jobs are level 0; every other job
/// is 1 + max(level of predecessors). This is the paper's notion of a DAG
/// "level" (e.g. LAPW2_FERMI being "the single job on its level").
[[nodiscard]] std::vector<std::uint32_t> levels(const Dag& dag);

/// Number of jobs on each level; the maximum is a cheap lower bound on the
/// DAG's degree of parallelism, the property the paper ties AHEFT's
/// improvement to.
[[nodiscard]] std::vector<std::uint32_t> level_widths(const Dag& dag);

/// max(level_widths).
[[nodiscard]] std::uint32_t max_parallelism(const Dag& dag);

/// True if `ancestor` reaches `descendant` through directed edges.
[[nodiscard]] bool reaches(const Dag& dag, JobId ancestor, JobId descendant);

}  // namespace aheft::dag

#endif  // AHEFT_DAG_ALGORITHMS_H_
