// Plain-text (de)serialization of workflow DAGs.
//
// Format (one record per line, '#' comments allowed):
//   dag <name>
//   job <id> <name> <operation>
//   edge <from> <to> <data>
// Job ids must be dense and in order; this keeps files diffable and makes
// hand-written fixtures easy.
#ifndef AHEFT_DAG_IO_H_
#define AHEFT_DAG_IO_H_

#include <iosfwd>
#include <string>

#include "dag/dag.h"

namespace aheft::dag {

/// Serializes a finalized DAG.
void write_dag(std::ostream& os, const Dag& dag);
[[nodiscard]] std::string write_dag_string(const Dag& dag);

/// Parses and finalizes a DAG. Throws std::invalid_argument on malformed
/// input (unknown record, non-dense ids, cycle, ...).
[[nodiscard]] Dag read_dag(std::istream& is);
[[nodiscard]] Dag read_dag_string(const std::string& text);

}  // namespace aheft::dag

#endif  // AHEFT_DAG_IO_H_
