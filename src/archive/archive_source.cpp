#include "archive/archive_source.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "archive/fitted_model.h"
#include "archive/swf_reader.h"
#include "support/assert.h"
#include "traces/scenario_source.h"

namespace aheft::archive {

namespace {

using traces::ArchiveParams;
using traces::CompiledScenario;
using traces::ScenarioRequest;

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
/// Background load past this much simulated time is dropped (soak runs
/// with huge horizons would otherwise accumulate unbounded segments).
constexpr double kLoadHorizonDays = 14.0;
/// Replay utilization is averaged over at most this many buckets.
constexpr std::size_t kUtilizationBuckets = 256;

/// Sweeps share archives across hundreds of cases; parse each path once
/// per process (same idiom and caveats as the TraceSource cache).
const SwfLog& cached_log(const std::string& path) {
  static std::mutex mutex;
  static std::map<std::string, SwfLog, std::less<>> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(path);
  if (it == cache.end()) {
    it = cache.emplace(path, read_swf_file(path)).first;
  }
  return it->second;
}

void validate(const ArchiveParams& params) {
  AHEFT_REQUIRE(!params.text.empty() || !params.path.empty(),
                "archive scenario source needs archive.path or archive.text");
  AHEFT_REQUIRE(params.time_scale > 0.0 && std::isfinite(params.time_scale),
                "archive.time_scale must be positive and finite");
  AHEFT_REQUIRE(params.max_machines >= 1,
                "archive.max_machines must be at least one");
  AHEFT_REQUIRE(params.background_load >= 0.0 &&
                    std::isfinite(params.background_load),
                "archive.background_load must be non-negative and finite");
  AHEFT_REQUIRE(params.bag_window >= 0.0,
                "archive.bag_window must be non-negative");
}

/// Inline text wins over the path (mirrors the trace backend).
const SwfLog& request_log(const ArchiveParams& params, SwfLog& owned) {
  if (!params.text.empty()) {
    owned = read_swf_string(params.text);
    return owned;
  }
  return cached_log(params.path);
}

/// Grid size: explicit knob, else the log's MaxNodes / MaxProcs headers,
/// else the archive's peak concurrent processor demand — capped so a
/// 1000-node production log maps onto a solvable HEFT grid.
std::size_t pool_size(const SwfHeader& header, std::size_t demand_peak,
                      const ArchiveParams& params) {
  if (params.machines > 0) {
    return params.machines;
  }
  std::size_t derived = header.max_nodes();
  if (derived == 0) {
    derived = header.max_procs();
  }
  if (derived == 0) {
    derived = demand_peak;
  }
  return std::clamp<std::size_t>(derived, 1, params.max_machines);
}

std::vector<grid::ResourceId> build_pool(CompiledScenario& scenario,
                                         std::size_t machines) {
  for (std::size_t i = 0; i < machines; ++i) {
    scenario.pool.add(grid::Resource{.name = "", .arrival = sim::kTimeZero});
  }
  std::vector<grid::ResourceId> ids;
  ids.reserve(machines);
  for (const grid::Resource& resource : scenario.pool.all()) {
    ids.push_back(resource.id);
  }
  return ids;
}

/// One grid-wide load level: all machines run at `multiplier` over
/// [start, end) — times in archive seconds, scaled at emission.
struct LoadLevel {
  double start = 0.0;
  double end = 0.0;
  double multiplier = 1.0;
};

/// Quantizes a multiplier to 0.05 steps so adjacent windows merge.
double quantize(double multiplier) {
  return std::round(multiplier * 20.0) / 20.0;
}

void append_level(std::vector<LoadLevel>& levels, double start, double end,
                  double multiplier) {
  if (multiplier <= 1.0 + 1e-9 || !(end > start)) {
    return;  // no measurable slowdown
  }
  if (!levels.empty() && levels.back().multiplier == multiplier &&
      levels.back().end == start) {
    levels.back().end = end;
  } else {
    levels.push_back(LoadLevel{start, end, multiplier});
  }
}

struct UtilizationProfile {
  std::vector<LoadLevel> levels;
  double capacity = 0.0;  ///< peak concurrent busy processors
};

/// The archive's processor-utilization timeline, bucket-averaged and
/// turned into load multipliers 1 + amplitude * utilization.
UtilizationProfile utilization_profile(const std::vector<SwfJob>& jobs,
                                       double t0, double amplitude) {
  UtilizationProfile profile;
  std::vector<std::pair<double, double>> deltas;  // (time, +-procs)
  deltas.reserve(jobs.size() * 2);
  for (const SwfJob& job : jobs) {
    const double start = job.submit - t0 + std::max(job.wait, 0.0);
    const auto procs = static_cast<double>(job.procs);
    deltas.emplace_back(start, procs);
    deltas.emplace_back(start + job.runtime, -procs);
  }
  std::sort(deltas.begin(), deltas.end());

  // Collapse into a piecewise-constant busy-processor step function.
  std::vector<std::pair<double, double>> steps;  // (time, busy from here)
  double busy = 0.0;
  for (std::size_t i = 0; i < deltas.size();) {
    std::size_t j = i;
    while (j < deltas.size() && deltas[j].first == deltas[i].first) {
      busy += deltas[j].second;
      ++j;
    }
    steps.emplace_back(deltas[i].first, busy);
    profile.capacity = std::max(profile.capacity, busy);
    i = j;
  }
  const double span = steps.empty() ? 0.0 : steps.back().first;
  if (!(span > 0.0) || profile.capacity <= 0.0 || amplitude <= 0.0) {
    return profile;
  }

  // Time-averaged utilization per bucket.
  const std::size_t buckets = kUtilizationBuckets;
  const double width = span / static_cast<double>(buckets);
  std::vector<double> integral(buckets, 0.0);
  for (std::size_t i = 0; i + 1 <= steps.size(); ++i) {
    const double a = steps[i].first;
    const double b = i + 1 < steps.size() ? steps[i + 1].first : span;
    const double u = steps[i].second / profile.capacity;
    if (!(b > a) || u <= 0.0) {
      continue;
    }
    auto bucket = static_cast<std::size_t>(a / width);
    bucket = std::min(bucket, buckets - 1);
    for (; bucket < buckets; ++bucket) {
      const double lo = std::max(a, static_cast<double>(bucket) * width);
      const double hi =
          std::min(b, static_cast<double>(bucket + 1) * width);
      if (!(hi > lo)) {
        break;
      }
      integral[bucket] += u * (hi - lo);
    }
  }
  for (std::size_t bucket = 0; bucket < buckets; ++bucket) {
    const double start = static_cast<double>(bucket) * width;
    const double multiplier =
        quantize(1.0 + amplitude * integral[bucket] / width);
    append_level(profile.levels, start, start + width, multiplier);
  }
  return profile;
}

void emit_load(CompiledScenario& scenario,
               const std::vector<grid::ResourceId>& machines,
               const std::vector<LoadLevel>& levels, double time_scale) {
  for (const LoadLevel& level : levels) {
    for (const grid::ResourceId id : machines) {
      scenario.load.add(id, level.start * time_scale,
                        level.end * time_scale, level.multiplier);
    }
  }
}

// ------------------------------------------------------------ archive --

/// Replays a parsed SWF/GWA log as a CompiledScenario: static pool sized
/// from the log, utilization-bucket background load, one workflow
/// arrival per usable job. The timeline is fixed by the file, so the
/// backend is horizon-insensitive (like `trace`).
class ArchiveReplaySource final : public traces::ScenarioSource {
 public:
  [[nodiscard]] std::string name() const override { return "archive"; }
  [[nodiscard]] std::string description() const override {
    return "replay of an SWF/GWA workload archive (pool, load, arrivals)";
  }
  [[nodiscard]] bool horizon_sensitive() const override { return false; }

  [[nodiscard]] CompiledScenario build(
      const ScenarioRequest& request) const override {
    const ArchiveParams& params = request.archive;
    validate(params);
    SwfLog owned;
    const SwfLog& log = request_log(params, owned);
    const std::vector<SwfJob> jobs =
        usable_jobs(log, params.include_failed);
    if (jobs.empty()) {
      throw std::invalid_argument(
          "archive has no usable jobs (completed, positive runtime)");
    }
    const double t0 = jobs.front().submit;

    CompiledScenario scenario;
    const UtilizationProfile profile =
        utilization_profile(jobs, t0, params.background_load);
    const std::size_t machines = pool_size(
        log.header, static_cast<std::size_t>(profile.capacity), params);
    const std::vector<grid::ResourceId> ids = build_pool(scenario, machines);
    emit_load(scenario, ids, profile.levels, params.time_scale);

    std::size_t count = jobs.size();
    if (request.stream.jobs > 0) {
      count = std::min(count, request.stream.jobs);
    }
    if (params.max_jobs > 0) {
      count = std::min(count, params.max_jobs);
    }
    scenario.job_arrivals.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      scenario.job_arrivals.push_back(traces::JobArrivalRecord{
          static_cast<std::uint32_t>(k),
          (jobs[k].submit - t0) * params.time_scale,
          "swf" + std::to_string(jobs[k].id)});
    }

    scenario.load.sort();
    scenario.events = derive_events(scenario.pool, scenario.load);
    return scenario;
  }
};

// ------------------------------------------------------------- fitted --

/// Fits the archive's marginals and generates a fresh, seeded stream
/// from them: diurnal arrivals, heavy-tailed runtimes, bag-of-task
/// bursts. Unlike `archive` this is horizon-sensitive — the diurnal
/// background load extends with the horizon — and unbounded: any
/// stream.jobs count is served with O(1) generator state.
class FittedSource final : public traces::ScenarioSource {
 public:
  [[nodiscard]] std::string name() const override { return "fitted"; }
  [[nodiscard]] std::string description() const override {
    return "generator fitted to an SWF/GWA archive (diurnal arrivals, "
           "heavy-tailed runtimes, task bags)";
  }

  [[nodiscard]] CompiledScenario build(
      const ScenarioRequest& request) const override {
    const ArchiveParams& params = request.archive;
    validate(params);
    SwfLog owned;
    const SwfLog& log = request_log(params, owned);
    const ArchiveFit fit = fit_archive(
        log, FitOptions{.bag_window = params.bag_window,
                        .include_failed = params.include_failed});

    CompiledScenario scenario;
    const auto demand_peak =
        static_cast<std::size_t>(std::max<std::int64_t>(
            fit.procs_cdf.empty() ? 1 : fit.procs_cdf.back().second, 1));
    const std::size_t machines = pool_size(log.header, demand_peak, params);
    const std::vector<grid::ResourceId> ids = build_pool(scenario, machines);

    if (request.stream.jobs > 0) {
      FittedJobStream stream(fit, request.seed);
      scenario.job_arrivals.reserve(request.stream.jobs);
      for (std::size_t k = 0; k < request.stream.jobs; ++k) {
        const GeneratedJob job = stream.next();
        scenario.job_arrivals.push_back(traces::JobArrivalRecord{
            static_cast<std::uint32_t>(k), job.arrival * params.time_scale,
            "gen" + std::to_string(k)});
      }
    }

    // Diurnal background load: hour h of the archive clock runs at
    // 1 + background_load * rate_h / peak_rate, repeated out to the
    // horizon (capped — soak horizons would accumulate segments forever).
    if (params.background_load > 0.0 && request.horizon > sim::kTimeZero &&
        fit.peak_rate > 0.0) {
      const double cap_sim = std::min<double>(
          request.horizon,
          kLoadHorizonDays * kSecondsPerDay * params.time_scale);
      const double cap_archive = cap_sim / params.time_scale;
      std::vector<LoadLevel> levels;
      double at = 0.0;
      while (at < cap_archive) {
        double day = std::fmod(fit.phase_seconds + at, kSecondsPerDay);
        if (day < 0.0) {
          day += kSecondsPerDay;
        }
        const auto hour = std::min<std::size_t>(
            23, static_cast<std::size_t>(day / kSecondsPerHour));
        const double boundary =
            at + (kSecondsPerHour - std::fmod(day, kSecondsPerHour));
        const double end = std::min(boundary, cap_archive);
        if (!(end > at)) {
          break;
        }
        append_level(levels, at, end,
                     quantize(1.0 + params.background_load *
                                        fit.hourly_rate[hour] /
                                        fit.peak_rate));
        at = end;
      }
      emit_load(scenario, ids, levels, params.time_scale);
    }

    scenario.load.sort();
    scenario.events = derive_events(scenario.pool, scenario.load);
    return scenario;
  }
};

}  // namespace

void register_archive_sources(traces::ScenarioSourceRegistry& registry) {
  registry.register_source(std::make_unique<ArchiveReplaySource>());
  registry.register_source(std::make_unique<FittedSource>());
}

}  // namespace aheft::archive
