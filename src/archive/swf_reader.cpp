#include "archive/swf_reader.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace aheft::archive {

namespace {

/// A job record has these many leading numeric fields; GWA logs append
/// more, which the reader ignores.
constexpr std::size_t kSwfFields = 18;

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw SwfParseError(line, message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    tokens.push_back(std::move(token));
  }
  return tokens;
}

/// Locale-independent double parse; rejects trailing junk, NaN, and inf
/// (SWF fields are plain seconds/counts, missing values are -1).
double parse_double(std::size_t line, const std::string& token,
                    const char* field) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || std::isnan(value) ||
      std::isinf(value)) {
    fail(line, std::string("malformed ") + field + " '" + token + "'");
  }
  return value;
}

std::int64_t parse_int(std::size_t line, const std::string& token,
                       const char* field) {
  std::int64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    fail(line, std::string("malformed ") + field + " '" + token + "'");
  }
  return value;
}

/// Round-trip-exact double formatting (same contract as the gridtrace
/// writer); integral values print without a fraction.
std::string format_field(double value) {
  char buffer[32];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

/// `; Key: Value` header comment -> (Key, Value); nullopt-style empty key
/// for free-text comments.
std::pair<std::string, std::string> parse_header_comment(
    const std::string& line) {
  std::size_t start = line.find_first_not_of("; \t");
  if (start == std::string::npos) {
    return {};
  }
  const std::size_t colon = line.find(':', start);
  if (colon == std::string::npos) {
    return {};
  }
  std::string key = line.substr(start, colon - start);
  while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) {
    key.pop_back();
  }
  // Structured keys are single words (MaxProcs, UnixStartTime, ...);
  // colons inside free text ("note: beware") are not headers.
  if (key.empty() || key.find(' ') != std::string::npos ||
      key.find('\t') != std::string::npos) {
    return {};
  }
  std::size_t value_start = line.find_first_not_of(" \t", colon + 1);
  std::string value =
      value_start == std::string::npos ? "" : line.substr(value_start);
  while (!value.empty() &&
         (value.back() == ' ' || value.back() == '\t' ||
          value.back() == '\r')) {
    value.pop_back();
  }
  return {std::move(key), std::move(value)};
}

}  // namespace

std::string SwfHeader::value(const std::string& key) const {
  const auto it = fields.find(key);
  return it == fields.end() ? "" : it->second;
}

std::uint64_t SwfHeader::value_u64(const std::string& key) const {
  const std::string text = value(key);
  std::uint64_t parsed = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  // Advisory header: tolerate trailing annotations ("128 (see note)").
  if (ec != std::errc() || ptr == begin) {
    return 0;
  }
  return parsed;
}

SwfParseError::SwfParseError(std::size_t line, const std::string& message)
    : std::runtime_error("swf line " + std::to_string(line) + ": " +
                         message),
      line_(line) {}

SwfLog read_swf(std::istream& in) {
  SwfLog log;
  std::string line;
  std::size_t line_number = 0;
  double last_submit = -1.0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {
      continue;  // blank
    }
    if (line[first] == ';') {
      auto [key, value] = parse_header_comment(line.substr(first));
      if (!key.empty() && !log.header.fields.contains(key)) {
        log.header.fields.emplace(std::move(key), std::move(value));
      }
      continue;
    }

    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.size() < kSwfFields) {
      std::ostringstream os;
      os << "expected " << kSwfFields << " fields (SWF job record), got "
         << tokens.size();
      fail(line_number, os.str());
    }

    SwfJob job;
    job.id = parse_int(line_number, tokens[0], "job id");
    job.submit = parse_double(line_number, tokens[1], "submit time");
    job.wait = parse_double(line_number, tokens[2], "wait time");
    job.runtime = parse_double(line_number, tokens[3], "run time");
    job.procs = parse_int(line_number, tokens[4], "allocated processors");
    (void)parse_double(line_number, tokens[5], "average cpu time");
    (void)parse_double(line_number, tokens[6], "used memory");
    job.requested_procs =
        parse_int(line_number, tokens[7], "requested processors");
    job.requested_time =
        parse_double(line_number, tokens[8], "requested time");
    (void)parse_double(line_number, tokens[9], "requested memory");
    job.status = static_cast<int>(parse_int(line_number, tokens[10],
                                            "status"));
    job.user = parse_int(line_number, tokens[11], "user id");
    (void)parse_int(line_number, tokens[12], "group id");
    job.executable = parse_int(line_number, tokens[13], "executable id");
    (void)parse_int(line_number, tokens[14], "queue");
    (void)parse_int(line_number, tokens[15], "partition");
    (void)parse_int(line_number, tokens[16], "preceding job");
    (void)parse_double(line_number, tokens[17], "think time");

    if (job.submit < 0.0) {
      fail(line_number, "submit time must be non-negative");
    }
    // SWF logs are submit-ordered by definition; the arrival compilation
    // depends on it, so an out-of-order record is a corrupt log.
    if (job.submit < last_submit) {
      std::ostringstream os;
      os << "submit times must be non-decreasing (got " << job.submit
         << " after " << last_submit << ")";
      fail(line_number, os.str());
    }
    last_submit = job.submit;
    log.jobs.push_back(job);
  }
  return log;
}

SwfLog read_swf_string(std::string_view text) {
  std::istringstream in{std::string(text)};
  return read_swf(in);
}

SwfLog read_swf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open SWF file '" + path + "'");
  }
  return read_swf(in);
}

void write_swf(std::ostream& out, const SwfLog& log) {
  for (const auto& [key, value] : log.header.fields) {
    out << "; " << key << ": " << value << '\n';
  }
  for (const SwfJob& job : log.jobs) {
    out << job.id << ' ' << format_field(job.submit) << ' '
        << format_field(job.wait) << ' ' << format_field(job.runtime) << ' '
        << job.procs << " -1 -1 " << job.requested_procs << ' '
        << format_field(job.requested_time) << " -1 " << job.status << ' '
        << job.user << " -1 " << job.executable << " -1 -1 -1 -1\n";
  }
}

std::string write_swf_string(const SwfLog& log) {
  std::ostringstream out;
  write_swf(out, log);
  return out.str();
}

void write_swf_file(const std::string& path, const SwfLog& log) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot create SWF file '" + path + "'");
  }
  write_swf(out, log);
  if (!out.flush()) {
    throw std::runtime_error("failed writing SWF file '" + path + "'");
  }
}

std::vector<SwfJob> usable_jobs(const SwfLog& log, bool include_failed) {
  std::vector<SwfJob> jobs;
  jobs.reserve(log.jobs.size());
  for (const SwfJob& job : log.jobs) {
    if (!include_failed && !job.completed()) {
      continue;
    }
    if (!(job.runtime > 0.0)) {
      continue;  // unknown or zero runtime cannot be simulated
    }
    SwfJob kept = job;
    if (kept.procs <= 0) {
      kept.procs = kept.requested_procs;
    }
    if (kept.procs <= 0) {
      continue;  // no processor count at all
    }
    jobs.push_back(kept);
  }
  return jobs;
}

}  // namespace aheft::archive
