// ScenarioSource backends over real-workload archives.
//
//   archive  replays a parsed SWF/GWA log: the pool is sized from the
//            log's MaxNodes/MaxProcs headers (or the machines knob), the
//            archive's processor-utilization timeline becomes bucketed
//            background-load segments, and each usable job becomes a
//            workflow-arrival record — run_workflow_stream then replays
//            a production trace instead of a synthetic stream.
//   fitted   fits the archive's marginals (fit_archive) and generates an
//            unbounded, seeded, statistically-faithful stream from them:
//            heavy-tailed runtimes, diurnal arrivals, bag-of-task bursts.
//
// Both read ScenarioRequest::archive (traces::ArchiveParams). They are
// registered with the global registry by the ScenarioSourceRegistry
// constructor through register_archive_sources(), keeping the archive
// machinery out of the traces layer proper.
#ifndef AHEFT_ARCHIVE_ARCHIVE_SOURCE_H_
#define AHEFT_ARCHIVE_ARCHIVE_SOURCE_H_

namespace aheft::traces {
class ScenarioSourceRegistry;
}  // namespace aheft::traces

namespace aheft::archive {

/// Registers the `archive` and `fitted` backends with `registry`.
/// Idempotent: re-registering replaces the previous instances.
void register_archive_sources(traces::ScenarioSourceRegistry& registry);

}  // namespace aheft::archive

#endif  // AHEFT_ARCHIVE_ARCHIVE_SOURCE_H_
