#include "archive/fitted_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/assert.h"

namespace aheft::archive {

namespace {

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;

/// Hour of day (0..23) of instant t when the clock reads `phase` seconds
/// past midnight at t = 0.
std::size_t hour_of_day(double phase, double t) noexcept {
  double day_seconds = std::fmod(phase + t, kSecondsPerDay);
  if (day_seconds < 0.0) {
    day_seconds += kSecondsPerDay;
  }
  const auto hour = static_cast<std::size_t>(day_seconds / kSecondsPerHour);
  return hour >= 24 ? 23 : hour;
}

}  // namespace

double ArchiveFit::runtime_cdf(double x) const noexcept {
  return runtime_is_log_normal ? runtime_log_normal.cdf(x)
                               : runtime_weibull.cdf(x);
}

double ArchiveFit::runtime_from_normal(double z) const noexcept {
  if (runtime_is_log_normal) {
    return runtime_log_normal.quantile_from_normal(z);
  }
  // Gaussian copula: the deviate maps through Phi to a uniform, then
  // through the Weibull quantile; clamping keeps the quantile finite.
  double u = normal_cdf(z);
  u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
  return runtime_weibull.quantile(u);
}

double ArchiveFit::intra_gap_from_uniform(double u) const noexcept {
  u = std::min(std::max(u, 0.0), 1.0);
  const double pos = u * static_cast<double>(intra_gap_quantiles.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= intra_gap_quantiles.size()) {
    return intra_gap_quantiles.back();
  }
  const double frac = pos - static_cast<double>(lo);
  return intra_gap_quantiles[lo] +
         frac * (intra_gap_quantiles[lo + 1] - intra_gap_quantiles[lo]);
}

ArchiveFit fit_archive(const SwfLog& log, const FitOptions& options) {
  if (!(options.bag_window >= 0.0)) {
    throw std::invalid_argument("fit_archive bag_window must be non-negative");
  }
  const std::vector<SwfJob> jobs = usable_jobs(log, options.include_failed);
  if (jobs.size() < 2) {
    throw std::invalid_argument(
        "archive has fewer than two usable jobs; nothing to fit");
  }
  const double t0 = jobs.front().submit;
  const double span = jobs.back().submit - t0;
  if (!(span > 0.0)) {
    throw std::invalid_argument(
        "archive submit span is zero; arrival rates cannot be estimated");
  }

  ArchiveFit fit;
  fit.fitted_jobs = jobs.size();
  fit.span_seconds = span;

  // --- Runtime marginal: fit both candidate tails, keep the KS winner.
  std::vector<double> runtimes;
  runtimes.reserve(jobs.size());
  double runtime_sum = 0.0;
  double procs_sum = 0.0;
  for (const SwfJob& job : jobs) {
    runtimes.push_back(job.runtime);
    runtime_sum += job.runtime;
    procs_sum += static_cast<double>(job.procs);
  }
  fit.mean_runtime = runtime_sum / static_cast<double>(jobs.size());
  fit.mean_procs = procs_sum / static_cast<double>(jobs.size());
  fit.runtime_log_normal = fit_log_normal(runtimes);
  fit.runtime_weibull = fit_weibull(runtimes);
  fit.runtime_ks_log_normal = ks_distance(
      runtimes, [&fit](double x) { return fit.runtime_log_normal.cdf(x); });
  fit.runtime_ks_weibull = ks_distance(
      runtimes, [&fit](double x) { return fit.runtime_weibull.cdf(x); });
  fit.runtime_is_log_normal =
      fit.runtime_ks_log_normal <= fit.runtime_ks_weibull;

  // --- Diurnal arrival profile. Rates are per-hour-of-day counts divided
  // by the seconds each hour-of-day was observed, so partial final days
  // do not bias the profile. The phase aligns hour 0 with the archive's
  // real midnight when UnixStartTime is recorded.
  const auto unix_start = static_cast<double>(log.header.unix_start_time());
  fit.phase_seconds = std::fmod(unix_start + t0, kSecondsPerDay);
  std::array<double, 24> counts{};
  for (const SwfJob& job : jobs) {
    counts[hour_of_day(fit.phase_seconds, job.submit - t0)] += 1.0;
  }
  std::array<double, 24> observed{};
  double t = 0.0;
  while (t < span) {
    const double day_seconds = std::fmod(fit.phase_seconds + t, kSecondsPerDay);
    const double to_boundary =
        kSecondsPerHour - std::fmod(day_seconds, kSecondsPerHour);
    const double step = std::min(to_boundary, span - t);
    if (!(t + step > t)) {
      break;  // step underflowed against a huge span
    }
    observed[hour_of_day(fit.phase_seconds, t)] += step;
    t += step;
  }
  fit.mean_rate = static_cast<double>(jobs.size()) / span;
  for (std::size_t h = 0; h < 24; ++h) {
    fit.hourly_rate[h] = observed[h] > 0.0 ? counts[h] / observed[h] : 0.0;
    fit.peak_rate = std::max(fit.peak_rate, fit.hourly_rate[h]);
  }

  // --- Bag-of-task bursts: consecutive submissions by the same (known)
  // user within the window form one bag. Per-bag moments of log runtime
  // feed the one-way ANOVA intraclass-correlation estimate.
  struct BagStat {
    double n = 0.0;
    double sum = 0.0;    ///< sum of log runtimes
    double sumsq = 0.0;  ///< sum of squared log runtimes
  };
  std::vector<BagStat> bags;
  std::vector<double> intra_gaps;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SwfJob& job = jobs[i];
    const bool continues_bag =
        i > 0 && job.user >= 0 && job.user == jobs[i - 1].user &&
        job.submit - jobs[i - 1].submit <= options.bag_window;
    if (!continues_bag) {
      bags.emplace_back();
    } else {
      intra_gaps.push_back(job.submit - jobs[i - 1].submit);
    }
    const double log_runtime = std::log(job.runtime);
    BagStat& bag = bags.back();
    bag.n += 1.0;
    bag.sum += log_runtime;
    bag.sumsq += log_runtime * log_runtime;
  }
  const auto total_jobs = static_cast<double>(jobs.size());
  const auto bag_count = static_cast<double>(bags.size());
  fit.mean_bag_size = total_jobs / bag_count;
  fit.bag_size_p = std::clamp(1.0 / fit.mean_bag_size, 1e-3, 1.0);
  if (intra_gaps.empty()) {
    fit.intra_bag_gap_mean = 1.0;
  } else {
    double gap_sum = 0.0;
    for (const double gap : intra_gaps) {
      gap_sum += gap;
    }
    // Same-second submissions are common in SWF; keep the mean positive
    // so the generator's exponential fallback stays well-defined.
    fit.intra_bag_gap_mean =
        std::max(gap_sum / static_cast<double>(intra_gaps.size()), 1e-3);
    std::sort(intra_gaps.begin(), intra_gaps.end());
    fit.intra_gap_quantiles.reserve(ArchiveFit::kGapQuantileSteps);
    for (std::size_t k = 0; k < ArchiveFit::kGapQuantileSteps; ++k) {
      const double q = static_cast<double>(k) /
                       static_cast<double>(ArchiveFit::kGapQuantileSteps - 1);
      fit.intra_gap_quantiles.push_back(empirical_quantile(intra_gaps, q));
    }
  }
  if (bags.size() >= 2 && total_jobs > bag_count) {
    double grand_sum = 0.0;
    double ssw = 0.0;    // within-bag sum of squares
    double sum_n_sq = 0.0;
    for (const BagStat& bag : bags) {
      grand_sum += bag.sum;
      ssw += bag.sumsq - bag.sum * bag.sum / bag.n;
      sum_n_sq += bag.n * bag.n;
    }
    const double grand_mean = grand_sum / total_jobs;
    double ssb = 0.0;  // between-bag sum of squares
    for (const BagStat& bag : bags) {
      const double mean = bag.sum / bag.n;
      ssb += bag.n * (mean - grand_mean) * (mean - grand_mean);
    }
    const double msb = ssb / (bag_count - 1.0);
    const double msw = ssw / (total_jobs - bag_count);
    // ANOVA's adjusted mean group size for unbalanced designs.
    const double n0 = (total_jobs - sum_n_sq / total_jobs) / (bag_count - 1.0);
    const double denom = msb + (n0 - 1.0) * msw;
    if (denom > 0.0) {
      fit.runtime_correlation = std::clamp((msb - msw) / denom, 0.0, 0.95);
    }
  }

  // --- Processor counts: compressed empirical inverse CDF.
  std::vector<std::int64_t> procs;
  procs.reserve(jobs.size());
  for (const SwfJob& job : jobs) {
    procs.push_back(job.procs);
  }
  std::sort(procs.begin(), procs.end());
  const std::size_t n = procs.size();
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && procs[j] == procs[i]) {
      ++j;
    }
    fit.procs_cdf.emplace_back(static_cast<double>(j) / static_cast<double>(n),
                               procs[i]);
    i = j;
  }
  if (fit.procs_cdf.size() > ArchiveFit::kProcsCdfSteps) {
    std::vector<std::pair<double, std::int64_t>> compressed;
    compressed.reserve(ArchiveFit::kProcsCdfSteps);
    for (std::size_t i = 1; i <= ArchiveFit::kProcsCdfSteps; ++i) {
      const double q = static_cast<double>(i) /
                       static_cast<double>(ArchiveFit::kProcsCdfSteps);
      const auto idx = std::min(
          n - 1, static_cast<std::size_t>(
                     std::ceil(q * static_cast<double>(n))) -
                     1);
      if (!compressed.empty() && compressed.back().second == procs[idx]) {
        compressed.back().first = q;
      } else {
        compressed.emplace_back(q, procs[idx]);
      }
    }
    fit.procs_cdf = std::move(compressed);
  }
  fit.procs_cdf.back().first = 1.0;

  return fit;
}

FittedJobStream::FittedJobStream(ArchiveFit fit, std::uint64_t seed)
    : fit_(std::move(fit)),
      arrivals_(RngStream(seed).child("archive-arrivals")),
      runtimes_(RngStream(seed).child("archive-runtimes")),
      bags_(RngStream(seed).child("archive-bags")),
      procs_(RngStream(seed).child("archive-procs")) {
  AHEFT_REQUIRE(fit_.peak_rate > 0.0,
                "fitted model must carry a positive peak arrival rate");
  AHEFT_REQUIRE(fit_.mean_bag_size >= 1.0,
                "fitted model mean bag size must be at least one");
  AHEFT_REQUIRE(!fit_.procs_cdf.empty(),
                "fitted model must carry a processor-count distribution");
  // The fitted hourly_rate is the *realized* job throughput, but the
  // stream draws the next bag head from the END of the previous bag, so
  // each bag cycle = nominal head gap + bag service time. Inverting that
  // renewal relation (nominal gap = mean_bag_size / rate - service) keeps
  // the realized throughput — and thus the interarrival marginal — equal
  // to the archive's instead of stretched by one service time per bag.
  const double service =
      (fit_.mean_bag_size - 1.0) * fit_.intra_bag_gap_mean;
  for (std::size_t h = 0; h < 24; ++h) {
    if (fit_.hourly_rate[h] > 0.0) {
      const double cycle = fit_.mean_bag_size / fit_.hourly_rate[h];
      head_rate_[h] = 1.0 / std::max(cycle - service, 1e-3);
    }
    head_peak_ = std::max(head_peak_, head_rate_[h]);
  }
}

void FittedJobStream::start_bag() {
  if (index_ > 0) {
    ++bag_;
  }
  // Bag heads form a non-homogeneous Poisson process at the
  // service-corrected nominal head rate (see the constructor), sampled
  // by thinning against the diurnal peak: propose at the peak rate,
  // accept with probability rate(now) / peak. Rejections advance time,
  // so quiet hours stay quiet.
  for (;;) {
    now_ += arrivals_.exponential(1.0 / head_peak_);
    const double rate = head_rate_[hour_of_day(fit_.phase_seconds, now_)];
    if (arrivals_.uniform01() * head_peak_ <= rate) {
      break;
    }
  }
  bag_size_ = static_cast<std::uint32_t>(
      std::min<std::size_t>(bags_.geometric(fit_.bag_size_p), 1u << 20));
  bag_remaining_ = bag_size_;
  bag_effect_ = bags_.normal(0.0, 1.0);
  // Tasks of one bag are homogeneous: a single processor-count draw.
  const double u = procs_.uniform01();
  auto it = std::lower_bound(
      fit_.procs_cdf.begin(), fit_.procs_cdf.end(), u,
      [](const std::pair<double, std::int64_t>& step, double value) {
        return step.first < value;
      });
  if (it == fit_.procs_cdf.end()) {
    --it;
  }
  bag_procs_ = it->second;
}

GeneratedJob FittedJobStream::next() {
  if (bag_remaining_ == 0) {
    start_bag();
  } else if (fit_.intra_gap_quantiles.empty()) {
    now_ += arrivals_.exponential(fit_.intra_bag_gap_mean);
  } else {
    now_ += fit_.intra_gap_from_uniform(arrivals_.uniform01());
  }
  --bag_remaining_;
  // Gaussian copula across the bag: each task's deviate shares the bag
  // effect with weight sqrt(rho), so log runtimes correlate at rho.
  const double rho = fit_.runtime_correlation;
  const double z = std::sqrt(rho) * bag_effect_ +
                   std::sqrt(1.0 - rho) * runtimes_.normal(0.0, 1.0);
  GeneratedJob job;
  job.index = index_++;
  job.arrival = now_;
  job.runtime = fit_.runtime_from_normal(z);
  job.procs = bag_procs_;
  job.bag = bag_;
  job.bag_size = bag_size_;
  return job;
}

}  // namespace aheft::archive
