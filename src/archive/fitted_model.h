// Fitted workload model: the statistical summary of a real archive, and
// an unbounded generator reproducing its marginals.
//
// "Mining the Workload of Real Grid Computing Systems" (PAPERS.md) shows
// production grids share three traits synthetic workloads miss:
// heavy-tailed runtimes, diurnal arrival cycles, and bag-of-task bursts.
// fit_archive() estimates exactly those marginals from a parsed SWF log:
//
//   - runtime tail: log-normal AND Weibull maximum-likelihood fits, the
//     better one (by one-sample Kolmogorov–Smirnov distance) chosen;
//   - arrivals: a per-hour-of-day rate profile (phase-aligned to the
//     log's UnixStartTime when present), i.e. a non-homogeneous Poisson
//     process reproducing the diurnal cycle;
//   - bursts: geometrically-sized bags of tasks (consecutive submissions
//     by one user within a window), with the intra-bag runtime
//     correlation estimated so tasks of one bag draw similar sizes
//     (a Gaussian copula couples them to a shared bag effect).
//
// FittedJobStream then follows the codes-workload generator-method
// discipline: construction is `load`, next() is `get_next`, and the
// per-job state is O(1) — the stream is unbounded and a million-job soak
// run allocates nothing per job.
#ifndef AHEFT_ARCHIVE_FITTED_MODEL_H_
#define AHEFT_ARCHIVE_FITTED_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "archive/swf_reader.h"
#include "support/rng.h"
#include "support/stats.h"

namespace aheft::archive {

/// Knobs of fit_archive.
struct FitOptions {
  /// Two consecutive submissions by the same user at most this many
  /// seconds apart belong to one bag of tasks (the mining literature's
  /// convention is on the order of two minutes).
  double bag_window = 120.0;
  /// Fit over every terminal-status job, not just completed ones.
  bool include_failed = false;
};

/// The fitted marginals of one archive. A plain value: copying it into a
/// generator freezes the model.
struct ArchiveFit {
  // Runtime marginal (seconds).
  LogNormalParams runtime_log_normal;
  WeibullParams runtime_weibull;
  bool runtime_is_log_normal = true;  ///< KS-chosen
  double runtime_ks_log_normal = 0.0;
  double runtime_ks_weibull = 0.0;

  // Diurnal arrival profile: jobs per second within each hour of day,
  // phase-aligned so generator time 0 lands at `phase_seconds` past
  // midnight of the archive's clock.
  std::array<double, 24> hourly_rate{};
  double phase_seconds = 0.0;
  double mean_rate = 0.0;  ///< jobs per second over the whole span
  double peak_rate = 0.0;  ///< max of hourly_rate

  // Bag-of-task bursts.
  double bag_size_p = 1.0;        ///< bag size ~ Geometric(p), mean 1/p
  double mean_bag_size = 1.0;
  double intra_bag_gap_mean = 1.0;  ///< mean submit gap inside a bag
  /// Empirical intra-bag gap quantiles at kGapQuantileSteps evenly spaced
  /// probabilities (endpoints inclusive) for inverse-CDF sampling. The
  /// observed gap pool is rarely a clean parametric shape — bag-window
  /// grouping mixes true burst gaps with occasional merged-bag gaps — so
  /// the generator replays the empirical marginal instead of an
  /// exponential fit. Empty when the archive has no multi-job bags; the
  /// generator then falls back to exponential(intra_bag_gap_mean).
  std::vector<double> intra_gap_quantiles;
  /// Intra-bag correlation of log runtimes in [0, 0.95] (one-way ANOVA
  /// intraclass estimate).
  double runtime_correlation = 0.0;

  /// Empirical processor-count distribution, as (cumulative probability,
  /// processors) steps for inverse-CDF sampling. At most kProcsCdfSteps
  /// entries, so the model stays O(1)-sized in the archive length.
  std::vector<std::pair<double, std::int64_t>> procs_cdf;

  // Provenance.
  std::size_t fitted_jobs = 0;
  double span_seconds = 0.0;
  double mean_runtime = 0.0;  ///< sample mean, seconds
  double mean_procs = 1.0;    ///< sample mean processor count

  static constexpr std::size_t kProcsCdfSteps = 512;
  static constexpr std::size_t kGapQuantileSteps = 257;

  /// The chosen runtime CDF at x.
  [[nodiscard]] double runtime_cdf(double x) const noexcept;
  /// Intra-bag gap at uniform deviate u, linearly interpolated between
  /// adjacent entries of intra_gap_quantiles (which must be non-empty).
  [[nodiscard]] double intra_gap_from_uniform(double u) const noexcept;
  /// The chosen runtime quantile through a standard-normal deviate
  /// (log-normal directly; Weibull via the Gaussian copula).
  [[nodiscard]] double runtime_from_normal(double z) const noexcept;
};

/// Fits the model from a parsed log. Throws std::invalid_argument when
/// the log has fewer than two usable jobs or no positive submit span
/// (nothing to estimate rates from).
[[nodiscard]] ArchiveFit fit_archive(const SwfLog& log,
                                     const FitOptions& options = {});

/// One generated job.
struct GeneratedJob {
  std::uint64_t index = 0;    ///< 0-based generation order
  double arrival = 0.0;       ///< seconds, strictly non-decreasing
  double runtime = 0.0;       ///< seconds, > 0
  std::int64_t procs = 1;     ///< shared by every task of a bag
  std::uint64_t bag = 0;      ///< bag id (consecutive from 0)
  std::uint32_t bag_size = 1; ///< tasks in this job's bag
};

/// Unbounded, seeded, O(1)-state job stream over a fitted model
/// (codes-workload style: the constructor is `load`, next() is
/// `get_next`; there is no end-of-stream).
class FittedJobStream {
 public:
  FittedJobStream(ArchiveFit fit, std::uint64_t seed);

  /// The next job. Same (fit, seed) always yields the same sequence.
  [[nodiscard]] GeneratedJob next();

  [[nodiscard]] const ArchiveFit& fit() const noexcept { return fit_; }

 private:
  void start_bag();

  ArchiveFit fit_;
  /// Nominal bag-head rate per hour of day, corrected for mean bag
  /// service time (see the constructor), and its maximum for thinning.
  std::array<double, 24> head_rate_{};
  double head_peak_ = 0.0;
  RngStream arrivals_;
  RngStream runtimes_;
  RngStream bags_;
  RngStream procs_;
  double now_ = 0.0;
  std::uint64_t index_ = 0;
  std::uint64_t bag_ = 0;
  std::uint32_t bag_size_ = 0;
  std::uint32_t bag_remaining_ = 0;
  double bag_effect_ = 0.0;  ///< shared standard-normal bag deviate
  std::int64_t bag_procs_ = 1;
  bool first_bag_ = true;
};

}  // namespace aheft::archive

#endif  // AHEFT_ARCHIVE_FITTED_MODEL_H_
