// Standard Workload Format (SWF) reader for real-workload archives.
//
// SWF is the lingua franca of the Parallel Workloads Archive, and the
// Grid Workloads Archive's .gwf logs are an extension of it (the same
// leading fields, with extra columns appended). A log is a sequence of
// `;`-prefixed header comments followed by one job record per line, 18
// whitespace-separated numeric fields each (GWA logs carry more; the
// extras are ignored):
//
//   1 job id          2 submit time     3 wait time      4 run time
//   5 alloc procs     6 avg cpu time    7 used memory    8 req procs
//   9 req time       10 req memory     11 status        12 user id
//  13 group id       14 executable id  15 queue         16 partition
//  17 preceding job  18 think time
//
// Times are seconds relative to the log start; -1 marks a missing value.
// Structured header comments of the form `; Key: Value` (Version,
// MaxProcs, MaxNodes, UnixStartTime, ...) are parsed into the header map.
//
// The reader applies the same line-numbered-rejection rigor as the
// gridtrace reader: malformed fields, negative submit times, and
// out-of-order submits raise SwfParseError carrying the 1-based line.
#ifndef AHEFT_ARCHIVE_SWF_READER_H_
#define AHEFT_ARCHIVE_SWF_READER_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aheft::archive {

/// SWF status codes (field 11) this subsystem interprets.
enum class SwfStatus : int {
  kFailed = 0,
  kCompleted = 1,
  kPartialToBeContinued = 2,
  kPartialLast = 3,
  kCancelled = 5,
  kUnknown = -1,
};

/// One SWF job record. Fields the simulator never consumes (memory,
/// queue, partition, dependencies) are parsed for validation but not
/// stored.
struct SwfJob {
  std::int64_t id = -1;          ///< field 1, as recorded (not re-numbered)
  double submit = 0.0;           ///< field 2, seconds from log start
  double wait = -1.0;            ///< field 3, -1 when missing
  double runtime = -1.0;         ///< field 4, -1 when missing
  std::int64_t procs = -1;       ///< field 5 (allocated), -1 when missing
  std::int64_t requested_procs = -1;  ///< field 8, -1 when missing
  double requested_time = -1.0;  ///< field 9, -1 when missing
  int status = -1;               ///< field 11
  std::int64_t user = -1;        ///< field 12
  std::int64_t executable = -1;  ///< field 14

  [[nodiscard]] bool completed() const noexcept {
    return status == static_cast<int>(SwfStatus::kCompleted);
  }

  bool operator==(const SwfJob&) const = default;
};

/// Parsed `; Key: Value` header comments plus the derived capacity hints.
struct SwfHeader {
  std::map<std::string, std::string> fields;

  /// Named header value, empty when absent.
  [[nodiscard]] std::string value(const std::string& key) const;
  /// Named header value parsed as a non-negative integer; 0 when absent
  /// or non-numeric (SWF headers are advisory, never rejected).
  [[nodiscard]] std::uint64_t value_u64(const std::string& key) const;

  [[nodiscard]] std::uint64_t max_procs() const { return value_u64("MaxProcs"); }
  [[nodiscard]] std::uint64_t max_nodes() const { return value_u64("MaxNodes"); }
  [[nodiscard]] std::uint64_t unix_start_time() const {
    return value_u64("UnixStartTime");
  }

  bool operator==(const SwfHeader&) const = default;
};

/// A parsed archive log.
struct SwfLog {
  SwfHeader header;
  std::vector<SwfJob> jobs;  ///< submit-ordered (the reader enforces it)

  bool operator==(const SwfLog&) const = default;
};

/// Parse failure; carries the 1-based line number of the offending record.
class SwfParseError : public std::runtime_error {
 public:
  SwfParseError(std::size_t line, const std::string& message);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses an SWF/GWA log; throws SwfParseError on malformed input.
[[nodiscard]] SwfLog read_swf(std::istream& in);
[[nodiscard]] SwfLog read_swf_string(std::string_view text);
/// Throws std::runtime_error when the file cannot be opened.
[[nodiscard]] SwfLog read_swf_file(const std::string& path);

/// Writes a log in the 18-field format read_swf parses (unstored fields
/// are emitted as -1). Doubles round-trip bit-identically, matching the
/// gridtrace writer's guarantee.
void write_swf(std::ostream& out, const SwfLog& log);
[[nodiscard]] std::string write_swf_string(const SwfLog& log);
/// Throws std::runtime_error when the file cannot be created.
void write_swf_file(const std::string& path, const SwfLog& log);

/// The simulatable subset of a log: completed jobs (or, with
/// `include_failed`, any terminal status) carrying a positive runtime and
/// at least one allocated processor (falling back to requested
/// processors when the allocation is missing). Submit order is kept.
[[nodiscard]] std::vector<SwfJob> usable_jobs(const SwfLog& log,
                                              bool include_failed = false);

}  // namespace aheft::archive

#endif  // AHEFT_ARCHIVE_SWF_READER_H_
