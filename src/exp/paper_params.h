// The paper's parameter grids (Table 2 for random DAGs, Table 5 for the
// BLAST/WIEN2K studies) as reusable constants.
#ifndef AHEFT_EXP_PAPER_PARAMS_H_
#define AHEFT_EXP_PAPER_PARAMS_H_

#include <array>
#include <cstddef>

namespace aheft::exp {

// ----- Table 2: parametric random DAGs ---------------------------------
inline constexpr std::array<std::size_t, 5> kRandomJobs{20, 40, 60, 80, 100};
inline constexpr std::array<double, 5> kCcrValues{0.1, 0.5, 1.0, 5.0, 10.0};
inline constexpr std::array<double, 5> kOutDegrees{0.1, 0.2, 0.3, 0.4, 1.0};
inline constexpr std::array<double, 5> kBetaValues{0.1, 0.25, 0.5, 0.75, 1.0};
inline constexpr std::array<std::size_t, 5> kRandomPoolSizes{10, 20, 30, 40,
                                                             50};
inline constexpr std::array<double, 4> kChangeIntervals{400, 800, 1200, 1600};
inline constexpr std::array<double, 4> kChangeFractions{0.10, 0.15, 0.20,
                                                        0.25};
/// The paper creates 10 instances per DAG type (6250 DAGs, 500,000 cases).
inline constexpr std::size_t kPaperInstancesPerType = 10;

// ----- Table 5: BLAST and WIEN2K ---------------------------------------
inline constexpr std::array<std::size_t, 5> kAppParallelism{200, 400, 600,
                                                            800, 1000};
inline constexpr std::array<std::size_t, 5> kAppPoolSizes{20, 40, 60, 80,
                                                          100};
// CCR, beta, Delta, delta grids are shared with Table 2.

// ----- Base configuration for one-dimensional Fig. 8 sweeps -------------
// When a parameter is swept, the others sit at these central values.
inline constexpr double kBaseCcr = 1.0;
inline constexpr double kBaseBeta = 0.5;
inline constexpr std::size_t kBaseAppParallelism = 600;
inline constexpr std::size_t kBaseAppPool = 60;
inline constexpr double kBaseInterval = 800.0;
inline constexpr double kBaseFraction = 0.15;

}  // namespace aheft::exp

#endif  // AHEFT_EXP_PAPER_PARAMS_H_
