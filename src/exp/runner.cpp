#include "exp/runner.h"

#include <atomic>
#include <iostream>

#include "support/stopwatch.h"
#include "support/thread_pool.h"

namespace aheft::exp {

SweepOutcome run_sweep(std::vector<CaseSpec> specs, std::size_t threads,
                       bool progress) {
  SweepOutcome outcome;
  outcome.results.resize(specs.size());
  outcome.specs = std::move(specs);

  std::atomic<std::size_t> done{0};
  Stopwatch watch;
  const std::size_t total = outcome.specs.size();
  const std::size_t report_every = std::max<std::size_t>(1, total / 20);

  auto body = [&](std::size_t i) {
    outcome.results[i] = run_case(outcome.specs[i]);
    const std::size_t d = done.fetch_add(1) + 1;
    if (progress && d % report_every == 0) {
      std::cerr << "  [sweep] " << d << "/" << total << " cases ("
                << static_cast<int>(watch.seconds()) << "s)\n";
    }
  };

  if (threads == 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      body(i);
    }
  } else {
    ThreadPool pool(threads);
    parallel_for(&pool, total, body);
  }
  return outcome;
}

}  // namespace aheft::exp
