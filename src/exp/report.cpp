#include "exp/report.h"

#include "support/assert.h"
#include "support/csv.h"

namespace aheft::exp {

namespace {

void accumulate(GroupStats& stats, const CaseResult& result) {
  stats.heft.add(result.heft_makespan);
  stats.aheft.add(result.aheft_makespan);
  if (result.minmin_makespan > 0.0) {
    stats.minmin.add(result.minmin_makespan);
  }
  stats.adoptions.add(static_cast<double>(result.adoptions));
}

}  // namespace

std::map<double, GroupStats> group_by(
    const SweepOutcome& outcome,
    const std::function<double(const CaseSpec&)>& key) {
  AHEFT_REQUIRE(outcome.specs.size() == outcome.results.size(),
                "malformed sweep outcome");
  std::map<double, GroupStats> groups;
  for (std::size_t i = 0; i < outcome.specs.size(); ++i) {
    accumulate(groups[key(outcome.specs[i])], outcome.results[i]);
  }
  return groups;
}

GroupStats overall(const SweepOutcome& outcome) {
  GroupStats stats;
  for (const CaseResult& result : outcome.results) {
    accumulate(stats, result);
  }
  return stats;
}

void dump_csv(const SweepOutcome& outcome, const std::string& path) {
  CsvWriter csv(path,
                {"app", "size", "ccr", "out_degree", "beta", "pool", "interval",
                 "fraction", "seed", "jobs", "universe", "heft", "aheft",
                 "minmin", "evaluations", "adoptions"});
  for (std::size_t i = 0; i < outcome.specs.size(); ++i) {
    const CaseSpec& s = outcome.specs[i];
    const CaseResult& r = outcome.results[i];
    csv.write_row({to_string(s.app), std::to_string(s.size),
                   std::to_string(s.ccr), std::to_string(s.out_degree),
                   std::to_string(s.beta), std::to_string(s.dynamics.initial),
                   std::to_string(s.dynamics.interval),
                   std::to_string(s.dynamics.fraction),
                   std::to_string(s.seed), std::to_string(r.jobs),
                   std::to_string(r.universe),
                   std::to_string(r.heft_makespan),
                   std::to_string(r.aheft_makespan),
                   std::to_string(r.minmin_makespan),
                   std::to_string(r.evaluations),
                   std::to_string(r.adoptions)});
  }
}

}  // namespace aheft::exp
