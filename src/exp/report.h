// Aggregation and reporting helpers shared by the bench binaries.
#ifndef AHEFT_EXP_REPORT_H_
#define AHEFT_EXP_REPORT_H_

#include <functional>
#include <map>
#include <string>

#include "exp/runner.h"
#include "support/stats.h"

namespace aheft::exp {

/// Accumulated strategy makespans for one group of cases.
struct GroupStats {
  OnlineStats heft;
  OnlineStats aheft;
  OnlineStats minmin;
  OnlineStats adoptions;

  /// The paper's improvement rate: relative reduction of the average
  /// makespan, (avg HEFT - avg AHEFT) / avg HEFT.
  [[nodiscard]] double improvement() const {
    return improvement_rate(heft.mean(), aheft.mean());
  }
};

/// Groups case results by a numeric key (e.g. CCR or job count).
[[nodiscard]] std::map<double, GroupStats> group_by(
    const SweepOutcome& outcome,
    const std::function<double(const CaseSpec&)>& key);

/// Collapses the whole sweep into a single group.
[[nodiscard]] GroupStats overall(const SweepOutcome& outcome);

/// Writes one CSV row per case (spec fields + makespans) to `path`.
void dump_csv(const SweepOutcome& outcome, const std::string& path);

}  // namespace aheft::exp

#endif  // AHEFT_EXP_REPORT_H_
