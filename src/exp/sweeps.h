// Builders for the paper's experiment sweeps at three scales.
//
//  - Scale::kPaper replays the full published grids (Table 2: 500,000
//    random-DAG cases; Table 5: 10,000 configurations per application).
//  - Scale::kDefault keeps every swept value but thins instances/cross
//    terms so each bench finishes in seconds to a few minutes.
//  - Scale::kSmoke is CI-sized.
//
// Every case's seed is derived from (master seed, semantic case key), so
// adding or removing grid points never perturbs other cases.
#ifndef AHEFT_EXP_SWEEPS_H_
#define AHEFT_EXP_SWEEPS_H_

#include <string_view>
#include <vector>

#include "exp/case.h"
#include "support/env.h"

namespace aheft::exp {

/// Deterministic per-case seed from a master seed and the spec's semantic
/// identity (app, size, ccr, out_degree, beta, R, Delta, delta, instance).
[[nodiscard]] std::uint64_t case_seed(std::uint64_t master,
                                      const CaseSpec& spec,
                                      std::size_t instance);

/// §4.2 random-DAG study (feeds the overall averages and Tables 3–4).
/// When `run_dynamic` is set, every case also simulates Min-Min.
[[nodiscard]] std::vector<CaseSpec> build_random_sweep(Scale scale,
                                                       std::uint64_t master,
                                                       bool run_dynamic);

/// §4.3 application study over the Table 5 grid (feeds Table 6 and, via
/// grouping, Tables 7–8).
[[nodiscard]] std::vector<CaseSpec> build_app_sweep(AppKind app, Scale scale,
                                                    std::uint64_t master);

/// One-dimensional Fig. 8 sweep: vary `axis`, keep the other parameters at
/// the central base configuration.
enum class SweepAxis { kCcr, kBeta, kJobs, kPool, kInterval, kFraction };

[[nodiscard]] const char* to_string(SweepAxis axis);

[[nodiscard]] std::vector<CaseSpec> build_fig8_sweep(AppKind app,
                                                     SweepAxis axis,
                                                     Scale scale,
                                                     std::uint64_t master);

/// The swept value of `axis` in a spec (used as the grouping key).
[[nodiscard]] double axis_value(SweepAxis axis, const CaseSpec& spec);

/// Applies a scenario-source axis to every spec: the benches'
/// --scenario-source=NAME knob. `trace_path` feeds the "trace" source;
/// `archive_path` feeds the "archive" and "fitted" sources (--archive).
/// Throws std::invalid_argument when the source is not registered or
/// when a file-driven source is missing its path.
void set_scenario_source(std::vector<CaseSpec>& specs,
                         std::string_view source,
                         std::string_view trace_path = {},
                         std::string_view archive_path = {});

/// Applies the multi-DAG stream axis to every spec: `jobs` concurrent
/// workflow instances with the given mean inter-arrival gap. Specs
/// carrying a stream axis are meant for run_stream_case — run_case
/// rejects them (jobs > 1) rather than silently ignoring the axis.
void set_stream(std::vector<CaseSpec>& specs, std::size_t jobs,
                double interarrival_mean = 400.0);

/// Applies a contention-policy axis to every spec: the benches'
/// --contention-policy=NAME knob. Throws std::invalid_argument when the
/// policy is not registered.
void set_contention_policy(std::vector<CaseSpec>& specs,
                           std::string_view policy);

/// Applies the session-level ledger backfilling flag to every spec: the
/// benches' --backfill knob.
void set_backfill(std::vector<CaseSpec>& specs, bool backfill);

/// Applies the contention-aware planning flag to every spec: the
/// benches' --contention-aware knob (planning passes fit into the
/// session ledger's availability snapshot).
void set_contention_aware(std::vector<CaseSpec>& specs,
                          bool contention_aware);

/// Applies a resilience-config axis to every spec (validated eagerly so
/// inconsistent knobs fail before the sweep starts).
void set_resilience(std::vector<CaseSpec>& specs,
                    const resilience::ResilienceConfig& config);

}  // namespace aheft::exp

#endif  // AHEFT_EXP_SWEEPS_H_
