#include "exp/sweeps.h"

#include <sstream>

#include "core/contention_policy.h"
#include "exp/paper_params.h"
#include "support/assert.h"
#include "support/rng.h"

namespace aheft::exp {

std::uint64_t case_seed(std::uint64_t master, const CaseSpec& spec,
                        std::size_t instance) {
  // The key covers only the workload-shaping fields, NOT the resource
  // dynamics: the paper crosses each generated DAG with every resource
  // model (6250 DAGs x 80 models), so specs that differ only in
  // (R, Delta, delta) must share the workflow — paired comparisons keep
  // the Fig. 8(d)–(f) series smooth.
  std::ostringstream key;
  key << to_string(spec.app) << '/' << spec.size << '/' << spec.ccr << '/'
      << spec.out_degree << '/' << spec.beta << '/' << instance;
  return mix64(master, hash64(key.str()));
}

namespace {

template <typename T>
std::vector<T> thin(const std::vector<T>& values, Scale scale) {
  // kPaper and kDefault keep the full value set (the paper's trends are
  // read across every value); kSmoke keeps the extremes.
  if (scale != Scale::kSmoke || values.size() <= 2) {
    return values;
  }
  return {values.front(), values.back()};
}

std::size_t instances_for(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return 1;
    case Scale::kDefault:
      return 1;
    case Scale::kPaper:
      return kPaperInstancesPerType;
  }
  return 1;
}

}  // namespace

std::vector<CaseSpec> build_random_sweep(Scale scale, std::uint64_t master,
                                         bool run_dynamic) {
  const std::vector<std::size_t> jobs =
      thin(std::vector<std::size_t>(kRandomJobs.begin(), kRandomJobs.end()),
           scale);
  const std::vector<double> ccrs =
      thin(std::vector<double>(kCcrValues.begin(), kCcrValues.end()), scale);
  std::vector<double> out_degrees(kOutDegrees.begin(), kOutDegrees.end());
  std::vector<double> betas(kBetaValues.begin(), kBetaValues.end());
  std::vector<std::size_t> pools(kRandomPoolSizes.begin(),
                                 kRandomPoolSizes.end());
  std::vector<double> intervals(kChangeIntervals.begin(),
                                kChangeIntervals.end());
  std::vector<double> fractions(kChangeFractions.begin(),
                                kChangeFractions.end());
  if (scale == Scale::kSmoke) {
    out_degrees = {0.2};
    betas = {0.5};
    pools = {10};
    intervals = {800};
    fractions = {0.15};
  } else if (scale == Scale::kDefault) {
    // Keep all DAG types; thin the resource-model cross product.
    pools = {10, 30, 50};
    intervals = {400, 1200};
    fractions = {0.10, 0.20};
  }

  std::vector<CaseSpec> specs;
  for (const std::size_t v : jobs) {
    for (const double ccr : ccrs) {
      for (const double out_degree : out_degrees) {
        for (const double beta : betas) {
          for (const std::size_t pool : pools) {
            for (const double interval : intervals) {
              for (const double fraction : fractions) {
                for (std::size_t inst = 0; inst < instances_for(scale);
                     ++inst) {
                  CaseSpec spec;
                  spec.app = AppKind::kRandom;
                  spec.size = v;
                  spec.ccr = ccr;
                  spec.out_degree = out_degree;
                  spec.beta = beta;
                  spec.dynamics = {pool, interval, fraction};
                  spec.run_dynamic = run_dynamic;
                  spec.horizon_factor = run_dynamic ? 4.0 : 1.0;
                  spec.seed = case_seed(master, spec, inst);
                  specs.push_back(spec);
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

std::vector<CaseSpec> build_app_sweep(AppKind app, Scale scale,
                                      std::uint64_t master) {
  AHEFT_REQUIRE(app != AppKind::kRandom, "use build_random_sweep for random");
  const std::vector<std::size_t> parallelism = thin(
      std::vector<std::size_t>(kAppParallelism.begin(), kAppParallelism.end()),
      scale);
  const std::vector<double> ccrs =
      thin(std::vector<double>(kCcrValues.begin(), kCcrValues.end()), scale);
  std::vector<double> betas(kBetaValues.begin(), kBetaValues.end());
  std::vector<std::size_t> pools(kAppPoolSizes.begin(), kAppPoolSizes.end());
  std::vector<double> intervals(kChangeIntervals.begin(),
                                kChangeIntervals.end());
  std::vector<double> fractions(kChangeFractions.begin(),
                                kChangeFractions.end());
  std::size_t instances = 1;
  if (scale != Scale::kPaper) {
    // The default grid crosses parallelism x CCR (the axes the paper's
    // tables report) with the pool-size axis (which carries most of the
    // resource-starvation effect), at central beta/Delta/delta.
    betas = {kBaseBeta};
    intervals = {kBaseInterval};
    fractions = {kBaseFraction};
    instances = scale == Scale::kSmoke ? 1 : 2;
    if (scale == Scale::kSmoke) {
      pools = {20};
    }
  }

  std::vector<CaseSpec> specs;
  for (const std::size_t n : parallelism) {
    for (const double ccr : ccrs) {
      for (const double beta : betas) {
        for (const std::size_t pool : pools) {
          for (const double interval : intervals) {
            for (const double fraction : fractions) {
              for (std::size_t inst = 0; inst < instances; ++inst) {
                CaseSpec spec;
                spec.app = app;
                spec.size = n;
                spec.ccr = ccr;
                spec.beta = beta;
                spec.dynamics = {pool, interval, fraction};
                spec.seed = case_seed(master, spec, inst);
                specs.push_back(spec);
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

const char* to_string(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kCcr:
      return "CCR";
    case SweepAxis::kBeta:
      return "beta";
    case SweepAxis::kJobs:
      return "jobs";
    case SweepAxis::kPool:
      return "initial-pool";
    case SweepAxis::kInterval:
      return "change-interval";
    case SweepAxis::kFraction:
      return "change-fraction";
  }
  return "unknown";
}

double axis_value(SweepAxis axis, const CaseSpec& spec) {
  switch (axis) {
    case SweepAxis::kCcr:
      return spec.ccr;
    case SweepAxis::kBeta:
      return spec.beta;
    case SweepAxis::kJobs:
      return static_cast<double>(spec.size);
    case SweepAxis::kPool:
      return static_cast<double>(spec.dynamics.initial);
    case SweepAxis::kInterval:
      return spec.dynamics.interval;
    case SweepAxis::kFraction:
      return spec.dynamics.fraction;
  }
  return 0.0;
}

void set_scenario_source(std::vector<CaseSpec>& specs,
                         std::string_view source,
                         std::string_view trace_path,
                         std::string_view archive_path) {
  // Validate eagerly so a typo'd --scenario-source or a forgotten
  // --trace/--archive fails before the sweep starts, not on the first
  // case.
  (void)traces::ScenarioSourceRegistry::instance().require(source);
  if (source == "trace" && trace_path.empty()) {
    throw std::invalid_argument(
        "scenario source 'trace' needs a trace file (--trace=path)");
  }
  if ((source == "archive" || source == "fitted") && archive_path.empty()) {
    throw std::invalid_argument(
        "scenario source '" + std::string(source) +
        "' needs an SWF/GWA log (--archive=path)");
  }
  for (CaseSpec& spec : specs) {
    spec.scenario_source = source;
    spec.trace_path = trace_path;
    spec.archive.path = archive_path;
  }
}

void set_stream(std::vector<CaseSpec>& specs, std::size_t jobs,
                double interarrival_mean) {
  AHEFT_REQUIRE(jobs > 0, "a workflow stream needs at least one instance");
  AHEFT_REQUIRE(interarrival_mean > 0.0,
                "stream interarrival mean must be positive");
  for (CaseSpec& spec : specs) {
    spec.stream_jobs = jobs;
    spec.stream_interarrival = interarrival_mean;
  }
}

void set_contention_policy(std::vector<CaseSpec>& specs,
                           std::string_view policy) {
  // Validate eagerly so a typo'd --contention-policy fails before the
  // sweep starts, not on the first case's session construction.
  (void)core::ContentionPolicyRegistry::instance().create(policy);
  for (CaseSpec& spec : specs) {
    spec.contention_policy = policy;
  }
}

void set_backfill(std::vector<CaseSpec>& specs, bool backfill) {
  for (CaseSpec& spec : specs) {
    spec.backfill = backfill;
  }
}

void set_contention_aware(std::vector<CaseSpec>& specs,
                          bool contention_aware) {
  for (CaseSpec& spec : specs) {
    spec.contention_aware = contention_aware;
  }
}

void set_resilience(std::vector<CaseSpec>& specs,
                    const resilience::ResilienceConfig& config) {
  resilience::validate(config);
  for (CaseSpec& spec : specs) {
    spec.resilience = config;
  }
}

std::vector<CaseSpec> build_fig8_sweep(AppKind app, SweepAxis axis,
                                       Scale scale, std::uint64_t master) {
  AHEFT_REQUIRE(app != AppKind::kRandom,
                "Fig. 8 sweeps are application studies");
  std::size_t repeats = 3;
  if (scale == Scale::kSmoke) {
    repeats = 1;
  } else if (scale == Scale::kPaper) {
    repeats = 10;
  }

  CaseSpec base;
  base.app = app;
  base.size = kBaseAppParallelism;
  base.ccr = kBaseCcr;
  base.beta = kBaseBeta;
  base.dynamics = {kBaseAppPool, kBaseInterval, kBaseFraction};

  std::vector<CaseSpec> specs;
  auto emit = [&](const CaseSpec& spec) {
    for (std::size_t inst = 0; inst < repeats; ++inst) {
      CaseSpec with_seed = spec;
      with_seed.seed = case_seed(master, with_seed, inst);
      specs.push_back(with_seed);
    }
  };

  switch (axis) {
    case SweepAxis::kCcr:
      for (const double v : kCcrValues) {
        CaseSpec s = base;
        s.ccr = v;
        emit(s);
      }
      break;
    case SweepAxis::kBeta:
      for (const double v : kBetaValues) {
        CaseSpec s = base;
        s.beta = v;
        emit(s);
      }
      break;
    case SweepAxis::kJobs:
      for (const std::size_t v : kAppParallelism) {
        CaseSpec s = base;
        s.size = v;
        emit(s);
      }
      break;
    case SweepAxis::kPool:
      for (const std::size_t v : kAppPoolSizes) {
        CaseSpec s = base;
        s.dynamics.initial = v;
        emit(s);
      }
      break;
    case SweepAxis::kInterval:
      for (const double v : kChangeIntervals) {
        CaseSpec s = base;
        s.dynamics.interval = v;
        emit(s);
      }
      break;
    case SweepAxis::kFraction:
      for (const double v : kChangeFractions) {
        CaseSpec s = base;
        s.dynamics.fraction = v;
        emit(s);
      }
      break;
  }
  return specs;
}

}  // namespace aheft::exp
