// Published numbers from the paper, for side-by-side reporting in every
// bench. Values are transcribed from IPPS'07 Tables 3, 4, 6, 7, 8 and the
// §4.2 prose.
#ifndef AHEFT_EXP_PAPER_REF_H_
#define AHEFT_EXP_PAPER_REF_H_

#include <array>

namespace aheft::exp::paper {

// §4.2 prose: average makespans over the 500,000 random-DAG cases.
inline constexpr double kRandomAvgHeft = 4075.0;
inline constexpr double kRandomAvgAheft = 3911.0;
inline constexpr double kRandomAvgMinMin = 12352.0;

// Table 3: improvement rate by CCR (random DAGs), CCR = .1 .5 1 5 10.
inline constexpr std::array<double, 5> kTable3Improvement{0.004, 0.005, 0.007,
                                                          0.032, 0.077};

// Table 4: improvement rate by job count (random DAGs), v = 20..100.
inline constexpr std::array<double, 5> kTable4Improvement{0.029, 0.039, 0.043,
                                                          0.042, 0.041};

// Table 6: application averages.
inline constexpr double kBlastHeft = 4939.3;
inline constexpr double kBlastAheft = 3933.1;
inline constexpr double kBlastImprovement = 0.204;
inline constexpr double kWien2kHeft = 3451.6;
inline constexpr double kWien2kAheft = 3233.8;
inline constexpr double kWien2kImprovement = 0.063;

// Table 7: improvement rate by parallelism, N = 200..1000.
inline constexpr std::array<double, 5> kTable7Blast{0.159, 0.183, 0.199,
                                                    0.219, 0.236};
inline constexpr std::array<double, 5> kTable7Wien2k{0.022, 0.043, 0.060,
                                                     0.078, 0.094};

// Table 8: improvement rate by CCR, CCR = .1 .5 1 5 10.
inline constexpr std::array<double, 5> kTable8Blast{0.161, 0.155, 0.143,
                                                    0.191, 0.261};
inline constexpr std::array<double, 5> kTable8Wien2k{0.073, 0.073, 0.066,
                                                     0.053, 0.064};

}  // namespace aheft::exp::paper

#endif  // AHEFT_EXP_PAPER_REF_H_
