// Parallel sweep runner: executes a batch of cases on a thread pool with
// per-case deterministic seeding, so results are independent of thread
// count and scheduling order.
#ifndef AHEFT_EXP_RUNNER_H_
#define AHEFT_EXP_RUNNER_H_

#include <vector>

#include "exp/case.h"

namespace aheft::exp {

struct SweepOutcome {
  std::vector<CaseSpec> specs;
  std::vector<CaseResult> results;  ///< parallel to specs
};

/// Runs every case. `threads` 0 = hardware concurrency, 1 = inline.
/// Prints coarse progress to stderr when `progress` is true.
[[nodiscard]] SweepOutcome run_sweep(std::vector<CaseSpec> specs,
                                     std::size_t threads = 0,
                                     bool progress = false);

}  // namespace aheft::exp

#endif  // AHEFT_EXP_RUNNER_H_
