// One experiment case: a workload, a resource model, a seed, and the
// strategies to run on it.
#ifndef AHEFT_EXP_CASE_H_
#define AHEFT_EXP_CASE_H_

#include <cstdint>
#include <string>

#include "core/policies.h"
#include "traces/scenario_source.h"
#include "workloads/scenario.h"

namespace aheft::exp {

enum class AppKind { kRandom, kBlast, kWien2k, kMontage, kGaussian };

[[nodiscard]] std::string to_string(AppKind app);

struct CaseSpec {
  AppKind app = AppKind::kRandom;
  /// Jobs for random DAGs; degree of parallelism for applications.
  std::size_t size = 40;
  double ccr = 1.0;
  double out_degree = 0.2;  ///< random DAGs only
  double beta = 0.5;
  workloads::ResourceDynamics dynamics;
  std::uint64_t seed = 0;
  /// Also simulate the dynamic Min-Min baseline (costs extra).
  bool run_dynamic = false;
  /// Resource arrivals are generated up to horizon_factor x the initial
  /// HEFT makespan. 1.0 suffices for HEFT-vs-AHEFT (AHEFT never exceeds
  /// the initial plan); use >= 4 when the dynamic baseline runs, since it
  /// can finish well after the static plan would have.
  double horizon_factor = 1.0;
  core::SchedulerConfig scheduler;
  /// Scenario-source registry key building the grid environment
  /// ("synthetic", "trace", "bursty", or a custom registration).
  std::string scenario_source = "synthetic";
  /// Trace file consumed by the "trace" source.
  std::string trace_path;
  /// Volatility knobs consumed by the "bursty" source.
  traces::BurstyParams bursty;
  /// Also react to Performance Monitor variance events (load-driven
  /// estimate/actual divergence), not just pool changes.
  bool react_to_variance = false;
};

struct CaseResult {
  double heft_makespan = 0.0;
  double aheft_makespan = 0.0;
  double minmin_makespan = 0.0;  ///< 0 when the dynamic baseline was skipped
  std::size_t evaluations = 0;   ///< events the AHEFT planner evaluated
  std::size_t adoptions = 0;     ///< reschedules adopted
  std::size_t jobs = 0;          ///< realized DAG size
  std::size_t universe = 0;      ///< total resources (initial + arrivals)
};

/// The fully resolved environment a spec compiles to: the generated
/// workload, the pass-2 scenario (pool + load + event stream) built by
/// the spec's scenario source, the ground-truth cost model over the
/// universe, and the sizing pass's static HEFT plan makespan. Exposed so
/// benches and examples can record a case's environment to a trace file
/// and replay it through the "trace" source.
struct CaseEnvironment {
  workloads::Workload workload;
  traces::CompiledScenario scenario;
  grid::MachineModel model;
  sim::Time heft_plan_makespan = sim::kTimeZero;
};

/// Deterministically resolves a spec's environment (same spec, same
/// environment, on any thread).
[[nodiscard]] CaseEnvironment build_case_environment(const CaseSpec& spec);

/// Generates the workload and grid deterministically from the spec's seed
/// and simulates the requested strategies. The same spec always produces
/// the same result, on any thread.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec);

}  // namespace aheft::exp

#endif  // AHEFT_EXP_CASE_H_
