// One experiment case: a workload, a resource model, a seed, and the
// strategies to run on it.
#ifndef AHEFT_EXP_CASE_H_
#define AHEFT_EXP_CASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/workflow_stream.h"
#include "traces/scenario_source.h"
#include "workloads/scenario.h"

namespace aheft::exp {

enum class AppKind { kRandom, kBlast, kWien2k, kMontage, kGaussian };

[[nodiscard]] std::string to_string(AppKind app);

struct CaseSpec {
  AppKind app = AppKind::kRandom;
  /// Jobs for random DAGs; degree of parallelism for applications.
  std::size_t size = 40;
  double ccr = 1.0;
  double out_degree = 0.2;  ///< random DAGs only
  double beta = 0.5;
  workloads::ResourceDynamics dynamics;
  std::uint64_t seed = 0;
  /// Also simulate the dynamic Min-Min baseline (costs extra).
  bool run_dynamic = false;
  /// Resource arrivals are generated up to horizon_factor x the initial
  /// HEFT makespan. 1.0 suffices for HEFT-vs-AHEFT (AHEFT never exceeds
  /// the initial plan); use >= 4 when the dynamic baseline runs, since it
  /// can finish well after the static plan would have.
  double horizon_factor = 1.0;
  core::SchedulerConfig scheduler;
  /// Scenario-source registry key building the grid environment
  /// ("synthetic", "trace", "bursty", or a custom registration).
  std::string scenario_source = "synthetic";
  /// Trace file consumed by the "trace" source.
  std::string trace_path;
  /// Volatility knobs consumed by the "bursty" source.
  traces::BurstyParams bursty;
  /// SWF/GWA log knobs consumed by the "archive" and "fitted" sources.
  traces::ArchiveParams archive;
  /// Also react to Performance Monitor variance events (load-driven
  /// estimate/actual divergence), not just pool changes.
  bool react_to_variance = false;
  /// Multi-DAG stream axis: number of concurrent workflow instances
  /// submitted from the scenario's job-arrival records (run_stream_case).
  /// 0 keeps the classic single-DAG case. Generator sources emit the
  /// arrival records; the trace source carries its own.
  std::size_t stream_jobs = 0;
  /// Mean gap between consecutive workflow arrivals (generator sources).
  double stream_interarrival = 400.0;
  /// ContentionPolicyRegistry name arbitrating cross-workflow machine
  /// contention in the session ("fcfs", "priority", "fair-share", ...).
  std::string contention_policy = "fcfs";
  /// Session-level ledger backfilling (SessionEnvironment::backfill):
  /// deferred requests may be granted holes in a resource's reservation
  /// timeline when provably harmless. Off by default — backfilled grants
  /// change the FCFS event stream, and the default configuration stays
  /// bit-stable across PRs.
  bool backfill = false;
  /// Contention-aware planning (PlannerConfig::contention_aware): every
  /// planning pass fits into the session ledger's availability snapshot
  /// instead of assuming an empty grid. Off by default — single-DAG
  /// cases snapshot an empty view anyway, and the multi-DAG default
  /// stays bit-stable across PRs.
  bool contention_aware = false;
  /// Per-workflow priorities / fair-share weights, cycled over the stream
  /// instances (instance k gets stream_priorities[k % size()]); empty
  /// means every workflow weighs 1.
  std::vector<double> stream_priorities;
  /// Resilience knobs (SessionEnvironment::resilience): departure
  /// handling, checkpoint/restart model, fair-share preemption. The
  /// default config is inactive and keeps every case bit-stable.
  resilience::ResilienceConfig resilience;
  /// Parallel event-loop shards for stream sessions
  /// (SessionEnvironment::shards). 1 — the default — is the serial
  /// session; single-DAG cases (run_case) require 1.
  std::size_t shards = 1;
  /// Feed each strategy a fresh PerformanceHistoryRepository (the paper's
  /// Fig. 1 repository AHEFT's planner records into); its deterministic
  /// fingerprint is exported on StreamStrategySummary. Off by default.
  bool use_history = false;
};

struct CaseResult {
  double heft_makespan = 0.0;
  double aheft_makespan = 0.0;
  double minmin_makespan = 0.0;  ///< 0 when the dynamic baseline was skipped
  std::size_t evaluations = 0;   ///< events the AHEFT planner evaluated
  std::size_t adoptions = 0;     ///< reschedules adopted
  std::size_t jobs = 0;          ///< realized DAG size
  std::size_t universe = 0;      ///< total resources (initial + arrivals)
};

/// The fully resolved environment a spec compiles to: the generated
/// workload, the pass-2 scenario (pool + load + event stream) built by
/// the spec's scenario source, the ground-truth cost model over the
/// universe, and the sizing pass's static HEFT plan makespan. Exposed so
/// benches and examples can record a case's environment to a trace file
/// and replay it through the "trace" source.
struct CaseEnvironment {
  workloads::Workload workload;
  traces::CompiledScenario scenario;
  grid::MachineModel model;
  sim::Time heft_plan_makespan = sim::kTimeZero;
};

/// Deterministically resolves a spec's environment (same spec, same
/// environment, on any thread).
[[nodiscard]] CaseEnvironment build_case_environment(const CaseSpec& spec);

/// Generates the workload and grid deterministically from the spec's seed
/// and simulates the requested strategies. The same spec always produces
/// the same result, on any thread.
[[nodiscard]] CaseResult run_case(const CaseSpec& spec);

/// Per-strategy aggregate of one multi-DAG stream run.
struct StreamStrategySummary {
  std::vector<double> makespans;   ///< per workflow, arrival order
  std::vector<double> slowdowns;   ///< contended / solo, arrival order
  std::vector<double> waits;       ///< contention wait, arrival order
  double span = 0.0;               ///< last finish - first arrival
  double throughput = 0.0;         ///< workflows per unit of span
  double mean_makespan = 0.0;
  double max_makespan = 0.0;
  double mean_slowdown = 1.0;
  double max_slowdown = 1.0;
  double mean_wait = 0.0;          ///< contention wait per workflow
  double max_wait = 0.0;           ///< worst per-workflow contention wait
  double jain_fairness = 1.0;      ///< Jain's index over the slowdowns
  std::size_t adoptions = 0;       ///< summed over workflows (AHEFT)
  /// Running jobs cancelled and restarted by adopted reschedules,
  /// summed over workflows (planner strategies only).
  std::size_t restarts = 0;
  /// Resilience aggregate (see StreamOutcome): completions vs terminal
  /// failures, revocations absorbed, the machine-second ledger, and
  /// goodput = useful / (useful + lost + overhead).
  std::size_t completed_workflows = 0;
  std::size_t failed_workflows = 0;
  std::size_t revoked_jobs = 0;
  double lost_work = 0.0;
  double checkpoint_overhead = 0.0;
  double useful_work = 0.0;
  double goodput = 1.0;
  /// Performance-history fingerprint when CaseSpec::use_history fed the
  /// strategy a repository: total observations absorbed and every
  /// (operation, resource) key's smoothed estimate in key order — a
  /// byte-comparable digest for twin-run determinism checks.
  std::size_t history_observations = 0;
  std::vector<double> history_estimates;
};

struct StreamCaseResult {
  StreamStrategySummary heft;
  StreamStrategySummary aheft;
  StreamStrategySummary minmin;
  std::size_t workflows = 0;  ///< stream length
  std::size_t universe = 0;   ///< total resources (initial + arrivals)
};

/// The materialized workflow instances of a stream case. The instances
/// point into the workloads/models vectors, so the setup must stay alive
/// (and unmoved-from) while they run; moving the whole struct is fine.
struct StreamSetup {
  std::vector<workloads::Workload> workloads;
  std::vector<grid::MachineModel> models;
  std::vector<core::WorkflowInstance> instances;
};

/// Materializes one workflow instance per job-arrival record of the
/// spec's scenario: instance 0 reuses the environment's base workload;
/// later instances draw fresh DAGs of the spec's shape and fresh cost
/// columns over the shared universe. Priorities follow
/// CaseSpec::stream_priorities. Deterministic for a fixed spec.
[[nodiscard]] StreamSetup build_stream_setup(const CaseSpec& spec,
                                             const CaseEnvironment& env);

/// Runs one strategy's stream over the setup inside a shared session
/// using the spec's contention policy.
[[nodiscard]] StreamStrategySummary run_stream_strategy(
    const CaseSpec& spec, const CaseEnvironment& env,
    const StreamSetup& setup, core::StrategyKind kind);

/// Multi-DAG stream case: materializes the stream instances (see
/// build_stream_setup) and runs all three strategies through identical
/// shared sessions. Deterministic for a fixed spec, on any thread.
[[nodiscard]] StreamCaseResult run_stream_case(const CaseSpec& spec);

}  // namespace aheft::exp

#endif  // AHEFT_EXP_CASE_H_
