#include "exp/case.h"

#include <optional>

#include "core/heft.h"
#include "core/strategy.h"
#include "support/assert.h"
#include "support/rng.h"
#include "workloads/apps.h"
#include "workloads/random_dag.h"

namespace aheft::exp {

std::string to_string(AppKind app) {
  switch (app) {
    case AppKind::kRandom:
      return "random";
    case AppKind::kBlast:
      return "blast";
    case AppKind::kWien2k:
      return "wien2k";
    case AppKind::kMontage:
      return "montage";
    case AppKind::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

namespace {

workloads::Workload generate_workload(const CaseSpec& spec,
                                      RngStream& rng) {
  switch (spec.app) {
    case AppKind::kRandom: {
      workloads::RandomDagParams params;
      params.jobs = spec.size;
      params.out_degree = spec.out_degree;
      params.ccr = spec.ccr;
      return workloads::generate_random_workload(params, rng);
    }
    case AppKind::kBlast:
    case AppKind::kWien2k:
    case AppKind::kMontage:
    case AppKind::kGaussian: {
      workloads::AppParams params;
      params.parallelism = spec.size;
      params.ccr = spec.ccr;
      switch (spec.app) {
        case AppKind::kBlast:
          return workloads::generate_blast(params, rng);
        case AppKind::kWien2k:
          return workloads::generate_wien2k(params, rng);
        case AppKind::kMontage:
          return workloads::generate_montage(params, rng);
        default:
          return workloads::generate_gaussian(params, rng);
      }
    }
  }
  throw std::invalid_argument("unknown application kind");
}

/// The session environment every strategy of a case runs under: the one
/// pool, (when the scenario carries load segments) the one profile, and
/// the spec's contention policy.
core::SessionEnvironment session_environment(const CaseSpec& spec,
                                             const CaseEnvironment& env) {
  core::SessionEnvironment session;
  session.pool = &env.scenario.pool;
  session.load = env.scenario.load.empty() ? nullptr : &env.scenario.load;
  session.contention_policy = spec.contention_policy;
  session.backfill = spec.backfill;
  session.resilience = spec.resilience;
  session.shards = spec.shards;
  // Scenario pools list the t=0 machines first and dynamic arrivals
  // after, so contiguous blocks would hand the high shards partitions of
  // machines that have not arrived yet (and a workflow released there
  // has nothing to plan on). Hashing interleaves initial machines and
  // arrivals across every shard.
  session.shard_assignment = core::ShardAssignment::kHashed;
  return session;
}

core::StrategyConfig strategy_config(const CaseSpec& spec) {
  core::StrategyConfig config;
  config.planner.scheduler = spec.scheduler;
  config.planner.react_to_variance = spec.react_to_variance;
  config.planner.contention_aware = spec.contention_aware;
  return config;
}

}  // namespace

CaseEnvironment build_case_environment(const CaseSpec& spec) {
  RngStream rng(spec.seed);
  RngStream dag_stream = rng.child("dag");
  workloads::Workload workload = generate_workload(spec, dag_stream);
  const std::uint64_t cost_seed = mix64(spec.seed, hash64("costs"));

  traces::ScenarioRequest request;
  request.dynamics = spec.dynamics;
  request.seed = mix64(spec.seed, hash64("scenario"));
  request.trace_path = spec.trace_path;
  request.bursty = spec.bursty;
  request.archive = spec.archive;
  request.stream.jobs = spec.stream_jobs;
  request.stream.interarrival_mean = spec.stream_interarrival;

  const traces::ScenarioSource& source =
      traces::ScenarioSourceRegistry::instance().require(
          spec.scenario_source);

  // Pass 1: plan on the environment's t = 0 pool alone to size the
  // arrival horizon (generator sources emit no dynamics at horizon 0;
  // the trace source carries its own timeline regardless).
  request.horizon = sim::kTimeZero;
  traces::CompiledScenario initial = source.build(request);
  const grid::MachineModel initial_model = workloads::build_machine_model(
      workload, initial.pool.universe_size(), spec.beta, cost_seed);
  const core::Schedule initial_plan = core::heft_schedule(
      workload.dag, initial_model, initial.pool, spec.scheduler);
  const sim::Time heft_makespan = initial_plan.makespan();

  // Pass 2: extend the universe with the generated dynamics up to the
  // horizon; cost columns shared with pass 1 regenerate identically
  // (deterministic per (seed, job, column)). Horizon-insensitive
  // sources (trace replay) would rebuild the identical scenario, so
  // reuse pass 1 instead of re-reading them. Workflow streams push the
  // horizon out by the arrival span (known after pass 1: generators
  // emit the arrival records at any horizon).
  const sim::Time arrival_span = initial.job_arrivals.empty()
                                     ? sim::kTimeZero
                                     : initial.job_arrivals.back().arrival;
  request.horizon = arrival_span + heft_makespan * spec.horizon_factor;
  traces::CompiledScenario scenario = source.horizon_sensitive()
                                          ? source.build(request)
                                          : std::move(initial);
  grid::MachineModel model = workloads::build_machine_model(
      workload, scenario.pool.universe_size(), spec.beta, cost_seed);

  return CaseEnvironment{std::move(workload), std::move(scenario),
                         std::move(model), heft_makespan};
}

CaseResult run_case(const CaseSpec& spec) {
  AHEFT_REQUIRE(spec.horizon_factor >= 1.0 || !spec.run_dynamic,
                "dynamic baseline needs horizon_factor >= 1");
  // A stream axis would silently shift the environment (arrival-span
  // horizon extension) while this path simulates only one workflow;
  // multi-workflow specs belong to run_stream_case.
  AHEFT_REQUIRE(spec.stream_jobs <= 1,
                "spec carries a multi-DAG stream axis; use run_stream_case");
  // One workflow cannot span shard partitions; shards belong to streams.
  AHEFT_REQUIRE(spec.shards == 1, "single-DAG cases run serial (shards=1)");
  const CaseEnvironment env = build_case_environment(spec);
  const core::SessionEnvironment session = session_environment(spec, env);
  const core::StrategyConfig config = strategy_config(spec);
  const grid::MachineModel& model = env.model;
  const dag::Dag& dag = env.workload.dag;
  const bool loaded = session.load != nullptr;

  CaseResult result;
  result.jobs = dag.job_count();
  result.universe = env.scenario.pool.universe_size();
  // Under load the static plan's prediction is no longer what a static
  // run realizes, so simulate it; otherwise the plan is exact.
  result.heft_makespan =
      loaded ? core::run_strategy(core::StrategyKind::kStaticHeft, dag,
                                  model, model, session, config)
                   .makespan
             : env.heft_plan_makespan;

  const core::StrategyOutcome aheft = core::run_strategy(
      core::StrategyKind::kAdaptiveAheft, dag, model, model, session,
      config);
  result.aheft_makespan = aheft.makespan;
  result.evaluations = aheft.evaluations;
  result.adoptions = aheft.adoptions;

  if (spec.run_dynamic) {
    // The just-in-time baseline shares the session environment, so under
    // trace/volatility scenarios it realizes the same load-scaled run
    // times as the other two strategies.
    const core::StrategyOutcome minmin = core::run_strategy(
        core::StrategyKind::kDynamic, dag, model, model, session, config);
    result.minmin_makespan = minmin.makespan;
  }
  return result;
}

namespace {

StreamStrategySummary summarize(const core::StreamOutcome& outcome) {
  StreamStrategySummary summary;
  summary.makespans.reserve(outcome.workflows.size());
  summary.slowdowns.reserve(outcome.workflows.size());
  summary.waits.reserve(outcome.workflows.size());
  for (const core::WorkflowResult& wf : outcome.workflows) {
    summary.makespans.push_back(wf.makespan);
    summary.slowdowns.push_back(wf.slowdown);
    summary.waits.push_back(wf.wait);
    summary.adoptions += wf.outcome.adoptions;
    summary.restarts += wf.outcome.restarts;
  }
  summary.span = outcome.span;
  summary.throughput = outcome.throughput;
  summary.mean_makespan = outcome.mean_makespan;
  summary.max_makespan = outcome.max_makespan;
  summary.mean_slowdown = outcome.mean_slowdown;
  summary.max_slowdown = outcome.max_slowdown;
  summary.mean_wait = outcome.mean_wait;
  summary.max_wait = outcome.max_wait;
  summary.jain_fairness = outcome.jain_fairness;
  summary.completed_workflows = outcome.completed_workflows;
  summary.failed_workflows = outcome.failed_workflows;
  summary.revoked_jobs = outcome.revoked_jobs;
  summary.lost_work = outcome.lost_work;
  summary.checkpoint_overhead = outcome.checkpoint_overhead;
  summary.useful_work = outcome.useful_work;
  summary.goodput = outcome.goodput;
  return summary;
}

}  // namespace

StreamSetup build_stream_setup(const CaseSpec& spec,
                               const CaseEnvironment& env) {
  const std::size_t universe = env.scenario.pool.universe_size();

  // One workflow instance per arrival record; a scenario without records
  // (single-DAG trace, stream_jobs = 0) degenerates to one arrival at 0.
  std::vector<traces::JobArrivalRecord> arrivals =
      env.scenario.job_arrivals;
  if (arrivals.empty()) {
    arrivals.push_back(traces::JobArrivalRecord{0, sim::kTimeZero, "wf0"});
  }

  // Materialize every instance's workload and cost matrix first (the
  // instances hold pointers into these vectors). Instance 0 reuses the
  // environment's base workload; later instances draw fresh DAGs of the
  // same shape and fresh cost columns over the shared universe.
  StreamSetup setup;
  setup.workloads.reserve(arrivals.size());
  setup.models.reserve(arrivals.size());
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    if (k == 0) {
      setup.workloads.push_back(env.workload);
      setup.models.push_back(env.model);
      continue;
    }
    RngStream dag_stream =
        RngStream(spec.seed).child("dag@" + std::to_string(k));
    setup.workloads.push_back(generate_workload(spec, dag_stream));
    setup.models.push_back(workloads::build_machine_model(
        setup.workloads.back(), universe, spec.beta,
        mix64(spec.seed, hash64("costs@" + std::to_string(k)))));
  }

  setup.instances.reserve(arrivals.size());
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    core::WorkflowInstance instance;
    instance.name = arrivals[k].name;
    instance.dag = &setup.workloads[k].dag;
    instance.estimates = &setup.models[k];
    instance.actual = &setup.models[k];
    instance.arrival = arrivals[k].arrival;
    if (!spec.stream_priorities.empty()) {
      instance.priority =
          spec.stream_priorities[k % spec.stream_priorities.size()];
    }
    setup.instances.push_back(instance);
  }
  return setup;
}

StreamStrategySummary run_stream_strategy(const CaseSpec& spec,
                                          const CaseEnvironment& env,
                                          const StreamSetup& setup,
                                          core::StrategyKind kind) {
  core::SessionEnvironment session = session_environment(spec, env);
  // Each strategy records into its own fresh repository so cross-strategy
  // comparisons stay independent; the merged fingerprint is exported on
  // the summary for twin-run determinism checks.
  std::optional<grid::PerformanceHistoryRepository> history;
  if (spec.use_history) {
    history.emplace();
    session.history = &*history;
  }
  const core::StrategyConfig config = strategy_config(spec);
  const std::unique_ptr<core::StrategyDriver> driver =
      core::make_strategy_driver(kind, config);
  StreamStrategySummary summary = summarize(
      core::run_workflow_stream(session, *driver, setup.instances));
  if (history.has_value()) {
    summary.history_observations = history->total_observations();
    for (const grid::PerformanceHistoryRepository::Observation& observation :
         history->snapshot()) {
      summary.history_estimates.push_back(observation.smoothed);
    }
  }
  return summary;
}

StreamCaseResult run_stream_case(const CaseSpec& spec) {
  // Streams always simulate the dynamic baseline, which can outlive the
  // static plan's horizon — the same guard run_case applies when
  // run_dynamic is set.
  AHEFT_REQUIRE(spec.horizon_factor >= 1.0,
                "stream cases need horizon_factor >= 1");
  const CaseEnvironment env = build_case_environment(spec);
  const StreamSetup setup = build_stream_setup(spec, env);

  StreamCaseResult result;
  result.workflows = setup.instances.size();
  result.universe = env.scenario.pool.universe_size();
  result.heft =
      run_stream_strategy(spec, env, setup, core::StrategyKind::kStaticHeft);
  result.aheft = run_stream_strategy(spec, env, setup,
                                     core::StrategyKind::kAdaptiveAheft);
  result.minmin =
      run_stream_strategy(spec, env, setup, core::StrategyKind::kDynamic);
  return result;
}

}  // namespace aheft::exp
