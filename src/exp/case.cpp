#include "exp/case.h"

#include "core/adaptive_run.h"
#include "core/heft.h"
#include "support/assert.h"
#include "support/rng.h"
#include "workloads/apps.h"
#include "workloads/random_dag.h"

namespace aheft::exp {

std::string to_string(AppKind app) {
  switch (app) {
    case AppKind::kRandom:
      return "random";
    case AppKind::kBlast:
      return "blast";
    case AppKind::kWien2k:
      return "wien2k";
    case AppKind::kMontage:
      return "montage";
    case AppKind::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

namespace {

workloads::Workload generate_workload(const CaseSpec& spec,
                                      RngStream& rng) {
  switch (spec.app) {
    case AppKind::kRandom: {
      workloads::RandomDagParams params;
      params.jobs = spec.size;
      params.out_degree = spec.out_degree;
      params.ccr = spec.ccr;
      return workloads::generate_random_workload(params, rng);
    }
    case AppKind::kBlast:
    case AppKind::kWien2k:
    case AppKind::kMontage:
    case AppKind::kGaussian: {
      workloads::AppParams params;
      params.parallelism = spec.size;
      params.ccr = spec.ccr;
      switch (spec.app) {
        case AppKind::kBlast:
          return workloads::generate_blast(params, rng);
        case AppKind::kWien2k:
          return workloads::generate_wien2k(params, rng);
        case AppKind::kMontage:
          return workloads::generate_montage(params, rng);
        default:
          return workloads::generate_gaussian(params, rng);
      }
    }
  }
  throw std::invalid_argument("unknown application kind");
}

}  // namespace

CaseResult run_case(const CaseSpec& spec) {
  AHEFT_REQUIRE(spec.horizon_factor >= 1.0 || !spec.run_dynamic,
                "dynamic baseline needs horizon_factor >= 1");
  RngStream rng(spec.seed);
  RngStream dag_stream = rng.child("dag");
  const workloads::Workload workload = generate_workload(spec, dag_stream);
  const std::uint64_t cost_seed = mix64(spec.seed, hash64("costs"));

  // Pass 1: plan on the initial pool alone to size the arrival horizon.
  const workloads::ResourceDynamics& dynamics = spec.dynamics;
  grid::ResourcePool initial_pool;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    initial_pool.add(grid::Resource{.name = "", .arrival = sim::kTimeZero});
  }
  const grid::MachineModel initial_model = workloads::build_machine_model(
      workload, dynamics.initial, spec.beta, cost_seed);
  const core::Schedule initial_plan = core::heft_schedule(
      workload.dag, initial_model, initial_pool, spec.scheduler);
  const sim::Time heft_makespan = initial_plan.makespan();

  // Pass 2: extend the universe with arrivals up to the horizon; columns
  // 0..R-1 regenerate identically (deterministic per (seed, job, column)).
  const sim::Time horizon = heft_makespan * spec.horizon_factor;
  const grid::ResourcePool pool =
      workloads::build_dynamic_pool(dynamics, horizon);
  const grid::MachineModel model = workloads::build_machine_model(
      workload, pool.universe_size(), spec.beta, cost_seed);

  CaseResult result;
  result.jobs = workload.dag.job_count();
  result.universe = pool.universe_size();
  result.heft_makespan = heft_makespan;

  core::PlannerConfig planner_config;
  planner_config.scheduler = spec.scheduler;
  const core::StrategyOutcome aheft = core::run_adaptive_aheft(
      workload.dag, model, model, pool, planner_config);
  result.aheft_makespan = aheft.makespan;
  result.evaluations = aheft.evaluations;
  result.adoptions = aheft.adoptions;

  if (spec.run_dynamic) {
    const core::StrategyOutcome minmin = core::run_dynamic_baseline(
        workload.dag, model, pool, core::DynamicHeuristic::kMinMin);
    result.minmin_makespan = minmin.makespan;
  }
  return result;
}

}  // namespace aheft::exp
