#include "exp/case.h"

#include "core/adaptive_run.h"
#include "core/heft.h"
#include "support/assert.h"
#include "support/rng.h"
#include "workloads/apps.h"
#include "workloads/random_dag.h"

namespace aheft::exp {

std::string to_string(AppKind app) {
  switch (app) {
    case AppKind::kRandom:
      return "random";
    case AppKind::kBlast:
      return "blast";
    case AppKind::kWien2k:
      return "wien2k";
    case AppKind::kMontage:
      return "montage";
    case AppKind::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

namespace {

workloads::Workload generate_workload(const CaseSpec& spec,
                                      RngStream& rng) {
  switch (spec.app) {
    case AppKind::kRandom: {
      workloads::RandomDagParams params;
      params.jobs = spec.size;
      params.out_degree = spec.out_degree;
      params.ccr = spec.ccr;
      return workloads::generate_random_workload(params, rng);
    }
    case AppKind::kBlast:
    case AppKind::kWien2k:
    case AppKind::kMontage:
    case AppKind::kGaussian: {
      workloads::AppParams params;
      params.parallelism = spec.size;
      params.ccr = spec.ccr;
      switch (spec.app) {
        case AppKind::kBlast:
          return workloads::generate_blast(params, rng);
        case AppKind::kWien2k:
          return workloads::generate_wien2k(params, rng);
        case AppKind::kMontage:
          return workloads::generate_montage(params, rng);
        default:
          return workloads::generate_gaussian(params, rng);
      }
    }
  }
  throw std::invalid_argument("unknown application kind");
}

}  // namespace

CaseEnvironment build_case_environment(const CaseSpec& spec) {
  RngStream rng(spec.seed);
  RngStream dag_stream = rng.child("dag");
  workloads::Workload workload = generate_workload(spec, dag_stream);
  const std::uint64_t cost_seed = mix64(spec.seed, hash64("costs"));

  traces::ScenarioRequest request;
  request.dynamics = spec.dynamics;
  request.seed = mix64(spec.seed, hash64("scenario"));
  request.trace_path = spec.trace_path;
  request.bursty = spec.bursty;

  const traces::ScenarioSource& source =
      traces::ScenarioSourceRegistry::instance().require(
          spec.scenario_source);

  // Pass 1: plan on the environment's t = 0 pool alone to size the
  // arrival horizon (generator sources emit no dynamics at horizon 0;
  // the trace source carries its own timeline regardless).
  request.horizon = sim::kTimeZero;
  traces::CompiledScenario initial = source.build(request);
  const grid::MachineModel initial_model = workloads::build_machine_model(
      workload, initial.pool.universe_size(), spec.beta, cost_seed);
  const core::Schedule initial_plan = core::heft_schedule(
      workload.dag, initial_model, initial.pool, spec.scheduler);
  const sim::Time heft_makespan = initial_plan.makespan();

  // Pass 2: extend the universe with the generated dynamics up to the
  // horizon; cost columns shared with pass 1 regenerate identically
  // (deterministic per (seed, job, column)). Horizon-insensitive
  // sources (trace replay) would rebuild the identical scenario, so
  // reuse pass 1 instead of re-reading them.
  request.horizon = heft_makespan * spec.horizon_factor;
  traces::CompiledScenario scenario = source.horizon_sensitive()
                                          ? source.build(request)
                                          : std::move(initial);
  grid::MachineModel model = workloads::build_machine_model(
      workload, scenario.pool.universe_size(), spec.beta, cost_seed);

  return CaseEnvironment{std::move(workload), std::move(scenario),
                         std::move(model), heft_makespan};
}

CaseResult run_case(const CaseSpec& spec) {
  AHEFT_REQUIRE(spec.horizon_factor >= 1.0 || !spec.run_dynamic,
                "dynamic baseline needs horizon_factor >= 1");
  const CaseEnvironment env = build_case_environment(spec);
  const grid::ResourcePool& pool = env.scenario.pool;
  const grid::MachineModel& model = env.model;
  const bool loaded = !env.scenario.load.empty();

  CaseResult result;
  result.jobs = env.workload.dag.job_count();
  result.universe = pool.universe_size();
  // Under load the static plan's prediction is no longer what a static
  // run realizes, so simulate it; otherwise the plan is exact.
  result.heft_makespan =
      loaded ? core::run_static_heft(env.workload.dag, model, model, pool,
                                     spec.scheduler, nullptr,
                                     &env.scenario.load)
                   .makespan
             : env.heft_plan_makespan;

  core::PlannerConfig planner_config;
  planner_config.scheduler = spec.scheduler;
  planner_config.react_to_variance = spec.react_to_variance;
  planner_config.load = loaded ? &env.scenario.load : nullptr;
  const core::StrategyOutcome aheft = core::run_adaptive_aheft(
      env.workload.dag, model, model, pool, planner_config);
  result.aheft_makespan = aheft.makespan;
  result.evaluations = aheft.evaluations;
  result.adoptions = aheft.adoptions;

  if (spec.run_dynamic) {
    // The just-in-time baseline keeps nominal costs: its decision loop
    // predates the load subsystem and the paper compares it load-free.
    const core::StrategyOutcome minmin = core::run_dynamic_baseline(
        env.workload.dag, model, pool, core::DynamicHeuristic::kMinMin);
    result.minmin_makespan = minmin.makespan;
  }
  return result;
}

}  // namespace aheft::exp
