// RevocationManager: per-shard bookkeeping of policy-initiated revokes.
//
// Revocation lets the session take back a *committed* window — running
// work — where contention policies could previously only displace held
// claims. Two paths issue revokes: the departure path (a job that cannot
// finish before its machine leaves is checkpointed-or-killed at the wall
// and requeued) and fair-share preemption (a starved requester evicts
// the job of a monopolizing workflow). Both funnel through the victim
// participant's revoke_committed() so the victim itself truncates its
// ledger window and requeues through the normal acquire/hold/commit
// lifecycle — arbitration stays acyclic because the requeued work is
// just another queue entry the policy orders.
//
// The manager guards the loops revocation could otherwise open: a
// per-job revocation cap (a job endlessly bounced between failing
// machines eventually fails its workflow instead of livelocking) and a
// one-preemption-in-flight-per-resource latch (the starved requester
// re-acquires every wakeup; without the latch each retry would schedule
// another eviction before the first lands).
#ifndef AHEFT_RESILIENCE_REVOCATION_H_
#define AHEFT_RESILIENCE_REVOCATION_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "grid/resource.h"
#include "resilience/checkpoint_model.h"

namespace aheft::resilience {

class RevocationManager {
 public:
  explicit RevocationManager(const ResilienceConfig& config)
      : config_(config) {
    validate(config_);
  }

  [[nodiscard]] const ResilienceConfig& config() const { return config_; }

  /// Whether (participant, tag) may absorb another revocation under the
  /// per-job cap.
  [[nodiscard]] bool may_revoke(std::size_t participant,
                                std::uint64_t tag) const {
    const auto it = counts_.find({participant, tag});
    return it == counts_.end() ||
           it->second < config_.max_revocations_per_job;
  }

  /// Records a landed revocation of (participant, tag).
  void record(std::size_t participant, std::uint64_t tag) {
    ++counts_[{participant, tag}];
    ++total_;
  }

  /// Latches `resource` for one in-flight preemption; returns false when
  /// an eviction is already pending there.
  [[nodiscard]] bool begin_preemption(grid::ResourceId resource) {
    return preempting_.insert(resource).second;
  }

  /// Releases the latch once the eviction event ran (whether or not the
  /// victim honored it).
  void end_preemption(grid::ResourceId resource) {
    preempting_.erase(resource);
  }

  [[nodiscard]] std::size_t total_revocations() const { return total_; }
  [[nodiscard]] std::size_t revocations_of(std::size_t participant,
                                           std::uint64_t tag) const {
    const auto it = counts_.find({participant, tag});
    return it == counts_.end() ? 0 : it->second;
  }

 private:
  ResilienceConfig config_;
  std::map<std::pair<std::size_t, std::uint64_t>, std::size_t> counts_;
  std::set<grid::ResourceId> preempting_;
  std::size_t total_ = 0;
};

}  // namespace aheft::resilience

#endif  // AHEFT_RESILIENCE_REVOCATION_H_
