// Checkpoint/restart cost model (Daly-style) and the resilience knobs.
//
// A job that loses its machine mid-run — a departure the plan did not
// survive, or a policy-initiated revocation — retains only the work a
// checkpoint saved. The model here prices that: a run of W nominal work
// units is structured as cycles of (interval of useful work, then a
// checkpoint write of `write_cost`), the final partial cycle writing
// nothing because completion itself persists the result. An interrupted
// run keeps floor-progress `n * interval` for n completed cycles, pays
// `read_cost` once to restart from the saved image, and loses everything
// since the last checkpoint. The degenerate model (enabled = false)
// retains nothing: restart is always from scratch.
//
// The default interval is Daly's higher-order optimum from the write
// cost and the per-job MTBF (J. T. Daly, "A higher order estimate of the
// optimum checkpoint interval for restart dumps", FGCS 2006) — the same
// formula the codes-checkpoint-restart workload generator uses:
//
//   delta < M/2:  tau = sqrt(2 delta M) [1 + 1/3 sqrt(delta/(2M))
//                                          + 1/9 (delta/(2M))] - delta
//   otherwise:    tau = M
//
// Everything here is in nominal work units (the executor applies its
// load factor when converting to wall clock), pure, and dependency-free
// below grid/sim, so the session environment can embed the config.
#ifndef AHEFT_RESILIENCE_CHECKPOINT_MODEL_H_
#define AHEFT_RESILIENCE_CHECKPOINT_MODEL_H_

#include <cstddef>

namespace aheft::resilience {

/// What the executor does when a running (or about-to-start) job cannot
/// finish before its machine departs.
enum class DepartureAction {
  /// Report the scenario as unsupported (throw) — the historical
  /// behavior, bit-identical to every pre-resilience release.
  kError,
  /// The workflow fails gracefully: running work is truncated, the
  /// failure is counted, and the stream carries on. This is the
  /// "reject the run" baseline expressed as data instead of an abort.
  kFail,
  /// Treat the departure as a failure the job does not foresee: run to
  /// the wall, salvage checkpointed progress (or lose everything under
  /// the degenerate model), and requeue the remainder elsewhere through
  /// the normal acquire/commit lifecycle.
  kRequeue,
};

/// The checkpoint/restart cost model of one session. Disabled means
/// "no checkpoints, restart from scratch" — revocations retain nothing.
struct CheckpointModel {
  bool enabled = false;
  /// Nominal cost of writing one checkpoint image (Daly's delta).
  double write_cost = 0.0;
  /// Nominal cost of restoring from the latest image on restart.
  double read_cost = 0.0;
  /// Per-job mean time between failures (Daly's M); feeds the optimum
  /// interval when `interval` is 0.
  double mtbf = 0.0;
  /// Checkpoint interval in nominal work units; 0 derives Daly's
  /// optimum from (write_cost, mtbf).
  double interval = 0.0;
};

/// Daly's higher-order optimum checkpoint interval (see file header).
[[nodiscard]] double daly_interval(double write_cost, double mtbf);

/// The interval a session actually checkpoints at: the explicit knob
/// when set, else Daly's optimum. Requires an enabled, validated model.
[[nodiscard]] double effective_interval(const CheckpointModel& model);

/// Machine time a run of `work` nominal units occupies under `model`:
/// the work plus every interleaved checkpoint write (completion itself
/// persists the result, so a run never ends on a write).
[[nodiscard]] double segment_occupancy(const CheckpointModel& model,
                                       double work);

/// How an interrupted run segment decomposes. All nominal work units;
/// retained + overhead + lost == the elapsed occupancy at interruption.
struct SegmentProgress {
  /// Useful work saved by completed checkpoints (kept on restart).
  double retained = 0.0;
  /// Completed checkpoint writes (paid, not useful, not redone).
  double overhead = 0.0;
  /// Work since the last checkpoint plus any partial write (redone).
  double lost = 0.0;
};

/// Splits a segment of `work` nominal units interrupted after `elapsed`
/// nominal units of occupancy. The degenerate (disabled) model retains
/// nothing and loses all of `elapsed`.
[[nodiscard]] SegmentProgress segment_progress(const CheckpointModel& model,
                                               double elapsed, double work);

/// Everything the resilience subsystem can be told to do. All defaults
/// off: a default config leaves every simulation bit-identical to the
/// pre-resilience behavior.
struct ResilienceConfig {
  DepartureAction departure_action = DepartureAction::kError;
  CheckpointModel checkpoint;
  /// Fair-share preemption: a starved requester may revoke the committed
  /// window blocking it when the stretch disparity clears the deadband
  /// below. Only engages under a policy that supports preemption.
  bool preemption = false;
  /// Deadband: the requester's stretch must exceed this floor AND
  /// `preemption_ratio` times the victim's stretch (mirrors the
  /// fair-share displacement band for held claims).
  double preemption_min_stretch = 2.0;
  double preemption_ratio = 1.25;
  /// Revocations one job may absorb before its workflow fails — bounds
  /// requeue livelock under sustained failure bursts.
  std::size_t max_revocations_per_job = 16;

  /// Whether any resilience behavior is switched on. Inactive configs
  /// must not change a single simulated event.
  [[nodiscard]] bool active() const {
    return departure_action != DepartureAction::kError || preemption;
  }
};

/// Throws std::invalid_argument on inconsistent knobs (an enabled
/// checkpoint model without a positive write cost or any way to pick an
/// interval, non-positive deadband parameters, ...).
void validate(const ResilienceConfig& config);

}  // namespace aheft::resilience

#endif  // AHEFT_RESILIENCE_CHECKPOINT_MODEL_H_
