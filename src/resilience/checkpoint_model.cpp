#include "resilience/checkpoint_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aheft::resilience {

double daly_interval(double write_cost, double mtbf) {
  if (write_cost <= 0.0 || mtbf <= 0.0) {
    throw std::invalid_argument(
        "daly_interval needs positive write cost and MTBF");
  }
  if (write_cost >= mtbf / 2.0) {
    // Dumps this expensive relative to the failure rate degenerate to
    // checkpointing once per expected failure.
    return mtbf;
  }
  const double ratio = write_cost / (2.0 * mtbf);
  return std::sqrt(2.0 * write_cost * mtbf) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         write_cost;
}

double effective_interval(const CheckpointModel& model) {
  if (!model.enabled) {
    throw std::invalid_argument(
        "effective_interval of a disabled checkpoint model");
  }
  return model.interval > 0.0 ? model.interval
                              : daly_interval(model.write_cost, model.mtbf);
}

double segment_occupancy(const CheckpointModel& model, double work) {
  if (work <= 0.0) {
    return 0.0;
  }
  if (!model.enabled) {
    return work;
  }
  const double interval = effective_interval(model);
  // Writes between cycles only: a run of <= one interval writes nothing,
  // and completion (not a write) ends the final cycle.
  const double cycles = std::ceil(work / interval);
  const double writes = std::max(0.0, cycles - 1.0);
  return work + writes * model.write_cost;
}

SegmentProgress segment_progress(const CheckpointModel& model, double elapsed,
                                 double work) {
  SegmentProgress progress;
  if (elapsed <= 0.0 || work <= 0.0) {
    return progress;
  }
  elapsed = std::min(elapsed, segment_occupancy(model, work));
  if (!model.enabled) {
    progress.lost = elapsed;
    return progress;
  }
  const double interval = effective_interval(model);
  const double cycle = interval + model.write_cost;
  const double max_writes =
      std::max(0.0, std::ceil(work / interval) - 1.0);
  // Checkpoints completed before the interruption; the image on disk
  // holds `completed * interval` units of work.
  const double completed =
      std::min(std::floor(elapsed / cycle), max_writes);
  progress.retained = completed * interval;
  progress.overhead = completed * model.write_cost;
  progress.lost = elapsed - progress.retained - progress.overhead;
  return progress;
}

void validate(const ResilienceConfig& config) {
  const CheckpointModel& model = config.checkpoint;
  if (model.enabled) {
    if (model.write_cost <= 0.0) {
      throw std::invalid_argument(
          "an enabled checkpoint model needs a positive write cost");
    }
    if (model.read_cost < 0.0) {
      throw std::invalid_argument("checkpoint read cost must be >= 0");
    }
    if (model.interval <= 0.0 && model.mtbf <= 0.0) {
      throw std::invalid_argument(
          "an enabled checkpoint model needs an explicit interval or a "
          "positive MTBF to derive one");
    }
    if (model.interval < 0.0) {
      throw std::invalid_argument("checkpoint interval must be >= 0");
    }
  }
  if (config.preemption) {
    if (config.preemption_min_stretch <= 0.0 ||
        config.preemption_ratio <= 1.0) {
      throw std::invalid_argument(
          "preemption deadband needs min stretch > 0 and ratio > 1");
    }
  }
  if (config.max_revocations_per_job == 0) {
    throw std::invalid_argument(
        "max_revocations_per_job must be >= 1 (0 would fail every "
        "workflow on its first revocation)");
  }
}

}  // namespace aheft::resilience
