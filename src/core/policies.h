// Tunable policies of the (re)scheduler. Every knob here is exercised by an
// ablation bench (EXP-A1).
#ifndef AHEFT_CORE_POLICIES_H_
#define AHEFT_CORE_POLICIES_H_

#include <string>

namespace aheft::core {

/// How a job is placed on a resource's timeline.
///  - kInsertion: classic HEFT insertion-based policy — the job may fill an
///    idle gap between already-placed jobs (Topcuoglu et al. [19]).
///  - kEndOfQueue: the job goes after the last placed job (a literal
///    reading of the paper's avail[j] in Eq. 2).
enum class SlotPolicy { kInsertion, kEndOfQueue };

/// What rescheduling may do to jobs that are mid-execution at `clock`.
///  - kKeepRunning: running jobs are pinned to their slots; only
///    not-started jobs move. This matches the paper's worked example —
///    in Fig. 5(b) job n3 keeps its r3 slot across the t=15 reschedule —
///    and wastes no work, so it is the default.
///  - kRestartable: cancel and restart from scratch elsewhere (no
///    checkpoint). Kept as an ablation knob.
enum class RunningJobPolicy { kRestartable, kKeepRunning };

/// When may the output of an already-finished job start moving toward a
/// resource it was never scheduled to reach?
///  - kRetransmitFromClock: a literal reading of Eq. 1 Case 2 — "the file
///    transmission can not be earlier than clock", so a moved consumer
///    waits clock + c. Physically conservative.
///  - kEagerReplicate: outputs are replicated toward every resource as
///    soon as they exist (transfer starts at max(AFT, resource arrival)).
///  - kPrestagedArrivals: like kEagerReplicate, but a joining resource
///    syncs with the grid's data fabric as part of joining, so files
///    produced earlier are available max(AFT + c, arrival) — i.e. a copy
///    effectively left at production time. This is the reading implied by
///    the paper's published numbers: the Fig. 5(b) schedule has n5's input
///    landing on r4 at t = 20 = AFT + c although r4 joined at 15, and
///    Table 3's large high-CCR gains require migrations that do not pay a
///    full post-arrival transfer.
enum class TransferPolicy {
  kRetransmitFromClock,
  kEagerReplicate,
  kPrestagedArrivals
};

/// Scheduler configuration shared by HEFT and AHEFT.
struct SchedulerConfig {
  SlotPolicy slot_policy = SlotPolicy::kInsertion;
  RunningJobPolicy running_policy = RunningJobPolicy::kKeepRunning;
  /// Minimum relative makespan improvement for a reschedule to be adopted
  /// (paper Fig. 2 line 7 uses strict improvement, i.e. 0).
  double adoption_threshold = 0.0;
  /// Order exploration: in addition to the canonical non-increasing
  /// upward-rank order, try up to this many alternative orders obtained by
  /// swapping adjacent jobs whose ranks are within rank_tie_fraction of
  /// each other, and keep the best schedule. 0 = pure HEFT greedy (used
  /// for the large sweeps); a small value reproduces the paper's Fig. 5(b)
  /// schedule, which improves on strict rank order by one near-tie swap.
  std::size_t order_candidates = 0;
  /// Relative rank gap under which two adjacent jobs count as near-tied.
  double rank_tie_fraction = 0.05;
  /// File-movement model shared by the planner's FEA (Eq. 1 Case 2) and
  /// the executor. Defaults to the paper's literal Eq. 1 constraint; the
  /// optimistic models are ablation knobs (see EXPERIMENTS.md for why the
  /// paper's own numbers imply one of them).
  TransferPolicy transfer_policy = TransferPolicy::kRetransmitFromClock;
};

[[nodiscard]] std::string to_string(SlotPolicy policy);
[[nodiscard]] std::string to_string(RunningJobPolicy policy);
[[nodiscard]] std::string to_string(TransferPolicy policy);

}  // namespace aheft::core

#endif  // AHEFT_CORE_POLICIES_H_
