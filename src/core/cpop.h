// CPOP (Critical-Path-on-a-Processor), the second heuristic of Topcuoglu
// et al. [19] — an extension beyond the paper, used to test the claim it
// cites from Hönig & Schiffmann [10] that list-scheduling heuristics
// "show a very similar behavior ... differing only by few percent".
//
// CPOP prioritises jobs by ranku + rankd, pins every critical-path job to
// the single processor that minimises the critical path's total
// computation cost, and schedules the rest by earliest finish time in
// priority order (respecting readiness: a job is scheduled only once its
// predecessors are scheduled).
#ifndef AHEFT_CORE_CPOP_H_
#define AHEFT_CORE_CPOP_H_

#include <vector>

#include "core/policies.h"
#include "core/schedule.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/resource_pool.h"

namespace aheft::core {

/// Static CPOP plan over the resources visible at time `clock`.
/// `availability` optionally carries a snapshot of foreign machine load
/// (see heft_schedule): EST searches fit into its free gaps; null or
/// empty is bit-identical to the contention-blind plan.
[[nodiscard]] Schedule cpop_schedule(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::ResourcePool& pool, SchedulerConfig config = {},
    sim::Time clock = sim::kTimeZero,
    const AvailabilityView* availability = nullptr);

/// The jobs CPOP considers critical (|ranku + rankd - max| within a
/// relative epsilon), in topological order. Exposed for tests.
[[nodiscard]] std::vector<dag::JobId> cpop_critical_path(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    std::span<const grid::ResourceId> resources);

}  // namespace aheft::core

#endif  // AHEFT_CORE_CPOP_H_
