#include "core/ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.h"

namespace aheft::core {

std::vector<double> upward_ranks(const dag::Dag& dag,
                                 const grid::CostProvider& costs,
                                 std::span<const grid::ResourceId> resources) {
  AHEFT_REQUIRE(!resources.empty(), "rank needs at least one resource");
  const auto& topo = dag.topological_order();
  std::vector<double> rank(dag.job_count(), 0.0);
  // Traverse in reverse topological order so successors are ranked first.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::JobId i = *it;
    double best_successor = 0.0;
    for (const std::uint32_t e : dag.out_edges(i)) {
      const dag::Edge& edge = dag.edges()[e];
      best_successor = std::max(
          best_successor, costs.mean_comm_cost(edge) + rank[edge.to]);
    }
    rank[i] = costs.mean_compute_cost(i, resources) + best_successor;
  }
  return rank;
}

std::vector<double> downward_ranks(
    const dag::Dag& dag, const grid::CostProvider& costs,
    std::span<const grid::ResourceId> resources) {
  AHEFT_REQUIRE(!resources.empty(), "rank needs at least one resource");
  std::vector<double> rank(dag.job_count(), 0.0);
  for (const dag::JobId i : dag.topological_order()) {
    double best = 0.0;
    for (const std::uint32_t e : dag.in_edges(i)) {
      const dag::Edge& edge = dag.edges()[e];
      best = std::max(best, rank[edge.from] +
                                costs.mean_compute_cost(edge.from, resources) +
                                costs.mean_comm_cost(edge));
    }
    rank[i] = best;
  }
  return rank;
}

std::vector<dag::JobId> rank_order(const std::vector<double>& ranks) {
  // Rank values are sums of cost averages; mathematically equal ranks can
  // differ by floating-point dust (the sample DAG's n3 and n4 both rank
  // exactly 80). Near-equal ranks therefore tie and fall back to the job
  // id, keeping the order deterministic and matching [19].
  const auto nearly_equal = [](double a, double b) {
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= 1e-9 * scale;
  };
  std::vector<dag::JobId> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](dag::JobId a, dag::JobId b) {
                     if (!nearly_equal(ranks[a], ranks[b])) {
                       return ranks[a] > ranks[b];
                     }
                     return a < b;
                   });
  return order;
}

}  // namespace aheft::core
