#include "core/strategy.h"

#include <mutex>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace aheft::core {

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kStaticHeft:
      return "heft";
    case StrategyKind::kAdaptiveAheft:
      return "aheft";
    case StrategyKind::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

std::optional<StrategyKind> strategy_from_string(std::string_view text) {
  for (const StrategyKind kind :
       {StrategyKind::kStaticHeft, StrategyKind::kAdaptiveAheft,
        StrategyKind::kDynamic}) {
    if (text == to_string(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::vector<std::string> strategy_names() {
  return {to_string(StrategyKind::kStaticHeft),
          to_string(StrategyKind::kAdaptiveAheft),
          to_string(StrategyKind::kDynamic)};
}

namespace {

/// Static HEFT and AHEFT share the planner machinery; they differ only in
/// whether the planner reacts to events after the release-time plan.
class PlannerDriver final : public StrategyDriver {
 public:
  PlannerDriver(StrategyKind kind, const StrategyConfig& config)
      : kind_(kind), config_(config.planner) {
    if (kind == StrategyKind::kStaticHeft) {
      config_.react_to_pool_changes = false;  // plan once, never adapt
      config_.react_to_variance = false;
    }
    // The session environment is the single source of the load profile.
    config_.load = nullptr;
  }

  [[nodiscard]] StrategyKind kind() const override { return kind_; }
  [[nodiscard]] std::string name() const override {
    return kind_ == StrategyKind::kStaticHeft ? "HEFT (static)"
                                              : "AHEFT (adaptive)";
  }

  void launch(SimulationSession& session, const dag::Dag& dag,
              const grid::CostProvider& estimates,
              const grid::CostProvider& actual,
              const LaunchOptions& options, Completion done) override {
    auto owned = std::make_unique<AdaptivePlanner>(
        dag, estimates, actual, session.pool(), config_);
    AdaptivePlanner* planner = owned.get();
    {
      // Launches land concurrently from shard workers and parallel solo
      // baselines; only ownership registration is shared — the planner
      // itself stays confined to the launching thread's shard.
      const std::lock_guard<std::mutex> lock(mutex_);
      launches_.push_back(std::move(owned));
    }
    planner->launch(
        session, options.release,
        [done = std::move(done)](const AdaptiveResult& result) {
          if (done) {
            StrategyOutcome outcome;
            outcome.makespan = result.makespan;
            outcome.evaluations = result.evaluations;
            outcome.adoptions = result.adoptions;
            outcome.restarts = result.restarts;
            outcome.contention_wait = result.contention_wait;
            outcome.max_contention_wait = result.max_contention_wait;
            outcome.revoked_jobs = result.revoked_jobs;
            outcome.lost_work = result.lost_work;
            outcome.checkpoint_overhead = result.checkpoint_overhead;
            outcome.useful_work = result.useful_work;
            outcome.failed = result.failed;
            outcome.failure_reason = result.failure_reason;
            done(outcome);
          }
        },
        options.priority);
  }

 private:
  StrategyKind kind_;
  PlannerConfig config_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<AdaptivePlanner>> launches_;
};

class DynamicDriver final : public StrategyDriver {
 public:
  explicit DynamicDriver(const StrategyConfig& config)
      : heuristic_(config.heuristic),
        contention_aware_(config.planner.contention_aware) {}

  [[nodiscard]] StrategyKind kind() const override {
    return StrategyKind::kDynamic;
  }
  [[nodiscard]] std::string name() const override {
    return to_string(heuristic_) + " (dynamic)";
  }

  void launch(SimulationSession& session, const dag::Dag& dag,
              const grid::CostProvider& /*estimates*/,
              const grid::CostProvider& actual,
              const LaunchOptions& options, Completion done) override {
    auto owned = std::make_unique<DynamicExecution>(
        session, dag, actual, heuristic_, options.priority,
        contention_aware_);
    DynamicExecution* execution = owned.get();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      launches_.push_back(std::move(owned));
    }
    execution->launch(
        options.release,
        [done = std::move(done)](const DynamicRunResult& result) {
          if (done) {
            StrategyOutcome outcome;
            outcome.makespan = result.makespan;
            outcome.evaluations = result.batches;
            outcome.contention_wait = result.contention_wait;
            outcome.max_contention_wait = result.max_contention_wait;
            outcome.failed = result.failed;
            outcome.failure_reason = result.failure_reason;
            done(outcome);
          }
        });
  }

 private:
  DynamicHeuristic heuristic_;
  bool contention_aware_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<DynamicExecution>> launches_;
};

}  // namespace

std::unique_ptr<StrategyDriver> make_strategy_driver(
    StrategyKind kind, const StrategyConfig& config) {
  switch (kind) {
    case StrategyKind::kStaticHeft:
    case StrategyKind::kAdaptiveAheft:
      return std::make_unique<PlannerDriver>(kind, config);
    case StrategyKind::kDynamic:
      return std::make_unique<DynamicDriver>(config);
  }
  throw std::invalid_argument("unknown strategy kind");
}

StrategyOutcome run_strategy(StrategyKind kind, const dag::Dag& dag,
                             const grid::CostProvider& estimates,
                             const grid::CostProvider& actual,
                             const SessionEnvironment& env,
                             const StrategyConfig& config) {
  const std::unique_ptr<StrategyDriver> driver =
      make_strategy_driver(kind, config);
  SimulationSession session(env);
  StrategyOutcome outcome;
  bool completed = false;
  driver->launch(session, dag, estimates, actual, sim::kTimeZero,
                 [&](const StrategyOutcome& result) {
                   outcome = result;
                   completed = true;
                 });
  session.run();
  AHEFT_ASSERT(completed, "strategy run ended with unfinished workflow");
  return outcome;
}

}  // namespace aheft::core
