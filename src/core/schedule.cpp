#include "core/schedule.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"
#include "support/table.h"

namespace aheft::core {

namespace {

const std::vector<Assignment> kEmptyTimeline;

bool overlaps(sim::Time a_start, sim::Time a_end, sim::Time b_start,
              sim::Time b_end) {
  // Half-open intervals; touching endpoints do not overlap. A small
  // tolerance forgives floating-point dust from summed costs.
  return a_start < b_end - sim::kTimeEpsilon &&
         b_start < a_end - sim::kTimeEpsilon;
}

}  // namespace

Schedule::Schedule(std::size_t job_count) : by_job_(job_count) {}

void Schedule::assign(const Assignment& assignment) {
  AHEFT_REQUIRE(assignment.job < by_job_.size(), "job id out of range");
  AHEFT_REQUIRE(assignment.resource != grid::kInvalidResource,
                "assignment must name a resource");
  AHEFT_REQUIRE(sim::time_le(assignment.start, assignment.finish),
                "assignment finishes before it starts");
  AHEFT_REQUIRE(!by_job_[assignment.job].has_value(),
                "job is already assigned");

  auto& slots = by_resource_[assignment.resource];
  for (const Assignment& other : slots) {
    AHEFT_REQUIRE(
        !overlaps(assignment.start, assignment.finish, other.start,
                  other.finish),
        "slot overlaps an existing assignment on the same resource");
  }
  const auto insert_at = std::upper_bound(
      slots.begin(), slots.end(), assignment,
      [](const Assignment& a, const Assignment& b) { return a.start < b.start; });
  slots.insert(insert_at, assignment);
  by_job_[assignment.job] = assignment;
  ++assigned_;
}

bool Schedule::assigned(dag::JobId job) const {
  AHEFT_REQUIRE(job < by_job_.size(), "job id out of range");
  return by_job_[job].has_value();
}

const Assignment& Schedule::assignment(dag::JobId job) const {
  AHEFT_REQUIRE(job < by_job_.size(), "job id out of range");
  AHEFT_REQUIRE(by_job_[job].has_value(), "job is not assigned");
  return *by_job_[job];
}

const std::optional<Assignment>& Schedule::maybe_assignment(
    dag::JobId job) const {
  AHEFT_REQUIRE(job < by_job_.size(), "job id out of range");
  return by_job_[job];
}

const std::vector<Assignment>& Schedule::timeline(
    grid::ResourceId resource) const {
  const auto it = by_resource_.find(resource);
  return it == by_resource_.end() ? kEmptyTimeline : it->second;
}

std::vector<grid::ResourceId> Schedule::used_resources() const {
  std::vector<grid::ResourceId> out;
  for (const auto& [resource, slots] : by_resource_) {
    if (!slots.empty()) {
      out.push_back(resource);
    }
  }
  return out;
}

sim::Time Schedule::makespan() const {
  sim::Time result = sim::kTimeZero;
  for (const auto& assignment : by_job_) {
    if (assignment) {
      result = std::max(result, assignment->finish);
    }
  }
  return result;
}

sim::Time Schedule::earliest_slot(grid::ResourceId resource, sim::Time ready,
                                  sim::Time duration, SlotPolicy policy,
                                  sim::Time not_before, sim::Time deadline,
                                  const AvailabilityView* foreign) const {
  AHEFT_REQUIRE(duration >= 0.0, "duration must be non-negative");
  sim::Time candidate = std::max(ready, not_before);
  const auto it = by_resource_.find(resource);
  // Two monotone push-forward passes — own slots, then foreign busy
  // intervals — iterated to a fixed point: sliding past a foreign window
  // may land the candidate inside a later own slot and vice versa. Each
  // round either stabilizes or strictly advances past an interval
  // endpoint, of which there are finitely many, so the loop terminates.
  // With no foreign view the first pass is already the fixed point and
  // the search is bit-identical to the historical one.
  for (;;) {
    sim::Time advanced = candidate;
    if (it != by_resource_.end()) {
      if (policy == SlotPolicy::kEndOfQueue) {
        for (const Assignment& slot : it->second) {
          advanced = std::max(advanced, slot.finish);
        }
      } else {
        for (const Assignment& slot : it->second) {
          if (advanced + duration <= slot.start + sim::kTimeEpsilon) {
            break;  // fits in the gap before this slot
          }
          advanced = std::max(advanced, slot.finish);
        }
      }
    }
    if (foreign == nullptr) {
      // The own-slot pass alone is already its own fixed point; skip the
      // confirmation round so the contention-blind hot path stays one
      // scan per call.
      candidate = advanced;
      break;
    }
    advanced = foreign->earliest_fit(resource, advanced, duration);
    if (advanced == candidate) {
      break;
    }
    candidate = advanced;
  }
  if (candidate + duration > deadline + sim::kTimeEpsilon) {
    return sim::kTimeInfinity;
  }
  return candidate;
}

std::string Schedule::gantt(const dag::Dag& dag,
                            const grid::ResourcePool& pool) const {
  AsciiTable table({"resource", "timeline (job[start,finish))"});
  for (const auto& [resource, slots] : by_resource_) {
    std::ostringstream row;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (i != 0) {
        row << "  ";
      }
      row << dag.job(slots[i].job).name << "["
          << format_double(slots[i].start, 1) << ","
          << format_double(slots[i].finish, 1) << ")";
    }
    table.add_row({pool.resource(resource).name, row.str()});
  }
  return table.to_string();
}

namespace {

void check_structure(const Schedule& schedule, const dag::Dag& dag,
                     const grid::CostProvider& costs,
                     const grid::ResourcePool& pool, bool with_comm) {
  AHEFT_ASSERT(schedule.job_count() == dag.job_count(),
               "schedule sized for a different DAG");
  for (dag::JobId i = 0; i < dag.job_count(); ++i) {
    AHEFT_ASSERT(schedule.assigned(i),
                 "job " + dag.job(i).name + " is unassigned");
    const Assignment& a = schedule.assignment(i);
    const grid::Resource& r = pool.resource(a.resource);
    AHEFT_ASSERT(sim::time_ge(a.start, r.arrival),
                 dag.job(i).name + " starts before resource " + r.name +
                     " arrives");
    AHEFT_ASSERT(sim::time_le(a.finish, r.departure),
                 dag.job(i).name + " finishes after resource " + r.name +
                     " departs");
    const double w = costs.compute_cost(i, a.resource);
    AHEFT_ASSERT(sim::time_eq(a.duration(), w),
                 dag.job(i).name + " duration does not match its cost");
  }
  // Per-resource slot disjointness (assign() enforces it incrementally;
  // re-check to guard against external construction paths).
  for (const grid::ResourceId r : schedule.used_resources()) {
    const auto& slots = schedule.timeline(r);
    for (std::size_t k = 1; k < slots.size(); ++k) {
      AHEFT_ASSERT(sim::time_le(slots[k - 1].finish, slots[k].start),
                   "overlapping slots on resource");
    }
  }
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const dag::Edge& edge = dag.edges()[e];
    const Assignment& from = schedule.assignment(edge.from);
    const Assignment& to = schedule.assignment(edge.to);
    sim::Time required = from.finish;
    if (with_comm) {
      required += costs.comm_cost(edge, from.resource, to.resource);
    }
    AHEFT_ASSERT(sim::time_ge(to.start, required),
                 dag.job(edge.to).name + " starts before its input from " +
                     dag.job(edge.from).name + " is available");
  }
}

}  // namespace

void validate_structure(const Schedule& schedule, const dag::Dag& dag,
                        const grid::CostProvider& costs,
                        const grid::ResourcePool& pool) {
  check_structure(schedule, dag, costs, pool, /*with_comm=*/false);
}

void validate_static(const Schedule& schedule, const dag::Dag& dag,
                     const grid::CostProvider& costs,
                     const grid::ResourcePool& pool) {
  check_structure(schedule, dag, costs, pool, /*with_comm=*/true);
}

}  // namespace aheft::core
