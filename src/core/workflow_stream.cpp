#include "core/workflow_stream.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "support/assert.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace aheft::core {

namespace {

/// Solo makespan of one instance: the same driver, grid, and release
/// time, but a fresh serial session with no competing workflows. The
/// trace recorder and history repository are NOT shared — the measured
/// stream run must stay the only thing they observe.
sim::Time solo_makespan(const SessionEnvironment& env,
                        StrategyDriver& driver,
                        const WorkflowInstance& instance) {
  SessionEnvironment solo_env = env;
  solo_env.trace = nullptr;
  solo_env.history = nullptr;
  // One workflow has nothing to shard; a serial solo session also keeps
  // the baseline identical whatever the contended run's shard count.
  solo_env.shards = 1;
  solo_env.shard_workers = nullptr;
  SimulationSession session(solo_env);
  sim::Time finish = sim::kTimeZero;
  bool completed = false;
  driver.launch(session, *instance.dag, *instance.estimates,
                *instance.actual,
                LaunchOptions{instance.arrival, instance.priority},
                [&](const StrategyOutcome& outcome) {
                  finish = outcome.makespan;
                  completed = true;
                });
  session.run();
  AHEFT_ASSERT(completed, "solo baseline did not complete");
  return finish - instance.arrival;
}

}  // namespace

StreamOutcome run_workflow_stream(const SessionEnvironment& env,
                                  StrategyDriver& driver,
                                  std::vector<WorkflowInstance> instances,
                                  StreamConfig config) {
  AHEFT_REQUIRE(!instances.empty(), "workflow stream needs >= 1 instance");
  for (const WorkflowInstance& instance : instances) {
    AHEFT_REQUIRE(instance.dag != nullptr && instance.estimates != nullptr &&
                      instance.actual != nullptr,
                  "workflow instance is missing its DAG or cost model");
    AHEFT_REQUIRE(sim::time_le(sim::kTimeZero, instance.arrival),
                  "workflow arrival must be >= 0");
  }

  // Launch in (arrival, insertion) order: the simulator breaks same-time
  // ties by insertion, so the stream is deterministic for a fixed input.
  std::vector<std::size_t> order(instances.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instances[a].arrival < instances[b].arrival;
                   });

  // Resolve the worker pool once: explicit config pool, else the
  // environment's shard pool, else an owned pool for the duration of the
  // call when anything here can use one.
  SessionEnvironment stream_env = env;
  ThreadPool* workers =
      config.workers != nullptr ? config.workers : env.shard_workers;
  std::unique_ptr<ThreadPool> owned_pool;
  const bool wants_workers =
      env.shards > 1 ||
      (config.compute_slowdowns && instances.size() > 1);
  if (workers == nullptr && wants_workers) {
    owned_pool = std::make_unique<ThreadPool>();
    workers = owned_pool.get();
  }
  if (stream_env.shards > 1 && stream_env.shard_workers == nullptr) {
    stream_env.shard_workers = workers;
  }

  SimulationSession session(stream_env);
  StreamOutcome stream;
  stream.workflows.resize(instances.size());
  // Per-instance completion flags instead of one shared counter: shard
  // workers complete disjoint instances concurrently, and disjoint bytes
  // keep the bookkeeping race-free without atomics.
  std::vector<unsigned char> done(instances.size(), 0);
  const std::size_t shards = session.shard_count();
  std::size_t next_shard = 0;
  for (const std::size_t i : order) {
    const WorkflowInstance& instance = instances[i];
    WorkflowResult& slot = stream.workflows[i];
    slot.name = instance.name;
    slot.arrival = instance.arrival;
    auto completion = [&slot, flag = done.data() + i](
                          const StrategyOutcome& outcome) {
      slot.outcome = outcome;
      slot.finish = outcome.makespan;
      slot.makespan = outcome.makespan - slot.arrival;
      slot.wait = outcome.contention_wait;
      slot.max_wait = outcome.max_contention_wait;
      *flag = 1;
    };
    if (shards == 1) {
      // Serial path, unchanged since PR 2: launch directly so the event
      // sequence — and therefore the outcome — is bit-identical to every
      // prior release.
      driver.launch(session, *instance.dag, *instance.estimates,
                    *instance.actual,
                    LaunchOptions{instance.arrival, instance.priority},
                    std::move(completion));
    } else {
      // Sharded path: pin the instance to a home shard (round-robin in
      // launch order — deterministic) and launch it there in a posted
      // event at its arrival, when the launching thread is bound to the
      // shard and session.pool() resolves to the shard's machines.
      const std::size_t home = next_shard;
      next_shard = (next_shard + 1) % shards;
      session.post(home, instance.arrival,
                   [&session, &driver, &instance,
                    completion = std::move(completion)]() mutable {
                     driver.launch(
                         session, *instance.dag, *instance.estimates,
                         *instance.actual,
                         LaunchOptions{instance.arrival, instance.priority},
                         std::move(completion));
                   });
    }
  }
  session.run();
  AHEFT_ASSERT(std::all_of(done.begin(), done.end(),
                           [](unsigned char flag) { return flag != 0; }),
               "stream ended with unfinished workflows");

  if (config.compute_slowdowns) {
    // Each solo run is an independent single-workflow simulation writing
    // only its own slot, so the reduction is order-independent and the
    // fan-out changes nothing but wall time. Failed workflows keep the
    // neutral slowdown 1 — a failure time over a solo makespan prices
    // nothing — and are excluded from the aggregates below anyway.
    parallel_for(workers, instances.size(), [&](std::size_t i) {
      if (stream.workflows[i].outcome.failed) {
        return;
      }
      const sim::Time solo = solo_makespan(env, driver, instances[i]);
      stream.workflows[i].slowdown =
          solo > 0.0 ? stream.workflows[i].makespan / solo : 1.0;
    });
  }

  sim::Time first_arrival = sim::kTimeInfinity;
  sim::Time last_finish = sim::kTimeZero;
  double sum_makespan = 0.0;
  double sum_slowdown = 0.0;
  double sum_wait = 0.0;
  std::vector<double> fairness_basis;
  fairness_basis.reserve(stream.workflows.size());
  for (const WorkflowResult& wf : stream.workflows) {
    first_arrival = std::min(first_arrival, wf.arrival);
    last_finish = std::max(last_finish, wf.finish);
    sum_wait += wf.wait;
    stream.max_wait = std::max(stream.max_wait, wf.wait);
    stream.revoked_jobs += wf.outcome.revoked_jobs;
    stream.lost_work += wf.outcome.lost_work;
    stream.checkpoint_overhead += wf.outcome.checkpoint_overhead;
    stream.useful_work += wf.outcome.useful_work;
    if (wf.outcome.failed) {
      ++stream.failed_workflows;
      continue;  // timing statistics price completed work only
    }
    ++stream.completed_workflows;
    sum_makespan += wf.makespan;
    stream.max_makespan = std::max(stream.max_makespan, wf.makespan);
    sum_slowdown += wf.slowdown;
    stream.max_slowdown = std::max(stream.max_slowdown, wf.slowdown);
    fairness_basis.push_back(config.compute_slowdowns ? wf.slowdown
                                                      : wf.makespan);
  }
  const auto count = static_cast<double>(stream.workflows.size());
  const auto completed = static_cast<double>(stream.completed_workflows);
  stream.span = last_finish - first_arrival;
  stream.throughput = stream.span > 0.0 ? completed / stream.span : 0.0;
  if (stream.completed_workflows > 0) {
    stream.mean_makespan = sum_makespan / completed;
    stream.mean_slowdown = sum_slowdown / completed;
    stream.jain_fairness = jain_fairness_index(fairness_basis);
  }
  stream.mean_wait = sum_wait / count;
  const double spent =
      stream.useful_work + stream.lost_work + stream.checkpoint_overhead;
  stream.goodput = spent > 0.0 ? stream.useful_work / spent : 1.0;
  return stream;
}

}  // namespace aheft::core
