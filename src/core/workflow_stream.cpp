#include "core/workflow_stream.h"

#include <algorithm>
#include <numeric>

#include "support/assert.h"
#include "support/stats.h"

namespace aheft::core {

namespace {

/// Solo makespan of one instance: the same driver, grid, and release
/// time, but a fresh session with no competing workflows. The trace
/// recorder and history repository are NOT shared — the measured stream
/// run must stay the only thing they observe.
sim::Time solo_makespan(const SessionEnvironment& env,
                        StrategyDriver& driver,
                        const WorkflowInstance& instance) {
  SessionEnvironment solo_env = env;
  solo_env.trace = nullptr;
  solo_env.history = nullptr;
  SimulationSession session(solo_env);
  sim::Time finish = sim::kTimeZero;
  bool completed = false;
  driver.launch(session, *instance.dag, *instance.estimates,
                *instance.actual,
                LaunchOptions{instance.arrival, instance.priority},
                [&](const StrategyOutcome& outcome) {
                  finish = outcome.makespan;
                  completed = true;
                });
  session.run();
  AHEFT_ASSERT(completed, "solo baseline did not complete");
  return finish - instance.arrival;
}

}  // namespace

StreamOutcome run_workflow_stream(const SessionEnvironment& env,
                                  StrategyDriver& driver,
                                  std::vector<WorkflowInstance> instances,
                                  StreamConfig config) {
  AHEFT_REQUIRE(!instances.empty(), "workflow stream needs >= 1 instance");
  for (const WorkflowInstance& instance : instances) {
    AHEFT_REQUIRE(instance.dag != nullptr && instance.estimates != nullptr &&
                      instance.actual != nullptr,
                  "workflow instance is missing its DAG or cost model");
    AHEFT_REQUIRE(sim::time_le(sim::kTimeZero, instance.arrival),
                  "workflow arrival must be >= 0");
  }

  // Launch in (arrival, insertion) order: the simulator breaks same-time
  // ties by insertion, so the stream is deterministic for a fixed input.
  std::vector<std::size_t> order(instances.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instances[a].arrival < instances[b].arrival;
                   });

  SimulationSession session(env);
  StreamOutcome stream;
  stream.workflows.resize(instances.size());
  std::size_t completed = 0;
  for (const std::size_t i : order) {
    const WorkflowInstance& instance = instances[i];
    WorkflowResult& slot = stream.workflows[i];
    slot.name = instance.name;
    slot.arrival = instance.arrival;
    driver.launch(session, *instance.dag, *instance.estimates,
                  *instance.actual,
                  LaunchOptions{instance.arrival, instance.priority},
                  [&slot, &completed](const StrategyOutcome& outcome) {
                    slot.outcome = outcome;
                    slot.finish = outcome.makespan;
                    slot.makespan = outcome.makespan - slot.arrival;
                    slot.wait = outcome.contention_wait;
                    slot.max_wait = outcome.max_contention_wait;
                    ++completed;
                  });
  }
  session.run();
  AHEFT_ASSERT(completed == instances.size(),
               "stream ended with unfinished workflows");

  if (config.compute_slowdowns) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const sim::Time solo = solo_makespan(env, driver, instances[i]);
      stream.workflows[i].slowdown =
          solo > 0.0 ? stream.workflows[i].makespan / solo : 1.0;
    }
  }

  sim::Time first_arrival = sim::kTimeInfinity;
  sim::Time last_finish = sim::kTimeZero;
  double sum_makespan = 0.0;
  double sum_slowdown = 0.0;
  double sum_wait = 0.0;
  std::vector<double> fairness_basis;
  fairness_basis.reserve(stream.workflows.size());
  for (const WorkflowResult& wf : stream.workflows) {
    first_arrival = std::min(first_arrival, wf.arrival);
    last_finish = std::max(last_finish, wf.finish);
    sum_makespan += wf.makespan;
    stream.max_makespan = std::max(stream.max_makespan, wf.makespan);
    sum_slowdown += wf.slowdown;
    stream.max_slowdown = std::max(stream.max_slowdown, wf.slowdown);
    sum_wait += wf.wait;
    stream.max_wait = std::max(stream.max_wait, wf.wait);
    fairness_basis.push_back(config.compute_slowdowns ? wf.slowdown
                                                      : wf.makespan);
  }
  const auto count = static_cast<double>(stream.workflows.size());
  stream.span = last_finish - first_arrival;
  stream.throughput = stream.span > 0.0 ? count / stream.span : 0.0;
  stream.mean_makespan = sum_makespan / count;
  stream.mean_slowdown = sum_slowdown / count;
  stream.mean_wait = sum_wait / count;
  stream.jain_fairness = jain_fairness_index(fairness_basis);
  return stream;
}

}  // namespace aheft::core
