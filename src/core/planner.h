// The Planner (paper Fig. 1) and the generic adaptive rescheduling loop
// (paper Fig. 2): schedule, listen for events, evaluate, adopt when the
// predicted makespan improves.
//
// The planner runs in one of two forms:
//  - run(): the classic one-call co-simulation — builds a private
//    SimulationSession from the constructor arguments and drives it to
//    completion.
//  - launch(): event-driven — plans at a release time inside a shared
//    session (whose environment supersedes the constructor's trace /
//    history / load arguments) and fires a completion callback on the
//    session clock, so many workflows can share one simulator and one
//    contended pool.
#ifndef AHEFT_CORE_PLANNER_H_
#define AHEFT_CORE_PLANNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/execution_engine.h"
#include "core/policies.h"
#include "core/schedule.h"
#include "core/session.h"
#include "grid/cost_provider.h"
#include "grid/history.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"

namespace aheft::core {

/// One evaluated event (a row of the planner's decision log).
struct AdoptionRecord {
  sim::Time time = sim::kTimeZero;
  std::string event;                        ///< what triggered evaluation
  sim::Time current_makespan = sim::kTimeZero;   ///< S0's predicted makespan
  sim::Time candidate_makespan = sim::kTimeZero; ///< S1's predicted makespan
  bool adopted = false;
  bool forced = false;  ///< adoption was mandatory (resource loss)
  /// Contention-aware passes only: the session clock at which the
  /// availability view feeding this evaluation was snapshotted. The
  /// planner's freshness contract is view_snapshot == time — every
  /// evaluation re-snapshots, never reuses an earlier picture. Negative
  /// when the pass ran contention-blind (no view was taken).
  sim::Time view_snapshot = -1.0;
};

struct PlannerConfig {
  SchedulerConfig scheduler;
  /// React to resource-pool change events (the paper's primary trigger).
  bool react_to_pool_changes = true;
  /// React to performance-variance events from the Performance Monitor
  /// (extension; pairs with a noisy/history predictor).
  bool react_to_variance = false;
  /// Relative |actual - estimate| / estimate beyond which the monitor
  /// notifies the planner.
  double variance_threshold = 0.2;
  /// Time-varying effective cost scaling the executor realizes (trace /
  /// volatility scenarios); the planner keeps estimating with nominal
  /// costs. Must outlive the run. Null means nominal. Only consulted by
  /// run(); in launch() mode the session environment's profile wins.
  const grid::LoadProfile* load = nullptr;
  /// Contention-aware planning: every (re)planning pass snapshots the
  /// session ledger's foreign busy picture (competitors' committed
  /// windows + held claims) into an AvailabilityView and fits EST
  /// searches into its free gaps, so plans price the machines' real
  /// reservation timelines instead of an empty grid. A fresh snapshot is
  /// taken at release time and at every re-evaluation (recorded per
  /// decision in AdoptionRecord::view_snapshot). Off by default: the
  /// contention-blind pass stays bit-identical, and solo sessions always
  /// snapshot an empty (constraint-free) view anyway.
  bool contention_aware = false;
};

/// Result of a full planner+executor co-simulation.
struct AdaptiveResult {
  sim::Time makespan = sim::kTimeZero;       ///< realized (executor clock)
  sim::Time initial_makespan = sim::kTimeZero;  ///< the release-time plan
  std::size_t evaluations = 0;               ///< events evaluated
  std::size_t adoptions = 0;                 ///< reschedules submitted
  std::size_t restarts = 0;                  ///< running jobs restarted
  /// Cross-workflow machine wait imposed by the session's contention
  /// policy (zero for uncontended runs).
  double contention_wait = 0.0;
  double max_contention_wait = 0.0;
  /// Resilience accounting (see ExecutionEngine): revocations absorbed,
  /// nominal machine-seconds redone / spent on checkpoints / retained.
  std::size_t revoked_jobs = 0;
  double lost_work = 0.0;
  double checkpoint_overhead = 0.0;
  double useful_work = 0.0;
  /// The workflow failed terminally (departure under DepartureAction::
  /// kFail, the revocation cap, or no machine left to requeue on);
  /// `makespan` is then the failure time and the schedule the last plan.
  bool failed = false;
  std::string failure_reason;
  Schedule final_schedule;
  std::vector<AdoptionRecord> decisions;
};

/// Couples one Scheduler instance with the Executor for a single DAG and
/// runs the event loop of Fig. 2 to completion.
class AdaptivePlanner {
 public:
  /// `estimates` is the Planner's view (the Predictor output P);
  /// `actual` is what the simulated grid really does. They coincide under
  /// the paper's accuracy assumption.
  AdaptivePlanner(const dag::Dag& dag, const grid::CostProvider& estimates,
                  const grid::CostProvider& actual,
                  const grid::ResourcePool& pool, PlannerConfig config = {},
                  sim::TraceRecorder* trace = nullptr,
                  grid::PerformanceHistoryRepository* history = nullptr);

  /// Runs the co-simulation to completion and returns the outcome.
  [[nodiscard]] AdaptiveResult run();

  using Completion = std::function<void(const AdaptiveResult&)>;

  /// Event-driven form: schedules the initial plan at `release` (>= the
  /// session clock) inside `session` and subscribes to its event feeds;
  /// `done` fires on the session clock when the workflow completes. The
  /// session environment supplies the pool (must be the constructor's),
  /// trace recorder, load profile, and history repository. `priority` is
  /// the workflow's weight under the session's contention policy. The
  /// planner must outlive the session's run.
  void launch(SimulationSession& session, sim::Time release,
              Completion done, double priority = 1.0);

 private:
  void start();  ///< release-time event: initial plan + subscriptions
  void evaluate(const std::string& reason, bool forced);
  void finish();

  const dag::Dag& dag_;
  const grid::CostProvider& estimates_;
  const grid::CostProvider& actual_;
  const grid::ResourcePool& pool_;
  PlannerConfig config_;
  sim::TraceRecorder* trace_;
  grid::PerformanceHistoryRepository* history_;

  SimulationSession* session_ = nullptr;
  std::unique_ptr<ExecutionEngine> engine_;
  sim::Time release_ = sim::kTimeZero;
  double priority_ = 1.0;
  Completion done_;
  bool completed_ = false;

  sim::Time predicted_makespan_ = sim::kTimeZero;
  AdaptiveResult result_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_PLANNER_H_
