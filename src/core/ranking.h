// Upward/downward rank computation (paper Eq. 5–6, after [19]).
#ifndef AHEFT_CORE_RANKING_H_
#define AHEFT_CORE_RANKING_H_

#include <span>
#include <vector>

#include "dag/dag.h"
#include "grid/cost_provider.h"

namespace aheft::core {

/// ranku(n_i) = \bar{w}_i + max_{n_j in succ(n_i)} (\bar{c}_{i,j} +
/// ranku(n_j)); exit jobs have ranku = \bar{w}. Averages are taken over
/// `resources` (the currently visible set).
[[nodiscard]] std::vector<double> upward_ranks(
    const dag::Dag& dag, const grid::CostProvider& costs,
    std::span<const grid::ResourceId> resources);

/// rankd(n_i) = max_{n_j in pred(n_i)} (rankd(n_j) + \bar{w}_j +
/// \bar{c}_{j,i}); entry jobs have rankd = 0. Provided for completeness
/// (CPOP-style analyses and tests).
[[nodiscard]] std::vector<double> downward_ranks(
    const dag::Dag& dag, const grid::CostProvider& costs,
    std::span<const grid::ResourceId> resources);

/// Job ids sorted by non-increasing rank; ties break toward the smaller
/// job id so the order is deterministic.
[[nodiscard]] std::vector<dag::JobId> rank_order(
    const std::vector<double>& ranks);

}  // namespace aheft::core

#endif  // AHEFT_CORE_RANKING_H_
