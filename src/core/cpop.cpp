#include "core/cpop.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/ranking.h"
#include "core/rescheduler.h"
#include "support/assert.h"

namespace aheft::core {

namespace {

bool nearly_equal(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-9 * scale;
}

}  // namespace

std::vector<dag::JobId> cpop_critical_path(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    std::span<const grid::ResourceId> resources) {
  const std::vector<double> up = upward_ranks(dag, estimates, resources);
  const std::vector<double> down = downward_ranks(dag, estimates, resources);
  double best = 0.0;
  for (dag::JobId i = 0; i < dag.job_count(); ++i) {
    best = std::max(best, up[i] + down[i]);
  }
  std::vector<dag::JobId> path;
  for (const dag::JobId i : dag.topological_order()) {
    if (nearly_equal(up[i] + down[i], best)) {
      path.push_back(i);
    }
  }
  return path;
}

Schedule cpop_schedule(const dag::Dag& dag,
                       const grid::CostProvider& estimates,
                       const grid::ResourcePool& pool, SchedulerConfig config,
                       sim::Time clock, const AvailabilityView* availability) {
  const std::vector<grid::ResourceId> resources = pool.available_at(clock);
  AHEFT_REQUIRE(!resources.empty(), "CPOP needs at least one resource");

  const std::vector<double> up = upward_ranks(dag, estimates, resources);
  const std::vector<double> down = downward_ranks(dag, estimates, resources);

  // Critical path and its dedicated processor.
  const std::vector<dag::JobId> critical =
      cpop_critical_path(dag, estimates, resources);
  std::vector<bool> on_cp(dag.job_count(), false);
  for (const dag::JobId i : critical) {
    on_cp[i] = true;
  }
  grid::ResourceId cp_resource = resources.front();
  double cp_cost = std::numeric_limits<double>::infinity();
  for (const grid::ResourceId r : resources) {
    double total = 0.0;
    for (const dag::JobId i : critical) {
      total += estimates.compute_cost(i, r);
    }
    if (total < cp_cost) {
      cp_cost = total;
      cp_resource = r;
    }
  }

  // Priority queue of ready jobs by ranku + rankd (ties: smaller id).
  const auto priority = [&](dag::JobId i) { return up[i] + down[i]; };
  const auto cmp = [&](dag::JobId a, dag::JobId b) {
    if (!nearly_equal(priority(a), priority(b))) {
      return priority(a) < priority(b);  // max-heap on priority
    }
    return a > b;
  };
  std::priority_queue<dag::JobId, std::vector<dag::JobId>, decltype(cmp)>
      ready(cmp);
  std::vector<std::uint32_t> pending(dag.job_count(), 0);
  for (dag::JobId i = 0; i < dag.job_count(); ++i) {
    pending[i] = static_cast<std::uint32_t>(dag.in_edges(i).size());
    if (pending[i] == 0) {
      ready.push(i);
    }
  }

  RescheduleRequest request;  // reused for FEA (initial-schedule semantics)
  request.dag = &dag;
  request.estimates = &estimates;
  request.pool = &pool;
  request.resources = resources;
  request.clock = clock;
  request.config = config;
  request.availability = availability;

  Schedule result(dag.job_count());
  while (!ready.empty()) {
    const dag::JobId job = ready.top();
    ready.pop();

    grid::ResourceId best_resource = grid::kInvalidResource;
    sim::Time best_finish = sim::kTimeInfinity;
    sim::Time best_start = sim::kTimeInfinity;
    // Critical-path jobs are pinned to the CP processor; others pick the
    // EFT-minimising resource.
    std::vector<grid::ResourceId> candidates;
    if (on_cp[job]) {
      candidates.push_back(cp_resource);
    } else {
      candidates = resources;
    }
    const auto search = [&](const AvailabilityView* view) {
      for (const grid::ResourceId r : candidates) {
        const grid::Resource& machine = pool.resource(r);
        sim::Time ready_time = sim::kTimeZero;
        for (const std::uint32_t e : dag.in_edges(job)) {
          ready_time =
              std::max(ready_time, file_available(request, e, r, result));
        }
        const double w = estimates.compute_cost(job, r);
        const sim::Time start = result.earliest_slot(
            r, ready_time, w, config.slot_policy,
            std::max(clock, machine.arrival), machine.departure, view);
        if (start == sim::kTimeInfinity) {
          continue;
        }
        if (best_resource == grid::kInvalidResource ||
            (start + w < best_finish &&
             !sim::time_eq(start + w, best_finish))) {
          best_resource = r;
          best_start = start;
          best_finish = start + w;
        }
      }
    };
    search(availability);
    if (best_resource == grid::kInvalidResource && availability != nullptr) {
      // Same degradation as the AHEFT pass: when foreign load fills every
      // candidate's remaining window, fall back to the blind estimate
      // (held claims are displaceable) instead of aborting.
      search(nullptr);
    }
    AHEFT_ASSERT(best_resource != grid::kInvalidResource,
                 "no feasible resource for job " + dag.job(job).name);
    result.assign(Assignment{job, best_resource, best_start, best_finish});

    for (const std::uint32_t e : dag.out_edges(job)) {
      const dag::JobId succ = dag.edges()[e].to;
      if (--pending[succ] == 0) {
        ready.push(succ);
      }
    }
  }
  return result;
}

}  // namespace aheft::core
