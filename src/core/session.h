// SimulationSession: the shared home of one simulated experiment.
//
// Historically each strategy entry point built its own simulator, wired
// its own subset of the environment (only two accepted a LoadProfile,
// only AHEFT accepted a history repository), and ran one DAG to
// completion. The session inverts that: it owns the simulator clock and
// the full environment — resource pool, load profile, trace recorder,
// performance-history repository — and every strategy driver plugs into
// it, so all strategies get identical plumbing by construction.
//
// The session also arbitrates cross-workflow resource contention through
// an explicit acquisition API: before a participant occupies a machine it
// requests the slot (acquire), the session's ContentionPolicy grants a
// start time, and the participant commits the grant when the job actually
// starts. The policy decides grant order — FCFS (the default, identical
// to the historical first-pump-wins behavior), strict priorities, or
// weighted fair share — and the session keeps per-participant wait
// statistics so starvation is measurable. A single-workflow session has
// exactly one participant and behaves identically under every policy.
#ifndef AHEFT_CORE_SESSION_H_
#define AHEFT_CORE_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/contention_policy.h"
#include "grid/history.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::core {

/// Everything a strategy run observes about the simulated grid. The pool
/// is mandatory; the optional members default to "absent" (nominal costs,
/// no trace, no history). All pointers must outlive the session.
struct SessionEnvironment {
  const grid::ResourcePool* pool = nullptr;
  /// Time-varying effective cost scaling the executors realize; null
  /// means nominal costs.
  const grid::LoadProfile* load = nullptr;
  sim::TraceRecorder* trace = nullptr;
  grid::PerformanceHistoryRepository* history = nullptr;
  /// ContentionPolicyRegistry name of the machine-contention arbitration
  /// ("fcfs", "priority", "fair-share", or a custom registration); empty
  /// falls back to FCFS. Each session builds its own policy instance —
  /// policies carry per-session state such as fair-share usage.
  std::string contention_policy = "fcfs";
};

/// One workflow execution sharing the session's machines. Participants
/// expose how long they have a resource booked (the committed picture)
/// and route every new occupation through acquire/commit so the session's
/// contention policy controls the grant order.
class SessionParticipant {
 public:
  virtual ~SessionParticipant() = default;

  /// Latest simulation time up to which this participant occupies
  /// `resource`; values at or before the current clock mean "free".
  [[nodiscard]] virtual sim::Time busy_until(
      grid::ResourceId resource) const = 0;

  /// The session's contention picture for `resource` moved in a way that
  /// may allow an earlier grant (a competing request committed or was
  /// withdrawn): re-evaluate pending work. Delivered in a fresh simulator
  /// event, never re-entrantly. Default is a no-op — participants that
  /// never wait on grants (just-in-time executors) ignore it.
  virtual void contention_changed(grid::ResourceId resource);

  /// Completion time of the participant's release-time plan on the
  /// session clock — the scale of the workflow absent competition. The
  /// fair-share policy normalizes each workflow's delay by this scale
  /// (stretch fairness), so short workflows are not crushed by waits that
  /// barely register for long ones. kTimeZero means unknown (default);
  /// such a workflow never displaces competitors.
  [[nodiscard]] virtual sim::Time planned_finish() const;
};

/// Cross-workflow wait bookkeeping of one participant: how long its
/// committed acquisitions were delayed beyond their first-feasible start.
struct ContentionStats {
  double total_wait = 0.0;
  double max_wait = 0.0;
  std::size_t grants = 0;
};

class SimulationSession {
 public:
  explicit SimulationSession(const SessionEnvironment& env);
  ~SimulationSession();

  SimulationSession(const SimulationSession&) = delete;
  SimulationSession& operator=(const SimulationSession&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] const grid::ResourcePool& pool() const noexcept {
    return *env_.pool;
  }
  [[nodiscard]] const grid::LoadProfile* load() const noexcept {
    return env_.load;
  }
  [[nodiscard]] sim::TraceRecorder* trace() const noexcept {
    return env_.trace;
  }
  [[nodiscard]] grid::PerformanceHistoryRepository* history() const noexcept {
    return env_.history;
  }
  [[nodiscard]] const SessionEnvironment& environment() const noexcept {
    return env_;
  }
  [[nodiscard]] const ContentionPolicy& policy() const noexcept {
    return *policy_;
  }

  /// Registers an executing workflow for contention arbitration with its
  /// priority / fair-share weight (must be positive). The participant
  /// must stay alive for as long as the simulator runs; registering the
  /// same participant twice is a no-op (the first priority wins).
  void add_participant(SessionParticipant* participant,
                       double priority = 1.0);

  /// Registers (or refreshes) `self`'s pending acquisition of `resource`
  /// and returns the start time the contention policy grants: `ready` is
  /// the earliest start feasible for the participant itself, `duration`
  /// the projected run length, `tag` identifies the work behind the
  /// request (engines pass the job id) so a request withdrawn by a
  /// reschedule and re-registered for the same work keeps its wait
  /// baseline. A grant at or before `ready` means "start now"; a later
  /// grant tells the caller when to retry — the pending request stays
  /// registered so competing grants see it.
  [[nodiscard]] sim::Time acquire(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration, std::uint64_t tag = 0);

  /// What acquire would currently grant, without registering a request or
  /// touching any state. Decision heuristics use this to price candidate
  /// placements under the active policy.
  [[nodiscard]] sim::Time peek(const SessionParticipant* self,
                               grid::ResourceId resource, sim::Time ready,
                               double duration) const;

  /// `self` started running its granted request on `resource` over
  /// [start, end): clears the pending request, feeds the policy's usage
  /// accounting, and records the wait metrics (start minus the request's
  /// first-feasible time).
  void commit(const SessionParticipant* self, grid::ResourceId resource,
              sim::Time start, sim::Time end);

  /// Drops every pending request of `self` (a reschedule invalidated its
  /// queue heads); the requests re-register on the next acquire.
  void withdraw_all(const SessionParticipant* self);

  /// Latest committed booking of any participant other than `self` on
  /// `resource`. kTimeZero when uncontended (callers clamp with the
  /// current clock). This is the FCFS floor every policy builds on.
  [[nodiscard]] sim::Time contended_until(const SessionParticipant* self,
                                          grid::ResourceId resource) const;

  /// Wait bookkeeping accumulated for `participant`'s committed grants;
  /// zeros for an unregistered participant.
  [[nodiscard]] ContentionStats contention_stats(
      const SessionParticipant* participant) const;

  [[nodiscard]] std::size_t participant_count() const noexcept {
    return participants_.size();
  }

  /// Drains the event set; returns the final clock value.
  sim::Time run() { return simulator_.run(); }

 private:
  struct ParticipantRecord {
    SessionParticipant* participant = nullptr;
    double priority = 1.0;
    /// First acquisition's ready time (~ the workflow's release); the
    /// base of fair-share rate normalization. Negative until then.
    sim::Time active_since = -1.0;
    ContentionStats stats;
  };

  /// Registration index of `participant`; throws when unregistered.
  [[nodiscard]] std::size_t index_of(
      const SessionParticipant* participant) const;

  [[nodiscard]] sim::Time grant_for(const ContentionRequest& request,
                                    const SessionParticipant* self,
                                    const std::vector<ContentionRequest>&
                                        pending) const;

  /// Wakes every pending requester of `resource` except `self` in fresh
  /// simulator events (skipped when the policy's grants cannot move
  /// earlier on commits/withdrawals).
  void notify_pending(grid::ResourceId resource,
                      const SessionParticipant* self);

  SessionEnvironment env_;
  sim::Simulator simulator_;
  std::unique_ptr<ContentionPolicy> policy_;
  std::vector<ParticipantRecord> participants_;
  /// Pending acquisition requests per resource, registration order; at
  /// most one entry per participant per resource.
  std::map<grid::ResourceId, std::vector<ContentionRequest>> pending_;
  /// first_ready of requests withdrawn before committing, by
  /// (participant, tag): a re-registration for the same work resumes
  /// the wait clock instead of restarting it, so reschedules cannot
  /// erase contention wait already endured.
  std::map<std::pair<std::size_t, std::uint64_t>, sim::Time>
      carried_first_ready_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_SESSION_H_
