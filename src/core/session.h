// SimulationSession: the shared home of one simulated experiment.
//
// Historically each strategy entry point built its own simulator, wired
// its own subset of the environment (only two accepted a LoadProfile,
// only AHEFT accepted a history repository), and ran one DAG to
// completion. The session inverts that: it owns the simulator clock and
// the full environment — resource pool, load profile, trace recorder,
// performance-history repository — and every strategy driver plugs into
// it, so all strategies get identical plumbing by construction.
//
// The session also arbitrates cross-workflow resource contention, and
// every piece of that arbitration reads and writes one structure: the
// session-owned core::ResourceLedger, a per-resource timeline of
// reservations (pending → held → committed/withdrawn). acquire / peek /
// commit / withdraw_all are thin views over the ledger; the session's
// ContentionPolicy orders the ledger's queues (FCFS — the default,
// identical to the historical first-pump-wins behavior — strict
// priorities, or weighted fair share); per-resource ledger wakeups wake
// exactly the workflows queued on a machine when its picture moves; and
// an optional backfill pass (SessionEnvironment::backfill) grants a
// later-queued ready job a hole in a timeline when it provably cannot
// delay any earlier reservation. The session keeps per-participant wait
// statistics so starvation is measurable. A single-workflow session has
// exactly one participant and behaves identically under every policy.
//
// Sharding (SessionEnvironment::shards > 1): the session partitions the
// resource universe across N `sim::ShardedSimulator` shards and gives
// each shard a private copy of everything mutable — ledger, contention
// policy, participant table, and a masked resource pool in which foreign
// machines never arrive. Participants are pinned to the shard whose
// binding was active when they registered (bind_shard), and may only
// touch resources of that shard — enforced at acquire time — so the hot
// path takes no locks and a fixed shard count replays bit-identically.
// Every accessor below (simulator(), pool(), ledger(), ...) resolves to
// the calling thread's bound shard; with one shard the session is
// exactly the historical serial session.
#ifndef AHEFT_CORE_SESSION_H_
#define AHEFT_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/contention_policy.h"
#include "core/resource_ledger.h"
#include "grid/history.h"
#include "resilience/revocation.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft {
class ThreadPool;
}  // namespace aheft

namespace aheft::core {

/// How resources map to shards. Contiguous blocks keep machine clusters
/// (which benches and scenarios typically build in id order) on one
/// shard; hashing spreads adjacent ids across shards.
enum class ShardAssignment {
  kContiguousBlocks,
  kHashed,
};

/// Everything a strategy run observes about the simulated grid. The pool
/// is mandatory; the optional members default to "absent" (nominal costs,
/// no trace, no history). All pointers must outlive the session.
struct SessionEnvironment {
  const grid::ResourcePool* pool = nullptr;
  /// Time-varying effective cost scaling the executors realize; null
  /// means nominal costs. Shared read-only across shards (LoadProfile
  /// holds no caches).
  const grid::LoadProfile* load = nullptr;
  sim::TraceRecorder* trace = nullptr;
  grid::PerformanceHistoryRepository* history = nullptr;
  /// ContentionPolicyRegistry name of the machine-contention arbitration
  /// ("fcfs", "priority", "fair-share", or a custom registration); empty
  /// falls back to FCFS. Each session builds its own policy instance —
  /// policies carry per-session state such as fair-share usage.
  std::string contention_policy = "fcfs";
  /// Cross-workflow backfilling: when a policy defers a request, grant it
  /// a hole in the resource's ledger timeline instead if occupying the
  /// hole provably cannot delay any other reservation. Off by default —
  /// backfilled grants change the FCFS event stream, and PR-over-PR
  /// bit-stability of the default configuration is a feature. Ignored
  /// under a load profile: backfill needs duration certainty to prove a
  /// hole fits, and load-stretched run times void that proof.
  bool backfill = false;
  /// Parallel shards for the event loop (clamped to the universe size so
  /// every shard owns at least one machine). 1 — the default — is the
  /// serial session, bit-identical to every prior PR. More than one
  /// composes with trace and history: each shard writes a private
  /// stamped sink (lock-free, drain-thread-only) that the session merges
  /// into the shared recorder/repository at every tick barrier in
  /// deterministic (time, origin shard, origin seq) order, so the merged
  /// sinks are byte-identical run to run at a fixed shard count — and
  /// byte-identical to the serial session at shards=1.
  std::size_t shards = 1;
  ShardAssignment shard_assignment = ShardAssignment::kContiguousBlocks;
  /// Workers the epoch barriers fan out on; null drains shards inline on
  /// the calling thread (deterministic either way). Must outlive run().
  ThreadPool* shard_workers = nullptr;
  /// Epoch-width policy for the tick barriers (fixed floor + optional
  /// adaptive lookahead); the default is the historical width=0 behavior.
  /// Ignored at shards=1 (the serial fast path has no epochs).
  sim::EpochConfig epoch;
  /// Resilience: checkpoint/restart model, the departure action, and
  /// fair-share preemption (see resilience/checkpoint_model.h). The
  /// default config is inactive and leaves every simulated event
  /// bit-identical to the pre-resilience behavior.
  resilience::ResilienceConfig resilience;
};

/// One workflow execution sharing the session's machines. All of a
/// participant's machine state lives in the session's ResourceLedger
/// (routed through acquire/commit), so the interface is only the
/// callbacks the session pushes back: wakeups and the fair-share scale.
class SessionParticipant {
 public:
  virtual ~SessionParticipant() = default;

  /// The ledger's picture of `resource` moved in a way that may allow an
  /// earlier grant (a competing entry committed, was withdrawn, or was
  /// truncated): re-evaluate pending work. Delivered in a fresh simulator
  /// event, never re-entrantly, and only to participants queued on the
  /// resource. Default is a no-op.
  virtual void contention_changed(grid::ResourceId resource);

  /// Completion time of the participant's release-time plan on the
  /// session clock — the scale of the workflow absent competition. The
  /// fair-share policy normalizes each workflow's delay by this scale
  /// (stretch fairness), so short workflows are not crushed by waits that
  /// barely register for long ones. kTimeZero means unknown (default);
  /// such a workflow never displaces competitors.
  [[nodiscard]] virtual sim::Time planned_finish() const;

  /// The session revokes the participant's *committed, running* work
  /// `tag` on `resource` (fair-share preemption chose it as the victim).
  /// An implementation checkpoints-or-kills the job, truncates its
  /// ledger window, and requeues the remainder through the normal
  /// acquire/commit lifecycle. Returns whether the work was actually
  /// revoked; the default declines (the participant cannot restart).
  /// Delivered in a fresh simulator event, never re-entrantly.
  virtual bool revoke_committed(grid::ResourceId resource, std::uint64_t tag);
};

/// Cross-workflow wait bookkeeping of one participant: how long its
/// committed acquisitions were delayed beyond their first-feasible start.
struct ContentionStats {
  double total_wait = 0.0;
  double max_wait = 0.0;
  std::size_t grants = 0;
};

class SimulationSession {
 public:
  explicit SimulationSession(const SessionEnvironment& env);
  ~SimulationSession();

  SimulationSession(const SimulationSession&) = delete;
  SimulationSession& operator=(const SimulationSession&) = delete;

  /// The event loop of the calling thread's shard (shard 0 when the
  /// thread is unbound, which is every serial caller).
  [[nodiscard]] sim::Simulator& simulator() noexcept {
    return sharded_.current();
  }
  /// The machines the calling thread's shard may use. Serial sessions
  /// see the environment pool itself; sharded sessions see a masked copy
  /// (same universe, same ids, foreign machines never arrive) so every
  /// planner and engine naturally stays inside its partition.
  [[nodiscard]] const grid::ResourcePool& pool() const noexcept;
  [[nodiscard]] const grid::LoadProfile* load() const noexcept {
    return env_.load;
  }
  /// The calling shard's trace sink. Serial sessions hand out the
  /// environment recorder itself; sharded sessions hand out the shard's
  /// private stamped sink, merged into the environment recorder at tick
  /// barriers. Engines capture this on their home shard, so per-shard
  /// resolution is transparent to every call site.
  [[nodiscard]] sim::TraceRecorder* trace() const noexcept;
  /// The calling shard's history repository (the shard's private delta in
  /// a sharded session; reads fall through to the environment repository,
  /// writes merge at barriers). Same capture discipline as trace().
  [[nodiscard]] grid::PerformanceHistoryRepository* history() const noexcept;
  [[nodiscard]] const SessionEnvironment& environment() const noexcept {
    return env_;
  }
  /// The calling shard's arbitration policy instance.
  [[nodiscard]] const ContentionPolicy& policy() const noexcept;
  /// The calling shard's reservation ledger (read-only; mutate it through
  /// acquire/commit/withdraw so policy hooks and wakeups stay coherent).
  [[nodiscard]] const ResourceLedger& ledger() const noexcept;
  /// Whether just-in-time dispatch should reserve→commit in two phases
  /// under the active policy (see ContentionPolicy::two_phase_dynamic).
  [[nodiscard]] bool two_phase_dynamic() const;

  // ---- Sharding ----

  /// Effective shard count (environment request clamped to the universe).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return sharded_.shard_count();
  }
  /// The shard owning `resource` under the environment's assignment.
  [[nodiscard]] std::size_t shard_of(grid::ResourceId resource) const;
  /// Binds the calling thread to shard `s` until the returned guard
  /// dies. Setup code uses this to construct participants on their home
  /// shard; during run() the epoch drains bind each worker themselves.
  [[nodiscard]] sim::ShardedSimulator::ShardBinding bind_shard(
      std::size_t s) {
    return sim::ShardedSimulator::ShardBinding(sharded_, s);
  }
  /// Schedules `action` on shard `target` at absolute time `when`.
  /// Cross-shard posts made during run() are exchanged at the next tick
  /// barrier in deterministic (time, origin, sequence) order.
  void post(std::size_t target, sim::Time when,
            sim::EventQueue::Action action) {
    sharded_.post(target, when, std::move(action));
  }
  /// The sharded kernel, for run statistics (epochs, staging volume).
  [[nodiscard]] const sim::ShardedSimulator& sharded() const noexcept {
    return sharded_;
  }
  /// Events executed across every shard.
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return sharded_.executed_events();
  }

  /// Registers an executing workflow for contention arbitration with its
  /// priority / fair-share weight (must be positive). The participant
  /// joins the calling thread's shard and must only ever acquire that
  /// shard's resources. It must stay alive for as long as the simulator
  /// runs; registering the same participant twice on one shard is a
  /// no-op (the first priority wins).
  void add_participant(SessionParticipant* participant,
                       double priority = 1.0);

  /// Registers (or refreshes) a pending ledger entry for `self`'s work
  /// `tag` on `resource` and returns the start time the contention policy
  /// grants: `ready` is the earliest start feasible for the participant
  /// itself, `duration` the projected run length, `tag` identifies the
  /// work behind the request (engines pass the job id) so a request
  /// withdrawn by a reschedule and re-registered for the same work keeps
  /// its wait baseline. A grant at or before `ready` means "start now"; a
  /// later grant tells the caller when to retry — the entry stays queued
  /// so competing grants see it.
  [[nodiscard]] sim::Time acquire(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration, std::uint64_t tag = 0);

  /// What acquire would currently grant, without registering an entry or
  /// touching any state. Decision heuristics use this to price candidate
  /// placements under the active policy.
  [[nodiscard]] sim::Time peek(const SessionParticipant* self,
                               grid::ResourceId resource, sim::Time ready,
                               double duration) const;

  /// Two-phase dispatch: `self` accepts the grant for work `tag` but will
  /// occupy the machine later — the ledger entry turns held, staying
  /// visible (and displaceable) until the commit.
  void hold(const SessionParticipant* self, grid::ResourceId resource,
            std::uint64_t tag, sim::Time granted_start);

  /// `self` started running work `tag` on `resource` over [start, end):
  /// commits the ledger entry, feeds the policy's usage accounting, and
  /// records the wait metrics (start minus the entry's first-feasible
  /// time).
  void commit(const SessionParticipant* self, grid::ResourceId resource,
              std::uint64_t tag, sim::Time start, sim::Time end);

  /// Drops every queued entry of `self` (a reschedule invalidated its
  /// queue heads); the entries re-register on the next acquire with
  /// their wait baselines preserved.
  void withdraw_all(const SessionParticipant* self);

  /// Drops the single queued entry of `self` for work `tag` on
  /// `resource` (a held two-phase placement is being abandoned); the
  /// wait baseline is preserved for a re-registration.
  void withdraw(const SessionParticipant* self, grid::ResourceId resource,
                std::uint64_t tag);

  /// A reschedule or a revocation cancelled `self`'s running work `tag`:
  /// truncates its committed reservation on `resource` to end at `at`,
  /// releasing the rest of the window to competitors. Revocations pass
  /// `carry_baseline` so the requeued work's re-registration resumes its
  /// wait clock (see ResourceLedger::truncate_commit); the historical
  /// reschedule path keeps the default.
  void truncate_commit(const SessionParticipant* self,
                       grid::ResourceId resource, std::uint64_t tag,
                       sim::Time at, bool carry_baseline = false);

  /// The calling shard's revocation bookkeeping; null when the
  /// environment's resilience config is inactive.
  [[nodiscard]] resilience::RevocationManager* revocation() noexcept;
  /// Whether `self`'s work `tag` may absorb another revocation under the
  /// resilience per-job cap (true when resilience is inactive).
  [[nodiscard]] bool may_revoke(const SessionParticipant* self,
                                std::uint64_t tag) const;
  /// Records a landed revocation of `self`'s work `tag` (departure hits
  /// and requeues count against the same cap as policy preemptions).
  void record_revocation(const SessionParticipant* self, std::uint64_t tag);
  /// The environment's resilience config (validated at construction).
  [[nodiscard]] const resilience::ResilienceConfig& resilience()
      const noexcept {
    return env_.resilience;
  }

  /// Planner-side availability snapshot at the current session clock:
  /// the ledger's foreign busy picture from `self`'s point of view
  /// (committed windows and held claims of every other participant; see
  /// ResourceLedger::snapshot_view). Contention-aware planning passes
  /// take one fresh view per (re)planning pass — the view is a value and
  /// never tracks later ledger motion.
  [[nodiscard]] AvailabilityView availability_view(
      const SessionParticipant* self) const;

  /// Wait bookkeeping accumulated for `participant`'s committed grants;
  /// zeros for an unregistered participant. Resolves on the calling
  /// thread's shard during the run; after run() (no binding) it finds
  /// the participant on whichever shard it registered with.
  [[nodiscard]] ContentionStats contention_stats(
      const SessionParticipant* participant) const;

  /// Participants registered across every shard. Sum over shard tables;
  /// call from the owning thread during setup or after run().
  [[nodiscard]] std::size_t participant_count() const noexcept;

  /// Drains the event set — serial for one shard, lock-step epochs on
  /// the environment's shard_workers otherwise; returns the final clock.
  sim::Time run() { return sharded_.run(env_.shard_workers); }

 private:
  struct ParticipantRecord {
    SessionParticipant* participant = nullptr;
    double priority = 1.0;
    /// First acquisition's ready time (~ the workflow's release); the
    /// base of fair-share rate normalization. Negative until then.
    sim::Time active_since = -1.0;
    ContentionStats stats;
  };

  /// Everything mutable a shard owns. One per shard, touched only by
  /// the thread currently bound to that shard — no locks anywhere.
  struct ShardState {
    ResourceLedger ledger;
    std::unique_ptr<ContentionPolicy> policy;
    std::vector<ParticipantRecord> participants;
    /// Masked copy of the environment pool: same universe and ids, but
    /// machines of other shards never arrive (arrival = departure = ∞),
    /// so planners cannot see — let alone choose — foreign machines.
    /// Unused (empty) in the single-shard session.
    grid::ResourcePool masked_pool;
    /// Revocation bookkeeping (per-job caps, preemption latches); built
    /// only when the environment's resilience config is active, so an
    /// inactive session carries no resilience state at all.
    std::unique_ptr<resilience::RevocationManager> revocation;
    /// Shard-private stamped sinks, built only in sharded sessions whose
    /// environment carries the matching shared sink. Written exclusively
    /// by the shard's drain thread; drained by merge_shard_sinks() on the
    /// coordinator at every tick barrier.
    std::unique_ptr<sim::StampedTraceSink> trace_sink;
    std::unique_ptr<grid::HistoryDelta> history_delta;
  };

  /// The calling thread's shard state.
  [[nodiscard]] ShardState& state() noexcept {
    return *states_[sharded_.current_shard()];
  }
  [[nodiscard]] const ShardState& state() const noexcept {
    return *states_[sharded_.current_shard()];
  }
  /// state() plus the confinement fence: with more than one shard,
  /// `resource` must belong to the calling thread's shard.
  [[nodiscard]] ShardState& state_for(grid::ResourceId resource);
  [[nodiscard]] const ShardState& state_for(grid::ResourceId resource) const;

  /// Registration index of `participant` on the calling shard; throws
  /// when unregistered.
  [[nodiscard]] std::size_t index_of(
      const SessionParticipant* participant) const;

  [[nodiscard]] sim::Time grant_for(const ShardState& state,
                                    const ReservationEntry& entry,
                                    const std::vector<ReservationEntry>&
                                        queue) const;

  /// Wakes every queued owner on `resource` except `self` in fresh
  /// simulator events (skipped when the policy's grants cannot move
  /// earlier on commits/withdrawals and backfilling is off).
  void notify_queued(ShardState& state, grid::ResourceId resource,
                     const SessionParticipant* self);

  /// Fair-share preemption check after a deferred acquire: when the
  /// requester's stretch clears the resilience deadband against the
  /// owner of the committed window blocking it, schedules a revocation
  /// of that window in a fresh event. No-op unless the environment
  /// enabled preemption and the shard policy supports it.
  void maybe_preempt(ShardState& shard, const ReservationEntry& entry,
                     sim::Time grant);

  [[nodiscard]] bool wakeups_enabled(const ShardState& state) const {
    return state.policy->needs_change_notifications() || backfill_;
  }

  /// Barrier merge: drains every shard's stamped trace/history sink and
  /// replays the records into the environment sinks in (stamp, origin
  /// shard, origin seq) order — the staged-message order. Runs on the
  /// coordinator thread with every drain worker parked.
  void merge_shard_sinks();

  SessionEnvironment env_;
  sim::ShardedSimulator sharded_;
  /// Per-shard mutable state; unique_ptr for address stability across
  /// the container (shard threads hold references concurrently).
  std::vector<std::unique_ptr<ShardState>> states_;
  bool backfill_ = false;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_SESSION_H_
