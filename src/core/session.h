// SimulationSession: the shared home of one simulated experiment.
//
// Historically each strategy entry point built its own simulator, wired
// its own subset of the environment (only two accepted a LoadProfile,
// only AHEFT accepted a history repository), and ran one DAG to
// completion. The session inverts that: it owns the simulator clock and
// the full environment — resource pool, load profile, trace recorder,
// performance-history repository — and every strategy driver plugs into
// it, so all strategies get identical plumbing by construction.
//
// The session also arbitrates cross-workflow resource contention: each
// executing workflow registers as a SessionParticipant, and before a
// participant occupies a machine it asks the session how long the other
// participants have it booked. A single-workflow session has exactly one
// participant and behaves as the pre-session code did.
#ifndef AHEFT_CORE_SESSION_H_
#define AHEFT_CORE_SESSION_H_

#include <vector>

#include "grid/history.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::core {

/// Everything a strategy run observes about the simulated grid. The pool
/// is mandatory; the optional members default to "absent" (nominal costs,
/// no trace, no history). All pointers must outlive the session.
struct SessionEnvironment {
  const grid::ResourcePool* pool = nullptr;
  /// Time-varying effective cost scaling the executors realize; null
  /// means nominal costs.
  const grid::LoadProfile* load = nullptr;
  sim::TraceRecorder* trace = nullptr;
  grid::PerformanceHistoryRepository* history = nullptr;
};

/// One workflow execution sharing the session's machines. Participants
/// expose how long they have a resource booked so concurrent workflows
/// contend for machine time instead of double-booking it.
class SessionParticipant {
 public:
  virtual ~SessionParticipant() = default;

  /// Latest simulation time up to which this participant occupies
  /// `resource`; values at or before the current clock mean "free".
  [[nodiscard]] virtual sim::Time busy_until(
      grid::ResourceId resource) const = 0;
};

class SimulationSession {
 public:
  explicit SimulationSession(const SessionEnvironment& env);

  SimulationSession(const SimulationSession&) = delete;
  SimulationSession& operator=(const SimulationSession&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] const grid::ResourcePool& pool() const noexcept {
    return *env_.pool;
  }
  [[nodiscard]] const grid::LoadProfile* load() const noexcept {
    return env_.load;
  }
  [[nodiscard]] sim::TraceRecorder* trace() const noexcept {
    return env_.trace;
  }
  [[nodiscard]] grid::PerformanceHistoryRepository* history() const noexcept {
    return env_.history;
  }
  [[nodiscard]] const SessionEnvironment& environment() const noexcept {
    return env_;
  }

  /// Registers an executing workflow for contention arbitration. The
  /// participant must stay alive for as long as the simulator runs;
  /// registering the same participant twice is a no-op.
  void add_participant(const SessionParticipant* participant);

  /// Latest time any participant other than `self` occupies `resource`.
  /// kTimeZero when uncontended (callers clamp with the current clock).
  [[nodiscard]] sim::Time contended_until(const SessionParticipant* self,
                                          grid::ResourceId resource) const;

  [[nodiscard]] std::size_t participant_count() const noexcept {
    return participants_.size();
  }

  /// Drains the event set; returns the final clock value.
  sim::Time run() { return simulator_.run(); }

 private:
  SessionEnvironment env_;
  sim::Simulator simulator_;
  std::vector<const SessionParticipant*> participants_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_SESSION_H_
