// SimulationSession: the shared home of one simulated experiment.
//
// Historically each strategy entry point built its own simulator, wired
// its own subset of the environment (only two accepted a LoadProfile,
// only AHEFT accepted a history repository), and ran one DAG to
// completion. The session inverts that: it owns the simulator clock and
// the full environment — resource pool, load profile, trace recorder,
// performance-history repository — and every strategy driver plugs into
// it, so all strategies get identical plumbing by construction.
//
// The session also arbitrates cross-workflow resource contention, and
// every piece of that arbitration reads and writes one structure: the
// session-owned core::ResourceLedger, a per-resource timeline of
// reservations (pending → held → committed/withdrawn). acquire / peek /
// commit / withdraw_all are thin views over the ledger; the session's
// ContentionPolicy orders the ledger's queues (FCFS — the default,
// identical to the historical first-pump-wins behavior — strict
// priorities, or weighted fair share); per-resource ledger wakeups wake
// exactly the workflows queued on a machine when its picture moves; and
// an optional backfill pass (SessionEnvironment::backfill) grants a
// later-queued ready job a hole in a timeline when it provably cannot
// delay any earlier reservation. The session keeps per-participant wait
// statistics so starvation is measurable. A single-workflow session has
// exactly one participant and behaves identically under every policy.
#ifndef AHEFT_CORE_SESSION_H_
#define AHEFT_CORE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/contention_policy.h"
#include "core/resource_ledger.h"
#include "grid/history.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::core {

/// Everything a strategy run observes about the simulated grid. The pool
/// is mandatory; the optional members default to "absent" (nominal costs,
/// no trace, no history). All pointers must outlive the session.
struct SessionEnvironment {
  const grid::ResourcePool* pool = nullptr;
  /// Time-varying effective cost scaling the executors realize; null
  /// means nominal costs.
  const grid::LoadProfile* load = nullptr;
  sim::TraceRecorder* trace = nullptr;
  grid::PerformanceHistoryRepository* history = nullptr;
  /// ContentionPolicyRegistry name of the machine-contention arbitration
  /// ("fcfs", "priority", "fair-share", or a custom registration); empty
  /// falls back to FCFS. Each session builds its own policy instance —
  /// policies carry per-session state such as fair-share usage.
  std::string contention_policy = "fcfs";
  /// Cross-workflow backfilling: when a policy defers a request, grant it
  /// a hole in the resource's ledger timeline instead if occupying the
  /// hole provably cannot delay any other reservation. Off by default —
  /// backfilled grants change the FCFS event stream, and PR-over-PR
  /// bit-stability of the default configuration is a feature. Ignored
  /// under a load profile: backfill needs duration certainty to prove a
  /// hole fits, and load-stretched run times void that proof.
  bool backfill = false;
};

/// One workflow execution sharing the session's machines. All of a
/// participant's machine state lives in the session's ResourceLedger
/// (routed through acquire/commit), so the interface is only the
/// callbacks the session pushes back: wakeups and the fair-share scale.
class SessionParticipant {
 public:
  virtual ~SessionParticipant() = default;

  /// The ledger's picture of `resource` moved in a way that may allow an
  /// earlier grant (a competing entry committed, was withdrawn, or was
  /// truncated): re-evaluate pending work. Delivered in a fresh simulator
  /// event, never re-entrantly, and only to participants queued on the
  /// resource. Default is a no-op.
  virtual void contention_changed(grid::ResourceId resource);

  /// Completion time of the participant's release-time plan on the
  /// session clock — the scale of the workflow absent competition. The
  /// fair-share policy normalizes each workflow's delay by this scale
  /// (stretch fairness), so short workflows are not crushed by waits that
  /// barely register for long ones. kTimeZero means unknown (default);
  /// such a workflow never displaces competitors.
  [[nodiscard]] virtual sim::Time planned_finish() const;
};

/// Cross-workflow wait bookkeeping of one participant: how long its
/// committed acquisitions were delayed beyond their first-feasible start.
struct ContentionStats {
  double total_wait = 0.0;
  double max_wait = 0.0;
  std::size_t grants = 0;
};

class SimulationSession {
 public:
  explicit SimulationSession(const SessionEnvironment& env);
  ~SimulationSession();

  SimulationSession(const SimulationSession&) = delete;
  SimulationSession& operator=(const SimulationSession&) = delete;

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }
  [[nodiscard]] const grid::ResourcePool& pool() const noexcept {
    return *env_.pool;
  }
  [[nodiscard]] const grid::LoadProfile* load() const noexcept {
    return env_.load;
  }
  [[nodiscard]] sim::TraceRecorder* trace() const noexcept {
    return env_.trace;
  }
  [[nodiscard]] grid::PerformanceHistoryRepository* history() const noexcept {
    return env_.history;
  }
  [[nodiscard]] const SessionEnvironment& environment() const noexcept {
    return env_;
  }
  [[nodiscard]] const ContentionPolicy& policy() const noexcept {
    return *policy_;
  }
  /// The session's reservation ledger (read-only; mutate it through
  /// acquire/commit/withdraw so policy hooks and wakeups stay coherent).
  [[nodiscard]] const ResourceLedger& ledger() const noexcept {
    return ledger_;
  }
  /// Whether just-in-time dispatch should reserve→commit in two phases
  /// under the active policy (see ContentionPolicy::two_phase_dynamic).
  [[nodiscard]] bool two_phase_dynamic() const {
    return policy_->two_phase_dynamic();
  }

  /// Registers an executing workflow for contention arbitration with its
  /// priority / fair-share weight (must be positive). The participant
  /// must stay alive for as long as the simulator runs; registering the
  /// same participant twice is a no-op (the first priority wins).
  void add_participant(SessionParticipant* participant,
                       double priority = 1.0);

  /// Registers (or refreshes) a pending ledger entry for `self`'s work
  /// `tag` on `resource` and returns the start time the contention policy
  /// grants: `ready` is the earliest start feasible for the participant
  /// itself, `duration` the projected run length, `tag` identifies the
  /// work behind the request (engines pass the job id) so a request
  /// withdrawn by a reschedule and re-registered for the same work keeps
  /// its wait baseline. A grant at or before `ready` means "start now"; a
  /// later grant tells the caller when to retry — the entry stays queued
  /// so competing grants see it.
  [[nodiscard]] sim::Time acquire(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration, std::uint64_t tag = 0);

  /// What acquire would currently grant, without registering an entry or
  /// touching any state. Decision heuristics use this to price candidate
  /// placements under the active policy.
  [[nodiscard]] sim::Time peek(const SessionParticipant* self,
                               grid::ResourceId resource, sim::Time ready,
                               double duration) const;

  /// Two-phase dispatch: `self` accepts the grant for work `tag` but will
  /// occupy the machine later — the ledger entry turns held, staying
  /// visible (and displaceable) until the commit.
  void hold(const SessionParticipant* self, grid::ResourceId resource,
            std::uint64_t tag, sim::Time granted_start);

  /// `self` started running work `tag` on `resource` over [start, end):
  /// commits the ledger entry, feeds the policy's usage accounting, and
  /// records the wait metrics (start minus the entry's first-feasible
  /// time).
  void commit(const SessionParticipant* self, grid::ResourceId resource,
              std::uint64_t tag, sim::Time start, sim::Time end);

  /// Drops every queued entry of `self` (a reschedule invalidated its
  /// queue heads); the entries re-register on the next acquire with
  /// their wait baselines preserved.
  void withdraw_all(const SessionParticipant* self);

  /// Drops the single queued entry of `self` for work `tag` on
  /// `resource` (a held two-phase placement is being abandoned); the
  /// wait baseline is preserved for a re-registration.
  void withdraw(const SessionParticipant* self, grid::ResourceId resource,
                std::uint64_t tag);

  /// A reschedule cancelled `self`'s running work `tag`: truncates its
  /// committed reservation on `resource` to end at `at`, releasing the
  /// rest of the window to competitors.
  void truncate_commit(const SessionParticipant* self,
                       grid::ResourceId resource, std::uint64_t tag,
                       sim::Time at);

  /// Planner-side availability snapshot at the current session clock:
  /// the ledger's foreign busy picture from `self`'s point of view
  /// (committed windows and held claims of every other participant; see
  /// ResourceLedger::snapshot_view). Contention-aware planning passes
  /// take one fresh view per (re)planning pass — the view is a value and
  /// never tracks later ledger motion.
  [[nodiscard]] AvailabilityView availability_view(
      const SessionParticipant* self) const;

  /// Wait bookkeeping accumulated for `participant`'s committed grants;
  /// zeros for an unregistered participant.
  [[nodiscard]] ContentionStats contention_stats(
      const SessionParticipant* participant) const;

  [[nodiscard]] std::size_t participant_count() const noexcept {
    return participants_.size();
  }

  /// Drains the event set; returns the final clock value.
  sim::Time run() { return simulator_.run(); }

 private:
  struct ParticipantRecord {
    SessionParticipant* participant = nullptr;
    double priority = 1.0;
    /// First acquisition's ready time (~ the workflow's release); the
    /// base of fair-share rate normalization. Negative until then.
    sim::Time active_since = -1.0;
    ContentionStats stats;
  };

  /// Registration index of `participant`; throws when unregistered.
  [[nodiscard]] std::size_t index_of(
      const SessionParticipant* participant) const;

  [[nodiscard]] sim::Time grant_for(const ReservationEntry& entry,
                                    const std::vector<ReservationEntry>&
                                        queue) const;

  /// Wakes every queued owner on `resource` except `self` in fresh
  /// simulator events (skipped when the policy's grants cannot move
  /// earlier on commits/withdrawals and backfilling is off).
  void notify_queued(grid::ResourceId resource,
                     const SessionParticipant* self);

  [[nodiscard]] bool wakeups_enabled() const {
    return policy_->needs_change_notifications() || backfill_;
  }

  SessionEnvironment env_;
  sim::Simulator simulator_;
  std::unique_ptr<ContentionPolicy> policy_;
  std::vector<ParticipantRecord> participants_;
  /// The single per-resource reservation timeline behind acquire / hold /
  /// commit / withdraw / truncate.
  ResourceLedger ledger_;
  bool backfill_ = false;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_SESSION_H_
