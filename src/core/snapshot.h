// Execution snapshot: everything the Planner needs to know about the state
// of a partially executed workflow at rescheduling time `clock`.
//
// The snapshot realizes the paper's "execution status snapshot of S0"
// (Fig. 2 line 6): which jobs finished where and when (AFT), which jobs are
// running, and where every finished job's output files are available
// (feeding Eq. 1's FEA cases).
#ifndef AHEFT_CORE_SNAPSHOT_H_
#define AHEFT_CORE_SNAPSHOT_H_

#include <map>
#include <optional>
#include <vector>

#include "dag/dag.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::core {

/// A finished job: actual start/finish and the resource it ran on.
struct FinishedInfo {
  grid::ResourceId resource = grid::kInvalidResource;
  sim::Time ast = sim::kTimeZero;  ///< actual start time
  sim::Time aft = sim::kTimeZero;  ///< actual finish time
};

/// A job that started but did not finish by `clock`.
struct RunningInfo {
  dag::JobId job = dag::kInvalidJob;
  grid::ResourceId resource = grid::kInvalidResource;
  sim::Time ast = sim::kTimeZero;
  /// Finish time the executor currently expects (actual duration; under the
  /// paper's accuracy assumption this equals the planner's SFT).
  sim::Time expected_finish = sim::kTimeZero;
};

/// Where the payload of each DAG edge is (or will be) available: for edge
/// e = (m, i), arrivals[e] maps resource -> earliest availability time of
/// n_m's output for n_i on that resource. Populated once the producer
/// finishes: its own resource at AFT, plus every target a transfer was
/// initiated to (at AFT + c). This is the ground truth behind FEA cases 1,
/// 2, and "otherwise".
using EdgeArrivals = std::vector<std::map<grid::ResourceId, sim::Time>>;

class ExecutionSnapshot {
 public:
  /// Snapshot of a workflow that has not started (clock 0, nothing done).
  static ExecutionSnapshot initial(std::size_t job_count,
                                   std::size_t edge_count);

  ExecutionSnapshot(sim::Time clock, std::size_t job_count,
                    std::size_t edge_count);

  [[nodiscard]] sim::Time clock() const { return clock_; }

  void mark_finished(dag::JobId job, FinishedInfo info);
  void add_running(RunningInfo info);
  void record_arrival(std::size_t edge_index, grid::ResourceId resource,
                      sim::Time when);

  [[nodiscard]] bool finished(dag::JobId job) const;
  [[nodiscard]] const FinishedInfo& finished_info(dag::JobId job) const;
  [[nodiscard]] const std::vector<RunningInfo>& running() const {
    return running_;
  }
  [[nodiscard]] std::optional<RunningInfo> running_info(dag::JobId job) const;

  [[nodiscard]] const std::map<grid::ResourceId, sim::Time>& arrivals(
      std::size_t edge_index) const;

  [[nodiscard]] std::size_t finished_count() const { return finished_count_; }
  [[nodiscard]] std::size_t job_count() const { return finished_.size(); }

 private:
  sim::Time clock_ = sim::kTimeZero;
  std::vector<std::optional<FinishedInfo>> finished_;
  std::vector<RunningInfo> running_;
  EdgeArrivals arrivals_;
  std::size_t finished_count_ = 0;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_SNAPSHOT_H_
