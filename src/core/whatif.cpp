#include "core/whatif.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

WhatIfAnalyzer::WhatIfAnalyzer(const dag::Dag& dag,
                               const grid::CostProvider& estimates,
                               const grid::ResourcePool& pool,
                               SchedulerConfig config)
    : dag_(dag), estimates_(estimates), pool_(pool), config_(config) {}

sim::Time WhatIfAnalyzer::predict(const ExecutionSnapshot& snapshot,
                                  const Schedule& current,
                                  const grid::ResourcePool& pool,
                                  std::vector<grid::ResourceId> visible) const {
  AHEFT_REQUIRE(!visible.empty(), "what-if needs at least one resource");
  RescheduleRequest request;
  request.dag = &dag_;
  request.estimates = &estimates_;
  request.pool = &pool;
  request.resources = std::move(visible);
  request.clock = snapshot.clock();
  request.snapshot = &snapshot;
  request.previous = &current;
  request.config = config_;
  return aheft_schedule(request).makespan();
}

sim::Time WhatIfAnalyzer::predict_current(const ExecutionSnapshot& snapshot,
                                          const Schedule& current) const {
  return predict(snapshot, current, pool_,
                 pool_.available_at(snapshot.clock()));
}

sim::Time WhatIfAnalyzer::predict_with_added(const ExecutionSnapshot& snapshot,
                                             const Schedule& current,
                                             grid::ResourceId extra) const {
  std::vector<grid::ResourceId> visible =
      pool_.available_at(snapshot.clock());
  AHEFT_REQUIRE(std::find(visible.begin(), visible.end(), extra) ==
                    visible.end(),
                "resource is already visible");
  // Hypothesis: `extra` joins the grid right now.
  grid::ResourcePool hypothetical = pool_;
  hypothetical.set_arrival(extra, snapshot.clock());
  visible.push_back(extra);
  std::sort(visible.begin(), visible.end());
  return predict(snapshot, current, hypothetical, std::move(visible));
}

sim::Time WhatIfAnalyzer::predict_with_removed(
    const ExecutionSnapshot& snapshot, const Schedule& current,
    grid::ResourceId removed) const {
  std::vector<grid::ResourceId> visible =
      pool_.available_at(snapshot.clock());
  const auto it = std::find(visible.begin(), visible.end(), removed);
  AHEFT_REQUIRE(it != visible.end(), "resource is not currently visible");
  visible.erase(it);
  return predict(snapshot, current, pool_, std::move(visible));
}

}  // namespace aheft::core
