#include "core/dynamic_scheduler.h"

#include <algorithm>
#include <map>
#include <vector>

#include "sim/simulator.h"
#include "support/assert.h"

namespace aheft::core {

std::string to_string(DynamicHeuristic heuristic) {
  switch (heuristic) {
    case DynamicHeuristic::kMinMin:
      return "min-min";
    case DynamicHeuristic::kMaxMin:
      return "max-min";
    case DynamicHeuristic::kSufferage:
      return "sufferage";
  }
  return "unknown";
}

namespace {

/// Shared state of one dynamic run, driven by simulator events.
class DynamicRun {
 public:
  DynamicRun(const dag::Dag& dag, const grid::CostProvider& actual,
             const grid::ResourcePool& pool, DynamicHeuristic heuristic,
             sim::TraceRecorder* trace)
      : dag_(dag),
        actual_(actual),
        pool_(pool),
        heuristic_(heuristic),
        trace_(trace),
        schedule_(dag.job_count()),
        finished_(dag.job_count(), false),
        assigned_(dag.job_count(), false),
        location_(dag.job_count(), grid::kInvalidResource),
        aft_(dag.job_count(), sim::kTimeZero),
        pending_preds_(dag.job_count(), 0) {}

  DynamicRunResult run() {
    for (dag::JobId i = 0; i < dag_.job_count(); ++i) {
      pending_preds_[i] = static_cast<std::uint32_t>(dag_.in_edges(i).size());
      if (pending_preds_[i] == 0) {
        ready_.push_back(i);
      }
    }
    simulator_.schedule_at(sim::kTimeZero, [this] { dispatch(); });
    simulator_.run();
    AHEFT_ASSERT(finished_count_ == dag_.job_count(),
                 "dynamic run ended with unfinished jobs");
    DynamicRunResult result;
    result.makespan = makespan_;
    result.batches = batches_;
    result.schedule = std::move(schedule_);
    return result;
  }

 private:
  /// Earliest completion time of `job` on `resource` when decided now.
  [[nodiscard]] sim::Time completion_time(dag::JobId job,
                                          grid::ResourceId resource,
                                          sim::Time now) const {
    sim::Time ready = now;
    for (const std::uint32_t e : dag_.in_edges(job)) {
      const dag::Edge& edge = dag_.edges()[e];
      AHEFT_ASSERT(finished_[edge.from], "ready job with unfinished pred");
      const sim::Time arrival =
          location_[edge.from] == resource
              ? aft_[edge.from]
              : now + actual_.comm_cost(edge, location_[edge.from], resource);
      ready = std::max(ready, arrival);
    }
    const auto it = avail_.find(resource);
    const sim::Time machine_free =
        std::max(it == avail_.end() ? sim::kTimeZero : it->second,
                 pool_.resource(resource).arrival);
    return std::max(ready, machine_free) +
           actual_.compute_cost(job, resource);
  }

  /// Runs one just-in-time decision round over every currently ready job.
  void dispatch() {
    if (ready_.empty()) {
      return;
    }
    const sim::Time now = simulator_.now();
    const std::vector<grid::ResourceId> visible = pool_.available_at(now);
    AHEFT_ASSERT(!visible.empty(), "no resource available for dispatch");
    ++batches_;

    while (!ready_.empty()) {
      // For each ready job, its best and second-best completion times.
      dag::JobId chosen = dag::kInvalidJob;
      grid::ResourceId chosen_resource = grid::kInvalidResource;
      sim::Time chosen_ct = sim::kTimeZero;
      double chosen_key = 0.0;
      bool first = true;

      for (const dag::JobId job : ready_) {
        sim::Time best = sim::kTimeInfinity;
        sim::Time second = sim::kTimeInfinity;
        grid::ResourceId best_r = grid::kInvalidResource;
        for (const grid::ResourceId r : visible) {
          const sim::Time ct = completion_time(job, r, now);
          if (ct < best) {
            second = best;
            best = ct;
            best_r = r;
          } else if (ct < second) {
            second = ct;
          }
        }
        double key = 0.0;
        switch (heuristic_) {
          case DynamicHeuristic::kMinMin:
            key = -best;  // prefer the smallest completion time
            break;
          case DynamicHeuristic::kMaxMin:
            key = best;  // prefer the largest minimum completion time
            break;
          case DynamicHeuristic::kSufferage:
            key = (second == sim::kTimeInfinity) ? 0.0 : second - best;
            break;
        }
        if (first || key > chosen_key) {
          first = false;
          chosen = job;
          chosen_resource = best_r;
          chosen_ct = best;
          chosen_key = key;
        }
      }

      assign(chosen, chosen_resource, chosen_ct, now);
      ready_.erase(std::find(ready_.begin(), ready_.end(), chosen));
    }
  }

  void assign(dag::JobId job, grid::ResourceId resource, sim::Time finish,
              sim::Time now) {
    const double w = actual_.compute_cost(job, resource);
    const sim::Time start = finish - w;
    assigned_[job] = true;
    schedule_.assign(Assignment{job, resource, start, finish});
    if (trace_ != nullptr) {
      for (const std::uint32_t e : dag_.in_edges(job)) {
        const dag::Edge& edge = dag_.edges()[e];
        if (location_[edge.from] != resource) {
          trace_->record_transfer(
              edge.from, job, resource, now,
              now + actual_.comm_cost(edge, location_[edge.from], resource));
        }
      }
    }
    auto& machine_free = avail_[resource];
    machine_free = std::max(machine_free, finish);
    simulator_.schedule_at(finish, [this, job, resource, start, finish] {
      complete(job, resource, start, finish);
    });
  }

  void complete(dag::JobId job, grid::ResourceId resource, sim::Time start,
                sim::Time finish) {
    finished_[job] = true;
    ++finished_count_;
    location_[job] = resource;
    aft_[job] = finish;
    makespan_ = std::max(makespan_, finish);
    if (trace_ != nullptr) {
      trace_->record_compute(job, resource, start, finish);
    }
    bool any_ready = false;
    for (const std::uint32_t e : dag_.out_edges(job)) {
      const dag::JobId succ = dag_.edges()[e].to;
      AHEFT_ASSERT(pending_preds_[succ] > 0, "pred counter underflow");
      if (--pending_preds_[succ] == 0) {
        ready_.push_back(succ);
        any_ready = true;
      }
    }
    if (any_ready) {
      dispatch();
    }
  }

  const dag::Dag& dag_;
  const grid::CostProvider& actual_;
  const grid::ResourcePool& pool_;
  DynamicHeuristic heuristic_;
  sim::TraceRecorder* trace_;

  sim::Simulator simulator_;
  Schedule schedule_;
  std::vector<bool> finished_;
  std::vector<bool> assigned_;
  std::vector<grid::ResourceId> location_;
  std::vector<sim::Time> aft_;
  std::vector<std::uint32_t> pending_preds_;
  std::vector<dag::JobId> ready_;
  std::map<grid::ResourceId, sim::Time> avail_;
  std::size_t finished_count_ = 0;
  std::size_t batches_ = 0;
  sim::Time makespan_ = sim::kTimeZero;
};

}  // namespace

DynamicRunResult run_dynamic(const dag::Dag& dag,
                             const grid::CostProvider& actual,
                             const grid::ResourcePool& pool,
                             DynamicHeuristic heuristic,
                             sim::TraceRecorder* trace) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
  AHEFT_REQUIRE(pool.count_available_at(sim::kTimeZero) > 0,
                "dynamic run needs at least one initial resource");
  DynamicRun run(dag, actual, pool, heuristic, trace);
  return run.run();
}

}  // namespace aheft::core
