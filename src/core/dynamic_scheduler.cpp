#include "core/dynamic_scheduler.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "dag/algorithms.h"
#include "sim/simulator.h"
#include "support/assert.h"

namespace aheft::core {

std::string to_string(DynamicHeuristic heuristic) {
  switch (heuristic) {
    case DynamicHeuristic::kMinMin:
      return "min-min";
    case DynamicHeuristic::kMaxMin:
      return "max-min";
    case DynamicHeuristic::kSufferage:
      return "sufferage";
  }
  return "unknown";
}

DynamicExecution::DynamicExecution(SimulationSession& session,
                                   const dag::Dag& dag,
                                   const grid::CostProvider& actual,
                                   DynamicHeuristic heuristic,
                                   double priority, bool contention_aware)
    : session_(&session),
      dag_(&dag),
      actual_(&actual),
      pool_(&session.pool()),
      load_(session.load()),
      trace_(session.trace()),
      heuristic_(heuristic),
      contention_aware_(contention_aware),
      schedule_(dag.job_count()),
      finished_(dag.job_count(), false),
      location_(dag.job_count(), grid::kInvalidResource),
      aft_(dag.job_count(), sim::kTimeZero),
      pending_preds_(dag.job_count(), 0) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
  if (session.resilience().active()) {
    resilience_ = &session.resilience();
  }
  session.add_participant(this, priority);
}

void DynamicExecution::launch(sim::Time release, Completion done) {
  AHEFT_REQUIRE(sim::time_le(session_->simulator().now(), release),
                "dynamic launch release lies in the simulator's past");
  release_ = release;
  done_ = std::move(done);
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    pending_preds_[i] = static_cast<std::uint32_t>(dag_->in_edges(i).size());
    if (pending_preds_[i] == 0) {
      ready_.push_back(i);
    }
  }
  session_->simulator().schedule_at(release, [this] {
    AHEFT_REQUIRE(pool_->count_available_at(release_) > 0,
                  "dynamic run needs at least one resource at release");
    planned_finish_ = estimate_solo_finish();
    dispatch();
  });
}

sim::Time DynamicExecution::estimate_solo_finish() const {
  // A just-in-time run has no plan, but fair-share stretch needs a scale
  // to normalize by — without one this workflow could never displace
  // competitors (planned_span 0 means stretch 0). Estimate the solo
  // makespan the way the engines use their release-time HEFT plan: a
  // greedy earliest-finish list schedule over the release-visible
  // machines with nominal costs, transfers priced at decision time. The
  // estimate must be realistic — an optimistic bound (say, the bare
  // critical path) inflates every stretch past the displacement
  // deadband and turns fair share into thrash. Contention-aware runs
  // additionally fit every placement into the ledger snapshot's free
  // gaps, mirroring what the contention-aware planner's release-time
  // HEFT pass prices for the static strategies.
  const std::vector<grid::ResourceId> visible =
      pool_->available_at(release_);
  std::optional<AvailabilityView> view;
  if (contention_aware_) {
    view.emplace(session_->availability_view(this));
  }
  std::vector<sim::Time> finish(dag_->job_count(), release_);
  std::vector<grid::ResourceId> where(dag_->job_count(),
                                      grid::kInvalidResource);
  std::map<grid::ResourceId, sim::Time> free;
  sim::Time span_end = release_;
  for (const dag::JobId job : dag_->topological_order()) {
    sim::Time best_finish = sim::kTimeInfinity;
    grid::ResourceId best_r = grid::kInvalidResource;
    for (const grid::ResourceId r : visible) {
      sim::Time ready = release_;
      for (const std::uint32_t e : dag_->in_edges(job)) {
        const dag::Edge& edge = dag_->edges()[e];
        sim::Time arrival = finish[edge.from];
        if (where[edge.from] != r) {
          arrival += actual_->comm_cost(edge, where[edge.from], r);
        }
        ready = std::max(ready, arrival);
      }
      const double w = actual_->compute_cost(job, r);
      const auto it = free.find(r);
      sim::Time start =
          std::max(ready, it == free.end() ? release_ : it->second);
      if (view) {
        start = view->earliest_fit(r, start, w);
      }
      const sim::Time f = start + w;
      if (f < best_finish) {
        best_finish = f;
        best_r = r;
      }
    }
    finish[job] = best_finish;
    where[job] = best_r;
    free[best_r] = best_finish;
    span_end = std::max(span_end, best_finish);
  }
  return span_end;
}

void DynamicExecution::contention_changed(grid::ResourceId resource) {
  if (failed_) {
    return;
  }
  // Re-arbitrate every held dispatch on the resource (job-id order keeps
  // the replay deterministic). retry_held may commit and mutate held_,
  // so collect first.
  std::vector<dag::JobId> jobs;
  for (const auto& [job, hold] : held_) {
    if (hold.resource == resource) {
      jobs.push_back(job);
    }
  }
  for (const dag::JobId job : jobs) {
    retry_held(job);
  }
}

sim::Time DynamicExecution::inputs_ready(dag::JobId job,
                                         grid::ResourceId resource,
                                         sim::Time now) const {
  sim::Time ready = now;
  for (const std::uint32_t e : dag_->in_edges(job)) {
    const dag::Edge& edge = dag_->edges()[e];
    AHEFT_ASSERT(finished_[edge.from], "ready job with unfinished pred");
    const sim::Time arrival =
        location_[edge.from] == resource
            ? aft_[edge.from]
            : now + actual_->comm_cost(edge, location_[edge.from], resource);
    ready = std::max(ready, arrival);
  }
  return ready;
}

sim::Time DynamicExecution::machine_free(grid::ResourceId resource) const {
  return machine_free_before(resource,
                             std::numeric_limits<std::uint64_t>::max());
}

sim::Time DynamicExecution::machine_free_before(grid::ResourceId resource,
                                                std::uint64_t seq) const {
  sim::Time free = pool_->resource(resource).arrival;
  if (const auto it = avail_.find(resource); it != avail_.end()) {
    free = std::max(free, it->second);
  }
  // Held dispatch decisions claim their granted window for every LATER
  // decision, exactly as an instant advance booking would have stacked —
  // but never for earlier ones, so two held claims cannot gate each
  // other both ways and push their retries apart forever.
  for (const auto& [held_job, hold] : held_) {
    if (hold.resource == resource && hold.seq < seq) {
      free = std::max(free, hold.retry_at + hold.nominal);
    }
  }
  return free;
}

sim::Time DynamicExecution::completion_time(dag::JobId job,
                                            grid::ResourceId resource,
                                            sim::Time now) const {
  // Peek (not acquire): decision heuristics price every candidate
  // resource, so the query must not register requests. The probe must
  // mirror assign()'s acquire exactly — same ready (inputs included) and
  // duration — or a policy deferral could push the realized start past
  // the departure window this estimate is vetted against.
  const double cost = actual_->compute_cost(job, resource);
  const sim::Time start = session_->peek(
      this, resource,
      std::max(inputs_ready(job, resource, now), machine_free(resource)),
      cost);
  return start + cost;
}

/// Runs one just-in-time decision round over every currently ready job.
void DynamicExecution::dispatch() {
  if (failed_ || ready_.empty()) {
    return;
  }
  const sim::Time now = session_->simulator().now();
  const std::vector<grid::ResourceId> visible = pool_->available_at(now);
  AHEFT_ASSERT(!visible.empty(), "no resource available for dispatch");
  ++batches_;

  bool stuck = false;
  while (!ready_.empty() && !failed_) {
    // For each ready job, its best and second-best completion times.
    dag::JobId chosen = dag::kInvalidJob;
    grid::ResourceId chosen_resource = grid::kInvalidResource;
    double chosen_key = 0.0;
    bool first = true;

    for (const dag::JobId job : ready_) {
      sim::Time best = sim::kTimeInfinity;
      sim::Time second = sim::kTimeInfinity;
      grid::ResourceId best_r = grid::kInvalidResource;
      for (const grid::ResourceId r : visible) {
        const sim::Time ct = completion_time(job, r, now);
        // Departures are announced (the window is in the pool), so a
        // just-in-time decision never books a machine that would leave
        // before the job finishes.
        if (!sim::time_le(ct, pool_->resource(r).departure)) {
          continue;
        }
        if (ct < best) {
          second = best;
          best = ct;
          best_r = r;
        } else if (ct < second) {
          second = ct;
        }
      }
      if (best_r == grid::kInvalidResource) {
        if (resilience_ == nullptr) {
          throw std::runtime_error(
              "dynamic dispatch: no visible machine can finish job " +
              dag_->job(job).name +
              " before departing (the dynamic baseline does not defer "
              "dispatch until repairs arrive)");
        }
        // Resilience on: the job waits for the pool to change (a repair
        // may bring a machine); see defer_dispatch below.
        stuck = true;
        continue;
      }
      double key = 0.0;
      switch (heuristic_) {
        case DynamicHeuristic::kMinMin:
          key = -best;  // prefer the smallest completion time
          break;
        case DynamicHeuristic::kMaxMin:
          key = best;  // prefer the largest minimum completion time
          break;
        case DynamicHeuristic::kSufferage:
          key = (second == sim::kTimeInfinity) ? 0.0 : second - best;
          break;
      }
      if (first || key > chosen_key) {
        first = false;
        chosen = job;
        chosen_resource = best_r;
        chosen_key = key;
      }
    }

    if (chosen == dag::kInvalidJob) {
      break;  // every remaining ready job is stuck
    }
    assign(chosen, chosen_resource, now);
    ready_.erase(std::find(ready_.begin(), ready_.end(), chosen));
  }
  if (stuck && !ready_.empty() && !failed_) {
    defer_dispatch(now);
  }
}

void DynamicExecution::defer_dispatch(sim::Time now) {
  sim::Time next = sim::kTimeInfinity;
  for (const sim::Time when :
       pool_->change_times(now, sim::kTimeInfinity)) {
    if (when > now && !sim::time_eq(when, now) && when < next) {
      next = when;
    }
  }
  if (next == sim::kTimeInfinity) {
    fail_run("no machine can finish job " +
             dag_->job(ready_.front()).name +
             " before departing, and the pool never changes again");
    return;
  }
  if (sim::time_eq(deferred_until_, next)) {
    return;  // retry already armed
  }
  deferred_until_ = next;
  session_->simulator().schedule_at(next, [this, next] {
    if (sim::time_eq(deferred_until_, next)) {
      deferred_until_ = -1.0;
      dispatch();
    }
  });
}

void DynamicExecution::fail_run(const std::string& reason) {
  if (failed_) {
    return;
  }
  failed_ = true;
  failure_reason_ = reason;
  session_->withdraw_all(this);
  held_.clear();
  ready_.clear();
  const sim::Time now = session_->simulator().now();
  makespan_ = std::max(makespan_, now);
  // Fire the completion like a normal finish would — in a fresh event,
  // so the failing dispatch unwinds first.
  session_->simulator().schedule_at(now, [this] {
    if (!done_) {
      return;
    }
    DynamicRunResult result;
    result.makespan = makespan_;
    result.batches = batches_;
    result.schedule = schedule_;
    const ContentionStats stats = session_->contention_stats(this);
    result.contention_wait = stats.total_wait;
    result.max_contention_wait = stats.max_wait;
    result.failed = true;
    result.failure_reason = failure_reason_;
    done_(result);
  });
}

void DynamicExecution::record_input_transfers(dag::JobId job,
                                              grid::ResourceId resource,
                                              sim::Time decided_at) {
  if (trace_ == nullptr) {
    return;
  }
  // The paper's dynamic file model starts a transfer when the placement
  // decision is taken, so the records are stamped at decision time.
  for (const std::uint32_t e : dag_->in_edges(job)) {
    const dag::Edge& edge = dag_->edges()[e];
    if (location_[edge.from] != resource) {
      trace_->record_transfer(
          edge.from, job, resource, decided_at,
          decided_at +
              actual_->comm_cost(edge, location_[edge.from], resource));
    }
  }
}

void DynamicExecution::assign(dag::JobId job, grid::ResourceId resource,
                              sim::Time now) {
  const double nominal = actual_->compute_cost(job, resource);
  const sim::Time feasible =
      std::max(inputs_ready(job, resource, now), machine_free(resource));
  const sim::Time start =
      session_->acquire(this, resource, feasible, nominal, /*tag=*/job);

  if (session_->two_phase_dynamic() && start > now &&
      !sim::time_eq(start, now)) {
    // Two-phase dispatch: the granted start lies in the future, so keep
    // the reservation held — visible in the ledger queue, displaceable
    // by the policy, re-arbitrated on wakeups — and commit only when the
    // grant matures. Under FCFS this branch never runs and the decision
    // advance-books the slot instantly (the historical behavior).
    session_->hold(this, resource, job, start);
    HeldDispatch& hold = held_[job];
    hold.resource = resource;
    hold.nominal = nominal;
    hold.decided_at = now;
    hold.inputs_ready = inputs_ready(job, resource, now);
    hold.seq = next_decision_seq_++;
    schedule_retry(job, start);
    return;
  }
  start_assignment(job, resource, nominal, start, /*decided_at=*/now);
}

void DynamicExecution::schedule_retry(dag::JobId job, sim::Time when) {
  HeldDispatch& hold = held_[job];
  hold.retry_at = when;
  const std::uint64_t generation = ++hold.generation;
  session_->simulator().schedule_at(when, [this, job, generation] {
    const auto it = held_.find(job);
    if (it != held_.end() && it->second.generation == generation) {
      retry_held(job);
    }
  });
}

void DynamicExecution::retry_held(dag::JobId job) {
  const auto it = held_.find(job);
  if (failed_ || it == held_.end()) {
    return;
  }
  HeldDispatch hold = it->second;
  const sim::Time now = session_->simulator().now();
  const sim::Time feasible = std::max(
      {hold.inputs_ready, machine_free_before(hold.resource, hold.seq), now});
  const sim::Time start = session_->acquire(this, hold.resource, feasible,
                                            hold.nominal, /*tag=*/job);

  // The machine may depart before the re-arbitrated start fits: abandon
  // the held placement and re-decide over the machines visible now.
  if (!sim::time_le(start + hold.nominal,
                    pool_->resource(hold.resource).departure)) {
    session_->withdraw(this, hold.resource, job);
    held_.erase(job);
    ready_.push_back(job);
    dispatch();
    return;
  }

  if (start > now && !sim::time_eq(start, now)) {
    session_->hold(this, hold.resource, job, start);
    schedule_retry(job, start);
    return;
  }
  held_.erase(job);
  start_assignment(job, hold.resource, hold.nominal, std::max(start, now),
                   hold.decided_at);
}

void DynamicExecution::start_assignment(dag::JobId job,
                                        grid::ResourceId resource,
                                        double nominal, sim::Time start,
                                        sim::Time decided_at) {
  record_input_transfers(job, resource, decided_at);
  double duration = nominal;
  if (load_ != nullptr) {
    const double factor = load_->factor(resource, start);
    AHEFT_ASSERT(factor > 0.0, "load factor must be positive");
    duration *= factor;
  }
  const sim::Time finish = start + duration;
  // The dispatch loop vetted the nominal completion against the window;
  // a load spike can still stretch the realized run past it, which is
  // the same unsupported combination the execution engine reports —
  // unless resilience is on, in which case the run fails gracefully
  // (dynamic jobs have no restart machinery; see the class note).
  if (!sim::time_le(finish, pool_->resource(resource).departure)) {
    if (resilience_ == nullptr) {
      throw std::runtime_error(
          "load-stretched job " + dag_->job(job).name +
          " would outlive its machine: scenarios combining load segments "
          "with finite departures need restart semantics (unsupported; "
          "see ROADMAP)");
    }
    fail_run("load-stretched job " + dag_->job(job).name +
             " would outlive its machine");
    return;
  }
  session_->commit(this, resource, /*tag=*/job, start, finish);
  schedule_.assign(Assignment{job, resource, start, finish});
  auto& booked = avail_[resource];
  booked = std::max(booked, finish);
  session_->simulator().schedule_at(
      finish, [this, job, resource, start, finish] {
        complete(job, resource, start, finish);
      });
}

void DynamicExecution::complete(dag::JobId job, grid::ResourceId resource,
                                sim::Time start, sim::Time finish) {
  finished_[job] = true;
  ++finished_count_;
  location_[job] = resource;
  aft_[job] = finish;
  makespan_ = std::max(makespan_, finish);
  if (trace_ != nullptr) {
    trace_->record_compute(job, resource, start, finish);
  }
  bool any_ready = false;
  for (const std::uint32_t e : dag_->out_edges(job)) {
    const dag::JobId succ = dag_->edges()[e].to;
    AHEFT_ASSERT(pending_preds_[succ] > 0, "pred counter underflow");
    if (--pending_preds_[succ] == 0) {
      ready_.push_back(succ);
      any_ready = true;
    }
  }
  if (any_ready) {
    dispatch();
  }
  if (finished() && done_) {
    DynamicRunResult result;
    result.makespan = makespan_;
    result.batches = batches_;
    result.schedule = schedule_;
    const ContentionStats stats = session_->contention_stats(this);
    result.contention_wait = stats.total_wait;
    result.max_contention_wait = stats.max_wait;
    done_(result);
  }
}

DynamicRunResult run_dynamic(const dag::Dag& dag,
                             const grid::CostProvider& actual,
                             const grid::ResourcePool& pool,
                             DynamicHeuristic heuristic,
                             sim::TraceRecorder* trace,
                             const grid::LoadProfile* load) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
  AHEFT_REQUIRE(pool.count_available_at(sim::kTimeZero) > 0,
                "dynamic run needs at least one initial resource");
  SessionEnvironment env;
  env.pool = &pool;
  env.load = load;
  env.trace = trace;
  SimulationSession session(env);
  DynamicExecution execution(session, dag, actual, heuristic);
  DynamicRunResult result;
  bool completed = false;
  execution.launch(sim::kTimeZero, [&](const DynamicRunResult& r) {
    result = r;
    completed = true;
  });
  session.run();
  AHEFT_ASSERT(completed, "dynamic run ended with unfinished jobs");
  return result;
}

}  // namespace aheft::core
