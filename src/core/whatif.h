// "What ... if ..." queries (paper §3.3): predicted makespan under
// hypothetical resource additions or removals, for proactive tuning.
//
// The paper lists this as the natural extension of the event-evaluation
// machinery ("What will be the expected performance if an additional
// resource A is added (removed)?"); the analyzer reuses the rescheduler on
// a modified visible set.
#ifndef AHEFT_CORE_WHATIF_H_
#define AHEFT_CORE_WHATIF_H_

#include "core/rescheduler.h"

namespace aheft::core {

class WhatIfAnalyzer {
 public:
  WhatIfAnalyzer(const dag::Dag& dag, const grid::CostProvider& estimates,
                 const grid::ResourcePool& pool, SchedulerConfig config = {});

  /// Predicted makespan if execution continues from `snapshot` with the
  /// currently visible resources (i.e. the best the planner can do now).
  [[nodiscard]] sim::Time predict_current(const ExecutionSnapshot& snapshot,
                                          const Schedule& current) const;

  /// Predicted makespan if universe resource `extra` (not visible at the
  /// snapshot clock) became available right now.
  [[nodiscard]] sim::Time predict_with_added(const ExecutionSnapshot& snapshot,
                                             const Schedule& current,
                                             grid::ResourceId extra) const;

  /// Predicted makespan if `removed` disappeared right now. Jobs running on
  /// it are restarted elsewhere.
  [[nodiscard]] sim::Time predict_with_removed(
      const ExecutionSnapshot& snapshot, const Schedule& current,
      grid::ResourceId removed) const;

 private:
  [[nodiscard]] sim::Time predict(const ExecutionSnapshot& snapshot,
                                  const Schedule& current,
                                  const grid::ResourcePool& pool,
                                  std::vector<grid::ResourceId> visible) const;

  const dag::Dag& dag_;
  const grid::CostProvider& estimates_;
  const grid::ResourcePool& pool_;
  SchedulerConfig config_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_WHATIF_H_
