// Pluggable arbitration of cross-workflow machine contention.
//
// The session used to expose a passive "how long is this machine booked"
// query and left the grant order to whichever participant's pump event
// happened to fire first — strict FCFS with event-insertion tie-breaks.
// This interface makes the arbitration an explicit, swappable decision:
// participants register acquisition requests with the session, and the
// session's ContentionPolicy decides the start time each request is
// granted. Three policies ship:
//
//  - kFcfs       first-come-first-served; bit-compatible with the
//                pre-policy behavior (grant = committed bookings of the
//                other participants, ties broken by event order).
//  - kPriority   strict priorities: a request defers behind every pending
//                request of a strictly higher-priority workflow. Equal
//                priorities degrade to FCFS. Low-priority workflows can
//                starve — that is the policy's contract; the session's
//                wait metrics make the starvation measurable.
//  - kFairShare  stretch fairness: each workflow's elapsed time in the
//                session is normalized by its own uncontended plan
//                length, and a workflow whose normalized delay (stretch)
//                runs far beyond a competitor's displaces it. Equal
//                absolute waits crush short workflows while barely
//                registering for long ones — normalizing by the
//                workflow's own scale is what bounds the worst slowdown
//                instead of just equalizing machine hours.
//
// Policies are per-session state (fair share accumulates usage), so the
// session constructs its own instance from the environment's registry
// name; see SessionEnvironment::contention_policy.
#ifndef AHEFT_CORE_CONTENTION_POLICY_H_
#define AHEFT_CORE_CONTENTION_POLICY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::core {

enum class ContentionPolicyKind { kFcfs, kPriority, kFairShare };

/// Registry name of the built-in policy ("fcfs", "priority", "fair-share").
[[nodiscard]] std::string to_string(ContentionPolicyKind kind);

/// Inverse of to_string(ContentionPolicyKind); empty optional when the
/// name matches no built-in policy.
[[nodiscard]] std::optional<ContentionPolicyKind>
contention_policy_from_string(std::string_view text);

/// One participant's pending acquisition of machine time. Requests are
/// keyed by (participant, resource): a participant has at most one in
/// flight per resource (the head of its local queue), refreshed on every
/// retry and cleared when the grant is committed or withdrawn.
struct ContentionRequest {
  /// Session-assigned registration index (stable, deterministic).
  std::size_t participant = 0;
  /// Caller-chosen identity of the work behind the request (engines pass
  /// the job id). Lets a request withdrawn by a reschedule and then
  /// re-registered for the same work keep its wait baseline.
  std::uint64_t tag = 0;
  grid::ResourceId resource = grid::kInvalidResource;
  /// Earliest start feasible for the participant itself (inputs, own
  /// bookings, machine arrival) as of the latest refresh.
  sim::Time ready = sim::kTimeZero;
  /// Projected nominal run length of the job behind the request.
  double duration = 0.0;
  /// The owning workflow's priority / fair-share weight.
  double priority = 1.0;
  /// `ready` at first registration — the base of the wait metrics.
  sim::Time first_ready = sim::kTimeZero;
  /// When the owning workflow first asked the session for machine time
  /// (its activation): the base of fair-share stretch normalization.
  sim::Time active_since = sim::kTimeZero;
  /// Scale of the owning workflow: its release-time plan length
  /// (SessionParticipant::planned_finish() minus the activation). Zero
  /// when the participant does not plan ahead.
  double planned_span = 0.0;
};

/// Everything a policy sees when granting one request. The pending list
/// covers the request's resource in registration order and includes the
/// request itself; `others_busy` is the latest committed booking of any
/// other participant on that resource (the FCFS floor).
struct ContentionQuery {
  const ContentionRequest* request = nullptr;
  sim::Time now = sim::kTimeZero;
  sim::Time others_busy = sim::kTimeZero;
  const std::vector<ContentionRequest>* pending = nullptr;
};

/// Decides the start time granted to each acquisition request. grant()
/// must be const and deterministic (it also serves what-if peeks from
/// decision heuristics); state such as fair-share usage mutates only in
/// on_commit(). A grant at or before the request's ready time means "go
/// now"; later values tell the caller when to retry — by then the favored
/// competitors have either committed (their bookings move `others_busy`)
/// or withdrawn, so repeated grants converge.
class ContentionPolicy {
 public:
  virtual ~ContentionPolicy() = default;

  [[nodiscard]] virtual ContentionPolicyKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual sim::Time grant(const ContentionQuery& query) const = 0;

  /// A granted request started running over [start, end): usage
  /// accounting hook. Default is a no-op.
  virtual void on_commit(const ContentionRequest& request, sim::Time start,
                         sim::Time end);

  /// Whether grants can move EARLIER when another request commits or
  /// withdraws. When true the session wakes the remaining requesters of
  /// the resource so deferred workflows re-evaluate immediately instead
  /// of polling a stale projection while the machine idles. FCFS grants
  /// depend only on committed bookings (which never shrink), so it opts
  /// out and keeps the historical event stream untouched.
  [[nodiscard]] virtual bool needs_change_notifications() const;
};

/// Builds a fresh instance of a built-in policy.
[[nodiscard]] std::unique_ptr<ContentionPolicy> make_contention_policy(
    ContentionPolicyKind kind);

/// Process-wide, thread-safe name -> factory registry, pre-populated with
/// the built-ins under their to_string names. Every SimulationSession
/// resolves its environment's policy name here, so registered custom
/// policies are selectable from the bench/exp --contention-policy axes.
class ContentionPolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ContentionPolicy>()>;

  static ContentionPolicyRegistry& instance();

  /// Registers a factory; a policy with the same name is replaced.
  void register_policy(std::string name, Factory factory);

  /// Builds a fresh policy instance; throws std::invalid_argument listing
  /// the known names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<ContentionPolicy> create(
      std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

 private:
  ContentionPolicyRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_CONTENTION_POLICY_H_
