// Pluggable arbitration of cross-workflow machine contention.
//
// The session routes every demand for machine time through its
// ResourceLedger (resource_ledger.h); the ContentionPolicy decides the
// start time each queued ledger entry is granted. Three policies ship:
//
//  - kFcfs       first-come-first-served; bit-compatible with the
//                pre-policy behavior (grant = committed bookings of the
//                other participants, ties broken by event order).
//  - kPriority   strict priorities: a request defers behind every queued
//                entry of a strictly higher-priority workflow. Equal
//                priorities degrade to FCFS. Low-priority workflows can
//                starve — that is the policy's contract; the session's
//                wait metrics make the starvation measurable.
//  - kFairShare  stretch fairness: each workflow's elapsed time in the
//                session is normalized by its own uncontended plan
//                length, and a workflow whose normalized delay (stretch)
//                runs far beyond a competitor's displaces it. Equal
//                absolute waits crush short workflows while barely
//                registering for long ones — normalizing by the
//                workflow's own scale is what bounds the worst slowdown
//                instead of just equalizing machine hours.
//
// Policies are per-session state (fair share accumulates usage), so the
// session constructs its own instance from the environment's registry
// name; see SessionEnvironment::contention_policy.
#ifndef AHEFT_CORE_CONTENTION_POLICY_H_
#define AHEFT_CORE_CONTENTION_POLICY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/resource_ledger.h"
#include "sim/time.h"

namespace aheft::core {

enum class ContentionPolicyKind { kFcfs, kPriority, kFairShare };

/// Registry name of the built-in policy ("fcfs", "priority", "fair-share").
[[nodiscard]] std::string to_string(ContentionPolicyKind kind);

/// Inverse of to_string(ContentionPolicyKind); empty optional when the
/// name matches no built-in policy.
[[nodiscard]] std::optional<ContentionPolicyKind>
contention_policy_from_string(std::string_view text);

/// Everything a policy sees when granting one ledger entry. The queue is
/// the resource's pending + held entries in registration order and
/// includes the request itself when it is registered (what-if peeks pass
/// an unregistered probe); `others_busy` is the latest committed booking
/// of any other participant on that resource (the FCFS floor).
struct ContentionQuery {
  const ReservationEntry* request = nullptr;
  sim::Time now = sim::kTimeZero;
  sim::Time others_busy = sim::kTimeZero;
  const std::vector<ReservationEntry>* queue = nullptr;
};

/// Decides the start time granted to each queued ledger entry. grant()
/// must be const and deterministic (it also serves what-if peeks from
/// decision heuristics); state such as fair-share usage mutates only in
/// on_commit(). A grant at or before the request's ready time means "go
/// now"; later values tell the caller when to retry — by then the favored
/// competitors have either committed (their bookings move `others_busy`)
/// or withdrawn, so repeated grants converge.
class ContentionPolicy {
 public:
  virtual ~ContentionPolicy() = default;

  [[nodiscard]] virtual ContentionPolicyKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual sim::Time grant(const ContentionQuery& query) const = 0;

  /// A granted entry started running over [start, end): usage accounting
  /// hook. Default is a no-op.
  virtual void on_commit(const ReservationEntry& entry, sim::Time start,
                         sim::Time end);

  /// Whether grants can move EARLIER when another entry commits or
  /// withdraws. When true the session wakes the remaining queued owners
  /// of the resource so deferred workflows re-evaluate immediately
  /// instead of polling a stale projection while the machine idles. FCFS
  /// grants depend only on committed bookings (which never shrink), so it
  /// opts out and keeps the historical event stream untouched.
  [[nodiscard]] virtual bool needs_change_notifications() const;

  /// Whether just-in-time (dynamic) dispatch should reserve→commit in two
  /// phases under this policy: a dynamic decision whose granted start
  /// lies in the future stays a queued (visible, displaceable) ledger
  /// entry until the grant matures, instead of advance-booking the slot
  /// instantly. FCFS opts out — instant advance booking is its
  /// historical, bit-stable behavior — so it returns false by default
  /// when change notifications are off.
  [[nodiscard]] virtual bool two_phase_dynamic() const;

  /// Whether this policy's arbitration may escalate to revoking a
  /// *committed* window (preemption of running work). Policies without a
  /// starvation notion opt out (default); fair-share opts in. The
  /// session additionally requires the environment's resilience config
  /// to enable preemption, so a capable policy alone changes nothing.
  [[nodiscard]] virtual bool supports_preemption() const;

  /// Starvation measure of `entry` at `now` for preemption comparisons;
  /// only meaningful when supports_preemption() (default 0). The session
  /// compares a deferred requester's value against the value of the
  /// committed window's owner under the resilience deadband.
  [[nodiscard]] virtual double preemption_stretch(
      const ReservationEntry& entry, sim::Time now) const;
};

/// Builds a fresh instance of a built-in policy.
[[nodiscard]] std::unique_ptr<ContentionPolicy> make_contention_policy(
    ContentionPolicyKind kind);

/// Process-wide, thread-safe name -> factory registry, pre-populated with
/// the built-ins under their to_string names. Every SimulationSession
/// resolves its environment's policy name here, so registered custom
/// policies are selectable from the bench/exp --contention-policy axes.
class ContentionPolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ContentionPolicy>()>;

  static ContentionPolicyRegistry& instance();

  /// Registers a factory; a policy with the same name is replaced.
  void register_policy(std::string name, Factory factory);

  /// Builds a fresh policy instance; throws std::invalid_argument listing
  /// the known names when `name` is unknown.
  [[nodiscard]] std::unique_ptr<ContentionPolicy> create(
      std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;  ///< sorted

 private:
  ContentionPolicyRegistry();

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_CONTENTION_POLICY_H_
