#include "core/rescheduler.h"

#include <algorithm>
#include <optional>

#include "core/ranking.h"
#include "support/assert.h"

namespace aheft::core {

namespace {

void check_request(const RescheduleRequest& request) {
  AHEFT_REQUIRE(request.dag != nullptr, "request needs a DAG");
  AHEFT_REQUIRE(request.dag->finalized(), "DAG must be finalized");
  AHEFT_REQUIRE(request.estimates != nullptr, "request needs estimates");
  AHEFT_REQUIRE(request.pool != nullptr, "request needs a resource pool");
  AHEFT_REQUIRE(!request.resources.empty(),
                "request needs at least one visible resource");
  AHEFT_REQUIRE((request.snapshot == nullptr) == (request.previous == nullptr),
                "snapshot and previous schedule come together");
  AHEFT_REQUIRE(!request.restrict_to_previous || request.previous != nullptr,
                "re-pricing mode needs a previous schedule to restrict to");
  if (request.snapshot != nullptr) {
    AHEFT_REQUIRE(request.snapshot->job_count() == request.dag->job_count(),
                  "snapshot sized for a different DAG");
    AHEFT_REQUIRE(sim::time_eq(request.snapshot->clock(), request.clock),
                  "snapshot clock differs from request clock");
  }
  for (const grid::ResourceId r : request.resources) {
    AHEFT_REQUIRE(request.pool->resource(r).available_at(request.clock) ||
                      request.pool->resource(r).arrival == request.clock,
                  "resource in visible set is not available at clock");
  }
}

/// Seeds a fresh S1 with history: finished jobs always keep their actual
/// slots; running jobs are pinned under kKeepRunning when still feasible.
Schedule pin_history(const RescheduleRequest& request,
                     std::vector<bool>& pinned) {
  const dag::Dag& dag = *request.dag;
  Schedule result(dag.job_count());
  pinned.assign(dag.job_count(), false);
  const ExecutionSnapshot* snapshot = request.snapshot;
  if (snapshot == nullptr) {
    return result;
  }
  for (dag::JobId i = 0; i < dag.job_count(); ++i) {
    if (snapshot->finished(i)) {
      const FinishedInfo& info = snapshot->finished_info(i);
      result.assign(Assignment{i, info.resource, info.ast, info.aft});
      pinned[i] = true;
    }
  }
  if (request.config.running_policy == RunningJobPolicy::kKeepRunning) {
    for (const RunningInfo& info : snapshot->running()) {
      // A running job can only be kept if its resource is still in the
      // visible set and survives long enough — otherwise it is implicitly
      // restarted (rescheduling as the fault-tolerance mechanism).
      const bool visible =
          std::find(request.resources.begin(), request.resources.end(),
                    info.resource) != request.resources.end();
      const bool fits =
          sim::time_le(info.expected_finish,
                       request.pool->resource(info.resource).departure);
      if (!visible || !fits) {
        continue;
      }
      result.assign(Assignment{info.job, info.resource, info.ast,
                               info.expected_finish});
      pinned[info.job] = true;
    }
  }
  return result;
}

/// One greedy pass (the paper's Fig. 3 procedure) over a given job order.
Schedule schedule_in_order(const RescheduleRequest& request,
                           const std::vector<dag::JobId>& order) {
  const dag::Dag& dag = *request.dag;
  const grid::CostProvider& est = *request.estimates;

  std::vector<bool> pinned;
  Schedule result = pin_history(request, pinned);

  for (const dag::JobId job : order) {
    if (pinned[job]) {
      continue;
    }
    grid::ResourceId best_resource = grid::kInvalidResource;
    sim::Time best_start = sim::kTimeInfinity;
    sim::Time best_finish = sim::kTimeInfinity;

    // Re-pricing restricts the search to the resource the previous plan
    // chose; the full visible set stays the fallback for jobs whose kept
    // resource became infeasible (departed, or its window filled up).
    std::vector<grid::ResourceId> kept;
    if (request.restrict_to_previous &&
        request.previous->assigned(job)) {
      kept.push_back(request.previous->assignment(job).resource);
    }

    const auto search = [&](const std::vector<grid::ResourceId>& candidates,
                            const AvailabilityView* availability) {
      for (const grid::ResourceId r : candidates) {
        const grid::Resource& machine = request.pool->resource(r);
        // avail[j]: a resource is usable from its arrival, and never
        // before the rescheduling clock.
        const sim::Time not_before = std::max(request.clock, machine.arrival);

        // Inner max of Eq. 2: all inputs present on r.
        sim::Time ready = sim::kTimeZero;
        for (const std::uint32_t e : dag.in_edges(job)) {
          ready = std::max(ready, file_available(request, e, r, result));
        }

        const double w = est.compute_cost(job, r);
        const sim::Time start =
            result.earliest_slot(r, ready, w, request.config.slot_policy,
                                 not_before, machine.departure, availability);
        if (start == sim::kTimeInfinity) {
          continue;  // does not fit in the resource's availability window
        }
        const sim::Time finish = start + w;  // Eq. 3
        // Strictly smaller EFT wins; near-equal EFTs keep the earlier
        // resource in visible-set order, matching [19]'s published
        // schedules.
        if (best_resource == grid::kInvalidResource ||
            (finish < best_finish && !sim::time_eq(finish, best_finish))) {
          best_resource = r;
          best_start = start;
          best_finish = finish;
        }
      }
    };

    const std::vector<grid::ResourceId>& primary =
        kept.empty() ? request.resources : kept;
    search(primary, request.availability);
    if (best_resource == grid::kInvalidResource &&
        request.availability != nullptr) {
      // Foreign load filled every machine's remaining window. The blind
      // estimate is still executable — held claims are displaceable and
      // committed windows may truncate — so degrade to it for this job
      // rather than declaring a live grid infeasible.
      search(primary, nullptr);
    }
    if (best_resource == grid::kInvalidResource && !kept.empty()) {
      // The kept resource is gone for good (typically departed): let the
      // re-priced plan move this job like a real reschedule would.
      search(request.resources, request.availability);
      if (best_resource == grid::kInvalidResource &&
          request.availability != nullptr) {
        search(request.resources, nullptr);
      }
    }

    if (best_resource == grid::kInvalidResource &&
        request.allow_infeasible) {
      // Every visible machine departs before this job could finish. With
      // restart semantics on, infeasibility is an outcome rather than an
      // error: place the job on the longest-surviving machine (the wall
      // that salvages the most checkpointed progress) and let the
      // executor's departure handling take it from there.
      sim::Time best_departure = -sim::kTimeInfinity;
      for (const grid::ResourceId r : request.resources) {
        const grid::Resource& machine = request.pool->resource(r);
        const sim::Time not_before = std::max(request.clock, machine.arrival);
        sim::Time ready = sim::kTimeZero;
        for (const std::uint32_t e : dag.in_edges(job)) {
          ready = std::max(ready, file_available(request, e, r, result));
        }
        const double w = est.compute_cost(job, r);
        const sim::Time start =
            result.earliest_slot(r, ready, w, request.config.slot_policy,
                                 not_before, sim::kTimeInfinity, nullptr);
        const sim::Time finish = start + w;
        if (best_resource == grid::kInvalidResource ||
            machine.departure > best_departure ||
            (sim::time_eq(machine.departure, best_departure) &&
             finish < best_finish)) {
          best_resource = r;
          best_start = start;
          best_finish = finish;
          best_departure = machine.departure;
        }
      }
    }

    AHEFT_ASSERT(best_resource != grid::kInvalidResource,
                 "no feasible resource for job " + dag.job(job).name);
    result.assign(Assignment{job, best_resource, best_start, best_finish});
  }

  return result;
}

}  // namespace

sim::Time file_available(const RescheduleRequest& request,
                         std::size_t edge_index, grid::ResourceId target,
                         const Schedule& new_schedule) {
  const dag::Dag& dag = *request.dag;
  const dag::Edge& edge = dag.edges()[edge_index];
  const dag::JobId producer = edge.from;
  const grid::CostProvider& est = *request.estimates;

  if (request.snapshot != nullptr && request.snapshot->finished(producer)) {
    const FinishedInfo& info = request.snapshot->finished_info(producer);
    // Case 1 / "otherwise with finished n_m": the output already sits on
    // (or is in flight to) `target` because of schedule S0.
    const auto& arrivals = request.snapshot->arrivals(edge_index);
    if (const auto it = arrivals.find(target); it != arrivals.end()) {
      return it->second;
    }
    // Case 2: finished, but the output was never directed to `target`.
    const double c = est.comm_cost(edge, info.resource, target);
    const grid::Resource& machine = request.pool->resource(target);
    switch (request.config.transfer_policy) {
      case TransferPolicy::kRetransmitFromClock:
        // "The file transmission can not be earlier than clock."
        return request.clock + c;
      case TransferPolicy::kEagerReplicate:
        // The copy left at max(AFT, target arrival).
        return std::max(info.aft, machine.arrival) + c;
      case TransferPolicy::kPrestagedArrivals:
        // A joining resource syncs previously produced files on arrival.
        return std::max(info.aft + c, machine.arrival);
    }
    return request.clock + c;
  }

  // Unfinished predecessor: it is pinned or already placed in S1 (rank
  // order guarantees predecessors are handled first).
  AHEFT_ASSERT(new_schedule.assigned(producer),
               "predecessor " + dag.job(producer).name +
                   " not yet placed — rank order violated");
  const Assignment& placed = new_schedule.assignment(producer);
  if (placed.resource == target) {
    return placed.finish;  // Case 3
  }
  // Otherwise: output follows the (new) schedule with one transfer.
  return placed.finish + est.comm_cost(edge, placed.resource, target);
}

Schedule aheft_schedule(const RescheduleRequest& request) {
  check_request(request);
  const dag::Dag& dag = *request.dag;

  if (request.restrict_to_previous) {
    // Re-pricing: keep the previous plan's mapping and per-resource order
    // by walking its jobs in start order (a linear extension of both the
    // precedence and the per-resource queues, since the plan was
    // feasible). Under an empty view this reproduces the previous
    // schedule exactly; under a fresh view it re-times the same plan
    // against today's foreign load. Order exploration is meaningless
    // with the mapping fixed, so the pass is single-shot.
    std::vector<dag::JobId> order(dag.job_count());
    for (dag::JobId i = 0; i < dag.job_count(); ++i) {
      order[i] = i;
    }
    // Jobs the previous plan did not cover sort last (schedule_in_order
    // remaps them over the full visible set), so a partial previous
    // schedule degrades instead of aborting.
    const auto start_of = [&](dag::JobId job) {
      const std::optional<Assignment>& slot =
          request.previous->maybe_assignment(job);
      return slot ? slot->start : sim::kTimeInfinity;
    };
    std::sort(order.begin(), order.end(),
              [&](dag::JobId a, dag::JobId b) {
                const sim::Time sa = start_of(a);
                const sim::Time sb = start_of(b);
                if (sa != sb) {
                  return sa < sb;
                }
                return a < b;
              });
    return schedule_in_order(request, order);
  }

  // Upward ranks over the visible resource set (Eq. 5/6), most significant
  // jobs first (Fig. 3 lines 2–3).
  const std::vector<double> ranks =
      upward_ranks(dag, *request.estimates, request.resources);
  const std::vector<dag::JobId> order = rank_order(ranks);

  Schedule best = schedule_in_order(request, order);

  // Optional order exploration: strict rank order is a heuristic, and jobs
  // with nearly equal ranks can legally schedule in either order. Trying a
  // few single-swap variants recovers schedules like the paper's Fig. 5(b),
  // which beats strict rank order by one near-tie swap.
  std::size_t tried = 0;
  for (std::size_t k = 0;
       k + 1 < order.size() && tried < request.config.order_candidates; ++k) {
    const dag::JobId a = order[k];
    const dag::JobId b = order[k + 1];
    const double gap = ranks[a] - ranks[b];
    const double scale = std::max(1.0, std::max(ranks[a], ranks[b]));
    if (gap > request.config.rank_tie_fraction * scale) {
      continue;
    }
    // Swapping is only legal if it does not violate precedence.
    const std::vector<dag::JobId> succ_of_a = dag.successors(a);
    if (std::find(succ_of_a.begin(), succ_of_a.end(), b) != succ_of_a.end()) {
      continue;
    }
    std::vector<dag::JobId> variant = order;
    std::swap(variant[k], variant[k + 1]);
    ++tried;
    Schedule candidate = schedule_in_order(request, variant);
    if (candidate.makespan() <
        best.makespan() - sim::kTimeEpsilon * (1.0 + best.makespan())) {
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace aheft::core
