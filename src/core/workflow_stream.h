// Multi-DAG workflow streams: many independent workflow instances
// submitted to one shared session at their arrival times.
//
// The paper evaluates strategies on one workflow at a time; a production
// grid serves a stream of competing jobs. The stream layer consumes
// arrival records (typically CompiledScenario::job_arrivals), launches
// one strategy execution per instance on the shared simulator clock, and
// lets them contend for the same machines through the session's
// contention policy (FCFS / priority / fair share; see
// SessionEnvironment::contention_policy). Per-workflow makespans,
// slowdowns (vs an uncontended solo run of the same instance at the same
// release time), and contention waits plus aggregate throughput and
// Jain's fairness index land in a StreamOutcome.
#ifndef AHEFT_CORE_WORKFLOW_STREAM_H_
#define AHEFT_CORE_WORKFLOW_STREAM_H_

#include <string>
#include <vector>

#include "core/strategy.h"

namespace aheft::core {

/// One workflow instance of the stream. The DAG and cost providers must
/// outlive the stream run.
struct WorkflowInstance {
  std::string name;
  const dag::Dag* dag = nullptr;
  const grid::CostProvider* estimates = nullptr;
  const grid::CostProvider* actual = nullptr;
  sim::Time arrival = sim::kTimeZero;
  /// Weight under the session's contention policy (see LaunchOptions).
  double priority = 1.0;
};

struct WorkflowResult {
  std::string name;
  sim::Time arrival = sim::kTimeZero;
  sim::Time finish = sim::kTimeZero;    ///< completion on the shared clock
  sim::Time makespan = sim::kTimeZero;  ///< finish - arrival (response time)
  /// Contended makespan over the instance's solo makespan in the same
  /// environment (>= ~1 under contention; exactly 1 when not computed).
  double slowdown = 1.0;
  /// Machine time this workflow spent waiting on competitors (total and
  /// worst single acquisition) under the session's contention policy.
  double wait = 0.0;
  double max_wait = 0.0;
  StrategyOutcome outcome;
};

struct StreamOutcome {
  std::vector<WorkflowResult> workflows;  ///< arrival order
  sim::Time span = sim::kTimeZero;        ///< max finish - min arrival
  double throughput = 0.0;                ///< workflows per unit of span
  double mean_makespan = 0.0;
  double max_makespan = 0.0;
  double mean_slowdown = 1.0;
  double max_slowdown = 1.0;
  /// Cross-workflow starvation picture: average / worst per-workflow
  /// contention wait, and Jain's fairness index over the per-workflow
  /// slowdowns (over makespans when slowdowns were not computed) — 1
  /// means every workflow was degraded equally.
  double mean_wait = 0.0;
  double max_wait = 0.0;
  double jain_fairness = 1.0;
  /// Resilience aggregate. Workflows that failed terminally (an active
  /// resilience config's DepartureAction::kFail, the revocation cap, or
  /// no machine left to requeue on) are excluded from the makespan /
  /// slowdown / fairness statistics above and from the throughput
  /// numerator; their contention waits still count. Work is in nominal
  /// machine-seconds: `useful_work` counted toward completions or
  /// survived in checkpoint images, `lost_work` was redone, and
  /// `checkpoint_overhead` paid for writes and restart reads. Goodput is
  /// useful over total machine-seconds spent (1 when none were spent).
  std::size_t completed_workflows = 0;
  std::size_t failed_workflows = 0;
  std::size_t revoked_jobs = 0;
  double lost_work = 0.0;
  double checkpoint_overhead = 0.0;
  double useful_work = 0.0;
  double goodput = 1.0;
};

struct StreamConfig {
  /// Also run every instance solo (same environment and release, empty
  /// session) to price the contention: slowdown = contended / solo.
  /// The solo runs are independent single-workflow simulations, so they
  /// fan out on a thread pool (order-independent: each lands in its own
  /// result slot) instead of doubling the stream's wall time serially.
  bool compute_slowdowns = true;
  /// Workers for the solo fan-out and, when the environment asks for
  /// shards but names no shard_workers, for the epoch barriers too.
  /// Null makes the stream create a hardware-sized pool of its own for
  /// the duration of the call.
  ThreadPool* workers = nullptr;
};

/// Runs `instances` through `driver` inside one session over `env`.
/// Instances are launched in (arrival, insertion) order, which makes the
/// whole stream deterministic for a fixed input. The driver keeps the
/// per-launch state alive, so one driver can serve the stream run plus
/// the solo baselines.
///
/// With SessionEnvironment::shards > 1 the session's machines are
/// partitioned across parallel event-loop shards and each instance is
/// pinned round-robin (in arrival order) to one shard: it contends only
/// for that shard's machines, and the shards tick in lock-step epochs on
/// the thread pool. Trace recorders and history repositories compose with
/// the sharded run: each shard writes a private stamped sink the session
/// merges at tick barriers in (time, origin shard, origin seq) order. A
/// fixed shard count gives bit-identical outcomes — and byte-identical
/// merged sinks — run to run; shards = 1 is bit-identical to the
/// historical serial stream, sinks included.
[[nodiscard]] StreamOutcome run_workflow_stream(
    const SessionEnvironment& env, StrategyDriver& driver,
    std::vector<WorkflowInstance> instances, StreamConfig config = {});

}  // namespace aheft::core

#endif  // AHEFT_CORE_WORKFLOW_STREAM_H_
