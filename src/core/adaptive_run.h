// One-call entry points for the three strategies the paper compares:
// static HEFT, adaptive AHEFT, and dynamic just-in-time scheduling.
#ifndef AHEFT_CORE_ADAPTIVE_RUN_H_
#define AHEFT_CORE_ADAPTIVE_RUN_H_

#include "core/dynamic_scheduler.h"
#include "core/planner.h"

namespace aheft::core {

/// Makespan and bookkeeping of one simulated strategy run.
struct StrategyOutcome {
  sim::Time makespan = sim::kTimeZero;
  std::size_t evaluations = 0;
  std::size_t adoptions = 0;
  std::size_t restarts = 0;
};

/// Static HEFT: plan once at t = 0 over the initial pool, never react.
/// `load` optionally scales the realized run times (trace scenarios).
[[nodiscard]] StrategyOutcome run_static_heft(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::CostProvider& actual, const grid::ResourcePool& pool,
    SchedulerConfig config = {}, sim::TraceRecorder* trace = nullptr,
    const grid::LoadProfile* load = nullptr);

/// AHEFT: plan at t = 0, then reschedule on pool-change events (Fig. 2).
[[nodiscard]] StrategyOutcome run_adaptive_aheft(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::CostProvider& actual, const grid::ResourcePool& pool,
    PlannerConfig config = {}, sim::TraceRecorder* trace = nullptr,
    grid::PerformanceHistoryRepository* history = nullptr);

/// Dynamic baseline: just-in-time decisions with the given heuristic.
[[nodiscard]] StrategyOutcome run_dynamic_baseline(
    const dag::Dag& dag, const grid::CostProvider& actual,
    const grid::ResourcePool& pool,
    DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
    sim::TraceRecorder* trace = nullptr);

}  // namespace aheft::core

#endif  // AHEFT_CORE_ADAPTIVE_RUN_H_
