// Legacy one-call entry points for the three strategies the paper
// compares: static HEFT, adaptive AHEFT, and dynamic just-in-time
// scheduling.
//
// DEPRECATED in favor of core::run_strategy (strategy.h): all three
// functions are thin shims that assemble a SessionEnvironment from their
// historical argument lists and route through the unified
// StrategyDriver/SimulationSession machinery. They are kept because the
// per-strategy signatures read well in examples and tests; new code —
// and anything that needs multi-DAG streams — should use strategy.h /
// workflow_stream.h directly.
#ifndef AHEFT_CORE_ADAPTIVE_RUN_H_
#define AHEFT_CORE_ADAPTIVE_RUN_H_

#include "core/strategy.h"

namespace aheft::core {

/// Static HEFT: plan once at t = 0 over the initial pool, never react.
/// `load` optionally scales the realized run times (trace scenarios).
[[nodiscard]] StrategyOutcome run_static_heft(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::CostProvider& actual, const grid::ResourcePool& pool,
    SchedulerConfig config = {}, sim::TraceRecorder* trace = nullptr,
    const grid::LoadProfile* load = nullptr);

/// AHEFT: plan at t = 0, then reschedule on pool-change events (Fig. 2).
[[nodiscard]] StrategyOutcome run_adaptive_aheft(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::CostProvider& actual, const grid::ResourcePool& pool,
    PlannerConfig config = {}, sim::TraceRecorder* trace = nullptr,
    grid::PerformanceHistoryRepository* history = nullptr);

/// Dynamic baseline: just-in-time decisions with the given heuristic.
/// `load` optionally scales the realized run times.
[[nodiscard]] StrategyOutcome run_dynamic_baseline(
    const dag::Dag& dag, const grid::CostProvider& actual,
    const grid::ResourcePool& pool,
    DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
    sim::TraceRecorder* trace = nullptr,
    const grid::LoadProfile* load = nullptr);

}  // namespace aheft::core

#endif  // AHEFT_CORE_ADAPTIVE_RUN_H_
