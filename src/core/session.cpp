#include "core/session.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

SimulationSession::SimulationSession(const SessionEnvironment& env)
    : env_(env) {
  AHEFT_REQUIRE(env.pool != nullptr, "session environment needs a pool");
}

void SimulationSession::add_participant(
    const SessionParticipant* participant) {
  AHEFT_REQUIRE(participant != nullptr,
                "cannot register a null session participant");
  if (std::find(participants_.begin(), participants_.end(), participant) ==
      participants_.end()) {
    participants_.push_back(participant);
  }
}

sim::Time SimulationSession::contended_until(
    const SessionParticipant* self, grid::ResourceId resource) const {
  sim::Time until = sim::kTimeZero;
  for (const SessionParticipant* participant : participants_) {
    if (participant == self) {
      continue;
    }
    until = std::max(until, participant->busy_until(resource));
  }
  return until;
}

}  // namespace aheft::core
