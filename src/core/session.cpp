#include "core/session.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

SimulationSession::SimulationSession(const SessionEnvironment& env)
    : env_(env) {
  AHEFT_REQUIRE(env.pool != nullptr, "session environment needs a pool");
  policy_ = ContentionPolicyRegistry::instance().create(
      env.contention_policy.empty() ? "fcfs" : env.contention_policy);
}

SimulationSession::~SimulationSession() = default;

void SessionParticipant::contention_changed(grid::ResourceId /*resource*/) {}

sim::Time SessionParticipant::planned_finish() const { return sim::kTimeZero; }

void SimulationSession::add_participant(SessionParticipant* participant,
                                        double priority) {
  AHEFT_REQUIRE(participant != nullptr,
                "cannot register a null session participant");
  AHEFT_REQUIRE(priority > 0.0,
                "participant priority / weight must be positive");
  for (const ParticipantRecord& record : participants_) {
    if (record.participant == participant) {
      return;
    }
  }
  participants_.push_back(ParticipantRecord{participant, priority, -1.0, {}});
}

std::size_t SimulationSession::index_of(
    const SessionParticipant* participant) const {
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (participants_[i].participant == participant) {
      return i;
    }
  }
  throw std::invalid_argument(
      "participant is not registered with this session");
}

sim::Time SimulationSession::contended_until(
    const SessionParticipant* self, grid::ResourceId resource) const {
  sim::Time until = sim::kTimeZero;
  for (const ParticipantRecord& record : participants_) {
    if (record.participant == self) {
      continue;
    }
    until = std::max(until, record.participant->busy_until(resource));
  }
  return until;
}

sim::Time SimulationSession::grant_for(
    const ContentionRequest& request, const SessionParticipant* self,
    const std::vector<ContentionRequest>& pending) const {
  ContentionQuery query;
  query.request = &request;
  query.now = simulator_.now();
  query.others_busy = contended_until(self, request.resource);
  query.pending = &pending;
  // Policies may only delay a request, never reach before its own
  // feasible start.
  return std::max(request.ready, policy_->grant(query));
}

sim::Time SimulationSession::acquire(const SessionParticipant* self,
                                     grid::ResourceId resource,
                                     sim::Time ready, double duration,
                                     std::uint64_t tag) {
  AHEFT_REQUIRE(duration >= 0.0, "acquisition duration must be >= 0");
  const std::size_t index = index_of(self);
  ParticipantRecord& record = participants_[index];
  if (record.active_since < 0.0) {
    record.active_since = ready;
  }
  std::vector<ContentionRequest>& pending = pending_[resource];
  ContentionRequest* request = nullptr;
  for (ContentionRequest& candidate : pending) {
    if (candidate.participant == index) {
      request = &candidate;
      break;
    }
  }
  if (request == nullptr) {
    ContentionRequest fresh;
    fresh.participant = index;
    fresh.tag = tag;
    fresh.resource = resource;
    fresh.first_ready = ready;
    // Work withdrawn by a reschedule and re-requested resumes its wait
    // clock instead of restarting it.
    if (const auto carried = carried_first_ready_.find({index, tag});
        carried != carried_first_ready_.end()) {
      fresh.first_ready = std::min(fresh.first_ready, carried->second);
      carried_first_ready_.erase(carried);
    }
    pending.push_back(fresh);
    request = &pending.back();
  }
  request->tag = tag;
  request->ready = ready;
  request->duration = duration;
  request->priority = record.priority;
  request->active_since = record.active_since;
  request->planned_span =
      std::max(0.0, self->planned_finish() - record.active_since);
  return grant_for(*request, self, pending);
}

sim::Time SimulationSession::peek(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration) const {
  const std::size_t index = index_of(self);
  const ParticipantRecord& record = participants_[index];
  ContentionRequest probe;
  probe.participant = index;
  probe.resource = resource;
  probe.ready = ready;
  probe.duration = duration;
  probe.priority = record.priority;
  probe.first_ready = ready;
  probe.active_since = record.active_since < 0.0 ? ready : record.active_since;
  probe.planned_span =
      std::max(0.0, self->planned_finish() - probe.active_since);
  static const std::vector<ContentionRequest> kNoPending;
  const auto it = pending_.find(resource);
  return grant_for(probe, self,
                   it == pending_.end() ? kNoPending : it->second);
}

void SimulationSession::commit(const SessionParticipant* self,
                               grid::ResourceId resource, sim::Time start,
                               sim::Time end) {
  const std::size_t index = index_of(self);
  const auto it = pending_.find(resource);
  AHEFT_ASSERT(it != pending_.end(),
               "commit without a pending acquisition on the resource");
  std::vector<ContentionRequest>& pending = it->second;
  const auto request =
      std::find_if(pending.begin(), pending.end(),
                   [index](const ContentionRequest& candidate) {
                     return candidate.participant == index;
                   });
  AHEFT_ASSERT(request != pending.end(),
               "commit without a pending acquisition by the participant");
  const double wait = std::max(0.0, start - request->first_ready);
  ContentionStats& stats = participants_[index].stats;
  stats.total_wait += wait;
  stats.max_wait = std::max(stats.max_wait, wait);
  ++stats.grants;
  policy_->on_commit(*request, start, end);
  carried_first_ready_.erase({index, request->tag});
  pending.erase(request);
  notify_pending(resource, self);
}

void SimulationSession::withdraw_all(const SessionParticipant* self) {
  const std::size_t index = index_of(self);
  for (auto& [resource, pending] : pending_) {
    const auto stale =
        std::remove_if(pending.begin(), pending.end(),
                       [this, index](const ContentionRequest& candidate) {
                         if (candidate.participant != index) {
                           return false;
                         }
                         // Keep the wait baseline: the reschedule may
                         // re-request the same work (same tag) and must
                         // not zero the contention wait already endured.
                         const auto [carried, inserted] =
                             carried_first_ready_.try_emplace(
                                 {index, candidate.tag},
                                 candidate.first_ready);
                         if (!inserted) {
                           carried->second = std::min(
                               carried->second, candidate.first_ready);
                         }
                         return true;
                       });
    const bool removed = stale != pending.end();
    pending.erase(stale, pending.end());
    if (removed) {
      notify_pending(resource, self);
    }
  }
}

void SimulationSession::notify_pending(grid::ResourceId resource,
                                       const SessionParticipant* self) {
  if (!policy_->needs_change_notifications()) {
    return;
  }
  const auto it = pending_.find(resource);
  if (it == pending_.end()) {
    return;
  }
  for (const ContentionRequest& request : it->second) {
    SessionParticipant* waiter = participants_[request.participant].participant;
    if (waiter == self) {
      continue;
    }
    // A fresh event: the notified participant may start jobs and commit,
    // which must not run inside the notifying participant's bookkeeping.
    simulator_.schedule_at(simulator_.now(), [waiter, resource] {
      waiter->contention_changed(resource);
    });
  }
}

ContentionStats SimulationSession::contention_stats(
    const SessionParticipant* participant) const {
  for (const ParticipantRecord& record : participants_) {
    if (record.participant == participant) {
      return record.stats;
    }
  }
  return {};
}

}  // namespace aheft::core
