#include "core/session.h"

#include <algorithm>
#include <limits>

#include "support/assert.h"

namespace aheft::core {

SimulationSession::SimulationSession(const SessionEnvironment& env)
    : env_(env) {
  AHEFT_REQUIRE(env.pool != nullptr, "session environment needs a pool");
  policy_ = ContentionPolicyRegistry::instance().create(
      env.contention_policy.empty() ? "fcfs" : env.contention_policy);
  // Backfill proves a hole fits from the request's nominal duration; a
  // load profile stretches realized run times past that proof, so the
  // combination is refused rather than silently overlapping.
  backfill_ = env.backfill && env.load == nullptr;
}

SimulationSession::~SimulationSession() = default;

void SessionParticipant::contention_changed(grid::ResourceId /*resource*/) {}

sim::Time SessionParticipant::planned_finish() const { return sim::kTimeZero; }

void SimulationSession::add_participant(SessionParticipant* participant,
                                        double priority) {
  AHEFT_REQUIRE(participant != nullptr,
                "cannot register a null session participant");
  AHEFT_REQUIRE(priority > 0.0,
                "participant priority / weight must be positive");
  for (const ParticipantRecord& record : participants_) {
    if (record.participant == participant) {
      return;
    }
  }
  participants_.push_back(ParticipantRecord{participant, priority, -1.0, {}});
}

std::size_t SimulationSession::index_of(
    const SessionParticipant* participant) const {
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (participants_[i].participant == participant) {
      return i;
    }
  }
  throw std::invalid_argument(
      "participant is not registered with this session");
}

sim::Time SimulationSession::grant_for(
    const ReservationEntry& entry,
    const std::vector<ReservationEntry>& queue) const {
  ContentionQuery query;
  query.request = &entry;
  query.now = simulator_.now();
  query.others_busy =
      ledger_.committed_until_excluding(entry.resource, entry.participant);
  query.queue = &queue;
  // Policies may only delay a request, never reach before its own
  // feasible start.
  sim::Time grant = std::max(entry.ready, policy_->grant(query));
  if (backfill_) {
    if (const auto hole =
            ledger_.backfill_start(entry, query.now, grant)) {
      grant = *hole;
    }
  }
  return grant;
}

sim::Time SimulationSession::acquire(const SessionParticipant* self,
                                     grid::ResourceId resource,
                                     sim::Time ready, double duration,
                                     std::uint64_t tag) {
  AHEFT_REQUIRE(duration >= 0.0, "acquisition duration must be >= 0");
  const std::size_t index = index_of(self);
  ParticipantRecord& record = participants_[index];
  if (record.active_since < 0.0) {
    record.active_since = ready;
  }
  const double planned_span =
      std::max(0.0, self->planned_finish() - record.active_since);
  const ReservationEntry& entry =
      ledger_.upsert(index, resource, tag, ready, duration, record.priority,
                     record.active_since, planned_span);
  return grant_for(entry, ledger_.queue(resource));
}

sim::Time SimulationSession::peek(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration) const {
  const std::size_t index = index_of(self);
  const ParticipantRecord& record = participants_[index];
  ReservationEntry probe;
  // A probe prices a hypothetical NEW registration: give it the newest
  // possible id so every held booking blocks it, exactly as it would
  // block the real acquire that follows.
  probe.id = std::numeric_limits<std::uint64_t>::max();
  probe.participant = index;
  probe.resource = resource;
  probe.ready = ready;
  probe.duration = duration;
  probe.priority = record.priority;
  probe.first_ready = ready;
  probe.active_since = record.active_since < 0.0 ? ready : record.active_since;
  probe.planned_span =
      std::max(0.0, self->planned_finish() - probe.active_since);
  return grant_for(probe, ledger_.queue(resource));
}

void SimulationSession::hold(const SessionParticipant* self,
                             grid::ResourceId resource, std::uint64_t tag,
                             sim::Time granted_start) {
  if (ledger_.hold(index_of(self), resource, tag, granted_start)) {
    // A claim that moved may leave another queued entry as the effective
    // head of the policy's service order: wake the queue so the machine
    // never idles waiting on a deferred claim's stale retry. Re-holds at
    // an unchanged start stay silent, which is what terminates the
    // same-instant re-arbitration cascade.
    notify_queued(resource, self);
  }
}

void SimulationSession::commit(const SessionParticipant* self,
                               grid::ResourceId resource, std::uint64_t tag,
                               sim::Time start, sim::Time end) {
  const std::size_t index = index_of(self);
  const ReservationEntry entry =
      ledger_.commit(index, resource, tag, start, end);
  const double wait = std::max(0.0, start - entry.first_ready);
  ContentionStats& stats = participants_[index].stats;
  stats.total_wait += wait;
  stats.max_wait = std::max(stats.max_wait, wait);
  ++stats.grants;
  policy_->on_commit(entry, start, end);
  notify_queued(resource, self);
}

void SimulationSession::withdraw_all(const SessionParticipant* self) {
  const std::size_t index = index_of(self);
  for (const grid::ResourceId resource : ledger_.withdraw_all(index)) {
    notify_queued(resource, self);
  }
}

void SimulationSession::withdraw(const SessionParticipant* self,
                                 grid::ResourceId resource,
                                 std::uint64_t tag) {
  if (ledger_.withdraw(index_of(self), resource, tag)) {
    notify_queued(resource, self);
  }
}

void SimulationSession::truncate_commit(const SessionParticipant* self,
                                        grid::ResourceId resource,
                                        std::uint64_t tag, sim::Time at) {
  ledger_.truncate_commit(index_of(self), resource, tag, at);
  notify_queued(resource, self);
}

void SimulationSession::notify_queued(grid::ResourceId resource,
                                      const SessionParticipant* self) {
  if (!wakeups_enabled()) {
    return;
  }
  // Wake each queued owner once, even when it holds several entries on
  // the resource (two-phase dynamic holds).
  std::vector<std::size_t> woken;
  for (const ReservationEntry& entry : ledger_.queue(resource)) {
    SessionParticipant* waiter = participants_[entry.participant].participant;
    if (waiter == self ||
        std::find(woken.begin(), woken.end(), entry.participant) !=
            woken.end()) {
      continue;
    }
    woken.push_back(entry.participant);
    // A fresh event: the notified participant may start jobs and commit,
    // which must not run inside the notifying participant's bookkeeping.
    simulator_.schedule_at(simulator_.now(), [waiter, resource] {
      waiter->contention_changed(resource);
    });
  }
}

AvailabilityView SimulationSession::availability_view(
    const SessionParticipant* self) const {
  return ledger_.snapshot_view(index_of(self), simulator_.now());
}

ContentionStats SimulationSession::contention_stats(
    const SessionParticipant* participant) const {
  for (const ParticipantRecord& record : participants_) {
    if (record.participant == participant) {
      return record.stats;
    }
  }
  return {};
}

}  // namespace aheft::core
