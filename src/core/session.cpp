#include "core/session.h"

#include <algorithm>
#include <limits>

#include "support/assert.h"

namespace aheft::core {

namespace {

std::size_t effective_shards(const SessionEnvironment& env) {
  AHEFT_REQUIRE(env.pool != nullptr, "session environment needs a pool");
  AHEFT_REQUIRE(env.shards >= 1, "session needs at least one shard");
  // Clamp so every shard owns at least one machine; empty shards would
  // only add barrier work.
  return std::min(env.shards, std::max<std::size_t>(
                                  1, env.pool->universe_size()));
}

}  // namespace

SimulationSession::SimulationSession(const SessionEnvironment& env)
    : env_(env), sharded_(effective_shards(env), env.epoch) {
  const std::size_t shards = sharded_.shard_count();
  // Backfill proves a hole fits from the request's nominal duration; a
  // load profile stretches realized run times past that proof, so the
  // combination is refused rather than silently overlapping.
  backfill_ = env.backfill && env.load == nullptr;
  resilience::validate(env.resilience);
  const std::string policy_name =
      env.contention_policy.empty() ? "fcfs" : env.contention_policy;
  states_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto state = std::make_unique<ShardState>();
    state->policy = ContentionPolicyRegistry::instance().create(policy_name);
    if (env.resilience.active()) {
      state->revocation =
          std::make_unique<resilience::RevocationManager>(env.resilience);
    }
    if (shards > 1) {
      for (const grid::Resource& resource : env.pool->all()) {
        grid::Resource copy = resource;
        if (shard_of(resource.id) != s) {
          // Foreign machine: never arrives on this shard, and an
          // infinite departure keeps it out of departs_in scans too.
          copy.arrival = sim::kTimeInfinity;
          copy.departure = sim::kTimeInfinity;
        }
        state->masked_pool.add(std::move(copy));
      }
      // Shard-private stamped sinks: written only by the shard's drain
      // thread, merged into the shared environment sinks at every tick
      // barrier by merge_shard_sinks().
      sim::Simulator* clock = &sharded_.shard(s);
      if (env.trace != nullptr) {
        state->trace_sink = std::make_unique<sim::StampedTraceSink>(
            [clock]() { return clock->now(); });
      }
      if (env.history != nullptr) {
        state->history_delta = std::make_unique<grid::HistoryDelta>(
            *env.history, [clock]() { return clock->now(); });
      }
    }
    states_.push_back(std::move(state));
  }
  if (shards > 1 && (env.trace != nullptr || env.history != nullptr)) {
    sharded_.set_barrier_hook([this]() { merge_shard_sinks(); });
  }
}

SimulationSession::~SimulationSession() = default;

void SessionParticipant::contention_changed(grid::ResourceId /*resource*/) {}

sim::Time SessionParticipant::planned_finish() const { return sim::kTimeZero; }

bool SessionParticipant::revoke_committed(grid::ResourceId /*resource*/,
                                          std::uint64_t /*tag*/) {
  return false;
}

const grid::ResourcePool& SimulationSession::pool() const noexcept {
  return sharded_.shard_count() == 1 ? *env_.pool : state().masked_pool;
}

sim::TraceRecorder* SimulationSession::trace() const noexcept {
  const ShardState& shard = state();
  return shard.trace_sink != nullptr ? shard.trace_sink.get() : env_.trace;
}

grid::PerformanceHistoryRepository* SimulationSession::history()
    const noexcept {
  const ShardState& shard = state();
  return shard.history_delta != nullptr ? shard.history_delta.get()
                                        : env_.history;
}

void SimulationSession::merge_shard_sinks() {
  // (stamp, origin shard, seq) is the same strict total order the staged
  // cross-shard message path applies at barriers: independent of worker
  // scheduling, so the merged sinks replay byte-identically run to run.
  if (env_.trace != nullptr) {
    struct TaggedTrace {
      sim::StampedTraceRecord record;
      std::size_t shard = 0;
    };
    std::vector<TaggedTrace> merged;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      for (sim::StampedTraceRecord& record :
           states_[s]->trace_sink->take_pending()) {
        merged.push_back(TaggedTrace{std::move(record), s});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const TaggedTrace& a, const TaggedTrace& b) {
                if (a.record.stamp != b.record.stamp) {
                  return a.record.stamp < b.record.stamp;
                }
                if (a.shard != b.shard) {
                  return a.shard < b.shard;
                }
                return a.record.seq < b.record.seq;
              });
    for (const TaggedTrace& tagged : merged) {
      const sim::TraceInterval& interval = tagged.record.interval;
      if (interval.kind == sim::IntervalKind::kCompute) {
        env_.trace->record_compute(interval.job, interval.resource,
                                   interval.start, interval.end);
      } else {
        env_.trace->record_transfer(interval.job, interval.consumer,
                                    interval.resource, interval.start,
                                    interval.end);
      }
    }
  }
  if (env_.history != nullptr) {
    struct TaggedObservation {
      grid::PendingObservation observation;
      std::size_t shard = 0;
    };
    std::vector<TaggedObservation> merged;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      for (grid::PendingObservation& observation :
           states_[s]->history_delta->take_pending()) {
        merged.push_back(TaggedObservation{std::move(observation), s});
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const TaggedObservation& a, const TaggedObservation& b) {
                if (a.observation.stamp != b.observation.stamp) {
                  return a.observation.stamp < b.observation.stamp;
                }
                if (a.shard != b.shard) {
                  return a.shard < b.shard;
                }
                return a.observation.seq < b.observation.seq;
              });
    for (const TaggedObservation& tagged : merged) {
      env_.history->record(tagged.observation.operation,
                           tagged.observation.resource,
                           tagged.observation.duration);
    }
  }
}

const ContentionPolicy& SimulationSession::policy() const noexcept {
  return *state().policy;
}

const ResourceLedger& SimulationSession::ledger() const noexcept {
  return state().ledger;
}

bool SimulationSession::two_phase_dynamic() const {
  return state().policy->two_phase_dynamic();
}

std::size_t SimulationSession::shard_of(grid::ResourceId resource) const {
  const std::size_t n = sharded_.shard_count();
  const std::size_t universe = env_.pool->universe_size();
  AHEFT_REQUIRE(resource < universe, "resource outside the universe");
  if (n == 1) {
    return 0;
  }
  if (env_.shard_assignment == ShardAssignment::kHashed) {
    return static_cast<std::size_t>(resource) % n;
  }
  // Contiguous blocks: resource r of a universe of U machines lands on
  // shard floor(r * n / U); block sizes differ by at most one.
  return static_cast<std::size_t>(resource) * n / universe;
}

SimulationSession::ShardState& SimulationSession::state_for(
    grid::ResourceId resource) {
  if (sharded_.shard_count() > 1) {
    AHEFT_REQUIRE(shard_of(resource) == sharded_.current_shard(),
                  "resource belongs to a different shard than the calling "
                  "participant's home shard");
  }
  return state();
}

const SimulationSession::ShardState& SimulationSession::state_for(
    grid::ResourceId resource) const {
  if (sharded_.shard_count() > 1) {
    AHEFT_REQUIRE(shard_of(resource) == sharded_.current_shard(),
                  "resource belongs to a different shard than the calling "
                  "participant's home shard");
  }
  return state();
}

void SimulationSession::add_participant(SessionParticipant* participant,
                                        double priority) {
  AHEFT_REQUIRE(participant != nullptr,
                "cannot register a null session participant");
  AHEFT_REQUIRE(priority > 0.0,
                "participant priority / weight must be positive");
  ShardState& shard = state();
  for (const ParticipantRecord& record : shard.participants) {
    if (record.participant == participant) {
      return;
    }
  }
  shard.participants.push_back(
      ParticipantRecord{participant, priority, -1.0, {}});
}

std::size_t SimulationSession::index_of(
    const SessionParticipant* participant) const {
  const ShardState& shard = state();
  for (std::size_t i = 0; i < shard.participants.size(); ++i) {
    if (shard.participants[i].participant == participant) {
      return i;
    }
  }
  throw std::invalid_argument(
      "participant is not registered with this session shard");
}

sim::Time SimulationSession::grant_for(
    const ShardState& state, const ReservationEntry& entry,
    const std::vector<ReservationEntry>& queue) const {
  ContentionQuery query;
  query.request = &entry;
  query.now = sharded_.shard(sharded_.current_shard()).now();
  query.others_busy =
      state.ledger.committed_until_excluding(entry.resource,
                                             entry.participant);
  query.queue = &queue;
  // Policies may only delay a request, never reach before its own
  // feasible start.
  sim::Time grant = std::max(entry.ready, state.policy->grant(query));
  if (backfill_) {
    if (const auto hole =
            state.ledger.backfill_start(entry, query.now, grant)) {
      grant = *hole;
    }
  }
  return grant;
}

sim::Time SimulationSession::acquire(const SessionParticipant* self,
                                     grid::ResourceId resource,
                                     sim::Time ready, double duration,
                                     std::uint64_t tag) {
  AHEFT_REQUIRE(duration >= 0.0, "acquisition duration must be >= 0");
  ShardState& shard = state_for(resource);
  const std::size_t index = index_of(self);
  ParticipantRecord& record = shard.participants[index];
  if (record.active_since < 0.0) {
    record.active_since = ready;
  }
  const double planned_span =
      std::max(0.0, self->planned_finish() - record.active_since);
  const ReservationEntry& entry =
      shard.ledger.upsert(index, resource, tag, ready, duration,
                          record.priority, record.active_since, planned_span);
  const sim::Time grant = grant_for(shard, entry, shard.ledger.queue(resource));
  if (shard.revocation != nullptr) {
    maybe_preempt(shard, entry, grant);
  }
  return grant;
}

resilience::RevocationManager* SimulationSession::revocation() noexcept {
  return state().revocation.get();
}

bool SimulationSession::may_revoke(const SessionParticipant* self,
                                   std::uint64_t tag) const {
  const ShardState& shard = state();
  return shard.revocation == nullptr ||
         shard.revocation->may_revoke(index_of(self), tag);
}

void SimulationSession::record_revocation(const SessionParticipant* self,
                                          std::uint64_t tag) {
  ShardState& shard = state();
  if (shard.revocation != nullptr) {
    shard.revocation->record(index_of(self), tag);
  }
}

void SimulationSession::maybe_preempt(ShardState& shard,
                                      const ReservationEntry& entry,
                                      sim::Time grant) {
  resilience::RevocationManager& manager = *shard.revocation;
  if (!manager.config().preemption || !shard.policy->supports_preemption()) {
    return;
  }
  sim::Simulator& simulator = sharded_.current();
  const sim::Time now = simulator.now();
  const sim::Time feasible = std::max(entry.ready, now);
  if (sim::time_le(grant, feasible)) {
    return;  // not deferred: nothing to preempt for
  }
  const double self_stretch = shard.policy->preemption_stretch(entry, now);
  if (self_stretch <= manager.config().preemption_min_stretch) {
    return;  // inside the deadband: starved, but not starved enough
  }
  // The victim: the committed window blocking the requester's feasible
  // start with the latest end — the reservation whose truncation moves
  // the grant the most.
  CommittedWindow victim;
  bool found = false;
  for (const CommittedWindow& window :
       shard.ledger.committed_windows(entry.resource)) {
    if (window.participant != entry.participant && window.end > feasible &&
        (!found || window.end > victim.end)) {
      victim = window;
      found = true;
    }
  }
  if (!found) {
    return;  // the delay comes from queued claims, not committed work
  }
  const ParticipantRecord& owner_record = shard.participants[victim.participant];
  ReservationEntry owner_probe;
  owner_probe.priority = owner_record.priority;
  owner_probe.active_since =
      owner_record.active_since < 0.0 ? now : owner_record.active_since;
  owner_probe.planned_span = std::max(
      0.0, owner_record.participant->planned_finish() -
               owner_probe.active_since);
  const double victim_stretch =
      shard.policy->preemption_stretch(owner_probe, now);
  if (self_stretch <= manager.config().preemption_ratio * victim_stretch) {
    return;  // disparity inside the displacement band
  }
  if (!manager.may_revoke(victim.participant, victim.tag) ||
      !manager.begin_preemption(entry.resource)) {
    return;
  }
  // Evict in a fresh event: the victim truncates its window and requeues,
  // which must not run inside the requester's acquire.
  SessionParticipant* owner = owner_record.participant;
  const grid::ResourceId resource = entry.resource;
  const std::uint64_t tag = victim.tag;
  simulator.schedule_at(now, [this, owner, resource, tag] {
    state().revocation->end_preemption(resource);
    // A landed revocation is recorded by the victim's requeue path
    // (record_revocation), the same bookkeeping departure hits use.
    owner->revoke_committed(resource, tag);
  });
}

sim::Time SimulationSession::peek(const SessionParticipant* self,
                                  grid::ResourceId resource, sim::Time ready,
                                  double duration) const {
  const ShardState& shard = state_for(resource);
  const std::size_t index = index_of(self);
  const ParticipantRecord& record = shard.participants[index];
  ReservationEntry probe;
  // A probe prices a hypothetical NEW registration: give it the newest
  // possible id so every held booking blocks it, exactly as it would
  // block the real acquire that follows.
  probe.id = std::numeric_limits<std::uint64_t>::max();
  probe.participant = index;
  probe.resource = resource;
  probe.ready = ready;
  probe.duration = duration;
  probe.priority = record.priority;
  probe.first_ready = ready;
  probe.active_since = record.active_since < 0.0 ? ready : record.active_since;
  probe.planned_span =
      std::max(0.0, self->planned_finish() - probe.active_since);
  return grant_for(shard, probe, shard.ledger.queue(resource));
}

void SimulationSession::hold(const SessionParticipant* self,
                             grid::ResourceId resource, std::uint64_t tag,
                             sim::Time granted_start) {
  ShardState& shard = state_for(resource);
  if (shard.ledger.hold(index_of(self), resource, tag, granted_start)) {
    // A claim that moved may leave another queued entry as the effective
    // head of the policy's service order: wake the queue so the machine
    // never idles waiting on a deferred claim's stale retry. Re-holds at
    // an unchanged start stay silent, which is what terminates the
    // same-instant re-arbitration cascade.
    notify_queued(shard, resource, self);
  }
}

void SimulationSession::commit(const SessionParticipant* self,
                               grid::ResourceId resource, std::uint64_t tag,
                               sim::Time start, sim::Time end) {
  ShardState& shard = state_for(resource);
  const std::size_t index = index_of(self);
  const ReservationEntry entry =
      shard.ledger.commit(index, resource, tag, start, end);
  const double wait = std::max(0.0, start - entry.first_ready);
  ContentionStats& stats = shard.participants[index].stats;
  stats.total_wait += wait;
  stats.max_wait = std::max(stats.max_wait, wait);
  ++stats.grants;
  shard.policy->on_commit(entry, start, end);
  notify_queued(shard, resource, self);
}

void SimulationSession::withdraw_all(const SessionParticipant* self) {
  ShardState& shard = state();
  const std::size_t index = index_of(self);
  for (const grid::ResourceId resource : shard.ledger.withdraw_all(index)) {
    notify_queued(shard, resource, self);
  }
}

void SimulationSession::withdraw(const SessionParticipant* self,
                                 grid::ResourceId resource,
                                 std::uint64_t tag) {
  ShardState& shard = state_for(resource);
  if (shard.ledger.withdraw(index_of(self), resource, tag)) {
    notify_queued(shard, resource, self);
  }
}

void SimulationSession::truncate_commit(const SessionParticipant* self,
                                        grid::ResourceId resource,
                                        std::uint64_t tag, sim::Time at,
                                        bool carry_baseline) {
  ShardState& shard = state_for(resource);
  shard.ledger.truncate_commit(index_of(self), resource, tag, at,
                               carry_baseline);
  notify_queued(shard, resource, self);
}

void SimulationSession::notify_queued(ShardState& state,
                                      grid::ResourceId resource,
                                      const SessionParticipant* self) {
  if (!wakeups_enabled(state)) {
    return;
  }
  // Wake each queued owner once, even when it holds several entries on
  // the resource (two-phase dynamic holds). Queued owners are this
  // shard's participants by the confinement fence, so the wakeup events
  // land on this shard's own queue.
  sim::Simulator& simulator = sharded_.current();
  std::vector<std::size_t> woken;
  for (const ReservationEntry& entry : state.ledger.queue(resource)) {
    SessionParticipant* waiter =
        state.participants[entry.participant].participant;
    if (waiter == self ||
        std::find(woken.begin(), woken.end(), entry.participant) !=
            woken.end()) {
      continue;
    }
    woken.push_back(entry.participant);
    // A fresh event: the notified participant may start jobs and commit,
    // which must not run inside the notifying participant's bookkeeping.
    simulator.schedule_at(simulator.now(), [waiter, resource] {
      waiter->contention_changed(resource);
    });
  }
}

AvailabilityView SimulationSession::availability_view(
    const SessionParticipant* self) const {
  return state().ledger.snapshot_view(index_of(self),
                                      sharded_.shard(sharded_.current_shard())
                                          .now());
}

ContentionStats SimulationSession::contention_stats(
    const SessionParticipant* participant) const {
  // During the run a participant always asks from its home shard; after
  // the run (no binding → shard 0) fall through to the other shards.
  for (const ParticipantRecord& record : state().participants) {
    if (record.participant == participant) {
      return record.stats;
    }
  }
  for (const auto& shard : states_) {
    for (const ParticipantRecord& record : shard->participants) {
      if (record.participant == participant) {
        return record.stats;
      }
    }
  }
  return {};
}

std::size_t SimulationSession::participant_count() const noexcept {
  std::size_t total = 0;
  for (const auto& shard : states_) {
    total += shard->participants.size();
  }
  return total;
}

}  // namespace aheft::core
