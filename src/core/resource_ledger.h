// ResourceLedger: the session-owned reservation timeline of every machine.
//
// Before this ledger existed the contention surface was split across three
// parallel structures: each ExecutionEngine kept per-resource job queues,
// the session kept a per-resource pending-request list, and the committed
// picture lived implicitly in every participant's busy_until() — so one
// acquire scanned every registered workflow, and a machine event cost work
// proportional to the whole session, not to the machine's own queue.
// Advance-reservation grid schedulers centralize exactly this bookkeeping
// (Moise et al., "Advance Reservation of Resources for Task Execution in
// Grid Environments"): one per-resource ledger that arbitration,
// backfilling, and adaptation all read.
//
// The ledger tracks one timeline per resource. Every demand for machine
// time is an entry moving through a small lifecycle:
//
//   pending ---> committed        (the request started running)
//      |   \--> held ---> committed   (two-phase dynamic dispatch)
//      \--> withdrawn              (a reschedule dropped the request)
//
//  - pending    a registered acquisition waiting for (or holding) a grant;
//               lives in the resource's queue in registration order.
//  - held       a two-phase reservation: the owner accepted the granted
//               start but has not occupied the machine yet, so the claim
//               stays visible — and displaceable — until commit.
//  - committed  an occupation window [start, end); windows never overlap
//               per resource (asserted), which is the ledger's core
//               invariant. Committed windows of cancelled jobs are
//               truncated to the cancellation time, never erased.
//  - withdrawn  removed from the queue; the entry's wait baseline
//               (first_ready) is carried so a re-registration for the same
//               work resumes its wait clock instead of restarting it.
//
// The ledger is deliberately policy-free: it stores and orders entries,
// answers floor/hole queries, and leaves who-goes-first to the session's
// ContentionPolicy, which reads the queue through ContentionQuery.
#ifndef AHEFT_CORE_RESOURCE_LEDGER_H_
#define AHEFT_CORE_RESOURCE_LEDGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/availability_view.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::core {

enum class ReservationState { kPending, kHeld, kCommitted, kWithdrawn };

[[nodiscard]] std::string to_string(ReservationState state);

/// One demand for machine time. Entries are keyed by
/// (participant, resource, tag): a participant may queue several
/// independent pieces of work on one machine (two-phase dynamic holds),
/// and a request withdrawn by a reschedule and re-registered under the
/// same tag keeps its wait baseline.
struct ReservationEntry {
  /// Ledger-assigned, unique, monotonically increasing.
  std::uint64_t id = 0;
  /// Session registration index of the owning workflow.
  std::size_t participant = 0;
  /// Caller-chosen identity of the work (engines pass the job id).
  std::uint64_t tag = 0;
  grid::ResourceId resource = grid::kInvalidResource;
  ReservationState state = ReservationState::kPending;
  /// Earliest start feasible for the owner itself (inputs, own bookings,
  /// machine arrival) as of the latest refresh.
  sim::Time ready = sim::kTimeZero;
  /// Projected nominal run length of the work behind the entry.
  double duration = 0.0;
  /// The owning workflow's priority / fair-share weight.
  double priority = 1.0;
  /// `ready` at first registration — the base of the wait metrics.
  sim::Time first_ready = sim::kTimeZero;
  /// When the owning workflow first asked the session for machine time
  /// (its activation): the base of fair-share stretch normalization.
  sim::Time active_since = sim::kTimeZero;
  /// Scale of the owning workflow: its release-time plan length. Zero
  /// when the owner does not plan ahead.
  double planned_span = 0.0;
  /// kHeld only: the start the policy granted when the hold was taken.
  /// The claim [held_start, held_start + duration) blocks backfilling.
  sim::Time held_start = sim::kTimeZero;
};

/// One committed occupation of a resource, kept for floor queries,
/// hole-finding, truncation, and the overlap invariant.
struct CommittedWindow {
  std::uint64_t entry = 0;  ///< ledger id of the committing entry
  std::size_t participant = 0;
  std::uint64_t tag = 0;
  sim::Time start = sim::kTimeZero;
  sim::Time end = sim::kTimeZero;
  /// The committing entry's wait baseline, preserved so a revocation can
  /// carry it back into the queue (see truncate_commit).
  sim::Time first_ready = sim::kTimeZero;
};

class ResourceLedger {
 public:
  /// Registers (or refreshes) the entry keyed (participant, resource,
  /// tag). A fresh registration consumes any carried wait baseline for
  /// (participant, tag); a refresh keeps the entry's queue position and
  /// first_ready. Held entries refresh back to pending only via hold().
  ReservationEntry& upsert(std::size_t participant,
                           grid::ResourceId resource, std::uint64_t tag,
                           sim::Time ready, double duration, double priority,
                           sim::Time active_since, double planned_span);

  /// The live queue entry for the key, or null.
  [[nodiscard]] const ReservationEntry* find(std::size_t participant,
                                             grid::ResourceId resource,
                                             std::uint64_t tag) const;

  /// Marks a pending entry held at `start` (two-phase dispatch: the owner
  /// accepted the grant but occupies the machine later). Re-holding an
  /// already-held entry refreshes its granted start. Returns whether the
  /// claim moved (a fresh hold, or a re-hold at a different start) — a
  /// moved claim may make another queued entry the effective head, so
  /// the session wakes the queue.
  bool hold(std::size_t participant, grid::ResourceId resource,
            std::uint64_t tag, sim::Time start);

  /// The entry started running over [start, end): removes it from the
  /// queue, appends the committed window, and returns the entry as it was
  /// at commit (the caller reads first_ready for wait accounting).
  /// Asserts the window overlaps no committed window on the resource.
  ReservationEntry commit(std::size_t participant, grid::ResourceId resource,
                          std::uint64_t tag, sim::Time start, sim::Time end);

  /// Withdraws every queued entry of `participant`, carrying each entry's
  /// first_ready so a later re-registration under the same tag resumes
  /// the wait clock. Returns the resources that lost entries.
  std::vector<grid::ResourceId> withdraw_all(std::size_t participant);

  /// Withdraws the single queued entry keyed (participant, resource,
  /// tag), carrying its wait baseline like withdraw_all. Returns whether
  /// an entry was removed. Two-phase dispatch uses this when a held
  /// placement must be abandoned (the machine departs before the
  /// re-arbitrated start).
  bool withdraw(std::size_t participant, grid::ResourceId resource,
                std::uint64_t tag);

  /// Truncates the committed window of (participant, tag) on `resource`
  /// to end at `at` (a reschedule or a revocation cancelled the running
  /// job behind it). No-op when no such window extends past `at`. With
  /// `carry_baseline` the truncated window's first_ready is carried like
  /// a withdrawal's, so the revoked work's re-registration under the
  /// same tag resumes its wait clock instead of restarting it — the
  /// revocation path opts in; the historical reschedule path does not
  /// (its wait metrics are a shipped baseline).
  void truncate_commit(std::size_t participant, grid::ResourceId resource,
                       std::uint64_t tag, sim::Time at,
                       bool carry_baseline = false);

  /// Pending + held entries of `resource` in registration order.
  [[nodiscard]] const std::vector<ReservationEntry>& queue(
      grid::ResourceId resource) const;

  /// Latest committed end on `resource` over every participant;
  /// kTimeZero when none.
  [[nodiscard]] sim::Time committed_until(grid::ResourceId resource) const;

  /// Latest committed end on `resource` over every participant except
  /// `participant` — the FCFS floor every policy builds on. Cost is
  /// proportional to the participants with commitments on this resource,
  /// not to the session's workflow count.
  [[nodiscard]] sim::Time committed_until_excluding(
      grid::ResourceId resource, std::size_t participant) const;

  /// Committed windows of `resource` in start order (truncated windows
  /// included; empty windows elided).
  [[nodiscard]] std::vector<CommittedWindow> committed_windows(
      grid::ResourceId resource) const;

  /// Planner-side availability snapshot: the merged foreign busy
  /// intervals per resource as of `now` — committed occupation windows
  /// still extending past `now` plus held two-phase claims (granted but
  /// not yet occupied, hence displaceable), both owner-filtered so a
  /// workflow never treats its own windows and claims as foreign load.
  /// Pending entries carry no granted start and are not part of the
  /// picture. The result is a value snapshot (normalized, start-sorted,
  /// disjoint per resource) stamped with `now`; snapshots taken at the
  /// same instant from the same ledger state are identical.
  [[nodiscard]] AvailabilityView snapshot_view(std::size_t owner,
                                               sim::Time now) const;

  /// Backfilling: the earliest start >= max(request.ready, now) of a
  /// `request.duration`-long hole in the resource's timeline that
  /// provably cannot delay any other reservation — it must fit before
  /// the next committed window and before any other queued entry's
  /// earliest feasible start (held claims block like windows). Returns
  /// nullopt when no such hole beats `policy_grant`.
  [[nodiscard]] std::optional<sim::Time> backfill_start(
      const ReservationEntry& request, sim::Time now,
      sim::Time policy_grant) const;

  /// Total queued (pending + held) entries across all resources.
  [[nodiscard]] std::size_t queued_count() const;

 private:
  struct Timeline {
    std::vector<ReservationEntry> queue;  ///< registration order
    /// Committed windows keyed (start, entry id) for ordered hole scans.
    std::map<std::pair<sim::Time, std::uint64_t>, CommittedWindow> committed;
    /// Latest committed end per participant (incrementally maintained;
    /// recomputed from the windows after a truncation).
    std::map<std::size_t, sim::Time> committed_until_by;
  };

  [[nodiscard]] Timeline* timeline(grid::ResourceId resource);
  [[nodiscard]] const Timeline* timeline(grid::ResourceId resource) const;

  std::map<grid::ResourceId, Timeline> timelines_;
  /// first_ready of withdrawn entries by (participant, tag): a
  /// re-registration for the same work resumes the wait clock, so
  /// reschedules cannot erase contention wait already endured. Keyed
  /// without the resource — a reschedule may move the work elsewhere.
  std::map<std::pair<std::size_t, std::uint64_t>, sim::Time>
      carried_first_ready_;
  std::uint64_t next_id_ = 1;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_RESOURCE_LEDGER_H_
