// Dynamic (just-in-time) scheduling baselines.
//
// The paper's dynamic comparator schedules each job only when it becomes
// ready, with the Min-Min heuristic, on top of an event-driven simulation
// (§4.2, built there on SimJava). Key semantic difference from the static
// strategies (§4.1 assumption 2): a producer's output file stays at the
// producer until the executor decides which resource runs the consumer;
// the transfer then starts at decision time.
//
// Max-Min and Sufferage are provided as additional baselines (extension).
#ifndef AHEFT_CORE_DYNAMIC_SCHEDULER_H_
#define AHEFT_CORE_DYNAMIC_SCHEDULER_H_

#include <string>

#include "core/schedule.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"

namespace aheft::core {

enum class DynamicHeuristic { kMinMin, kMaxMin, kSufferage };

[[nodiscard]] std::string to_string(DynamicHeuristic heuristic);

struct DynamicRunResult {
  sim::Time makespan = sim::kTimeZero;
  std::size_t batches = 0;      ///< number of just-in-time decision rounds
  Schedule schedule;            ///< realized placement (for inspection)
};

/// Simulates a full just-in-time execution of `dag` over the dynamic pool.
/// New resources are used by any job that becomes ready after they arrive.
[[nodiscard]] DynamicRunResult run_dynamic(
    const dag::Dag& dag, const grid::CostProvider& actual,
    const grid::ResourcePool& pool,
    DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
    sim::TraceRecorder* trace = nullptr);

}  // namespace aheft::core

#endif  // AHEFT_CORE_DYNAMIC_SCHEDULER_H_
