// Dynamic (just-in-time) scheduling baselines.
//
// The paper's dynamic comparator schedules each job only when it becomes
// ready, with the Min-Min heuristic, on top of an event-driven simulation
// (§4.2, built there on SimJava). Key semantic difference from the static
// strategies (§4.1 assumption 2): a producer's output file stays at the
// producer until the executor decides which resource runs the consumer;
// the transfer then starts at decision time.
//
// Max-Min and Sufferage are provided as additional baselines (extension).
//
// DynamicExecution is the session form: it runs inside a shared
// SimulationSession, realizes load-scaled run times from the session's
// LoadProfile (decisions still use nominal costs — just-in-time schedulers
// don't see the future either), and participates in cross-workflow
// resource contention. run_dynamic() wraps it for the classic
// one-DAG-one-call usage.
#ifndef AHEFT_CORE_DYNAMIC_SCHEDULER_H_
#define AHEFT_CORE_DYNAMIC_SCHEDULER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "core/session.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"

namespace aheft::core {

enum class DynamicHeuristic { kMinMin, kMaxMin, kSufferage };

[[nodiscard]] std::string to_string(DynamicHeuristic heuristic);

struct DynamicRunResult {
  sim::Time makespan = sim::kTimeZero;
  std::size_t batches = 0;      ///< number of just-in-time decision rounds
  Schedule schedule;            ///< realized placement (for inspection)
  /// Cross-workflow machine wait imposed by the session's contention
  /// policy (zero for uncontended runs).
  double contention_wait = 0.0;
  double max_contention_wait = 0.0;
};

/// Event-driven just-in-time execution of one DAG inside a shared
/// session. Decisions are made with nominal costs over the resources
/// visible at decision time; realized run times are stretched by the
/// session's load profile, and machine bookings respect (and are visible
/// to) every other workflow in the session.
class DynamicExecution : public SessionParticipant {
 public:
  /// `priority` is the workflow's weight under the session's contention
  /// policy (ignored by FCFS).
  DynamicExecution(SimulationSession& session, const dag::Dag& dag,
                   const grid::CostProvider& actual,
                   DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
                   double priority = 1.0);

  using Completion = std::function<void(const DynamicRunResult&)>;

  /// Schedules the first decision round at `release` (>= the session
  /// clock); `done` fires on the session clock once every job finished.
  /// The execution must outlive the session's run.
  void launch(sim::Time release, Completion done);

  [[nodiscard]] bool finished() const {
    return finished_count_ == dag_->job_count();
  }
  [[nodiscard]] sim::Time makespan() const { return makespan_; }

  // SessionParticipant: committed bookings (running and queued-behind
  // decisions) on `resource`.
  [[nodiscard]] sim::Time busy_until(
      grid::ResourceId resource) const override;

 private:
  /// Earliest time `job`'s inputs can all be present on `resource` when
  /// the transfer decisions are taken now.
  [[nodiscard]] sim::Time inputs_ready(dag::JobId job,
                                       grid::ResourceId resource,
                                       sim::Time now) const;
  /// Time `resource` is free for this workflow's own reasons: its
  /// bookings and the machine's arrival. Cross-workflow availability is
  /// layered on top by completion_time()'s session peek.
  [[nodiscard]] sim::Time machine_free(grid::ResourceId resource) const;
  /// Nominal completion time used by the decision heuristics.
  [[nodiscard]] sim::Time completion_time(dag::JobId job,
                                          grid::ResourceId resource,
                                          sim::Time now) const;

  void dispatch();
  void assign(dag::JobId job, grid::ResourceId resource, sim::Time now);
  void complete(dag::JobId job, grid::ResourceId resource, sim::Time start,
                sim::Time finish);

  SimulationSession* session_;
  const dag::Dag* dag_;
  const grid::CostProvider* actual_;
  const grid::ResourcePool* pool_;
  const grid::LoadProfile* load_;
  sim::TraceRecorder* trace_;
  DynamicHeuristic heuristic_;

  sim::Time release_ = sim::kTimeZero;
  Completion done_;

  Schedule schedule_;
  std::vector<bool> finished_;
  std::vector<grid::ResourceId> location_;
  std::vector<sim::Time> aft_;
  std::vector<std::uint32_t> pending_preds_;
  std::vector<dag::JobId> ready_;
  std::map<grid::ResourceId, sim::Time> avail_;
  std::size_t finished_count_ = 0;
  std::size_t batches_ = 0;
  sim::Time makespan_ = sim::kTimeZero;
};

/// Simulates a full just-in-time execution of `dag` over the dynamic pool
/// in a private session. New resources are used by any job that becomes
/// ready after they arrive. `load` optionally stretches realized run
/// times (the decision loop keeps using nominal costs).
[[nodiscard]] DynamicRunResult run_dynamic(
    const dag::Dag& dag, const grid::CostProvider& actual,
    const grid::ResourcePool& pool,
    DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
    sim::TraceRecorder* trace = nullptr,
    const grid::LoadProfile* load = nullptr);

}  // namespace aheft::core

#endif  // AHEFT_CORE_DYNAMIC_SCHEDULER_H_
