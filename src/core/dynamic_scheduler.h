// Dynamic (just-in-time) scheduling baselines.
//
// The paper's dynamic comparator schedules each job only when it becomes
// ready, with the Min-Min heuristic, on top of an event-driven simulation
// (§4.2, built there on SimJava). Key semantic difference from the static
// strategies (§4.1 assumption 2): a producer's output file stays at the
// producer until the executor decides which resource runs the consumer;
// the transfer then starts at decision time.
//
// Max-Min and Sufferage are provided as additional baselines (extension).
//
// DynamicExecution is the session form: it runs inside a shared
// SimulationSession, realizes load-scaled run times from the session's
// LoadProfile (decisions still use nominal costs — just-in-time schedulers
// don't see the future either), and participates in cross-workflow
// resource contention. Dispatch is two-phase under arbitrating policies
// (ContentionPolicy::two_phase_dynamic): a decision whose granted start
// lies in the future takes a held ledger reservation — visible to and
// displaceable by the policy — and commits only when the grant matures,
// so priority and fair-share genuinely arbitrate dynamic demand. Under
// FCFS the historical instant advance booking is preserved bit-for-bit.
// run_dynamic() wraps it all for the classic one-DAG-one-call usage.
#ifndef AHEFT_CORE_DYNAMIC_SCHEDULER_H_
#define AHEFT_CORE_DYNAMIC_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "core/session.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/trace.h"

namespace aheft::core {

enum class DynamicHeuristic { kMinMin, kMaxMin, kSufferage };

[[nodiscard]] std::string to_string(DynamicHeuristic heuristic);

struct DynamicRunResult {
  sim::Time makespan = sim::kTimeZero;
  std::size_t batches = 0;      ///< number of just-in-time decision rounds
  Schedule schedule;            ///< realized placement (for inspection)
  /// Cross-workflow machine wait imposed by the session's contention
  /// policy (zero for uncontended runs).
  double contention_wait = 0.0;
  double max_contention_wait = 0.0;
  /// The run failed terminally (see DynamicExecution's resilience note);
  /// `makespan` is then the failure time and `schedule` partial.
  bool failed = false;
  std::string failure_reason;
};

/// Event-driven just-in-time execution of one DAG inside a shared
/// session. Decisions are made with nominal costs over the resources
/// visible at decision time; realized run times are stretched by the
/// session's load profile, and machine reservations respect (and are
/// visible to) every other workflow in the session through the ledger.
///
/// Resilience note: under an active session ResilienceConfig the two
/// historical throws soften — a decision round with no machine able to
/// finish a job defers until the pool next changes (a repair may bring
/// one) and fails the run gracefully only when the pool never changes
/// again, and a load-stretched run outliving its machine fails the run
/// instead of aborting the process. Dynamic runs have no restart
/// machinery (a just-in-time job either finishes or never ran), so
/// DepartureAction::kRequeue degrades to the same graceful failure —
/// checkpoint/restart requeueing is the planner engines' domain.
class DynamicExecution : public SessionParticipant {
 public:
  /// `priority` is the workflow's weight under the session's contention
  /// policy (ignored by FCFS). `contention_aware` makes the release-time
  /// greedy-EFT estimate (planned_finish, the fair-share scale) price
  /// the session ledger's foreign load through an AvailabilityView —
  /// the same snapshot the contention-aware planner fits against — so
  /// static and dynamic strategies price contention consistently. The
  /// per-decision dispatch already arbitrates live through the ledger
  /// and is unaffected.
  DynamicExecution(SimulationSession& session, const dag::Dag& dag,
                   const grid::CostProvider& actual,
                   DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
                   double priority = 1.0, bool contention_aware = false);

  using Completion = std::function<void(const DynamicRunResult&)>;

  /// Schedules the first decision round at `release` (>= the session
  /// clock); `done` fires on the session clock once every job finished.
  /// The execution must outlive the session's run.
  void launch(sim::Time release, Completion done);

  [[nodiscard]] bool finished() const {
    return finished_count_ == dag_->job_count();
  }
  [[nodiscard]] sim::Time makespan() const { return makespan_; }

  // SessionParticipant: a competing reservation on `resource` moved —
  // re-arbitrate the held (two-phase) dispatch decisions queued there.
  void contention_changed(grid::ResourceId resource) override;
  // SessionParticipant: the workflow's release-time scale — a greedy
  // earliest-finish list schedule over the release-visible machines
  // (estimate_solo_finish) — the base of fair-share stretch
  // normalization. Without a scale a dynamic workflow can never
  // displace competitors.
  [[nodiscard]] sim::Time planned_finish() const override {
    return planned_finish_;
  }

 private:
  /// A two-phase dispatch decision whose grant has not matured: the
  /// placement is fixed (transfers started at decision time, per the
  /// paper's dynamic file model), the start keeps re-arbitrating.
  struct HeldDispatch {
    grid::ResourceId resource = grid::kInvalidResource;
    double nominal = 0.0;         ///< decision-time run length estimate
    sim::Time decided_at = sim::kTimeZero;    ///< when the placement fell
    sim::Time inputs_ready = sim::kTimeZero;  ///< fixed at decision time
    sim::Time retry_at = sim::kTimeZero;      ///< pending retry event time
    std::uint64_t generation = 0;             ///< invalidates stale retries
    /// Decision order: a held claim gates only later decisions (mirrors
    /// the strict stacking of instant advance bookings); a cycle-free
    /// order, so held jobs can never gate each other both ways.
    std::uint64_t seq = 0;
  };

  /// Greedy earliest-finish list schedule over the release-visible
  /// machines: the workflow's uncontended scale for fair-share stretch.
  /// In contention-aware mode the machines' free intervals come from the
  /// session ledger's availability snapshot instead of an empty grid.
  [[nodiscard]] sim::Time estimate_solo_finish() const;
  /// Earliest time `job`'s inputs can all be present on `resource` when
  /// the transfer decisions are taken now.
  [[nodiscard]] sim::Time inputs_ready(dag::JobId job,
                                       grid::ResourceId resource,
                                       sim::Time now) const;
  /// Time `resource` is free for this workflow's own reasons: its
  /// committed bookings, its held dispatch claims, and the machine's
  /// arrival. Cross-workflow availability is layered on top by
  /// completion_time()'s session peek.
  [[nodiscard]] sim::Time machine_free(grid::ResourceId resource) const;
  /// machine_free seen by decision number `seq`: only held claims of
  /// strictly earlier decisions gate it (its own claim never does).
  [[nodiscard]] sim::Time machine_free_before(grid::ResourceId resource,
                                              std::uint64_t seq) const;
  /// Nominal completion time used by the decision heuristics.
  [[nodiscard]] sim::Time completion_time(dag::JobId job,
                                          grid::ResourceId resource,
                                          sim::Time now) const;

  void dispatch();
  /// Ready jobs no visible machine can host right now wait for the next
  /// pool change; a pool that never changes again fails the run.
  void defer_dispatch(sim::Time now);
  /// Terminal graceful failure: drops every queued reservation and fires
  /// the completion callback once with a failed result (fresh event).
  void fail_run(const std::string& reason);
  void assign(dag::JobId job, grid::ResourceId resource, sim::Time now);
  /// Starts the job at `start` (records the input transfers that began
  /// at the decision, commits the ledger reservation, applies the load
  /// stretch, schedules the completion). Transfers are recorded here —
  /// when the placement is final — not at decision time, so a held
  /// dispatch abandoned before starting (machine departure) leaves no
  /// phantom transfer records in the trace.
  void start_assignment(dag::JobId job, grid::ResourceId resource,
                        double nominal, sim::Time start,
                        sim::Time decided_at);
  void record_input_transfers(dag::JobId job, grid::ResourceId resource,
                              sim::Time decided_at);
  /// Re-arbitrates one held dispatch: commits when the grant matured,
  /// re-holds (and re-arms the retry) when it moved.
  void retry_held(dag::JobId job);
  void schedule_retry(dag::JobId job, sim::Time when);
  void complete(dag::JobId job, grid::ResourceId resource, sim::Time start,
                sim::Time finish);

  SimulationSession* session_;
  const dag::Dag* dag_;
  const grid::CostProvider* actual_;
  const grid::ResourcePool* pool_;
  const grid::LoadProfile* load_;
  sim::TraceRecorder* trace_;
  DynamicHeuristic heuristic_;
  bool contention_aware_ = false;
  /// The session's resilience config when active; null keeps the
  /// historical hard-abort paths bit-identical.
  const resilience::ResilienceConfig* resilience_ = nullptr;

  sim::Time release_ = sim::kTimeZero;
  Completion done_;
  bool failed_ = false;
  std::string failure_reason_;
  sim::Time deferred_until_ = -1.0;  ///< pending pool-change retry (dedup)

  Schedule schedule_;
  std::vector<bool> finished_;
  std::vector<grid::ResourceId> location_;
  std::vector<sim::Time> aft_;
  std::vector<std::uint32_t> pending_preds_;
  std::vector<dag::JobId> ready_;
  std::map<grid::ResourceId, sim::Time> avail_;
  std::map<dag::JobId, HeldDispatch> held_;
  std::uint64_t next_decision_seq_ = 0;
  std::size_t finished_count_ = 0;
  std::size_t batches_ = 0;
  sim::Time makespan_ = sim::kTimeZero;
  sim::Time planned_finish_ = sim::kTimeZero;
};

/// Simulates a full just-in-time execution of `dag` over the dynamic pool
/// in a private session. New resources are used by any job that becomes
/// ready after they arrive. `load` optionally stretches realized run
/// times (the decision loop keeps using nominal costs).
[[nodiscard]] DynamicRunResult run_dynamic(
    const dag::Dag& dag, const grid::CostProvider& actual,
    const grid::ResourcePool& pool,
    DynamicHeuristic heuristic = DynamicHeuristic::kMinMin,
    sim::TraceRecorder* trace = nullptr,
    const grid::LoadProfile* load = nullptr);

}  // namespace aheft::core

#endif  // AHEFT_CORE_DYNAMIC_SCHEDULER_H_
