#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/heft.h"
#include "core/rescheduler.h"
#include "sim/simulator.h"
#include "support/assert.h"
#include "support/log.h"

namespace aheft::core {

// The Resource Manager's reservation bookkeeping (§3.2: reserve per the
// arriving schedule, revoke the replaced schedule's reservations first)
// lives in the session's ResourceLedger now: the engine's acquire/commit
// calls register and commit the reservations, reschedules withdraw and
// truncate them. The planner no longer keeps a parallel write-only copy.

AdaptivePlanner::AdaptivePlanner(const dag::Dag& dag,
                                 const grid::CostProvider& estimates,
                                 const grid::CostProvider& actual,
                                 const grid::ResourcePool& pool,
                                 PlannerConfig config,
                                 sim::TraceRecorder* trace,
                                 grid::PerformanceHistoryRepository* history)
    : dag_(dag),
      estimates_(estimates),
      actual_(actual),
      pool_(pool),
      config_(config),
      trace_(trace),
      history_(history) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
}

void AdaptivePlanner::evaluate(const std::string& reason, bool forced) {
  if (engine_->finished() || engine_->failed()) {
    return;
  }
  sim::Simulator& simulator = session_->simulator();
  const sim::Time clock = simulator.now();
  const std::vector<grid::ResourceId> visible = pool_.available_at(clock);
  if (visible.empty()) {
    AHEFT_LOG_WARN("no resources visible at t=" << clock
                                                << "; skipping evaluation");
    return;
  }
  ++result_.evaluations;

  const ExecutionSnapshot snapshot = engine_->snapshot();
  RescheduleRequest request;
  request.dag = &dag_;
  request.estimates = &estimates_;
  request.pool = &pool_;
  request.resources = visible;
  request.clock = clock;
  request.snapshot = &snapshot;
  request.previous = &engine_->current_schedule();
  request.config = config_.scheduler;
  // Under restart semantics a burst can leave no machine able to finish
  // some job before departing; the plan then knowingly runs it to the
  // least-bad wall instead of aborting the evaluation.
  request.allow_infeasible =
      session_->resilience().departure_action !=
      resilience::DepartureAction::kError;

  // Contention-aware: every evaluation re-snapshots the ledger — the
  // competitors' picture moves between events (arrivals, completions,
  // displaced holds), so reusing the release-time view would replan
  // against stale load. The snapshot time is recorded with the decision;
  // freshness (view_snapshot == time) is a tested invariant.
  std::optional<AvailabilityView> view;
  if (config_.contention_aware) {
    view.emplace(session_->availability_view(engine_.get()));
    request.availability = &*view;
  }

  const Schedule candidate = aheft_schedule(request);
  const sim::Time candidate_makespan = candidate.makespan();

  // The incumbent the candidate must beat. Contention-blind: the last
  // adopted prediction (Fig. 2's S0 makespan). Contention-aware: that
  // prediction was priced under an older ledger picture, so comparing it
  // against a fresh-view candidate would under-adopt as foreign load
  // grows and over-adopt as it drains — re-price "keep the current
  // mapping" under the same snapshot instead, so both sides of the
  // adoption test see today's contention.
  sim::Time current_makespan = predicted_makespan_;
  if (view) {
    RescheduleRequest reprice = request;
    reprice.restrict_to_previous = true;
    reprice.config.order_candidates = 0;  // mapping fixed; no order search
    current_makespan = aheft_schedule(reprice).makespan();
  }

  // Fig. 2 line 7: adopt when the new plan strictly improves on S0 (with
  // an optional relative threshold), or when adoption is forced because the
  // current plan became infeasible (resource loss).
  const double required =
      current_makespan * (1.0 - config_.scheduler.adoption_threshold);
  const bool improves = candidate_makespan < required &&
                        !sim::time_eq(candidate_makespan, required);
  const bool adopt = forced || improves;

  result_.decisions.push_back(
      AdoptionRecord{clock, reason, current_makespan, candidate_makespan,
                     adopt, forced, view ? view->snapshot_time() : -1.0});

  if (adopt) {
    AHEFT_LOG_DEBUG("t=" << clock << " adopting reschedule: "
                         << predicted_makespan_ << " -> "
                         << candidate_makespan << " (" << reason << ")");
    engine_->submit(candidate);
    predicted_makespan_ = candidate_makespan;
    ++result_.adoptions;
  }
}

void AdaptivePlanner::launch(SimulationSession& session, sim::Time release,
                             Completion done, double priority) {
  AHEFT_REQUIRE(&session.pool() == &pool_,
                "planner launched into a session over a different pool");
  AHEFT_REQUIRE(sim::time_le(session.simulator().now(), release),
                "planner launch release lies in the simulator's past");
  session_ = &session;
  release_ = release;
  priority_ = priority;
  done_ = std::move(done);
  completed_ = false;
  result_ = AdaptiveResult{};
  predicted_makespan_ = sim::kTimeZero;
  engine_.reset();
  session.simulator().schedule_at(release, [this] { start(); });
}

void AdaptivePlanner::start() {
  AHEFT_REQUIRE(pool_.count_available_at(release_) > 0,
                "planner needs at least one resource at release");
  engine_ = std::make_unique<ExecutionEngine>(*session_, dag_, actual_,
                                              priority_);
  engine_->set_transfer_policy(config_.scheduler.transfer_policy);
  // Terminal failure (resilience: a departure under kFail, the revocation
  // cap, or no machine left) ends the workflow like a completion would —
  // in a fresh event, so the failing pump unwinds before the completion
  // callback can reshape the session.
  engine_->set_failure_hook([this](const std::string& /*reason*/) {
    sim::Simulator& simulator = session_->simulator();
    simulator.schedule_at(simulator.now(), [this] {
      if (!completed_) {
        finish();
      }
    });
  });

  grid::PerformanceHistoryRepository* history = session_->history();
  engine_->set_completion_hook([this, history](dag::JobId job,
                                               grid::ResourceId resource,
                                               sim::Time ast, sim::Time aft) {
    const double observed = aft - ast;
    if (history != nullptr) {
      history->record(dag_.job(job).operation, resource, observed);
    }
    if (engine_->finished()) {
      finish();
      return;
    }
    if (!config_.react_to_variance) {
      return;
    }
    const double estimated = estimates_.compute_cost(job, resource);
    const double deviation =
        estimated > 0.0 ? std::fabs(observed - estimated) / estimated : 0.0;
    if (deviation > config_.variance_threshold) {
      // Defer to a fresh event so the engine finishes its completion
      // bookkeeping before the planner mutates the schedule.
      sim::Simulator& simulator = session_->simulator();
      simulator.schedule_at(simulator.now(), [this] {
        evaluate("performance-variance", false);
      });
    }
  });

  // Initial static plan over the resources visible at the release time
  // (Fig. 2: S0 is null, so schedule unconditionally). Contention-aware
  // launches snapshot the ledger at release, so even the very first plan
  // routes around competitors already holding the machines.
  std::optional<AvailabilityView> view;
  if (config_.contention_aware) {
    view.emplace(session_->availability_view(engine_.get()));
  }
  const Schedule initial = heft_schedule(
      dag_, estimates_, pool_, config_.scheduler, release_,
      view ? &*view : nullptr,
      /*allow_infeasible=*/session_->resilience().departure_action !=
          resilience::DepartureAction::kError);
  predicted_makespan_ = initial.makespan();
  result_.initial_makespan = predicted_makespan_;
  engine_->submit(initial);

  // Subscribe to every later resource-pool change (arrivals, departures).
  if (config_.react_to_pool_changes) {
    for (const sim::Time when :
         pool_.change_times(release_, sim::kTimeInfinity)) {
      session_->simulator().schedule_at(when, [this, when] {
        if (completed_) {
          return;
        }
        // Departures make the current plan infeasible for jobs mapped to
        // the lost resource, so adoption is forced in that case.
        const bool forced = !pool_.departures_at(when).empty();
        evaluate(forced ? "resource-departure" : "resource-arrival", forced);
      });
    }
  }
}

void AdaptivePlanner::finish() {
  AHEFT_ASSERT(!completed_, "planner finished twice");
  completed_ = true;
  result_.makespan = engine_->makespan();
  result_.restarts = engine_->restarted_jobs();
  result_.revoked_jobs = engine_->revoked_jobs();
  result_.lost_work = engine_->lost_work();
  result_.checkpoint_overhead = engine_->checkpoint_overhead();
  result_.useful_work = engine_->useful_work();
  result_.failed = engine_->failed();
  result_.failure_reason = engine_->failure_reason();
  const ContentionStats stats = session_->contention_stats(engine_.get());
  result_.contention_wait = stats.total_wait;
  result_.max_contention_wait = stats.max_wait;
  result_.final_schedule = engine_->current_schedule();
  if (done_) {
    done_(result_);
  }
}

AdaptiveResult AdaptivePlanner::run() {
  SessionEnvironment env;
  env.pool = &pool_;
  env.load = config_.load;
  env.trace = trace_;
  env.history = history_;
  SimulationSession session(env);
  launch(session, sim::kTimeZero, {});
  session.run();
  AHEFT_ASSERT(completed_, "workflow did not complete");
  const AdaptiveResult result = result_;
  // The engine references the session's simulator; drop it before the
  // session goes out of scope so no stale pointer survives this call.
  engine_.reset();
  session_ = nullptr;
  return result;
}

}  // namespace aheft::core
