#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "core/heft.h"
#include "core/rescheduler.h"
#include "sim/simulator.h"
#include "support/assert.h"
#include "support/log.h"

namespace aheft::core {

namespace {

/// Registers a schedule's future work with the reservation ledger
/// (Resource Manager bookkeeping, §3.2): the replaced schedule's
/// reservations are revoked, then every window that extends beyond `clock`
/// is reserved — for running jobs only their remaining portion. Completed
/// work needs no reservation.
void refresh_reservations(grid::ReservationLedger& ledger,
                          const Schedule& schedule, sim::Time clock) {
  const grid::ScheduleVersion version = ledger.begin_version();
  ledger.revoke_before(version, {});
  for (dag::JobId i = 0; i < schedule.job_count(); ++i) {
    if (!schedule.assigned(i)) {
      continue;
    }
    const Assignment& a = schedule.assignment(i);
    if (sim::time_le(a.finish, clock)) {
      continue;  // history
    }
    ledger.reserve(version, i, a.resource, std::max(a.start, clock),
                   a.finish);
  }
}

}  // namespace

AdaptivePlanner::AdaptivePlanner(const dag::Dag& dag,
                                 const grid::CostProvider& estimates,
                                 const grid::CostProvider& actual,
                                 const grid::ResourcePool& pool,
                                 PlannerConfig config,
                                 sim::TraceRecorder* trace,
                                 grid::PerformanceHistoryRepository* history)
    : dag_(dag),
      estimates_(estimates),
      actual_(actual),
      pool_(pool),
      config_(config),
      trace_(trace),
      history_(history) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
  AHEFT_REQUIRE(pool.count_available_at(sim::kTimeZero) > 0,
                "planner needs at least one initial resource");
}

void AdaptivePlanner::evaluate(sim::Simulator& simulator,
                               ExecutionEngine& engine,
                               const std::string& reason, bool forced) {
  if (engine.finished()) {
    return;
  }
  const sim::Time clock = simulator.now();
  const std::vector<grid::ResourceId> visible = pool_.available_at(clock);
  if (visible.empty()) {
    AHEFT_LOG_WARN("no resources visible at t=" << clock
                                                << "; skipping evaluation");
    return;
  }
  ++result_.evaluations;

  const ExecutionSnapshot snapshot = engine.snapshot();
  RescheduleRequest request;
  request.dag = &dag_;
  request.estimates = &estimates_;
  request.pool = &pool_;
  request.resources = visible;
  request.clock = clock;
  request.snapshot = &snapshot;
  request.previous = &engine.current_schedule();
  request.config = config_.scheduler;

  const Schedule candidate = aheft_schedule(request);
  const sim::Time candidate_makespan = candidate.makespan();

  // Fig. 2 line 7: adopt when the new plan strictly improves on S0 (with
  // an optional relative threshold), or when adoption is forced because the
  // current plan became infeasible (resource loss).
  const double required =
      predicted_makespan_ * (1.0 - config_.scheduler.adoption_threshold);
  const bool improves = candidate_makespan < required &&
                        !sim::time_eq(candidate_makespan, required);
  const bool adopt = forced || improves;

  result_.decisions.push_back(AdoptionRecord{
      clock, reason, predicted_makespan_, candidate_makespan, adopt, forced});

  if (adopt) {
    AHEFT_LOG_DEBUG("t=" << clock << " adopting reschedule: "
                         << predicted_makespan_ << " -> "
                         << candidate_makespan << " (" << reason << ")");
    refresh_reservations(ledger_, candidate, clock);
    engine.submit(candidate);
    predicted_makespan_ = candidate_makespan;
    ++result_.adoptions;
  }
}

AdaptiveResult AdaptivePlanner::run() {
  result_ = AdaptiveResult{};
  sim::Simulator simulator;
  ExecutionEngine engine(simulator, dag_, actual_, pool_, trace_);
  engine.set_transfer_policy(config_.scheduler.transfer_policy);
  engine.set_load_profile(config_.load);

  if (history_ != nullptr || config_.react_to_variance) {
    engine.set_completion_hook([this, &simulator, &engine](
                                   dag::JobId job, grid::ResourceId resource,
                                   sim::Time ast, sim::Time aft) {
      const double observed = aft - ast;
      if (history_ != nullptr) {
        history_->record(dag_.job(job).operation, resource, observed);
      }
      if (!config_.react_to_variance || engine.finished()) {
        return;
      }
      const double estimated = estimates_.compute_cost(job, resource);
      const double deviation =
          estimated > 0.0 ? std::fabs(observed - estimated) / estimated : 0.0;
      if (deviation > config_.variance_threshold) {
        // Defer to a fresh event so the engine finishes its completion
        // bookkeeping before the planner mutates the schedule.
        simulator.schedule_at(simulator.now(), [this, &simulator, &engine] {
          evaluate(simulator, engine, "performance-variance", false);
        });
      }
    });
  }

  // Initial static plan over the resources visible at t=0 (Fig. 2: S0 is
  // null, so schedule unconditionally).
  const Schedule initial =
      heft_schedule(dag_, estimates_, pool_, config_.scheduler);
  predicted_makespan_ = initial.makespan();
  result_.initial_makespan = predicted_makespan_;
  refresh_reservations(ledger_, initial, sim::kTimeZero);
  engine.submit(initial);

  // Subscribe to every resource-pool change (arrivals and departures).
  if (config_.react_to_pool_changes) {
    for (const sim::Time when :
         pool_.change_times(sim::kTimeZero, sim::kTimeInfinity)) {
      simulator.schedule_at(when, [this, &simulator, &engine, when] {
        // Departures make the current plan infeasible for jobs mapped to
        // the lost resource, so adoption is forced in that case.
        const bool forced = !pool_.departures_at(when).empty();
        evaluate(simulator, engine,
                 forced ? "resource-departure" : "resource-arrival", forced);
      });
    }
  }

  simulator.run();
  AHEFT_ASSERT(engine.finished(), "workflow did not complete");
  result_.makespan = engine.makespan();
  result_.restarts = engine.restarted_jobs();
  result_.final_schedule = engine.current_schedule();
  return result_;
}

}  // namespace aheft::core
