// Schedule representation: job → (resource, start, finish) with per-resource
// timelines and slot search.
#ifndef AHEFT_CORE_SCHEDULE_H_
#define AHEFT_CORE_SCHEDULE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/availability_view.h"
#include "core/policies.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/resource_pool.h"
#include "sim/time.h"

namespace aheft::core {

/// One scheduled job: the paper's (resource mapping, EST, SFT) triple.
struct Assignment {
  dag::JobId job = dag::kInvalidJob;
  grid::ResourceId resource = grid::kInvalidResource;
  sim::Time start = sim::kTimeZero;
  sim::Time finish = sim::kTimeZero;

  [[nodiscard]] sim::Time duration() const { return finish - start; }
};

/// A (partial) schedule for one DAG. Supports incremental construction in
/// heuristic order and gap queries for the insertion slot policy.
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t job_count);

  /// Places a job. The job must not already be assigned and the slot must
  /// not overlap existing slots on the same resource.
  void assign(const Assignment& assignment);

  [[nodiscard]] std::size_t job_count() const { return by_job_.size(); }
  [[nodiscard]] std::size_t assigned_count() const { return assigned_; }
  [[nodiscard]] bool complete() const { return assigned_ == by_job_.size(); }

  [[nodiscard]] bool assigned(dag::JobId job) const;
  /// Assignment of `job`; throws if unassigned.
  [[nodiscard]] const Assignment& assignment(dag::JobId job) const;
  [[nodiscard]] const std::optional<Assignment>& maybe_assignment(
      dag::JobId job) const;

  /// Slots on `resource`, sorted by start time.
  [[nodiscard]] const std::vector<Assignment>& timeline(
      grid::ResourceId resource) const;

  /// Resources that hold at least one slot.
  [[nodiscard]] std::vector<grid::ResourceId> used_resources() const;

  /// Max finish time over all assignments (the paper's makespan, Eq. 4 —
  /// equal to max SFT over exit jobs for complete schedules).
  [[nodiscard]] sim::Time makespan() const;

  /// Earliest start >= max(ready, not_before) for a task of `duration` on
  /// `resource` under the given slot policy, and finishing by `deadline`
  /// (pass kTimeInfinity when the resource never departs). When `foreign`
  /// is non-null, the slot must additionally avoid the view's busy
  /// intervals (other workflows' committed windows and held claims): the
  /// search walks the free gaps of the merged picture — own slots and
  /// foreign load together — so contention-aware plans are gap-aware, not
  /// merely pushed to the busy horizon. A null or empty view leaves the
  /// result bit-identical to the view-less search. Returns kTimeInfinity
  /// when no feasible slot exists.
  [[nodiscard]] sim::Time earliest_slot(
      grid::ResourceId resource, sim::Time ready, sim::Time duration,
      SlotPolicy policy, sim::Time not_before, sim::Time deadline,
      const AvailabilityView* foreign = nullptr) const;

  /// Renders per-resource timelines as an ASCII Gantt chart.
  [[nodiscard]] std::string gantt(const dag::Dag& dag,
                                  const grid::ResourcePool& pool) const;

 private:
  std::vector<std::optional<Assignment>> by_job_;
  std::map<grid::ResourceId, std::vector<Assignment>> by_resource_;
  std::size_t assigned_ = 0;
};

/// Structural validation: every job assigned exactly once, durations match
/// the actual cost model, per-resource slots disjoint, resource
/// availability windows respected, and start(n_i) >= finish(n_m) for every
/// edge (m, i). Throws aheft::AssertionError describing the first failure.
void validate_structure(const Schedule& schedule, const dag::Dag& dag,
                        const grid::CostProvider& costs,
                        const grid::ResourcePool& pool);

/// Static-semantics validation: validate_structure plus the communication
/// constraint start(n_i) >= finish(n_m) + c(e) for cross-resource edges.
/// Holds for schedules planned from scratch (clock == 0); rescheduled plans
/// may legally violate it (files may already sit on the target resource).
void validate_static(const Schedule& schedule, const dag::Dag& dag,
                     const grid::CostProvider& costs,
                     const grid::ResourcePool& pool);

}  // namespace aheft::core

#endif  // AHEFT_CORE_SCHEDULE_H_
