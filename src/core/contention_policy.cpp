#include "core/contention_policy.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "support/assert.h"

namespace aheft::core {

std::string to_string(ContentionPolicyKind kind) {
  switch (kind) {
    case ContentionPolicyKind::kFcfs:
      return "fcfs";
    case ContentionPolicyKind::kPriority:
      return "priority";
    case ContentionPolicyKind::kFairShare:
      return "fair-share";
  }
  return "unknown";
}

std::optional<ContentionPolicyKind> contention_policy_from_string(
    std::string_view text) {
  if (text == "fcfs") {
    return ContentionPolicyKind::kFcfs;
  }
  if (text == "priority") {
    return ContentionPolicyKind::kPriority;
  }
  if (text == "fair-share") {
    return ContentionPolicyKind::kFairShare;
  }
  return std::nullopt;
}

void ContentionPolicy::on_commit(const ReservationEntry& /*entry*/,
                                 sim::Time /*start*/, sim::Time /*end*/) {}

bool ContentionPolicy::needs_change_notifications() const { return true; }

bool ContentionPolicy::two_phase_dynamic() const {
  return needs_change_notifications();
}

bool ContentionPolicy::supports_preemption() const { return false; }

double ContentionPolicy::preemption_stretch(const ReservationEntry& /*entry*/,
                                            sim::Time /*now*/) const {
  return 0.0;
}

namespace {

/// The machine slot the request is asking for: its own feasible start
/// pushed past the committed bookings of the competitors.
sim::Time slot_start(const ContentionQuery& query) {
  return std::max({query.request->ready, query.others_busy, query.now});
}

/// Could `competitor` actually occupy the slot if it were handed over?
/// Deferring behind a workflow whose next job is not ready yet would just
/// idle the machine (the slot's owner cannot start either), so favored
/// competitors only displace the request when they can use the slot —
/// plain backfilling, as advance-reservation schedulers do it.
bool can_take_slot(const ReservationEntry& competitor,
                   const ContentionQuery& query) {
  return sim::time_le(competitor.ready, slot_start(query));
}

/// The time a pending competitor would release the machine if it ran
/// next: it cannot start before its own ready time or the present, and
/// holds the machine for its projected duration. Deferring behind this is
/// a one-slice estimate — the deferred participant re-requests at that
/// time and re-evaluates against the then-current picture.
sim::Time projected_release(const ReservationEntry& competitor,
                            const ContentionQuery& query) {
  return std::max({competitor.ready, query.now, query.others_busy}) +
         competitor.duration;
}

/// Projects when the machine frees for a request after serving every
/// held two-phase claim queued ahead of it (per `ahead`, a policy-total
/// order). Claims are served in ledger-id order — the order they stacked
/// when granted — each no earlier than its own feasible time.
template <typename Ahead>
sim::Time serve_held_ahead(const ContentionQuery& query, Ahead ahead) {
  std::vector<const ReservationEntry*> claims;
  for (const ReservationEntry& other : *query.queue) {
    if (other.participant != query.request->participant &&
        other.state == ReservationState::kHeld && ahead(other)) {
      claims.push_back(&other);
    }
  }
  std::sort(claims.begin(), claims.end(),
            [](const ReservationEntry* a, const ReservationEntry* b) {
              return a->id < b->id;
            });
  sim::Time t = std::max(query.now, query.others_busy);
  for (const ReservationEntry* claim : claims) {
    t = std::max(t, claim->ready) + claim->duration;
  }
  return t;
}

class FcfsPolicy final : public ContentionPolicy {
 public:
  [[nodiscard]] ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kFcfs;
  }
  [[nodiscard]] std::string name() const override { return "fcfs"; }

  // Exactly the pre-policy arbitration: wait out the committed bookings
  // of the other participants, then race (event order breaks ties).
  [[nodiscard]] sim::Time grant(const ContentionQuery& query) const override {
    return std::max(query.request->ready, query.others_busy);
  }

  [[nodiscard]] bool needs_change_notifications() const override {
    return false;
  }
};

class PriorityPolicy final : public ContentionPolicy {
 public:
  [[nodiscard]] ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kPriority;
  }
  [[nodiscard]] std::string name() const override { return "priority"; }

  [[nodiscard]] sim::Time grant(const ContentionQuery& query) const override {
    const ReservationEntry& self = *query.request;
    // Held two-phase claims form a service queue ordered by strict rank,
    // ids (registration order) breaking ties: the request is granted the
    // machine only after every claim queued ahead of it has been served.
    // The order is total at any instant, so the relation is acyclic and
    // the queue head always converges onto the machine.
    sim::Time start = std::max(
        self.ready,
        serve_held_ahead(query, [&self](const ReservationEntry& held) {
          return held.priority > self.priority ||
                 (held.priority == self.priority && held.id < self.id);
        }));
    for (const ReservationEntry& other : *query.queue) {
      if (other.participant == self.participant ||
          other.state == ReservationState::kHeld ||
          other.priority <= self.priority || !can_take_slot(other, query)) {
        continue;
      }
      start = std::max(start, projected_release(other, query));
    }
    return start;
  }
};

/// Stretch fairness: a workflow's stretch is its elapsed session time
/// over its own uncontended plan length (times its weight), i.e. how many
/// of "its own makespans" it has been in the system. Among the pending
/// requests of a resource, a workflow whose stretch runs beyond a
/// competitor's by more than the deadband displaces it. Normalizing by
/// the workflow's own scale is what bounds the worst-case slowdown:
/// equal absolute waits crush short workflows while barely registering
/// for long ones. The deadband keeps FCFS's compact plan execution for
/// mild imbalance — per-job round-robin against every wiggle would stall
/// each deferred job's successors on other machines and tax everyone.
class FairSharePolicy final : public ContentionPolicy {
 public:
  [[nodiscard]] ContentionPolicyKind kind() const override {
    return ContentionPolicyKind::kFairShare;
  }
  [[nodiscard]] std::string name() const override { return "fair-share"; }

  [[nodiscard]] sim::Time grant(const ContentionQuery& query) const override {
    const ReservationEntry& self = *query.request;
    const double self_stretch = stretch(self, query.now);
    const int self_tier = starvation_tier(self_stretch);
    // Held two-phase claims form a service queue ordered by starvation
    // tier (a workflow pushed past its own solo span overtakes the
    // booking order), ids breaking ties inside a tier. The order is
    // total at any instant — no pairwise-relative jumping, which could
    // cycle — so the queue head always converges onto the machine.
    sim::Time start = std::max(
        self.ready, serve_held_ahead(query, [&](const ReservationEntry& held) {
          const int tier = starvation_tier(stretch(held, query.now));
          return tier > self_tier ||
                 (tier == self_tier && held.id < self.id);
        }));
    // Only the single most-stretched pending competitor may displace the
    // request: boosting one victim at a time keeps the collateral damage
    // (displaced mid-pack workflows picking up slowdown of their own)
    // minimal, which is what keeps the whole distribution tight.
    const ReservationEntry* starved = nullptr;
    double starved_stretch = 0.0;
    for (const ReservationEntry& other : *query.queue) {
      if (other.participant == self.participant ||
          other.state == ReservationState::kHeld ||
          !can_take_slot(other, query)) {
        continue;
      }
      const double s = stretch(other, query.now);
      if (starved == nullptr || s > starved_stretch) {
        starved = &other;
        starved_stretch = s;
      }
    }
    if (starved != nullptr && displaces(starved_stretch, self_stretch)) {
      start = std::max(start, projected_release(*starved, query));
    }
    return start;
  }

  // Preemption escalates the same stretch comparison to committed
  // windows; the session applies the resilience deadband on top.
  [[nodiscard]] bool supports_preemption() const override { return true; }
  [[nodiscard]] double preemption_stretch(const ReservationEntry& entry,
                                          sim::Time now) const override {
    return stretch(entry, now);
  }

 private:
  [[nodiscard]] static double stretch(const ReservationEntry& request,
                                      sim::Time now) {
    if (request.planned_span <= 0.0) {
      return 0.0;  // scale unknown: never displaces competitors
    }
    return request.priority * std::max(now - request.active_since, 0.0) /
           request.planned_span;
  }

  /// Does a competitor stretched to `starved` deserve the machine before
  /// a requester stretched to `self`? Only when it is well past its own
  /// uncontended completion AND starved beyond the deadband relative to
  /// the requester. The deadband keeps mutual deferral impossible, so
  /// some pending request is always granted.
  [[nodiscard]] static bool displaces(double starved, double self) {
    return starved > 2.0 && starved > 1.25 * self;
  }

  /// Starvation tier of a stretch value: quantized most-starved-first.
  /// A workflow a full band more stretched than another overtakes its
  /// held bookings; inside a band the registration order stands. An
  /// absolute quantization — not a pairwise-relative test — so the
  /// service order over held claims is total at every instant, and the
  /// band width is the hysteresis that keeps mild imbalance from
  /// reshuffling the queue on every wiggle. The band equals the
  /// pending-displacement deadband: overtaking a booking takes the same
  /// two-own-makespans starvation that displacing a queue head does.
  [[nodiscard]] static int starvation_tier(double stretch_value) {
    constexpr double kBand = 2.0;
    return static_cast<int>(std::max(0.0, stretch_value) / kBand);
  }
};

}  // namespace

std::unique_ptr<ContentionPolicy> make_contention_policy(
    ContentionPolicyKind kind) {
  switch (kind) {
    case ContentionPolicyKind::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case ContentionPolicyKind::kPriority:
      return std::make_unique<PriorityPolicy>();
    case ContentionPolicyKind::kFairShare:
      return std::make_unique<FairSharePolicy>();
  }
  throw std::invalid_argument("unknown contention policy kind");
}

struct ContentionPolicyRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Factory, std::less<>> factories;
};

ContentionPolicyRegistry::ContentionPolicyRegistry()
    : impl_(std::make_shared<Impl>()) {
  for (const ContentionPolicyKind kind :
       {ContentionPolicyKind::kFcfs, ContentionPolicyKind::kPriority,
        ContentionPolicyKind::kFairShare}) {
    impl_->factories[to_string(kind)] = [kind] {
      return make_contention_policy(kind);
    };
  }
}

ContentionPolicyRegistry& ContentionPolicyRegistry::instance() {
  static ContentionPolicyRegistry registry;
  return registry;
}

void ContentionPolicyRegistry::register_policy(std::string name,
                                               Factory factory) {
  AHEFT_REQUIRE(!name.empty(), "contention policy needs a name");
  AHEFT_REQUIRE(factory != nullptr, "contention policy needs a factory");
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->factories[std::move(name)] = std::move(factory);
}

std::unique_ptr<ContentionPolicy> ContentionPolicyRegistry::create(
    std::string_view name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->factories.find(name);
    if (it != impl_->factories.end()) {
      factory = it->second;
    }
  }
  if (!factory) {
    std::ostringstream message;
    message << "unknown contention policy '" << name << "' (known:";
    for (const std::string& known : names()) {
      message << ' ' << known;
    }
    message << ')';
    throw std::invalid_argument(message.str());
  }
  std::unique_ptr<ContentionPolicy> policy = factory();
  AHEFT_REQUIRE(policy != nullptr,
                "contention policy factory returned null");
  return policy;
}

bool ContentionPolicyRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->factories.find(name) != impl_->factories.end();
}

std::vector<std::string> ContentionPolicyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> result;
  result.reserve(impl_->factories.size());
  for (const auto& [name, factory] : impl_->factories) {
    result.push_back(name);
  }
  return result;
}

}  // namespace aheft::core
