#include "core/resource_ledger.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

std::string to_string(ReservationState state) {
  switch (state) {
    case ReservationState::kPending:
      return "pending";
    case ReservationState::kHeld:
      return "held";
    case ReservationState::kCommitted:
      return "committed";
    case ReservationState::kWithdrawn:
      return "withdrawn";
  }
  return "unknown";
}

ResourceLedger::Timeline* ResourceLedger::timeline(
    grid::ResourceId resource) {
  const auto it = timelines_.find(resource);
  return it == timelines_.end() ? nullptr : &it->second;
}

const ResourceLedger::Timeline* ResourceLedger::timeline(
    grid::ResourceId resource) const {
  const auto it = timelines_.find(resource);
  return it == timelines_.end() ? nullptr : &it->second;
}

ReservationEntry& ResourceLedger::upsert(std::size_t participant,
                                         grid::ResourceId resource,
                                         std::uint64_t tag, sim::Time ready,
                                         double duration, double priority,
                                         sim::Time active_since,
                                         double planned_span) {
  AHEFT_REQUIRE(duration >= 0.0, "reservation duration must be >= 0");
  Timeline& line = timelines_[resource];
  ReservationEntry* entry = nullptr;
  for (ReservationEntry& candidate : line.queue) {
    if (candidate.participant == participant && candidate.tag == tag) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    ReservationEntry fresh;
    fresh.id = next_id_++;
    fresh.participant = participant;
    fresh.tag = tag;
    fresh.resource = resource;
    fresh.first_ready = ready;
    // Work withdrawn by a reschedule and re-requested resumes its wait
    // clock instead of restarting it.
    if (const auto carried = carried_first_ready_.find({participant, tag});
        carried != carried_first_ready_.end()) {
      fresh.first_ready = std::min(fresh.first_ready, carried->second);
      carried_first_ready_.erase(carried);
    }
    line.queue.push_back(fresh);
    entry = &line.queue.back();
  }
  entry->ready = ready;
  entry->duration = duration;
  entry->priority = priority;
  entry->active_since = active_since;
  entry->planned_span = planned_span;
  return *entry;
}

const ReservationEntry* ResourceLedger::find(std::size_t participant,
                                             grid::ResourceId resource,
                                             std::uint64_t tag) const {
  const Timeline* line = timeline(resource);
  if (line == nullptr) {
    return nullptr;
  }
  for (const ReservationEntry& entry : line->queue) {
    if (entry.participant == participant && entry.tag == tag) {
      return &entry;
    }
  }
  return nullptr;
}

bool ResourceLedger::hold(std::size_t participant, grid::ResourceId resource,
                          std::uint64_t tag, sim::Time start) {
  Timeline* line = timeline(resource);
  AHEFT_ASSERT(line != nullptr, "hold on a resource with no reservations");
  for (ReservationEntry& entry : line->queue) {
    if (entry.participant == participant && entry.tag == tag) {
      const bool moved = entry.state != ReservationState::kHeld ||
                         entry.held_start != start;
      entry.state = ReservationState::kHeld;
      entry.held_start = start;
      return moved;
    }
  }
  AHEFT_ASSERT(false, "hold without a queued reservation for the work");
  return false;
}

ReservationEntry ResourceLedger::commit(std::size_t participant,
                                        grid::ResourceId resource,
                                        std::uint64_t tag, sim::Time start,
                                        sim::Time end) {
  AHEFT_ASSERT(sim::time_le(start, end),
               "committed reservation must have start <= end");
  Timeline* line = timeline(resource);
  AHEFT_ASSERT(line != nullptr,
               "commit on a resource with no reservations");
  const auto it = std::find_if(
      line->queue.begin(), line->queue.end(),
      [participant, tag](const ReservationEntry& entry) {
        return entry.participant == participant && entry.tag == tag;
      });
  AHEFT_ASSERT(it != line->queue.end(),
               "commit without a queued reservation for the work");

  // Core invariant: committed windows never overlap on one resource. An
  // overlap means two workflows believe they occupy the same machine at
  // once — arbitration failed somewhere upstream. Windows are start-sorted
  // and pairwise disjoint, so ends are sorted too: only the nearest
  // non-empty neighbor on each side can conflict (fully-truncated windows
  // are zero-width and skipped).
  if (end > start) {
    const auto next = line->committed.lower_bound({start, 0});
    for (auto before = next; before != line->committed.begin();) {
      --before;
      if (before->second.end <= before->second.start) {
        continue;  // truncated to nothing
      }
      AHEFT_ASSERT(sim::time_le(before->second.end, start),
                   "overlapping committed reservations on one resource");
      break;
    }
    for (auto after = next;
         after != line->committed.end() && after->second.start < end;
         ++after) {
      AHEFT_ASSERT(after->second.end <= after->second.start,
                   "overlapping committed reservations on one resource");
    }
  }

  ReservationEntry committed = *it;
  committed.state = ReservationState::kCommitted;
  line->committed.emplace(
      std::make_pair(start, committed.id),
      CommittedWindow{committed.id, participant, tag, start, end,
                      committed.first_ready});
  auto& horizon = line->committed_until_by[participant];
  horizon = std::max(horizon, end);
  carried_first_ready_.erase({participant, tag});
  line->queue.erase(it);
  return committed;
}

std::vector<grid::ResourceId> ResourceLedger::withdraw_all(
    std::size_t participant) {
  std::vector<grid::ResourceId> touched;
  for (auto& [resource, line] : timelines_) {
    const auto stale = std::remove_if(
        line.queue.begin(), line.queue.end(),
        [this, participant](const ReservationEntry& entry) {
          if (entry.participant != participant) {
            return false;
          }
          // Keep the wait baseline: the reschedule may re-request the
          // same work (same tag) and must not zero the contention wait
          // already endured.
          const auto [carried, inserted] = carried_first_ready_.try_emplace(
              {participant, entry.tag}, entry.first_ready);
          if (!inserted) {
            carried->second = std::min(carried->second, entry.first_ready);
          }
          return true;
        });
    if (stale != line.queue.end()) {
      line.queue.erase(stale, line.queue.end());
      touched.push_back(resource);
    }
  }
  return touched;
}

bool ResourceLedger::withdraw(std::size_t participant,
                              grid::ResourceId resource, std::uint64_t tag) {
  Timeline* line = timeline(resource);
  if (line == nullptr) {
    return false;
  }
  const auto it = std::find_if(
      line->queue.begin(), line->queue.end(),
      [participant, tag](const ReservationEntry& entry) {
        return entry.participant == participant && entry.tag == tag;
      });
  if (it == line->queue.end()) {
    return false;
  }
  const auto [carried, inserted] = carried_first_ready_.try_emplace(
      {participant, tag}, it->first_ready);
  if (!inserted) {
    carried->second = std::min(carried->second, it->first_ready);
  }
  line->queue.erase(it);
  return true;
}

void ResourceLedger::truncate_commit(std::size_t participant,
                                     grid::ResourceId resource,
                                     std::uint64_t tag, sim::Time at,
                                     bool carry_baseline) {
  Timeline* line = timeline(resource);
  if (line == nullptr) {
    return;
  }
  bool truncated = false;
  for (auto& [key, window] : line->committed) {
    if (window.participant == participant && window.tag == tag &&
        window.end > at) {
      window.end = std::max(window.start, at);
      truncated = true;
      if (carry_baseline) {
        const auto [carried, inserted] = carried_first_ready_.try_emplace(
            {participant, tag}, window.first_ready);
        if (!inserted) {
          carried->second = std::min(carried->second, window.first_ready);
        }
      }
    }
  }
  if (!truncated) {
    return;
  }
  // The participant's committed horizon may have shrunk: recompute it
  // from the surviving windows (truncations are rare — one per restarted
  // job — so the scan is off the hot path).
  sim::Time horizon = sim::kTimeZero;
  for (const auto& [key, window] : line->committed) {
    // Fully truncated (empty) windows are elided everywhere else; a
    // revoked job that never ran must not leave a phantom floor either.
    if (window.participant == participant && window.end > window.start) {
      horizon = std::max(horizon, window.end);
    }
  }
  line->committed_until_by[participant] = horizon;
}

const std::vector<ReservationEntry>& ResourceLedger::queue(
    grid::ResourceId resource) const {
  static const std::vector<ReservationEntry> kEmpty;
  const Timeline* line = timeline(resource);
  return line == nullptr ? kEmpty : line->queue;
}

sim::Time ResourceLedger::committed_until(grid::ResourceId resource) const {
  const Timeline* line = timeline(resource);
  sim::Time until = sim::kTimeZero;
  if (line != nullptr) {
    for (const auto& [participant, end] : line->committed_until_by) {
      until = std::max(until, end);
    }
  }
  return until;
}

sim::Time ResourceLedger::committed_until_excluding(
    grid::ResourceId resource, std::size_t participant) const {
  const Timeline* line = timeline(resource);
  sim::Time until = sim::kTimeZero;
  if (line != nullptr) {
    for (const auto& [owner, end] : line->committed_until_by) {
      if (owner != participant) {
        until = std::max(until, end);
      }
    }
  }
  return until;
}

std::vector<CommittedWindow> ResourceLedger::committed_windows(
    grid::ResourceId resource) const {
  std::vector<CommittedWindow> windows;
  const Timeline* line = timeline(resource);
  if (line != nullptr) {
    windows.reserve(line->committed.size());
    for (const auto& [key, window] : line->committed) {
      if (window.end > window.start) {
        windows.push_back(window);
      }
    }
  }
  return windows;
}

AvailabilityView ResourceLedger::snapshot_view(std::size_t owner,
                                               sim::Time now) const {
  AvailabilityView view(now);
  for (const auto& [resource, line] : timelines_) {
    // Committed windows: occupation that is still (partly) ahead of the
    // snapshot instant. Fully-elapsed and fully-truncated windows cannot
    // constrain a plan whose starts are >= now.
    for (const auto& [key, window] : line.committed) {
      if (window.participant != owner && window.end > now &&
          window.end > window.start) {
        view.add_busy(resource, window.start, window.end);
      }
    }
    // Held two-phase claims: a granted start the owner accepted but has
    // not occupied yet. Displaceable by the policy, but until displaced
    // they are load a plan should price. Pending entries have no granted
    // start and stay invisible.
    for (const ReservationEntry& entry : line.queue) {
      if (entry.participant != owner &&
          entry.state == ReservationState::kHeld &&
          entry.held_start + entry.duration > now) {
        view.add_busy(resource, entry.held_start,
                      entry.held_start + entry.duration);
      }
    }
  }
  view.normalize();
  return view;
}

std::optional<sim::Time> ResourceLedger::backfill_start(
    const ReservationEntry& request, sim::Time now,
    sim::Time policy_grant) const {
  const sim::Time base = std::max(request.ready, now);
  if (sim::time_le(policy_grant, base)) {
    return std::nullopt;  // not deferred: nothing to gain
  }
  const Timeline* line = timeline(request.resource);
  if (line == nullptr) {
    return std::nullopt;
  }

  // Blockers: committed windows plus held claims, as (start, end) spans.
  // Both are reservations earlier in the timeline that a backfilled job
  // must provably not touch.
  std::vector<std::pair<sim::Time, sim::Time>> blockers;
  blockers.reserve(line->committed.size() + line->queue.size());
  for (const auto& [key, window] : line->committed) {
    if (window.end > base && window.end > window.start) {
      blockers.emplace_back(window.start, window.end);
    }
  }
  // The no-delay fence: the backfilled window must end before any other
  // queued entry could feasibly start, so no pending grant can move later
  // because of it. Held claims block like windows instead (they have a
  // granted start of their own).
  sim::Time fence = sim::kTimeInfinity;
  for (const ReservationEntry& other : line->queue) {
    if (other.id == request.id) {
      continue;
    }
    if (other.state == ReservationState::kHeld) {
      blockers.emplace_back(other.held_start,
                            other.held_start + other.duration);
    } else {
      fence = std::min(fence, std::max(other.ready, now));
    }
  }
  std::sort(blockers.begin(), blockers.end());

  // First-fit: slide the candidate start past every blocker it overlaps.
  sim::Time start = base;
  for (const auto& [blocker_start, blocker_end] : blockers) {
    if (sim::time_ge(blocker_start, start + request.duration)) {
      break;  // the hole before this blocker fits
    }
    if (blocker_end > start) {
      start = std::max(start, blocker_end);
    }
  }
  const bool fits_fence = sim::time_le(start + request.duration, fence);
  const bool beats_policy =
      start < policy_grant && !sim::time_eq(start, policy_grant);
  if (fits_fence && beats_policy) {
    return start;
  }
  return std::nullopt;
}

std::size_t ResourceLedger::queued_count() const {
  std::size_t count = 0;
  for (const auto& [resource, line] : timelines_) {
    count += line.queue.size();
  }
  return count;
}

}  // namespace aheft::core
