#include "core/execution_engine.h"

#include <algorithm>
#include <stdexcept>

#include "support/assert.h"

namespace aheft::core {

ExecutionEngine::ExecutionEngine(sim::Simulator& simulator,
                                 const dag::Dag& dag,
                                 const grid::CostProvider& actual,
                                 const grid::ResourcePool& pool,
                                 sim::TraceRecorder* trace)
    : simulator_(&simulator),
      dag_(&dag),
      actual_(&actual),
      pool_(&pool),
      trace_(trace),
      jobs_(dag.job_count()),
      done_frac_(dag.job_count(), 0.0),
      restart_debt_(dag.job_count(), 0.0),
      edge_arrivals_(dag.edge_count()) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
}

ExecutionEngine::ExecutionEngine(SimulationSession& session,
                                 const dag::Dag& dag,
                                 const grid::CostProvider& actual,
                                 double priority)
    : ExecutionEngine(session.simulator(), dag, actual, session.pool(),
                      session.trace()) {
  load_ = session.load();
  session_ = &session;
  if (session.resilience().active()) {
    resilience_ = &session.resilience();
  }
  session.add_participant(this, priority);
}

void ExecutionEngine::contention_changed(grid::ResourceId resource) {
  if (has_schedule_) {
    pump(resource);
  }
}

const Schedule& ExecutionEngine::current_schedule() const {
  AHEFT_REQUIRE(has_schedule_, "no schedule submitted yet");
  return schedule_;
}

void ExecutionEngine::record_arrival(std::size_t edge_index,
                                     grid::ResourceId resource,
                                     sim::Time when) {
  auto& per_edge = edge_arrivals_[edge_index];
  const auto it = per_edge.find(resource);
  if (it == per_edge.end() || when < it->second) {
    per_edge[resource] = when;
  }
}

sim::Time ExecutionEngine::ensure_transfer(std::size_t edge_index,
                                           grid::ResourceId target,
                                           sim::Time when) {
  const dag::Edge& edge = dag_->edges()[edge_index];
  const JobState& producer = jobs_[edge.from];
  AHEFT_ASSERT(producer.phase == Phase::kFinished,
               "transfer initiated before producer finished");
  auto& per_edge = edge_arrivals_[edge_index];
  if (const auto it = per_edge.find(target); it != per_edge.end()) {
    return it->second;  // already there or already in flight
  }
  // Transfer start depends on the file-movement model; see TransferPolicy.
  const double c = actual_->comm_cost(edge, producer.resource, target);
  sim::Time start = when;
  sim::Time arrival = when + c;
  switch (transfer_policy_) {
    case TransferPolicy::kRetransmitFromClock:
      break;  // leaves now
    case TransferPolicy::kEagerReplicate:
      start = std::max(producer.aft, pool_->resource(target).arrival);
      arrival = start + c;
      break;
    case TransferPolicy::kPrestagedArrivals:
      arrival =
          std::max(producer.aft + c, pool_->resource(target).arrival);
      start = arrival - c;
      break;
  }
  per_edge[target] = arrival;
  if (trace_ != nullptr && arrival > start) {
    trace_->record_transfer(edge.from, edge.to, target, start, arrival);
  }
  return arrival;
}

void ExecutionEngine::submit(const Schedule& schedule) {
  AHEFT_REQUIRE(schedule.job_count() == dag_->job_count(),
                "schedule sized for a different DAG");
  AHEFT_REQUIRE(schedule.complete(), "submitted schedule must be complete");
  AHEFT_REQUIRE(!failed_, "schedule submitted to a failed workflow");
  const sim::Time now = simulator_->now();

  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    JobState& state = jobs_[i];
    const Assignment& next = schedule.assignment(i);
    switch (state.phase) {
      case Phase::kFinished:
        // A reschedule must keep completed work where it happened.
        AHEFT_ASSERT(next.resource == state.resource &&
                         sim::time_eq(next.finish, state.aft),
                     "reschedule rewrote history of a finished job");
        break;
      case Phase::kRunning: {
        const bool kept = next.resource == state.resource &&
                          sim::time_eq(next.start, state.ast);
        if (!kept) {
          // The planner replanned this running job: cancel and restart
          // (keeping only checkpointed progress, if any). The machine
          // frees now, so the ledger's committed reservation is truncated
          // to the cancellation instead of blocking competitors until the
          // cancelled job's projected finish.
          const bool cancelled = simulator_->cancel(state.completion);
          AHEFT_ASSERT(cancelled, "running job had no completion event");
          account_interrupted_segment(i, now);
          if (session_ != nullptr) {
            session_->truncate_commit(this, state.resource, /*tag=*/i, now);
          }
          if (trace_ != nullptr) {
            trace_->record_compute(i, state.resource, state.ast, now);
          }
          state = JobState{};
          ++restarts_;
        }
        break;
      }
      case Phase::kPending:
        break;
    }
  }

  if (!has_schedule_) {
    initial_plan_makespan_ = schedule.makespan();
  }
  schedule_ = schedule;
  has_schedule_ = true;

  // Retransmit outputs of finished producers toward consumers that moved
  // (FEA case 2: the copy cannot leave before `now`).
  for (std::size_t e = 0; e < dag_->edge_count(); ++e) {
    const dag::Edge& edge = dag_->edges()[e];
    if (jobs_[edge.from].phase != Phase::kFinished ||
        jobs_[edge.to].phase == Phase::kFinished) {
      continue;
    }
    ensure_transfer(e, schedule_.assignment(edge.to).resource, now);
  }

  rebuild_queues();
  // A pump can restructure or clear queues_ mid-loop (kFail tears the
  // whole map down, a requeue fails over), so iterate a snapshot of the
  // keys; pump() re-finds its queue and no-ops on vanished resources.
  std::vector<grid::ResourceId> to_pump;
  to_pump.reserve(queues_.size());
  for (const auto& [resource, queue] : queues_) {
    to_pump.push_back(resource);
  }
  for (const grid::ResourceId resource : to_pump) {
    pump(resource);
  }
}

void ExecutionEngine::rebuild_queues() {
  queues_.clear();
  queue_pos_.clear();
  resource_free_.clear();
  pending_pump_.clear();
  if (session_ != nullptr) {
    // A reschedule may have moved the queue heads: drop the pending
    // acquisitions so stale requests cannot gate competing workflows;
    // the post-rebuild pumps re-register the live ones.
    session_->withdraw_all(this);
  }
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    const JobState& state = jobs_[i];
    const Assignment& a = schedule_.assignment(i);
    if (state.phase == Phase::kPending) {
      queues_[a.resource].push_back(i);
    } else if (state.phase == Phase::kRunning) {
      // The machine stays busy until the running job's projected finish.
      auto& free_at = resource_free_[state.resource];
      free_at = std::max(free_at, state.aft);
    }
  }
  for (auto& [resource, queue] : queues_) {
    std::sort(queue.begin(), queue.end(),
              [this](dag::JobId a, dag::JobId b) {
                const Assignment& aa = schedule_.assignment(a);
                const Assignment& ab = schedule_.assignment(b);
                if (aa.start != ab.start) {
                  return aa.start < ab.start;
                }
                return a < b;
              });
    queue_pos_[resource] = 0;
  }
}

void ExecutionEngine::pump(grid::ResourceId resource) {
  if (failed_) {
    return;
  }
  const auto queue_it = queues_.find(resource);
  if (queue_it == queues_.end()) {
    return;
  }
  const std::vector<dag::JobId>& queue = queue_it->second;
  std::size_t& pos = queue_pos_[resource];
  const sim::Time now = simulator_->now();

  while (pos < queue.size()) {
    const dag::JobId job = queue[pos];
    const JobState& state = jobs_[job];
    if (state.phase == Phase::kFinished ||
        schedule_.assignment(job).resource != resource) {
      ++pos;  // stale entry after a reschedule or a requeue
      continue;
    }
    AHEFT_ASSERT(state.phase == Phase::kPending,
                 "queued job is already running");

    // (a) inputs present on this resource?
    sim::Time ready = sim::kTimeZero;
    for (const std::uint32_t e : dag_->in_edges(job)) {
      const dag::Edge& edge = dag_->edges()[e];
      if (jobs_[edge.from].phase != Phase::kFinished) {
        return;  // producer pending/running: its completion re-pumps us
      }
      const auto& arrivals = edge_arrivals_[e];
      const auto it = arrivals.find(resource);
      AHEFT_ASSERT(it != arrivals.end(),
                   "input of " + dag_->job(job).name +
                       " was never transferred to its resource");
      ready = std::max(ready, it->second);
    }

    // (b) machine free, (c) machine present.
    const grid::Resource& machine = pool_->resource(resource);
    sim::Time start = std::max({ready, machine.arrival, now});
    if (const auto free_it = resource_free_.find(resource);
        free_it != resource_free_.end()) {
      start = std::max(start, free_it->second);
    }
    // (d) the session's contention policy grants the machine slot
    //     (arbitrating against the other workflows' bookings and pending
    //     requests; under FCFS the grant is just their bookings).
    if (session_ != nullptr) {
      double request = actual_->compute_cost(job, resource);
      if (resilience_ != nullptr) {
        request = requeue_occupancy(job, resource);
      }
      start = session_->acquire(this, resource, start, request,
                                /*tag=*/job);
    }

    if (start > now) {
      // Try again when the gating time is reached (deduplicated).
      auto& pending = pending_pump_[resource];
      if (pending == 0 || pending > start) {
        simulator_->schedule_at(start, [this, resource] {
          pending_pump_[resource] = 0;
          pump(resource);
        });
        pending = start;
      }
      return;
    }

    if (!start_job(job, resource)) {
      return;  // queues restructured (fail/requeue): scan state is stale
    }
    ++pos;
  }
}

double ExecutionEngine::requeue_occupancy(dag::JobId job,
                                          grid::ResourceId resource) const {
  return restart_debt_[job] +
         resilience::segment_occupancy(
             resilience_->checkpoint,
             actual_->compute_cost(job, resource) * (1.0 - done_frac_[job]));
}

bool ExecutionEngine::start_job(dag::JobId job, grid::ResourceId resource) {
  const sim::Time now = simulator_->now();
  const grid::Resource& machine = pool_->resource(resource);
  double duration = actual_->compute_cost(job, resource);
  double work = duration;
  double debt = 0.0;
  double writes = 0.0;
  if (resilience_ != nullptr) {
    // The segment attempts the job's remaining fraction, pays any restart
    // read debt up front, and interleaves checkpoint writes.
    work = duration * (1.0 - done_frac_[job]);
    debt = restart_debt_[job];
    const double occupancy =
        resilience::segment_occupancy(resilience_->checkpoint, work);
    writes = occupancy - work;
    duration = debt + occupancy;
  }
  double factor = 1.0;
  if (load_ != nullptr) {
    factor = load_->factor(resource, now);
    AHEFT_ASSERT(factor > 0.0,
                 "load factor must be positive on " + machine.name);
    duration *= factor;
  }
  const bool fits = sim::time_le(now + duration, machine.departure);

  if (resilience_ == nullptr ||
      resilience_->departure_action == resilience::DepartureAction::kError) {
    if (load_ != nullptr && !fits) {
      // The planner fits jobs against nominal costs, so a load spike can
      // legitimately stretch one past a finite departure window. Without
      // restart semantics switched on that is a scenario the engine
      // cannot honor, not an internal invariant violation — report it as
      // such.
      throw std::runtime_error(
          "load-stretched job " + dag_->job(job).name + " (" +
          std::to_string(duration) + " units at factor " +
          std::to_string(factor) + ") would outlive resource " +
          machine.name +
          ": scenarios combining load segments with finite departures "
          "need restart semantics (unsupported; see ROADMAP)");
    }
    AHEFT_ASSERT(fits, "job " + dag_->job(job).name +
                           " would outlive resource " + machine.name);
  } else if (!fits) {
    if (resilience_->departure_action == resilience::DepartureAction::kFail) {
      fail_workflow("job " + dag_->job(job).name + " would outlive resource " +
                    machine.name);
      return false;
    }
    // kRequeue: the departure is a failure the job does not foresee.
    if (sim::time_le(machine.departure, now)) {
      // The machine is already gone; nothing can run here. Withdraw the
      // pending acquisition and move the job elsewhere.
      if (session_ != nullptr) {
        session_->withdraw(this, resource, /*tag=*/job);
      }
      requeue_job(job, now);
      return false;
    }
  }

  JobState& state = jobs_[job];
  state.phase = Phase::kRunning;
  state.resource = resource;
  state.ast = now;
  state.load_factor = factor;
  state.segment_work = work;
  state.segment_debt = debt;
  state.segment_writes = writes;
  if (resilience_ != nullptr) {
    restart_debt_[job] = 0.0;  // consumed into this segment
  }
  if (fits) {
    state.aft = now + duration;
    state.completion = simulator_->schedule_at(
        state.aft, [this, job] { complete_job(job); });
  } else {
    // Run to the wall: the job is interrupted by the departure and keeps
    // only its checkpointed floor progress.
    state.aft = machine.departure;
    state.completion = simulator_->schedule_at(
        state.aft, [this, job] { hit_departure(job); });
  }
  auto& free_at = resource_free_[resource];
  free_at = std::max(free_at, state.aft);
  if (session_ != nullptr) {
    session_->commit(this, resource, /*tag=*/job, state.ast, state.aft);
  }
  return true;
}

void ExecutionEngine::complete_job(dag::JobId job) {
  JobState& state = jobs_[job];
  AHEFT_ASSERT(state.phase == Phase::kRunning, "completion of non-running job");
  state.phase = Phase::kFinished;
  ++finished_count_;
  makespan_ = std::max(makespan_, state.aft);
  useful_work_ += state.segment_work;
  checkpoint_overhead_ += state.segment_debt + state.segment_writes;
  if (trace_ != nullptr) {
    trace_->record_compute(job, state.resource, state.ast, state.aft);
  }

  // Push outputs to wherever the current schedule placed the consumers
  // (static file-transfer model), and keep a copy at the producer. All
  // transfers are recorded before any consumer is pumped, otherwise a pump
  // triggered by one edge could observe another edge's missing arrival.
  std::vector<grid::ResourceId> to_pump;
  for (const std::uint32_t e : dag_->out_edges(job)) {
    const dag::Edge& edge = dag_->edges()[e];
    record_arrival(e, state.resource, state.aft);
    if (jobs_[edge.to].phase != Phase::kFinished) {
      const grid::ResourceId target = schedule_.assignment(edge.to).resource;
      ensure_transfer(e, target, state.aft);
      to_pump.push_back(target);
    }
  }
  for (const grid::ResourceId target : to_pump) {
    pump(target);
  }
  pump(state.resource);
  if (hook_) {
    hook_(job, state.resource, state.ast, state.aft);
  }
}

void ExecutionEngine::account_interrupted_segment(dag::JobId job,
                                                  sim::Time at) {
  JobState& state = jobs_[job];
  // Wall-clock elapsed back to nominal units (the segment composition is
  // nominal; the load factor stretched it uniformly).
  const double elapsed =
      std::max(at - state.ast, sim::kTimeZero) / state.load_factor;
  const double debt_paid = std::min(elapsed, state.segment_debt);
  checkpoint_overhead_ += debt_paid;
  resilience::SegmentProgress progress;
  if (resilience_ != nullptr) {
    progress = resilience::segment_progress(
        resilience_->checkpoint, elapsed - debt_paid, state.segment_work);
  } else {
    progress.lost = elapsed - debt_paid;  // no checkpoints: all redone
  }
  checkpoint_overhead_ += progress.overhead;
  lost_work_ += progress.lost;
  if (progress.retained > 0.0) {
    useful_work_ += progress.retained;
    // Retained work is in this machine's nominal units; fold it into the
    // machine-independent completed fraction. Strictly < 1: a segment's
    // retainable work is capped below its full remainder.
    const double total = actual_->compute_cost(job, state.resource);
    done_frac_[job] = std::min(done_frac_[job] + progress.retained / total,
                               1.0);
  }
  restart_debt_[job] =
      (resilience_ != nullptr && resilience_->checkpoint.enabled &&
       done_frac_[job] > 0.0)
          ? resilience_->checkpoint.read_cost
          : 0.0;
}

void ExecutionEngine::hit_departure(dag::JobId job) {
  JobState& state = jobs_[job];
  AHEFT_ASSERT(state.phase == Phase::kRunning,
               "departure hit a non-running job");
  const sim::Time now = simulator_->now();
  account_interrupted_segment(job, now);
  if (trace_ != nullptr) {
    trace_->record_compute(job, state.resource, state.ast, now);
  }
  // The committed ledger window ends exactly at the wall — no truncation
  // needed; the machine is gone either way.
  ++revoked_jobs_;
  state = JobState{};
  requeue_job(job, now);
}

bool ExecutionEngine::revoke_committed(grid::ResourceId resource,
                                       std::uint64_t tag) {
  if (resilience_ == nullptr || failed_ || !has_schedule_ ||
      tag >= jobs_.size()) {
    return false;
  }
  const dag::JobId job = static_cast<dag::JobId>(tag);
  JobState& state = jobs_[job];
  if (state.phase != Phase::kRunning || state.resource != resource) {
    return false;
  }
  if (!simulator_->cancel(state.completion)) {
    return false;  // completing this very instant: nothing left to take
  }
  const sim::Time now = simulator_->now();
  account_interrupted_segment(job, now);
  // Truncating carries the job's first-feasible baseline into its
  // re-registration, so the eviction does not zero its fair-share wait.
  session_->truncate_commit(this, resource, tag, now, /*carry_baseline=*/true);
  if (trace_ != nullptr) {
    trace_->record_compute(job, resource, state.ast, now);
  }
  if (const auto it = resource_free_.find(resource);
      it != resource_free_.end() && it->second > now) {
    it->second = now;  // the machine frees under the evicted job
  }
  ++revoked_jobs_;
  state = JobState{};
  requeue_job(job, now);
  return true;
}

void ExecutionEngine::requeue_job(dag::JobId job, sim::Time now) {
  if (failed_) {
    return;
  }
  if (!session_->may_revoke(this, /*tag=*/job)) {
    fail_workflow("job " + dag_->job(job).name +
                  " exceeded the per-job revocation cap");
    return;
  }
  session_->record_revocation(this, /*tag=*/job);
  const grid::ResourceId target = choose_requeue_target(job, now);
  if (target == grid::kInvalidResource) {
    fail_workflow("no machine left to requeue job " + dag_->job(job).name +
                  " on");
    return;
  }
  reassign(job, target, now);
  // The job was at (or past) its start: every producer has finished, so
  // its inputs retransmit toward the new machine from now.
  for (const std::uint32_t e : dag_->in_edges(job)) {
    ensure_transfer(e, target, now);
  }
  queues_[target].push_back(job);
  pump(target);
}

grid::ResourceId ExecutionEngine::choose_requeue_target(dag::JobId job,
                                                        sim::Time now) const {
  grid::ResourceId best = grid::kInvalidResource;
  sim::Time best_finish = sim::kTimeInfinity;
  grid::ResourceId fallback = grid::kInvalidResource;
  sim::Time fallback_departure = now;
  for (const grid::Resource& machine : pool_->all()) {
    if (machine.arrival == sim::kTimeInfinity) {
      continue;  // masked: owned by another shard of the session
    }
    if (sim::time_le(machine.departure, now)) {
      continue;  // already departed
    }
    const double occupancy = requeue_occupancy(job, machine.id);
    sim::Time start = std::max(now, machine.arrival);
    if (const auto it = resource_free_.find(machine.id);
        it != resource_free_.end()) {
      start = std::max(start, it->second);
    }
    if (session_ != nullptr) {
      start = session_->peek(this, machine.id, start, occupancy);
    }
    const sim::Time finish = start + occupancy;
    if (sim::time_le(finish, machine.departure)) {
      if (finish < best_finish) {
        best = machine.id;
        best_finish = finish;
      }
    } else if (machine.departure > fallback_departure) {
      fallback = machine.id;
      fallback_departure = machine.departure;
    }
  }
  return best != grid::kInvalidResource ? best : fallback;
}

void ExecutionEngine::reassign(dag::JobId job, grid::ResourceId target,
                               sim::Time now) {
  const grid::Resource& machine = pool_->resource(target);
  Schedule next(dag_->job_count());
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    if (i != job) {
      next.assign(schedule_.assignment(i));
    }
  }
  // Plan the remainder after the target's planned work; the pump applies
  // the real gating (inputs, machine free, contention grant) at start.
  sim::Time start = std::max(now, machine.arrival);
  for (const Assignment& slot : next.timeline(target)) {
    start = std::max(start, slot.finish);
  }
  next.assign(
      Assignment{job, target, start, start + requeue_occupancy(job, target)});
  schedule_ = std::move(next);
}

void ExecutionEngine::fail_workflow(const std::string& reason) {
  if (failed_) {
    return;
  }
  failed_ = true;
  failure_reason_ = reason;
  const sim::Time now = simulator_->now();
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    JobState& state = jobs_[i];
    if (state.phase != Phase::kRunning) {
      continue;
    }
    if (!simulator_->cancel(state.completion)) {
      continue;  // completes this very instant: let it finish
    }
    account_interrupted_segment(i, now);
    if (session_ != nullptr) {
      session_->truncate_commit(this, state.resource, /*tag=*/i, now);
    }
    if (trace_ != nullptr) {
      trace_->record_compute(i, state.resource, state.ast, now);
    }
    state = JobState{};
  }
  queues_.clear();
  queue_pos_.clear();
  pending_pump_.clear();
  if (session_ != nullptr) {
    session_->withdraw_all(this);
  }
  makespan_ = std::max(makespan_, now);
  if (failure_hook_) {
    failure_hook_(failure_reason_);
  }
}

ExecutionSnapshot ExecutionEngine::snapshot() const {
  ExecutionSnapshot snap(simulator_->now(), dag_->job_count(),
                         dag_->edge_count());
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    const JobState& state = jobs_[i];
    if (state.phase == Phase::kFinished) {
      snap.mark_finished(i, FinishedInfo{state.resource, state.ast, state.aft});
    } else if (state.phase == Phase::kRunning) {
      snap.add_running(RunningInfo{i, state.resource, state.ast, state.aft});
    }
  }
  for (std::size_t e = 0; e < dag_->edge_count(); ++e) {
    for (const auto& [resource, when] : edge_arrivals_[e]) {
      snap.record_arrival(e, resource, when);
    }
  }
  return snap;
}

}  // namespace aheft::core
