#include "core/execution_engine.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

ExecutionEngine::ExecutionEngine(sim::Simulator& simulator,
                                 const dag::Dag& dag,
                                 const grid::CostProvider& actual,
                                 const grid::ResourcePool& pool,
                                 sim::TraceRecorder* trace)
    : simulator_(&simulator),
      dag_(&dag),
      actual_(&actual),
      pool_(&pool),
      trace_(trace),
      jobs_(dag.job_count()),
      edge_arrivals_(dag.edge_count()) {
  AHEFT_REQUIRE(dag.finalized(), "DAG must be finalized");
}

ExecutionEngine::ExecutionEngine(SimulationSession& session,
                                 const dag::Dag& dag,
                                 const grid::CostProvider& actual,
                                 double priority)
    : ExecutionEngine(session.simulator(), dag, actual, session.pool(),
                      session.trace()) {
  load_ = session.load();
  session_ = &session;
  session.add_participant(this, priority);
}

void ExecutionEngine::contention_changed(grid::ResourceId resource) {
  if (has_schedule_) {
    pump(resource);
  }
}

const Schedule& ExecutionEngine::current_schedule() const {
  AHEFT_REQUIRE(has_schedule_, "no schedule submitted yet");
  return schedule_;
}

void ExecutionEngine::record_arrival(std::size_t edge_index,
                                     grid::ResourceId resource,
                                     sim::Time when) {
  auto& per_edge = edge_arrivals_[edge_index];
  const auto it = per_edge.find(resource);
  if (it == per_edge.end() || when < it->second) {
    per_edge[resource] = when;
  }
}

sim::Time ExecutionEngine::ensure_transfer(std::size_t edge_index,
                                           grid::ResourceId target,
                                           sim::Time when) {
  const dag::Edge& edge = dag_->edges()[edge_index];
  const JobState& producer = jobs_[edge.from];
  AHEFT_ASSERT(producer.phase == Phase::kFinished,
               "transfer initiated before producer finished");
  auto& per_edge = edge_arrivals_[edge_index];
  if (const auto it = per_edge.find(target); it != per_edge.end()) {
    return it->second;  // already there or already in flight
  }
  // Transfer start depends on the file-movement model; see TransferPolicy.
  const double c = actual_->comm_cost(edge, producer.resource, target);
  sim::Time start = when;
  sim::Time arrival = when + c;
  switch (transfer_policy_) {
    case TransferPolicy::kRetransmitFromClock:
      break;  // leaves now
    case TransferPolicy::kEagerReplicate:
      start = std::max(producer.aft, pool_->resource(target).arrival);
      arrival = start + c;
      break;
    case TransferPolicy::kPrestagedArrivals:
      arrival =
          std::max(producer.aft + c, pool_->resource(target).arrival);
      start = arrival - c;
      break;
  }
  per_edge[target] = arrival;
  if (trace_ != nullptr && arrival > start) {
    trace_->record_transfer(edge.from, edge.to, target, start, arrival);
  }
  return arrival;
}

void ExecutionEngine::submit(const Schedule& schedule) {
  AHEFT_REQUIRE(schedule.job_count() == dag_->job_count(),
                "schedule sized for a different DAG");
  AHEFT_REQUIRE(schedule.complete(), "submitted schedule must be complete");
  const sim::Time now = simulator_->now();

  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    JobState& state = jobs_[i];
    const Assignment& next = schedule.assignment(i);
    switch (state.phase) {
      case Phase::kFinished:
        // A reschedule must keep completed work where it happened.
        AHEFT_ASSERT(next.resource == state.resource &&
                         sim::time_eq(next.finish, state.aft),
                     "reschedule rewrote history of a finished job");
        break;
      case Phase::kRunning: {
        const bool kept = next.resource == state.resource &&
                          sim::time_eq(next.start, state.ast);
        if (!kept) {
          // The planner replanned this running job: cancel and restart
          // from scratch (no checkpointing). The machine frees now, so
          // the ledger's committed reservation is truncated to the
          // cancellation instead of blocking competitors until the
          // cancelled job's projected finish.
          const bool cancelled = simulator_->cancel(state.completion);
          AHEFT_ASSERT(cancelled, "running job had no completion event");
          if (session_ != nullptr) {
            session_->truncate_commit(this, state.resource, /*tag=*/i, now);
          }
          if (trace_ != nullptr) {
            trace_->record_compute(i, state.resource, state.ast, now);
          }
          state = JobState{};
          ++restarts_;
        }
        break;
      }
      case Phase::kPending:
        break;
    }
  }

  if (!has_schedule_) {
    initial_plan_makespan_ = schedule.makespan();
  }
  schedule_ = schedule;
  has_schedule_ = true;

  // Retransmit outputs of finished producers toward consumers that moved
  // (FEA case 2: the copy cannot leave before `now`).
  for (std::size_t e = 0; e < dag_->edge_count(); ++e) {
    const dag::Edge& edge = dag_->edges()[e];
    if (jobs_[edge.from].phase != Phase::kFinished ||
        jobs_[edge.to].phase == Phase::kFinished) {
      continue;
    }
    ensure_transfer(e, schedule_.assignment(edge.to).resource, now);
  }

  rebuild_queues();
  for (const auto& [resource, queue] : queues_) {
    pump(resource);
  }
}

void ExecutionEngine::rebuild_queues() {
  queues_.clear();
  queue_pos_.clear();
  resource_free_.clear();
  pending_pump_.clear();
  if (session_ != nullptr) {
    // A reschedule may have moved the queue heads: drop the pending
    // acquisitions so stale requests cannot gate competing workflows;
    // the post-rebuild pumps re-register the live ones.
    session_->withdraw_all(this);
  }
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    const JobState& state = jobs_[i];
    const Assignment& a = schedule_.assignment(i);
    if (state.phase == Phase::kPending) {
      queues_[a.resource].push_back(i);
    } else if (state.phase == Phase::kRunning) {
      // The machine stays busy until the running job's projected finish.
      auto& free_at = resource_free_[state.resource];
      free_at = std::max(free_at, state.aft);
    }
  }
  for (auto& [resource, queue] : queues_) {
    std::sort(queue.begin(), queue.end(),
              [this](dag::JobId a, dag::JobId b) {
                const Assignment& aa = schedule_.assignment(a);
                const Assignment& ab = schedule_.assignment(b);
                if (aa.start != ab.start) {
                  return aa.start < ab.start;
                }
                return a < b;
              });
    queue_pos_[resource] = 0;
  }
}

void ExecutionEngine::pump(grid::ResourceId resource) {
  const auto queue_it = queues_.find(resource);
  if (queue_it == queues_.end()) {
    return;
  }
  const std::vector<dag::JobId>& queue = queue_it->second;
  std::size_t& pos = queue_pos_[resource];
  const sim::Time now = simulator_->now();

  while (pos < queue.size()) {
    const dag::JobId job = queue[pos];
    const JobState& state = jobs_[job];
    if (state.phase == Phase::kFinished) {
      ++pos;  // stale entry after a reschedule
      continue;
    }
    AHEFT_ASSERT(state.phase == Phase::kPending,
                 "queued job is already running");

    // (a) inputs present on this resource?
    sim::Time ready = sim::kTimeZero;
    for (const std::uint32_t e : dag_->in_edges(job)) {
      const dag::Edge& edge = dag_->edges()[e];
      if (jobs_[edge.from].phase != Phase::kFinished) {
        return;  // producer pending/running: its completion re-pumps us
      }
      const auto& arrivals = edge_arrivals_[e];
      const auto it = arrivals.find(resource);
      AHEFT_ASSERT(it != arrivals.end(),
                   "input of " + dag_->job(job).name +
                       " was never transferred to its resource");
      ready = std::max(ready, it->second);
    }

    // (b) machine free, (c) machine present.
    const grid::Resource& machine = pool_->resource(resource);
    sim::Time start = std::max({ready, machine.arrival, now});
    if (const auto free_it = resource_free_.find(resource);
        free_it != resource_free_.end()) {
      start = std::max(start, free_it->second);
    }
    // (d) the session's contention policy grants the machine slot
    //     (arbitrating against the other workflows' bookings and pending
    //     requests; under FCFS the grant is just their bookings).
    if (session_ != nullptr) {
      start = session_->acquire(this, resource, start,
                                actual_->compute_cost(job, resource),
                                /*tag=*/job);
    }

    if (start > now) {
      // Try again when the gating time is reached (deduplicated).
      auto& pending = pending_pump_[resource];
      if (pending == 0 || pending > start) {
        simulator_->schedule_at(start, [this, resource] {
          pending_pump_[resource] = 0;
          pump(resource);
        });
        pending = start;
      }
      return;
    }

    start_job(job, resource);
    ++pos;
  }
}

void ExecutionEngine::start_job(dag::JobId job, grid::ResourceId resource) {
  const sim::Time now = simulator_->now();
  const grid::Resource& machine = pool_->resource(resource);
  double duration = actual_->compute_cost(job, resource);
  if (load_ != nullptr) {
    const double factor = load_->factor(resource, now);
    AHEFT_ASSERT(factor > 0.0,
                 "load factor must be positive on " + machine.name);
    duration *= factor;
    // The planner fits jobs against nominal costs, so a load spike can
    // legitimately stretch one past a finite departure window. That is
    // a scenario the engine cannot honor (restart-on-unpredicted-failure
    // semantics don't exist yet), not an internal invariant violation —
    // report it as such.
    if (!sim::time_le(now + duration, machine.departure)) {
      throw std::runtime_error(
          "load-stretched job " + dag_->job(job).name + " (" +
          std::to_string(duration) + " units at factor " +
          std::to_string(factor) + ") would outlive resource " +
          machine.name +
          ": scenarios combining load segments with finite departures "
          "need restart semantics (unsupported; see ROADMAP)");
    }
  }
  AHEFT_ASSERT(sim::time_le(now + duration, machine.departure),
               "job " + dag_->job(job).name +
                   " would outlive resource " + machine.name);

  JobState& state = jobs_[job];
  state.phase = Phase::kRunning;
  state.resource = resource;
  state.ast = now;
  state.aft = now + duration;
  state.completion =
      simulator_->schedule_at(state.aft, [this, job] { complete_job(job); });
  auto& free_at = resource_free_[resource];
  free_at = std::max(free_at, state.aft);
  if (session_ != nullptr) {
    session_->commit(this, resource, /*tag=*/job, state.ast, state.aft);
  }
}

void ExecutionEngine::complete_job(dag::JobId job) {
  JobState& state = jobs_[job];
  AHEFT_ASSERT(state.phase == Phase::kRunning, "completion of non-running job");
  state.phase = Phase::kFinished;
  ++finished_count_;
  makespan_ = std::max(makespan_, state.aft);
  if (trace_ != nullptr) {
    trace_->record_compute(job, state.resource, state.ast, state.aft);
  }

  // Push outputs to wherever the current schedule placed the consumers
  // (static file-transfer model), and keep a copy at the producer. All
  // transfers are recorded before any consumer is pumped, otherwise a pump
  // triggered by one edge could observe another edge's missing arrival.
  std::vector<grid::ResourceId> to_pump;
  for (const std::uint32_t e : dag_->out_edges(job)) {
    const dag::Edge& edge = dag_->edges()[e];
    record_arrival(e, state.resource, state.aft);
    if (jobs_[edge.to].phase != Phase::kFinished) {
      const grid::ResourceId target = schedule_.assignment(edge.to).resource;
      ensure_transfer(e, target, state.aft);
      to_pump.push_back(target);
    }
  }
  for (const grid::ResourceId target : to_pump) {
    pump(target);
  }
  pump(state.resource);
  if (hook_) {
    hook_(job, state.resource, state.ast, state.aft);
  }
}

ExecutionSnapshot ExecutionEngine::snapshot() const {
  ExecutionSnapshot snap(simulator_->now(), dag_->job_count(),
                         dag_->edge_count());
  for (dag::JobId i = 0; i < dag_->job_count(); ++i) {
    const JobState& state = jobs_[i];
    if (state.phase == Phase::kFinished) {
      snap.mark_finished(i, FinishedInfo{state.resource, state.ast, state.aft});
    } else if (state.phase == Phase::kRunning) {
      snap.add_running(RunningInfo{i, state.resource, state.ast, state.aft});
    }
  }
  for (std::size_t e = 0; e < dag_->edge_count(); ++e) {
    for (const auto& [resource, when] : edge_arrivals_[e]) {
      snap.record_arrival(e, resource, when);
    }
  }
  return snap;
}

}  // namespace aheft::core
