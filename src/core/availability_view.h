// AvailabilityView: a planner-side snapshot of foreign machine load.
//
// The schedulers historically estimated earliest-start times against an
// empty grid: in a multi-DAG session the plan was systematically
// optimistic because competitors' committed windows and held two-phase
// claims (the session's ResourceLedger) were invisible to the HEFT pass,
// so AHEFT adapted to pool changes but not to contention. Batch systems
// plan against the live reservation timeline instead (conservative
// backfilling, Mu'alem & Feitelson; availability-aware list scheduling in
// HEFT derivatives) — the view is that timeline, frozen at one instant.
//
// A view is one snapshot: per machine, the merged, disjoint, start-sorted
// busy intervals a foreign workflow has locked in — committed occupation
// windows plus held (granted but not yet occupied) claims — taken by
// ResourceLedger::snapshot_view(owner, now). Owner filtering happens at
// snapshot time: a workflow's own windows and claims are never foreign
// load, so a solo session always snapshots an empty view, and an empty
// view constrains nothing (the compat fence: every planning path must be
// bit-identical to the pre-view code under an empty view).
//
// The view deliberately stays a value type with no ledger reference: a
// planning pass works over an immutable picture, and freshness is the
// caller's contract (AdaptivePlanner re-snapshots at every evaluation and
// records the snapshot time next to the decision so staleness is
// assertable).
#ifndef AHEFT_CORE_AVAILABILITY_VIEW_H_
#define AHEFT_CORE_AVAILABILITY_VIEW_H_

#include <cstddef>
#include <map>
#include <vector>

#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::core {

/// One foreign busy span [start, end) on a machine.
struct BusyInterval {
  sim::Time start = sim::kTimeZero;
  sim::Time end = sim::kTimeZero;

  friend bool operator==(const BusyInterval&, const BusyInterval&) = default;
};

class AvailabilityView {
 public:
  /// An empty view at time zero: constrains nothing.
  AvailabilityView() = default;

  explicit AvailabilityView(sim::Time snapshot_time)
      : snapshot_time_(snapshot_time) {}

  /// The session clock at which the picture was frozen.
  [[nodiscard]] sim::Time snapshot_time() const { return snapshot_time_; }

  /// No busy interval on any machine.
  [[nodiscard]] bool empty() const { return busy_.empty(); }

  /// Number of busy intervals across all machines (after normalization:
  /// merged spans count once).
  [[nodiscard]] std::size_t interval_count() const;

  /// Records a foreign busy span; intervals may arrive unordered and
  /// overlapping. Empty spans (end <= start) are dropped. Call
  /// normalize() before querying.
  void add_busy(grid::ResourceId resource, sim::Time start, sim::Time end);

  /// Sorts and merges each machine's spans into disjoint, start-sorted
  /// intervals (touching spans merge). Idempotent.
  void normalize();

  /// The machine's merged busy intervals in start order (empty when the
  /// machine carries no foreign load).
  [[nodiscard]] const std::vector<BusyInterval>& busy(
      grid::ResourceId resource) const;

  /// Earliest start >= candidate such that [start, start + duration)
  /// overlaps no busy interval on `resource` (first-fit over the view's
  /// free gaps, with the schedule layer's epsilon tolerance so summed
  /// costs do not reject touching endpoints). Monotone: the result never
  /// precedes `candidate`.
  [[nodiscard]] sim::Time earliest_fit(grid::ResourceId resource,
                                       sim::Time candidate,
                                       sim::Time duration) const;

  /// Two views are equal when they freeze the same instant and the same
  /// per-machine intervals — the byte-equality basis of the snapshot
  /// determinism tests.
  friend bool operator==(const AvailabilityView&,
                         const AvailabilityView&) = default;

 private:
  sim::Time snapshot_time_ = sim::kTimeZero;
  std::map<grid::ResourceId, std::vector<BusyInterval>> busy_;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_AVAILABILITY_VIEW_H_
