// AHEFT: the HEFT-based adaptive rescheduling algorithm (paper §3.4).
//
// One routine covers both uses in the paper:
//  * initial scheduling — clock 0, empty snapshot — where AHEFT "is
//    identical to HEFT [19]";
//  * rescheduling of the remaining jobs at clock > 0 with a partially
//    executed schedule S0, using Eq. 1 (FEA), Eq. 2 (EST) and Eq. 3 (EFT).
#ifndef AHEFT_CORE_RESCHEDULER_H_
#define AHEFT_CORE_RESCHEDULER_H_

#include <span>
#include <vector>

#include "core/policies.h"
#include "core/schedule.h"
#include "core/snapshot.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/resource_pool.h"

namespace aheft::core {

/// Inputs of one (re)scheduling pass: procedure schedule(S0, P, H) of the
/// paper's Fig. 3, where P is `estimates` over `resources` and S0 is
/// (`previous`, `snapshot`).
struct RescheduleRequest {
  const dag::Dag* dag = nullptr;
  const grid::CostProvider* estimates = nullptr;   ///< the matrix P
  const grid::ResourcePool* pool = nullptr;        ///< availability windows
  std::vector<grid::ResourceId> resources;         ///< visible set R at clock
  sim::Time clock = sim::kTimeZero;
  const ExecutionSnapshot* snapshot = nullptr;     ///< null => initial
  const Schedule* previous = nullptr;              ///< S0; null => initial
  SchedulerConfig config;
  /// Foreign machine load snapshotted from the session ledger (other
  /// workflows' committed windows and held claims): every EST search
  /// fits into the view's free gaps instead of assuming an empty grid.
  /// Null (the default) and an empty view are bit-identical to the
  /// historical contention-blind pass.
  const AvailabilityView* availability = nullptr;
  /// Re-pricing mode (requires `previous`): every unpinned job keeps the
  /// resource `previous` mapped it to and only its EST/EFT is
  /// recomputed — under `availability` when set. The contention-aware
  /// planner uses this to estimate "keep the current plan" and a fresh
  /// remap candidate against the same ledger snapshot, so the adoption
  /// comparison is like-for-like instead of fresh-candidate vs a
  /// prediction frozen under an older contention picture. A job whose
  /// kept resource became infeasible falls back to the full visible set.
  bool restrict_to_previous = false;
  /// When no visible machine can finish a job before its departure wall,
  /// plan the job anyway on the machine that survives the longest
  /// instead of failing the pass. Only meaningful under restart
  /// semantics (DepartureAction kFail/kRequeue): the executor treats the
  /// doomed slot as a failure the job does not foresee — it runs to the
  /// wall, salvages checkpointed progress, and requeues or fails the
  /// workflow as data. Off by default: a historical (kError) session
  /// must keep reporting infeasibility as an invariant violation.
  bool allow_infeasible = false;
};

/// Runs one AHEFT pass and returns the full-coverage schedule S1: finished
/// jobs keep their actual slots, running jobs are pinned or restarted per
/// the configured RunningJobPolicy, and all remaining jobs are mapped in
/// non-increasing upward-rank order onto the EFT-minimising resource.
/// S1.makespan() is therefore the predicted makespan of the whole workflow.
[[nodiscard]] Schedule aheft_schedule(const RescheduleRequest& request);

/// The earliest time n_m's output can feed n_i on resource r (Eq. 1).
/// Exposed for unit tests; `new_schedule` is the S1 under construction
/// (already holding n_m for unfinished predecessors).
[[nodiscard]] sim::Time file_available(const RescheduleRequest& request,
                                       std::size_t edge_index,
                                       grid::ResourceId target,
                                       const Schedule& new_schedule);

}  // namespace aheft::core

#endif  // AHEFT_CORE_RESCHEDULER_H_
