#include "core/availability_view.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::core {

namespace {

const std::vector<BusyInterval> kNoIntervals;

}  // namespace

std::size_t AvailabilityView::interval_count() const {
  std::size_t count = 0;
  for (const auto& [resource, intervals] : busy_) {
    count += intervals.size();
  }
  return count;
}

void AvailabilityView::add_busy(grid::ResourceId resource, sim::Time start,
                                sim::Time end) {
  if (end <= start) {
    return;
  }
  busy_[resource].push_back(BusyInterval{start, end});
}

void AvailabilityView::normalize() {
  for (auto it = busy_.begin(); it != busy_.end();) {
    std::vector<BusyInterval>& intervals = it->second;
    std::sort(intervals.begin(), intervals.end(),
              [](const BusyInterval& a, const BusyInterval& b) {
                if (a.start != b.start) {
                  return a.start < b.start;
                }
                return a.end < b.end;
              });
    std::size_t merged = 0;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start <= intervals[merged].end) {
        intervals[merged].end =
            std::max(intervals[merged].end, intervals[i].end);
      } else {
        intervals[++merged] = intervals[i];
      }
    }
    if (!intervals.empty()) {
      intervals.resize(merged + 1);
    }
    it = intervals.empty() ? busy_.erase(it) : std::next(it);
  }
}

const std::vector<BusyInterval>& AvailabilityView::busy(
    grid::ResourceId resource) const {
  const auto it = busy_.find(resource);
  return it == busy_.end() ? kNoIntervals : it->second;
}

sim::Time AvailabilityView::earliest_fit(grid::ResourceId resource,
                                         sim::Time candidate,
                                         sim::Time duration) const {
  AHEFT_REQUIRE(duration >= 0.0, "fit duration must be non-negative");
  const auto it = busy_.find(resource);
  if (it == busy_.end()) {
    return candidate;
  }
  // Intervals are normalized (disjoint, start-sorted), so one forward scan
  // suffices: either the job fits before the next busy span or it slides
  // past it. The epsilon mirrors Schedule::earliest_slot's gap test so a
  // slot touching a foreign window is not rejected over summed-cost dust.
  for (const BusyInterval& interval : it->second) {
    if (candidate + duration <= interval.start + sim::kTimeEpsilon) {
      break;  // fits in the free gap before this busy span
    }
    candidate = std::max(candidate, interval.end);
  }
  return candidate;
}

}  // namespace aheft::core
