#include "core/heft.h"

#include "core/rescheduler.h"
#include "support/assert.h"

namespace aheft::core {

Schedule heft_schedule(const dag::Dag& dag,
                       const grid::CostProvider& estimates,
                       const grid::ResourcePool& pool, SchedulerConfig config,
                       sim::Time clock, const AvailabilityView* availability,
                       bool allow_infeasible) {
  return heft_schedule(dag, estimates, pool, pool.available_at(clock),
                       config, clock, availability, allow_infeasible);
}

Schedule heft_schedule(const dag::Dag& dag,
                       const grid::CostProvider& estimates,
                       const grid::ResourcePool& pool,
                       std::vector<grid::ResourceId> resources,
                       SchedulerConfig config, sim::Time clock,
                       const AvailabilityView* availability,
                       bool allow_infeasible) {
  RescheduleRequest request;
  request.dag = &dag;
  request.estimates = &estimates;
  request.pool = &pool;
  request.resources = std::move(resources);
  request.clock = clock;
  request.snapshot = nullptr;
  request.previous = nullptr;
  request.config = config;
  request.availability = availability;
  request.allow_infeasible = allow_infeasible;
  return aheft_schedule(request);
}

}  // namespace aheft::core
