#include "core/policies.h"

namespace aheft::core {

std::string to_string(SlotPolicy policy) {
  switch (policy) {
    case SlotPolicy::kInsertion:
      return "insertion";
    case SlotPolicy::kEndOfQueue:
      return "end-of-queue";
  }
  return "unknown";
}

std::string to_string(RunningJobPolicy policy) {
  switch (policy) {
    case RunningJobPolicy::kRestartable:
      return "restartable";
    case RunningJobPolicy::kKeepRunning:
      return "keep-running";
  }
  return "unknown";
}

std::string to_string(TransferPolicy policy) {
  switch (policy) {
    case TransferPolicy::kRetransmitFromClock:
      return "retransmit-from-clock";
    case TransferPolicy::kEagerReplicate:
      return "eager-replicate";
    case TransferPolicy::kPrestagedArrivals:
      return "prestaged-arrivals";
  }
  return "unknown";
}

}  // namespace aheft::core
