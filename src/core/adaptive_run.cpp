#include "core/adaptive_run.h"

namespace aheft::core {

StrategyOutcome run_static_heft(const dag::Dag& dag,
                                const grid::CostProvider& estimates,
                                const grid::CostProvider& actual,
                                const grid::ResourcePool& pool,
                                SchedulerConfig config,
                                sim::TraceRecorder* trace,
                                const grid::LoadProfile* load) {
  PlannerConfig planner_config;
  planner_config.scheduler = config;
  planner_config.react_to_pool_changes = false;  // plan once, never adapt
  planner_config.react_to_variance = false;
  planner_config.load = load;
  AdaptivePlanner planner(dag, estimates, actual, pool, planner_config,
                          trace);
  const AdaptiveResult result = planner.run();
  return StrategyOutcome{result.makespan, result.evaluations,
                         result.adoptions, result.restarts};
}

StrategyOutcome run_adaptive_aheft(const dag::Dag& dag,
                                   const grid::CostProvider& estimates,
                                   const grid::CostProvider& actual,
                                   const grid::ResourcePool& pool,
                                   PlannerConfig config,
                                   sim::TraceRecorder* trace,
                                   grid::PerformanceHistoryRepository* history) {
  AdaptivePlanner planner(dag, estimates, actual, pool, config, trace,
                          history);
  const AdaptiveResult result = planner.run();
  return StrategyOutcome{result.makespan, result.evaluations,
                         result.adoptions, result.restarts};
}

StrategyOutcome run_dynamic_baseline(const dag::Dag& dag,
                                     const grid::CostProvider& actual,
                                     const grid::ResourcePool& pool,
                                     DynamicHeuristic heuristic,
                                     sim::TraceRecorder* trace) {
  const DynamicRunResult result =
      run_dynamic(dag, actual, pool, heuristic, trace);
  return StrategyOutcome{result.makespan, result.batches, 0, 0};
}

}  // namespace aheft::core
