#include "core/adaptive_run.h"

namespace aheft::core {

StrategyOutcome run_static_heft(const dag::Dag& dag,
                                const grid::CostProvider& estimates,
                                const grid::CostProvider& actual,
                                const grid::ResourcePool& pool,
                                SchedulerConfig config,
                                sim::TraceRecorder* trace,
                                const grid::LoadProfile* load) {
  SessionEnvironment env;
  env.pool = &pool;
  env.load = load;
  env.trace = trace;
  StrategyConfig strategy;
  strategy.planner.scheduler = config;
  return run_strategy(StrategyKind::kStaticHeft, dag, estimates, actual,
                      env, strategy);
}

StrategyOutcome run_adaptive_aheft(const dag::Dag& dag,
                                   const grid::CostProvider& estimates,
                                   const grid::CostProvider& actual,
                                   const grid::ResourcePool& pool,
                                   PlannerConfig config,
                                   sim::TraceRecorder* trace,
                                   grid::PerformanceHistoryRepository* history) {
  SessionEnvironment env;
  env.pool = &pool;
  env.load = config.load;
  env.trace = trace;
  env.history = history;
  StrategyConfig strategy;
  strategy.planner = config;
  return run_strategy(StrategyKind::kAdaptiveAheft, dag, estimates, actual,
                      env, strategy);
}

StrategyOutcome run_dynamic_baseline(const dag::Dag& dag,
                                     const grid::CostProvider& actual,
                                     const grid::ResourcePool& pool,
                                     DynamicHeuristic heuristic,
                                     sim::TraceRecorder* trace,
                                     const grid::LoadProfile* load) {
  SessionEnvironment env;
  env.pool = &pool;
  env.load = load;
  env.trace = trace;
  StrategyConfig strategy;
  strategy.heuristic = heuristic;
  return run_strategy(StrategyKind::kDynamic, dag, actual, actual, env,
                      strategy);
}

}  // namespace aheft::core
