#include "core/snapshot.h"

#include "support/assert.h"

namespace aheft::core {

ExecutionSnapshot ExecutionSnapshot::initial(std::size_t job_count,
                                             std::size_t edge_count) {
  return ExecutionSnapshot(sim::kTimeZero, job_count, edge_count);
}

ExecutionSnapshot::ExecutionSnapshot(sim::Time clock, std::size_t job_count,
                                     std::size_t edge_count)
    : clock_(clock), finished_(job_count), arrivals_(edge_count) {
  AHEFT_REQUIRE(clock >= 0.0, "clock must be non-negative");
}

void ExecutionSnapshot::mark_finished(dag::JobId job, FinishedInfo info) {
  AHEFT_REQUIRE(job < finished_.size(), "job id out of range");
  AHEFT_REQUIRE(!finished_[job].has_value(), "job finished twice");
  AHEFT_REQUIRE(sim::time_le(info.aft, clock_),
                "job finished in the snapshot's future");
  finished_[job] = info;
  ++finished_count_;
}

void ExecutionSnapshot::add_running(RunningInfo info) {
  AHEFT_REQUIRE(info.job < finished_.size(), "job id out of range");
  AHEFT_REQUIRE(!finished(info.job), "running job already finished");
  running_.push_back(info);
}

void ExecutionSnapshot::record_arrival(std::size_t edge_index,
                                       grid::ResourceId resource,
                                       sim::Time when) {
  AHEFT_REQUIRE(edge_index < arrivals_.size(), "edge index out of range");
  auto& per_edge = arrivals_[edge_index];
  const auto it = per_edge.find(resource);
  if (it == per_edge.end() || when < it->second) {
    per_edge[resource] = when;
  }
}

bool ExecutionSnapshot::finished(dag::JobId job) const {
  AHEFT_REQUIRE(job < finished_.size(), "job id out of range");
  return finished_[job].has_value();
}

const FinishedInfo& ExecutionSnapshot::finished_info(dag::JobId job) const {
  AHEFT_REQUIRE(finished(job), "job has not finished");
  return *finished_[job];
}

std::optional<RunningInfo> ExecutionSnapshot::running_info(
    dag::JobId job) const {
  for (const RunningInfo& info : running_) {
    if (info.job == job) {
      return info;
    }
  }
  return std::nullopt;
}

const std::map<grid::ResourceId, sim::Time>& ExecutionSnapshot::arrivals(
    std::size_t edge_index) const {
  AHEFT_REQUIRE(edge_index < arrivals_.size(), "edge index out of range");
  return arrivals_[edge_index];
}

}  // namespace aheft::core
