// Classic static HEFT [19] as a thin specialization of the AHEFT pass.
//
// The paper observes (§3.4) that "AHEFT is identical to HEFT when clock = 0
// or it is the initial scheduling"; the library encodes that literally.
#ifndef AHEFT_CORE_HEFT_H_
#define AHEFT_CORE_HEFT_H_

#include <vector>

#include "core/policies.h"
#include "core/schedule.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/resource_pool.h"

namespace aheft::core {

/// Schedules the whole DAG statically on the resources visible at time
/// `clock` (default 0). Resources that arrive later are ignored — that is
/// precisely the weakness AHEFT addresses. `availability` optionally
/// carries a snapshot of foreign machine load (a multi-DAG session's
/// ledger picture); every EST search then fits into its free gaps. Null
/// or empty keeps the classic contention-blind plan bit-identical.
/// `allow_infeasible` forwards RescheduleRequest::allow_infeasible:
/// under restart semantics a job no machine can finish is planned onto
/// the longest-surviving wall instead of failing the pass.
[[nodiscard]] Schedule heft_schedule(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::ResourcePool& pool, SchedulerConfig config = {},
    sim::Time clock = sim::kTimeZero,
    const AvailabilityView* availability = nullptr,
    bool allow_infeasible = false);

/// Convenience overload with an explicit visible resource set.
[[nodiscard]] Schedule heft_schedule(
    const dag::Dag& dag, const grid::CostProvider& estimates,
    const grid::ResourcePool& pool,
    std::vector<grid::ResourceId> resources, SchedulerConfig config = {},
    sim::Time clock = sim::kTimeZero,
    const AvailabilityView* availability = nullptr,
    bool allow_infeasible = false);

}  // namespace aheft::core

#endif  // AHEFT_CORE_HEFT_H_
