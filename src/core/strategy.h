// Unified strategy drivers for the three approaches the paper compares:
// static HEFT, adaptive AHEFT, and dynamic just-in-time scheduling.
//
// Every strategy runs inside a SimulationSession and receives the exact
// same environment — resource pool event stream, load profile, trace
// recorder, performance-history repository — by construction, which is
// what makes their makespans comparable. A driver can be launched many
// times into one session (concurrent workflow streams) or once into a
// private session (run_strategy, the classic single-DAG comparison).
#ifndef AHEFT_CORE_STRATEGY_H_
#define AHEFT_CORE_STRATEGY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dynamic_scheduler.h"
#include "core/planner.h"
#include "core/session.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"

namespace aheft::core {

enum class StrategyKind { kStaticHeft, kAdaptiveAheft, kDynamic };

[[nodiscard]] std::string to_string(StrategyKind kind);

/// Inverse of to_string(StrategyKind) ("heft", "aheft", "dynamic");
/// empty optional when the name matches no strategy. The benches' and
/// examples' --strategy axes parse through this, so the CLI names and
/// the reported names can never drift apart.
[[nodiscard]] std::optional<StrategyKind> strategy_from_string(
    std::string_view text);

/// Every strategy name strategy_from_string accepts, in enum order. The
/// benches' --help and unknown---strategy messages list these, so the
/// advertised names always match what actually parses.
[[nodiscard]] std::vector<std::string> strategy_names();

/// Makespan and bookkeeping of one simulated strategy run. `makespan` is
/// the absolute completion time on the session clock (for a workflow
/// released at t the duration is makespan - t).
struct StrategyOutcome {
  sim::Time makespan = sim::kTimeZero;
  std::size_t evaluations = 0;  ///< events evaluated (dynamic: batches)
  std::size_t adoptions = 0;
  std::size_t restarts = 0;
  /// Cross-workflow machine wait imposed by the session's contention
  /// policy: total across the workflow's jobs, and the worst single
  /// acquisition. Zero for uncontended runs.
  double contention_wait = 0.0;
  double max_contention_wait = 0.0;
  /// Resilience accounting (planner strategies; the dynamic baseline has
  /// no restart machinery and reports zeros): jobs revoked mid-run,
  /// nominal machine-seconds redone / spent on checkpoint traffic /
  /// retained as useful progress.
  std::size_t revoked_jobs = 0;
  double lost_work = 0.0;
  double checkpoint_overhead = 0.0;
  double useful_work = 0.0;
  /// The workflow failed terminally instead of completing; `makespan` is
  /// then the failure time. Only possible under an active resilience
  /// config (DepartureAction::kFail, the revocation cap, or no machine
  /// left to requeue on).
  bool failed = false;
  std::string failure_reason;
};

/// Per-strategy knobs. The planner config drives HEFT (reaction flags
/// forced off) and AHEFT; the heuristic drives the dynamic baseline.
/// PlannerConfig::load is ignored here — the session environment is the
/// single source of the load profile. PlannerConfig::contention_aware
/// applies to every strategy: the planners fit their (re)plans into the
/// session ledger's availability snapshot, and the dynamic baseline's
/// release-time greedy-EFT estimate prices the same snapshot.
struct StrategyConfig {
  PlannerConfig planner;
  DynamicHeuristic heuristic = DynamicHeuristic::kMinMin;
};

/// Per-launch knobs of one workflow execution inside a session.
struct LaunchOptions {
  /// Simulation time the workflow is released (>= the session clock).
  sim::Time release = sim::kTimeZero;
  /// Weight under the session's contention policy: strict rank for
  /// "priority", share weight for "fair-share", ignored by "fcfs".
  double priority = 1.0;
};

/// One scheduling strategy, launchable into any session. Drivers own the
/// per-launch state (planner or dynamic execution) until the session's
/// run completes, so a driver must outlive every session it launched
/// into; the DAG and cost providers must outlive the run as well.
class StrategyDriver {
 public:
  virtual ~StrategyDriver() = default;

  [[nodiscard]] virtual StrategyKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  using Completion = std::function<void(const StrategyOutcome&)>;

  /// Begins executing `dag` inside `session` per `options`; `done` fires
  /// on the session clock when the workflow completes. May be called any
  /// number of times, including for concurrently executing workflows in
  /// one session.
  virtual void launch(SimulationSession& session, const dag::Dag& dag,
                      const grid::CostProvider& estimates,
                      const grid::CostProvider& actual,
                      const LaunchOptions& options, Completion done) = 0;

  /// Convenience form for the common default-priority launch.
  void launch(SimulationSession& session, const dag::Dag& dag,
              const grid::CostProvider& estimates,
              const grid::CostProvider& actual, sim::Time release,
              Completion done) {
    launch(session, dag, estimates, actual, LaunchOptions{release, 1.0},
           std::move(done));
  }
};

/// Builds the driver for `kind` with the given knobs.
[[nodiscard]] std::unique_ptr<StrategyDriver> make_strategy_driver(
    StrategyKind kind, const StrategyConfig& config = {});

/// Convenience: runs one DAG through a private session over `env` to
/// completion — the single code path for the classic one-DAG
/// comparison (the per-strategy shims that used to wrap it are gone).
[[nodiscard]] StrategyOutcome run_strategy(
    StrategyKind kind, const dag::Dag& dag,
    const grid::CostProvider& estimates, const grid::CostProvider& actual,
    const SessionEnvironment& env, const StrategyConfig& config = {});

}  // namespace aheft::core

#endif  // AHEFT_CORE_STRATEGY_H_
