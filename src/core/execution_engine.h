// The Executor (paper Fig. 1): enacts a schedule on the simulated grid.
//
// Semantics (paper §4.1): a job starts once (a) every input file has
// arrived on its resource, (b) the previously scheduled job on that
// resource finished, and (c) the resource has joined the grid. When a job
// finishes, its outputs are pushed immediately to the resources its
// successors are scheduled on (static file-transfer model). File transfers
// consume time but no compute.
//
// submit() accepts both the initial schedule and mid-run replacements
// (the Planner's adopted reschedules). On replacement, running jobs that
// were replanned are cancelled and restarted from scratch (no checkpoint),
// finished producers' outputs are retransmitted from the current time to
// any consumer that moved (mirroring FEA case 2), and per-resource queues
// are rebuilt.
#ifndef AHEFT_CORE_EXECUTION_ENGINE_H_
#define AHEFT_CORE_EXECUTION_ENGINE_H_

#include <functional>
#include <map>
#include <vector>

#include "core/schedule.h"
#include "core/session.h"
#include "core/snapshot.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::core {

class ExecutionEngine : public SessionParticipant {
 public:
  /// `actual` is the ground-truth cost model (run times and transfer
  /// durations the simulated grid really exhibits). `trace` may be null.
  ExecutionEngine(sim::Simulator& simulator, const dag::Dag& dag,
                  const grid::CostProvider& actual,
                  const grid::ResourcePool& pool,
                  sim::TraceRecorder* trace = nullptr);

  /// Session form: simulator, pool, trace, and load profile all come from
  /// the session's environment, and the engine registers itself for
  /// cross-workflow resource contention with `priority` as its weight
  /// under the session's contention policy. The session must outlive the
  /// engine's execution.
  ExecutionEngine(SimulationSession& session, const dag::Dag& dag,
                  const grid::CostProvider& actual, double priority = 1.0);

  /// Installs `schedule` (complete over all jobs) at the current simulation
  /// time. The first call starts execution; later calls replace the
  /// remaining work.
  void submit(const Schedule& schedule);

  [[nodiscard]] bool finished() const {
    return finished_count_ == dag_->job_count();
  }
  [[nodiscard]] sim::Time makespan() const { return makespan_; }
  [[nodiscard]] std::size_t finished_count() const { return finished_count_; }
  /// Number of running jobs cancelled and restarted by reschedules.
  [[nodiscard]] std::size_t restarted_jobs() const { return restarts_; }

  [[nodiscard]] const Schedule& current_schedule() const;

  /// Captures the execution state at the current simulation time, in the
  /// form the Planner's rescheduler consumes.
  [[nodiscard]] ExecutionSnapshot snapshot() const;

  /// Callback fired after each job completion (the Performance Monitor's
  /// feed, Fig. 1): (job, resource, actual start, actual finish).
  using CompletionHook =
      std::function<void(dag::JobId, grid::ResourceId, sim::Time, sim::Time)>;
  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }

  /// File-movement model; must match the planner's (see TransferPolicy).
  void set_transfer_policy(TransferPolicy policy) {
    transfer_policy_ = policy;
  }
  [[nodiscard]] TransferPolicy transfer_policy() const {
    return transfer_policy_;
  }

  /// Time-varying effective cost scaling (trace/volatility scenarios): a
  /// job started at time t on resource j realizes
  /// compute_cost(i, j) * load->factor(j, t). Null means nominal costs.
  /// The profile must outlive the engine.
  void set_load_profile(const grid::LoadProfile* load) { load_ = load; }
  [[nodiscard]] const grid::LoadProfile* load_profile() const {
    return load_;
  }

  // SessionParticipant: a competing reservation on `resource` committed,
  // withdrew, or was truncated, so this engine's deferred grant may have
  // moved earlier. This is the per-resource ledger wakeup: only engines
  // actually queued on the resource receive it.
  void contention_changed(grid::ResourceId resource) override;
  // SessionParticipant: the first submitted schedule's makespan — the
  // workflow's uncontended scale for fair-share stretch normalization
  // (later reschedules fold contention delays in, which must not dilute
  // the workflow's own stretch).
  [[nodiscard]] sim::Time planned_finish() const override {
    return initial_plan_makespan_;
  }

 private:
  enum class Phase { kPending, kRunning, kFinished };
  struct JobState {
    Phase phase = Phase::kPending;
    grid::ResourceId resource = grid::kInvalidResource;
    sim::Time ast = sim::kTimeZero;
    sim::Time aft = sim::kTimeZero;  ///< completion (projected while running)
    sim::EventId completion = 0;
  };

  void rebuild_queues();
  void pump(grid::ResourceId resource);
  void start_job(dag::JobId job, grid::ResourceId resource);
  void complete_job(dag::JobId job);
  void record_arrival(std::size_t edge_index, grid::ResourceId resource,
                      sim::Time when);
  /// Launches the transfer of edge `e`'s payload toward `target` at `when`
  /// if it is not already there or in flight; returns the arrival time.
  sim::Time ensure_transfer(std::size_t edge_index, grid::ResourceId target,
                            sim::Time when);

  sim::Simulator* simulator_;
  const dag::Dag* dag_;
  const grid::CostProvider* actual_;
  const grid::ResourcePool* pool_;
  sim::TraceRecorder* trace_;
  const grid::LoadProfile* load_ = nullptr;
  SimulationSession* session_ = nullptr;  ///< contention; null standalone

  Schedule schedule_;
  bool has_schedule_ = false;
  std::vector<JobState> jobs_;
  EdgeArrivals edge_arrivals_;
  std::map<grid::ResourceId, std::vector<dag::JobId>> queues_;
  std::map<grid::ResourceId, std::size_t> queue_pos_;
  std::map<grid::ResourceId, sim::Time> resource_free_;
  std::map<grid::ResourceId, sim::Time> pending_pump_;
  std::size_t finished_count_ = 0;
  std::size_t restarts_ = 0;
  sim::Time makespan_ = sim::kTimeZero;
  sim::Time initial_plan_makespan_ = sim::kTimeZero;
  CompletionHook hook_;
  TransferPolicy transfer_policy_ = TransferPolicy::kRetransmitFromClock;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_EXECUTION_ENGINE_H_
