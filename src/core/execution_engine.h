// The Executor (paper Fig. 1): enacts a schedule on the simulated grid.
//
// Semantics (paper §4.1): a job starts once (a) every input file has
// arrived on its resource, (b) the previously scheduled job on that
// resource finished, and (c) the resource has joined the grid. When a job
// finishes, its outputs are pushed immediately to the resources its
// successors are scheduled on (static file-transfer model). File transfers
// consume time but no compute.
//
// submit() accepts both the initial schedule and mid-run replacements
// (the Planner's adopted reschedules). On replacement, running jobs that
// were replanned are cancelled and restarted, finished producers' outputs
// are retransmitted from the current time to any consumer that moved
// (mirroring FEA case 2), and per-resource queues are rebuilt.
//
// Resilience (session environments with an active ResilienceConfig):
// a job that loses its machine mid-run — a finite departure its
// load-stretched duration cannot beat, or a fair-share preemption — keeps
// only the work its checkpoints saved (see resilience/checkpoint_model.h)
// and requeues its remainder on another machine through the normal
// acquire/commit lifecycle. The inactive default config leaves every
// simulated event bit-identical to the pre-resilience engine.
#ifndef AHEFT_CORE_EXECUTION_ENGINE_H_
#define AHEFT_CORE_EXECUTION_ENGINE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "core/session.h"
#include "core/snapshot.h"
#include "dag/dag.h"
#include "grid/cost_provider.h"
#include "grid/load_profile.h"
#include "grid/resource_pool.h"
#include "resilience/checkpoint_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace aheft::core {

class ExecutionEngine : public SessionParticipant {
 public:
  /// `actual` is the ground-truth cost model (run times and transfer
  /// durations the simulated grid really exhibits). `trace` may be null.
  ExecutionEngine(sim::Simulator& simulator, const dag::Dag& dag,
                  const grid::CostProvider& actual,
                  const grid::ResourcePool& pool,
                  sim::TraceRecorder* trace = nullptr);

  /// Session form: simulator, pool, trace, load profile, and resilience
  /// config all come from the session's environment, and the engine
  /// registers itself for cross-workflow resource contention with
  /// `priority` as its weight under the session's contention policy. The
  /// session must outlive the engine's execution.
  ExecutionEngine(SimulationSession& session, const dag::Dag& dag,
                  const grid::CostProvider& actual, double priority = 1.0);

  /// Installs `schedule` (complete over all jobs) at the current simulation
  /// time. The first call starts execution; later calls replace the
  /// remaining work.
  void submit(const Schedule& schedule);

  [[nodiscard]] bool finished() const {
    return finished_count_ == dag_->job_count();
  }
  [[nodiscard]] sim::Time makespan() const { return makespan_; }
  [[nodiscard]] std::size_t finished_count() const { return finished_count_; }
  /// Number of running jobs cancelled and restarted by reschedules.
  [[nodiscard]] std::size_t restarted_jobs() const { return restarts_; }

  /// Resilience accounting (nominal machine-seconds; all zero when the
  /// session's resilience config is inactive and no reschedule cancelled
  /// a running job). "Useful" work is work that counted toward a
  /// completion or survived in a checkpoint image; "lost" work is redone.
  [[nodiscard]] std::size_t revoked_jobs() const { return revoked_jobs_; }
  [[nodiscard]] double lost_work() const { return lost_work_; }
  [[nodiscard]] double checkpoint_overhead() const {
    return checkpoint_overhead_;
  }
  [[nodiscard]] double useful_work() const { return useful_work_; }

  /// Whether the workflow failed terminally (departure under kFail, the
  /// per-job revocation cap, or no machine left to requeue on). A failed
  /// engine never reaches finished(); its queues are drained and its
  /// running work truncated.
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& failure_reason() const {
    return failure_reason_;
  }
  /// Callback fired exactly once when the workflow fails terminally.
  using FailureHook = std::function<void(const std::string&)>;
  void set_failure_hook(FailureHook hook) {
    failure_hook_ = std::move(hook);
  }

  [[nodiscard]] const Schedule& current_schedule() const;

  /// Captures the execution state at the current simulation time, in the
  /// form the Planner's rescheduler consumes.
  [[nodiscard]] ExecutionSnapshot snapshot() const;

  /// Callback fired after each job completion (the Performance Monitor's
  /// feed, Fig. 1): (job, resource, actual start, actual finish).
  using CompletionHook =
      std::function<void(dag::JobId, grid::ResourceId, sim::Time, sim::Time)>;
  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }

  /// File-movement model; must match the planner's (see TransferPolicy).
  void set_transfer_policy(TransferPolicy policy) {
    transfer_policy_ = policy;
  }
  [[nodiscard]] TransferPolicy transfer_policy() const {
    return transfer_policy_;
  }

  /// Time-varying effective cost scaling (trace/volatility scenarios): a
  /// job started at time t on resource j realizes
  /// compute_cost(i, j) * load->factor(j, t). Null means nominal costs.
  /// The profile must outlive the engine.
  void set_load_profile(const grid::LoadProfile* load) { load_ = load; }
  [[nodiscard]] const grid::LoadProfile* load_profile() const {
    return load_;
  }

  // SessionParticipant: a competing reservation on `resource` committed,
  // withdrew, or was truncated, so this engine's deferred grant may have
  // moved earlier. This is the per-resource ledger wakeup: only engines
  // actually queued on the resource receive it.
  void contention_changed(grid::ResourceId resource) override;
  // SessionParticipant: the first submitted schedule's makespan — the
  // workflow's uncontended scale for fair-share stretch normalization
  // (later reschedules fold contention delays in, which must not dilute
  // the workflow's own stretch).
  [[nodiscard]] sim::Time planned_finish() const override {
    return initial_plan_makespan_;
  }
  // SessionParticipant: fair-share preemption chose this engine's running
  // job `tag` on `resource` as its victim. The job keeps its checkpointed
  // floor progress, its ledger window is truncated (wait baseline
  // carried), and its remainder requeues elsewhere. Declines (returns
  // false) when the job is not actually running there anymore — e.g. it
  // completes in this very instant.
  bool revoke_committed(grid::ResourceId resource, std::uint64_t tag) override;

 private:
  enum class Phase { kPending, kRunning, kFinished };
  struct JobState {
    Phase phase = Phase::kPending;
    grid::ResourceId resource = grid::kInvalidResource;
    sim::Time ast = sim::kTimeZero;
    sim::Time aft = sim::kTimeZero;  ///< completion (projected while running)
    sim::EventId completion = 0;
    // The running segment's composition, fixed at start (nominal units;
    // wall clock = nominal * load_factor). Interruption accounting
    // decomposes the elapsed occupancy against these.
    double load_factor = 1.0;
    double segment_work = 0.0;    ///< useful work this segment attempts
    double segment_debt = 0.0;    ///< restart read cost paid up front
    double segment_writes = 0.0;  ///< checkpoint writes if run to term
  };

  void rebuild_queues();
  void pump(grid::ResourceId resource);
  void record_arrival(std::size_t edge_index, grid::ResourceId resource,
                      sim::Time when);
  /// Launches the transfer of edge `e`'s payload toward `target` at `when`
  /// if it is not already there or in flight; returns the arrival time.
  sim::Time ensure_transfer(std::size_t edge_index, grid::ResourceId target,
                            sim::Time when);
  /// Starts `job` on `resource` now, or — under an active resilience
  /// config — converts a doomed start into a fail/run-to-the-wall/requeue.
  /// Returns false when the engine's queues were restructured (the caller
  /// must abandon its queue scan).
  bool start_job(dag::JobId job, grid::ResourceId resource);
  void complete_job(dag::JobId job);
  /// A running job's machine departed under it (DepartureAction::kRequeue
  /// ran it to the wall): salvage checkpointed progress and requeue.
  void hit_departure(dag::JobId job);
  /// Splits the elapsed occupancy of `job`'s running segment at `at` into
  /// retained / overhead / lost work, updating the accounting counters,
  /// the job's completed fraction, and its restart debt.
  void account_interrupted_segment(dag::JobId job, sim::Time at);
  /// Routes a revoked job's remainder back through the lifecycle: checks
  /// the per-job revocation cap, picks a target machine, rewrites the
  /// schedule slot, retransmits inputs, and pumps the target's queue.
  void requeue_job(dag::JobId job, sim::Time now);
  /// Machine whose requeued remainder finishes earliest under the current
  /// contention picture; machines it cannot finish on before departure
  /// only qualify as a latest-departure fallback (salvaging further
  /// checkpoints there beats failing). kInvalidResource when no machine
  /// is left at all.
  [[nodiscard]] grid::ResourceId choose_requeue_target(dag::JobId job,
                                                       sim::Time now) const;
  /// Rewrites `job`'s schedule slot onto `target` after that timeline's
  /// planned work (the other slots are untouched).
  void reassign(dag::JobId job, grid::ResourceId target, sim::Time now);
  /// Terminal failure: truncates running work, drains the queues, and
  /// fires the failure hook once.
  void fail_workflow(const std::string& reason);
  /// Machine time `job`'s remaining work occupies on `resource`: restart
  /// read debt plus the checkpoint-interleaved remainder.
  [[nodiscard]] double requeue_occupancy(dag::JobId job,
                                         grid::ResourceId resource) const;

  sim::Simulator* simulator_;
  const dag::Dag* dag_;
  const grid::CostProvider* actual_;
  const grid::ResourcePool* pool_;
  sim::TraceRecorder* trace_;
  const grid::LoadProfile* load_ = nullptr;
  SimulationSession* session_ = nullptr;  ///< contention; null standalone
  /// The session's resilience config when active; null keeps the engine
  /// on the bit-identical historical paths.
  const resilience::ResilienceConfig* resilience_ = nullptr;

  Schedule schedule_;
  bool has_schedule_ = false;
  std::vector<JobState> jobs_;
  /// Fraction of each job's total work persisted by checkpoints. Kept as
  /// a fraction (not absolute units) because compute costs differ per
  /// machine: a requeue realizes the remaining fraction at the new
  /// machine's own cost.
  std::vector<double> done_frac_;
  /// Checkpoint read cost owed when each job next starts (a prior image
  /// exists); cleared once paid.
  std::vector<double> restart_debt_;
  EdgeArrivals edge_arrivals_;
  std::map<grid::ResourceId, std::vector<dag::JobId>> queues_;
  std::map<grid::ResourceId, std::size_t> queue_pos_;
  std::map<grid::ResourceId, sim::Time> resource_free_;
  std::map<grid::ResourceId, sim::Time> pending_pump_;
  std::size_t finished_count_ = 0;
  std::size_t restarts_ = 0;
  std::size_t revoked_jobs_ = 0;
  double lost_work_ = 0.0;
  double checkpoint_overhead_ = 0.0;
  double useful_work_ = 0.0;
  bool failed_ = false;
  std::string failure_reason_;
  sim::Time makespan_ = sim::kTimeZero;
  sim::Time initial_plan_makespan_ = sim::kTimeZero;
  CompletionHook hook_;
  FailureHook failure_hook_;
  TransferPolicy transfer_policy_ = TransferPolicy::kRetransmitFromClock;
};

}  // namespace aheft::core

#endif  // AHEFT_CORE_EXECUTION_ENGINE_H_
