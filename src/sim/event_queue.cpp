#include "sim/event_queue.h"

#include "support/assert.h"

namespace aheft::sim {

EventId EventQueue::push(Time when, Action action) {
  AHEFT_REQUIRE(action != nullptr, "cannot schedule a null action");
  AHEFT_REQUIRE(when < kTimeInfinity, "cannot schedule at infinity");
  const EventId id = next_id_++;
  heap_.push(Key{when, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool EventQueue::cancel(EventId id) {
  return actions_.erase(id) > 0;
}

void EventQueue::skim() const {
  // actions_ is the source of truth; heap keys whose action was cancelled
  // are garbage and get dropped here.
  while (!heap_.empty() && actions_.find(heap_.top().id) == actions_.end()) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeInfinity : heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  AHEFT_ASSERT(!heap_.empty(), "pop from empty event queue");
  const Key key = heap_.top();
  heap_.pop();
  auto it = actions_.find(key.id);
  AHEFT_ASSERT(it != actions_.end(), "live heap key without action");
  Fired fired{key.time, key.id, std::move(it->second)};
  actions_.erase(it);
  return fired;
}

}  // namespace aheft::sim
