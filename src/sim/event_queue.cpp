#include "sim/event_queue.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::sim {

EventId EventQueue::push(Time when, Action action) {
  AHEFT_REQUIRE(action != nullptr, "cannot schedule a null action");
  AHEFT_REQUIRE(when < kTimeInfinity, "cannot schedule at infinity");
  const EventId id = next_id_++;
  heap_.push_back(Key{when, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  actions_.emplace(id, std::move(action));
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (actions_.erase(id) == 0) {
    return false;
  }
  // Orphaned keys surface at the heap top eventually and get skimmed; a
  // far-future orphan can stay buried forever, so reclaim once orphans
  // outnumber live entries.
  if (heap_.size() > kCompactionFloor && heap_.size() > 2 * actions_.size()) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  std::erase_if(heap_, [this](const Key& key) {
    return actions_.find(key.id) == actions_.end();
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::skim() const {
  // actions_ is the source of truth; heap keys whose action was cancelled
  // are garbage and get dropped here.
  while (!heap_.empty() &&
         actions_.find(heap_.front().id) == actions_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skim();
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  AHEFT_ASSERT(!heap_.empty(), "pop from empty event queue");
  const Key key = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  auto it = actions_.find(key.id);
  AHEFT_ASSERT(it != actions_.end(), "live heap key without action");
  Fired fired{key.time, key.id, std::move(it->second)};
  actions_.erase(it);
  return fired;
}

}  // namespace aheft::sim
