#include "sim/simulator.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::sim {

EventId Simulator::schedule_at(Time when, EventQueue::Action action) {
  AHEFT_REQUIRE(when >= now_, "cannot schedule into the past");
  return queue_.push(when, std::move(action));
}

EventId Simulator::schedule_in(Time delay, EventQueue::Action action) {
  AHEFT_REQUIRE(delay >= 0.0, "negative delay");
  return queue_.push(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) { return queue_.cancel(id); }

bool Simulator::step() {
  if (queue_.empty()) {
    return false;
  }
  auto fired = queue_.pop();
  AHEFT_ASSERT(fired.time >= now_, "event queue went backwards in time");
  now_ = fired.time;
  ++executed_;
  fired.action();
  return true;
}

Time Simulator::run() {
  while (step()) {
  }
  return now_;
}

Time Simulator::run_until(Time horizon) {
  AHEFT_REQUIRE(horizon >= now_, "horizon is in the past");
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    step();
  }
  // Idle up to the horizon: the clock advances even with nothing to do, so
  // callers can observe/modify state "at time t" (SimJava semantics).
  if (horizon < kTimeInfinity) {
    now_ = std::max(now_, horizon);
  }
  return now_;
}

}  // namespace aheft::sim
