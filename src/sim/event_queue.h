// Deterministic pending-event set for the discrete-event kernel.
#ifndef AHEFT_SIM_EVENT_QUEUE_H_
#define AHEFT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace aheft::sim {

/// Handle identifying a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Min-heap of (time, sequence) ordered events. Ties in time are broken by
/// insertion order, which makes every simulation replayable bit-for-bit.
/// Cancellation is lazy: the heap keys stay, the action is dropped, and the
/// orphaned key is skipped on pop — but once orphaned keys outnumber live
/// entries the heap is compacted, so a workload that repeatedly
/// schedules-then-cancels far-future events (two-phase dynamic holds under
/// churn) cannot grow the heap without bound.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`; returns a cancellable id.
  EventId push(Time when, Action action);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the next live event; kTimeInfinity when empty.
  [[nodiscard]] Time next_time() const;

  /// Pops the next live event. Requires !empty().
  struct Fired {
    Time time;
    EventId id;
    Action action;
  };
  Fired pop();

  [[nodiscard]] std::size_t live_count() const { return actions_.size(); }

  /// Heap keys currently held: live entries plus keys orphaned by
  /// cancel() and not yet skimmed or compacted. The compaction invariant
  /// (tested) is key_count() <= max(2 * live_count(), kCompactionFloor).
  [[nodiscard]] std::size_t key_count() const { return heap_.size(); }

  /// Heaps smaller than this never compact — below it the orphan scan
  /// costs more than the memory it reclaims.
  static constexpr std::size_t kCompactionFloor = 64;

 private:
  struct Key {
    Time time;
    EventId id;
  };
  struct Later {
    bool operator()(const Key& a, const Key& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  /// Removes cancelled entries sitting at the top of the heap.
  void skim() const;

  /// Drops every orphaned key and re-heapifies. Pop order is unchanged:
  /// the heap's comparator is a strict total order on (time, id), so the
  /// drain sequence never depends on the heap's internal layout.
  void compact();

  /// Binary heap under Later (top = earliest), kept as an explicit vector
  /// so compact() can filter it in place.
  mutable std::vector<Key> heap_;
  /// Live actions by id. Never iterated — probed with find()/erase()
  /// only, so its hashing order cannot reach event order: pop order is
  /// fully determined by the heap's strict total order on (time, id).
  // NOLINT-DET(no-unordered-iteration): probe-only map, pop order comes from the heap
  std::unordered_map<EventId, Action> actions_;
  EventId next_id_ = 1;
};

}  // namespace aheft::sim

#endif  // AHEFT_SIM_EVENT_QUEUE_H_
