#include "sim/sharded_simulator.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace aheft::sim {

namespace {

// Thread-local shard binding. File-scope so every ShardedSimulator shares
// the same slot: a thread is bound to at most one (simulator, shard) pair
// at a time, and nested bindings (solo-baseline sessions spawned from a
// stream worker) save and restore the outer pair.
thread_local ShardedSimulator* tls_owner = nullptr;
thread_local std::size_t tls_shard = 0;

}  // namespace

ShardedSimulator::ShardedSimulator(std::size_t shards, Time epoch_width)
    : ShardedSimulator(shards, EpochConfig{epoch_width, false, kTimeInfinity}) {
}

ShardedSimulator::ShardedSimulator(std::size_t shards,
                                   const EpochConfig& epoch)
    : epoch_(epoch) {
  AHEFT_REQUIRE(shards >= 1, "need at least one shard");
  AHEFT_REQUIRE(epoch.width >= 0.0 && epoch.width < kTimeInfinity,
                "epoch width must be finite and non-negative");
  AHEFT_REQUIRE(epoch.max_width >= 0.0,
                "epoch max width must be non-negative");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedSimulator::~ShardedSimulator() = default;

Simulator& ShardedSimulator::shard(std::size_t s) {
  AHEFT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->sim;
}

const Simulator& ShardedSimulator::shard(std::size_t s) const {
  AHEFT_REQUIRE(s < shards_.size(), "shard index out of range");
  return shards_[s]->sim;
}

std::size_t ShardedSimulator::current_shard() const {
  return tls_owner == this ? tls_shard : 0;
}

void ShardedSimulator::post(std::size_t target, Time when,
                            EventQueue::Action action) {
  AHEFT_REQUIRE(target < shards_.size(), "post target out of range");
  if (!running_) {
    // Setup phase: every shard's queue is freely addressable.
    shards_[target]->sim.schedule_at(when, std::move(action));
    return;
  }
  AHEFT_REQUIRE(tls_owner == this,
                "post() during run() from a thread not bound to a shard");
  if (target == tls_shard) {
    // Same-shard: the shard owns its queue, schedule directly. The clock
    // may already have passed `when` within this epoch; clamp forward.
    Simulator& sim = shards_[target]->sim;
    sim.schedule_at(std::max(when, sim.now()), std::move(action));
    return;
  }
  Shard& origin = *shards_[tls_shard];
  origin.outbox.push_back(
      Staged{when, target, origin.posted++, std::move(action), tls_shard});
}

bool ShardedSimulator::any_staged() const {
  for (const auto& shard : shards_) {
    if (!shard->outbox.empty()) {
      return true;
    }
  }
  return false;
}

Time ShardedSimulator::min_next_event_time() const {
  Time earliest = kTimeInfinity;
  for (const auto& shard : shards_) {
    earliest = std::min(earliest, shard->sim.next_event_time());
  }
  return earliest;
}

Time ShardedSimulator::epoch_width_for(Time h1) const {
  if (!epoch_.adaptive) {
    return epoch_.width;
  }
  // Second-smallest next-event time, counting multiplicity: a tie at h1
  // means two shards share the frontier and the lookahead collapses to 0.
  Time first = kTimeInfinity;
  Time second = kTimeInfinity;
  for (const auto& shard : shards_) {
    const Time t = shard->sim.next_event_time();
    if (t < first) {
      second = first;
      first = t;
    } else if (t < second) {
      second = t;
    }
  }
  // Everything in [h1, second) belongs to the single frontier shard, so
  // draining to second cannot change what any other shard observes. With
  // one active shard (second == infinity) take the full max_width.
  const Time lookahead = second >= kTimeInfinity
                             ? epoch_.max_width
                             : std::min(second - h1, epoch_.max_width);
  return std::max(epoch_.width, lookahead);
}

void ShardedSimulator::apply_staged() {
  std::vector<Staged> merged;
  for (auto& shard : shards_) {
    staging_high_water_ = std::max(staging_high_water_, shard->outbox.size());
    merged.insert(merged.end(),
                  std::make_move_iterator(shard->outbox.begin()),
                  std::make_move_iterator(shard->outbox.end()));
    shard->outbox.clear();
  }
  if (merged.empty()) {
    return;
  }
  staged_total_ += merged.size();
  // (time, origin, seq) is a strict total order over staged messages that
  // is independent of worker scheduling, so application order — and hence
  // the EventIds the targets assign — is identical run to run.
  std::sort(merged.begin(), merged.end(),
            [](const Staged& a, const Staged& b) {
              if (a.when != b.when) {
                return a.when < b.when;
              }
              if (a.origin != b.origin) {
                return a.origin < b.origin;
              }
              return a.seq < b.seq;
            });
  for (auto& msg : merged) {
    Simulator& sim = shards_[msg.target]->sim;
    // Conservative delivery: the target already drained this epoch, so a
    // message timestamped inside it lands at the target's clock instead.
    sim.schedule_at(std::max(msg.when, sim.now()), std::move(msg.action));
  }
}

void ShardedSimulator::drain(std::size_t s, Time horizon) {
  ShardBinding bind(*this, s);
  shards_[s]->sim.run_until(horizon);
}

Time ShardedSimulator::run(ThreadPool* pool) {
  AHEFT_REQUIRE(!running_, "run() is not reentrant");
  if (shards_.size() == 1) {
    // Compat fence: one shard is exactly the historical serial loop —
    // same pops, same clock, no horizon arithmetic in the path.
    ShardBinding bind(*this, 0);
    running_ = true;
    const Time end = shards_[0]->sim.run();
    running_ = false;
    return end;
  }
  running_ = true;
  const std::size_t n = shards_.size();
  while (true) {
    apply_staged();
    const Time horizon = min_next_event_time();
    if (horizon >= kTimeInfinity) {
      break;
    }
    ++epochs_;
    // The epoch target: horizon plus the (possibly adaptive) width. An
    // infinite adaptive lookahead drains the lone active shard to empty;
    // run_until() never advances a clock to an infinite horizon.
    const Time width = epoch_width_for(horizon);
    const Time target =
        width >= kTimeInfinity ? kTimeInfinity : horizon + width;
    // The barrier: parallel_for returns only after every shard has
    // drained [.., target]. Chunk size 1 so each shard gets its own
    // pool task; a null pool drains the shards inline, in order.
    parallel_for(
        pool, n, [this, target](std::size_t s) { drain(s, target); },
        /*chunk_size=*/1);
    if (barrier_hook_) {
      // Every drain worker is parked: the hook owns all shard state.
      barrier_hook_();
    }
  }
  running_ = false;
  Time end = kTimeZero;
  for (const auto& shard : shards_) {
    end = std::max(end, shard->sim.now());
  }
  return end;
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->sim.executed_events();
  }
  return total;
}

ShardedSimulator::ShardBinding::ShardBinding(ShardedSimulator& owner,
                                             std::size_t s)
    : prev_owner_(tls_owner), prev_shard_(tls_shard) {
  AHEFT_REQUIRE(s < owner.shards_.size(), "shard binding out of range");
  tls_owner = &owner;
  tls_shard = s;
}

ShardedSimulator::ShardBinding::~ShardBinding() {
  tls_owner = prev_owner_;
  tls_shard = prev_shard_;
}

}  // namespace aheft::sim
