#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/assert.h"
#include "support/table.h"

namespace aheft::sim {

void TraceRecorder::record_compute(std::uint32_t job, std::uint32_t resource,
                                   Time start, Time end) {
  AHEFT_REQUIRE(time_le(start, end), "compute interval ends before it starts");
  intervals_.push_back(
      TraceInterval{IntervalKind::kCompute, job, job, resource, start, end});
}

void TraceRecorder::record_transfer(std::uint32_t producer,
                                    std::uint32_t consumer,
                                    std::uint32_t target_resource, Time start,
                                    Time end) {
  AHEFT_REQUIRE(time_le(start, end), "transfer interval ends before it starts");
  intervals_.push_back(TraceInterval{IntervalKind::kTransfer, producer,
                                     consumer, target_resource, start, end});
}

void StampedTraceSink::record_compute(std::uint32_t job, std::uint32_t resource,
                                      Time start, Time end) {
  TraceRecorder::record_compute(job, resource, start, end);
  pending_.push_back(StampedTraceRecord{clock_(), seq_++, intervals().back()});
}

void StampedTraceSink::record_transfer(std::uint32_t producer,
                                       std::uint32_t consumer,
                                       std::uint32_t target_resource,
                                       Time start, Time end) {
  TraceRecorder::record_transfer(producer, consumer, target_resource, start,
                                 end);
  pending_.push_back(StampedTraceRecord{clock_(), seq_++, intervals().back()});
}

std::vector<StampedTraceRecord> StampedTraceSink::take_pending() {
  std::vector<StampedTraceRecord> out;
  out.swap(pending_);
  return out;
}

std::vector<TraceInterval> TraceRecorder::sorted(IntervalKind kind) const {
  std::vector<TraceInterval> out;
  for (const auto& interval : intervals_) {
    if (interval.kind == kind) {
      out.push_back(interval);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceInterval& a, const TraceInterval& b) {
                     return a.start < b.start;
                   });
  return out;
}

std::string TraceRecorder::gantt(
    const std::vector<std::string>& job_names,
    const std::vector<std::string>& resource_names) const {
  std::map<std::uint32_t, std::vector<TraceInterval>> by_resource;
  for (const auto& interval : intervals_) {
    if (interval.kind == IntervalKind::kCompute) {
      by_resource[interval.resource].push_back(interval);
    }
  }
  AsciiTable table({"resource", "timeline (job[start,end))"});
  for (auto& [resource, slots] : by_resource) {
    std::sort(slots.begin(), slots.end(),
              [](const TraceInterval& a, const TraceInterval& b) {
                return a.start < b.start;
              });
    std::ostringstream row;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (i != 0) {
        row << "  ";
      }
      const auto& slot = slots[i];
      const std::string job_name = slot.job < job_names.size()
                                       ? job_names[slot.job]
                                       : "j" + std::to_string(slot.job);
      row << job_name << "[" << format_double(slot.start, 1) << ","
          << format_double(slot.end, 1) << ")";
    }
    const std::string resource_name = resource < resource_names.size()
                                          ? resource_names[resource]
                                          : "r" + std::to_string(resource);
    table.add_row({resource_name, row.str()});
  }
  return table.to_string();
}

}  // namespace aheft::sim
