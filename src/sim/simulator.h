// Discrete-event simulation kernel.
//
// This is the library's substitute for SimJava [15]: a logical clock plus a
// deterministic pending-event set. Entities (the workflow executor, the
// resource-arrival feed, the dynamic scheduler) register callbacks; the
// kernel advances time strictly monotonically.
#ifndef AHEFT_SIM_SIMULATOR_H_
#define AHEFT_SIM_SIMULATOR_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace aheft::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (the paper's `clock`).
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when` (must be >= now()).
  EventId schedule_at(Time when, EventQueue::Action action);

  /// Schedules `action` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, EventQueue::Action action);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Runs until the event set is exhausted. Returns the final clock value.
  Time run();

  /// Runs events with time <= horizon; the clock ends at
  /// min(horizon, last-event time). Events beyond the horizon stay pending.
  Time run_until(Time horizon);

  /// Executes exactly one event if one is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  /// Time of the earliest pending event; kTimeInfinity when idle. The
  /// sharded core uses this to compute each epoch's global horizon.
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }
  [[nodiscard]] std::size_t pending_events() const {
    return queue_.live_count();
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  EventQueue queue_;
  Time now_ = kTimeZero;
  std::uint64_t executed_ = 0;
};

}  // namespace aheft::sim

#endif  // AHEFT_SIM_SIMULATOR_H_
