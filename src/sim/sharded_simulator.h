// Sharded discrete-event kernel: N per-shard event loops ticked in
// lock-step epochs on a thread pool, with deterministic tick barriers.
//
// Each shard owns a private `Simulator` (clock + event queue). An epoch
// picks the global minimum next-event time across shards as the horizon,
// drains every shard up to that horizon in parallel, then applies
// cross-shard messages staged during the epoch at the barrier — sorted by
// (time, origin shard, origin sequence) so a fixed shard count replays
// bit-identically run to run, regardless of worker scheduling. With one
// shard the epoch machinery is bypassed entirely and `run()` is the
// historical serial loop, so shards=1 is bit-identical to the
// pre-sharding simulator (the compat fence).
#ifndef AHEFT_SIM_SHARDED_SIMULATOR_H_
#define AHEFT_SIM_SHARDED_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/time.h"
#include "support/thread_pool.h"

namespace aheft::sim {

/// Epoch-width policy for the lock-step barriers.
///
/// `width` is the fixed floor added to every horizon (the historical
/// `epoch_width` knob). With `adaptive` set, each epoch additionally looks
/// ahead to the second-smallest next-event time across shards: everything
/// strictly before it belongs to the single frontier shard, so draining
/// that far cannot reorder anything another shard would observe. The
/// lookahead is clamped to `max_width` (infinite by default); when only
/// one shard has pending events the lookahead is `max_width` outright.
/// The effective width of an epoch is max(width, clamped lookahead), so
/// adaptive never narrows a fixed width — and with `adaptive` false the
/// fixed-width and width=0 paths are exactly the historical ones.
struct EpochConfig {
  Time width = 0.0;
  bool adaptive = false;
  Time max_width = kTimeInfinity;
};

class ShardedSimulator {
 public:
  /// Creates `shards` independent event loops (must be >= 1). Events that
  /// land exactly on an epoch horizon run in the same epoch; a positive
  /// `epoch_width` widens each epoch to [h, h + width], trading barrier
  /// frequency for intra-epoch reordering *between* shards (never within
  /// one shard, so per-shard determinism is unaffected).
  explicit ShardedSimulator(std::size_t shards, Time epoch_width = 0.0);
  /// Full epoch-width policy, including the adaptive lookahead.
  ShardedSimulator(std::size_t shards, const EpochConfig& epoch);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// The shard's private event loop. Outside run() any shard may be
  /// touched; during run() only the shard bound to the calling thread.
  [[nodiscard]] Simulator& shard(std::size_t s);
  [[nodiscard]] const Simulator& shard(std::size_t s) const;

  /// Index of the shard bound to the calling thread (via ShardBinding,
  /// which the epoch drains install); shard 0 when unbound — so serial
  /// callers and single-shard sessions never need a binding.
  [[nodiscard]] std::size_t current_shard() const;

  /// Shorthand for shard(current_shard()).
  [[nodiscard]] Simulator& current() { return shard(current_shard()); }

  /// Schedules `action` on `target`'s loop at absolute time `when`.
  /// Same-shard (or not running) posts schedule directly. Cross-shard
  /// posts from inside run() are staged in the origin shard's bounded
  /// outbox and applied at the next tick barrier, at max(when, target
  /// clock) — the conservative rule: a message can never rewind a shard.
  void post(std::size_t target, Time when, EventQueue::Action action);

  /// Runs epochs until every shard is idle and no messages are staged.
  /// Returns the maximum final clock across shards. `pool` may be null
  /// (epochs drain inline; still deterministic, useful for tests).
  Time run(ThreadPool* pool);

  /// Installs a hook called on the coordinator thread after each epoch's
  /// parallel drain returns (every worker parked) and before the next
  /// epoch's staged messages are applied — the race-free window the
  /// session uses to merge per-shard trace/history sinks. Never called on
  /// the single-shard serial fast path (no barriers exist there).
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Binds the calling thread to shard `s` of this simulator for the
  /// lifetime of the object (RAII; restores the previous binding).
  /// The epoch drains install one per worker; sessions expose it so
  /// setup code can build shard-confined state before run().
  class ShardBinding {
   public:
    ShardBinding(ShardedSimulator& owner, std::size_t s);
    ~ShardBinding();
    ShardBinding(const ShardBinding&) = delete;
    ShardBinding& operator=(const ShardBinding&) = delete;

   private:
    ShardedSimulator* prev_owner_;
    std::size_t prev_shard_;
  };

  // Run statistics.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t executed_events() const;
  [[nodiscard]] std::uint64_t staged_messages() const { return staged_total_; }
  /// Largest number of messages held in any one shard's outbox at a
  /// barrier — the bound the staging buffers actually needed.
  [[nodiscard]] std::size_t staging_high_water() const {
    return staging_high_water_;
  }

 private:
  /// A cross-shard message captured between barriers.
  struct Staged {
    Time when;
    std::size_t target;
    std::uint64_t seq;  // per-origin-shard sequence number
    EventQueue::Action action;
    std::size_t origin;
  };

  struct Shard {
    Simulator sim;
    // Staging outbox, written only by the shard's own drain thread
    // between barriers and consumed only at the barrier — no locks.
    std::vector<Staged> outbox;
    std::uint64_t posted = 0;
  };

  void drain(std::size_t s, Time horizon);
  /// Barrier step: merges every outbox in (time, origin, seq) order and
  /// schedules the messages on their target shards.
  void apply_staged();
  [[nodiscard]] bool any_staged() const;
  [[nodiscard]] Time min_next_event_time() const;
  /// Effective width for the epoch starting at horizon `h1`: the fixed
  /// floor, widened by the adaptive lookahead toward the second-smallest
  /// next-event time across shards (clamped to max_width).
  [[nodiscard]] Time epoch_width_for(Time h1) const;

  // Simulator is immovable, so shards live behind unique_ptr.
  std::vector<std::unique_ptr<Shard>> shards_;
  EpochConfig epoch_;
  std::function<void()> barrier_hook_;
  bool running_ = false;
  std::uint64_t epochs_ = 0;
  std::uint64_t staged_total_ = 0;
  std::size_t staging_high_water_ = 0;
};

}  // namespace aheft::sim

#endif  // AHEFT_SIM_SHARDED_SIMULATOR_H_
