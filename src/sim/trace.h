// Execution trace recording: what ran where, when, and which files moved.
//
// Traces back the paper's Fig. 5 Gantt charts and let tests assert that a
// simulated execution actually honored a schedule.
//
// `TraceRecorder` is the serial append-only sink. `StampedTraceSink`
// subclasses it for the sharded core: each shard owns one, writes it from
// its own drain thread only, and the session merges the stamped pending
// records into the shared recorder at tick barriers in deterministic
// (stamp, origin shard, origin seq) order — the same order the staged
// cross-shard message path uses.
#ifndef AHEFT_SIM_TRACE_H_
#define AHEFT_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace aheft::sim {

enum class IntervalKind { kCompute, kTransfer };

/// One closed interval of activity in a simulated execution.
struct TraceInterval {
  IntervalKind kind = IntervalKind::kCompute;
  std::uint32_t job = 0;           ///< job being computed / produced the file
  std::uint32_t consumer = 0;      ///< for transfers: receiving job
  std::uint32_t resource = 0;      ///< compute location / transfer target
  Time start = kTimeZero;
  Time end = kTimeZero;
};

/// Append-only trace of a simulation run.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = default;
  TraceRecorder& operator=(const TraceRecorder&) = default;
  TraceRecorder(TraceRecorder&&) = default;
  TraceRecorder& operator=(TraceRecorder&&) = default;
  virtual ~TraceRecorder() = default;

  virtual void record_compute(std::uint32_t job, std::uint32_t resource,
                              Time start, Time end);
  virtual void record_transfer(std::uint32_t producer, std::uint32_t consumer,
                               std::uint32_t target_resource, Time start,
                               Time end);

  [[nodiscard]] const std::vector<TraceInterval>& intervals() const {
    return intervals_;
  }

  /// Intervals of one kind, sorted by start time (stable on ties).
  [[nodiscard]] std::vector<TraceInterval> sorted(IntervalKind kind) const;

  /// Renders a textual Gantt chart of compute intervals, one row per
  /// resource, in the style of the paper's Fig. 5.
  [[nodiscard]] std::string gantt(
      const std::vector<std::string>& job_names,
      const std::vector<std::string>& resource_names) const;

  void clear() { intervals_.clear(); }

 private:
  std::vector<TraceInterval> intervals_;
};

/// A trace record awaiting a deterministic barrier merge: the interval plus
/// the recording shard's clock and a per-sink append sequence number.
struct StampedTraceRecord {
  Time stamp = kTimeZero;  ///< recording shard's clock when the record landed
  std::uint64_t seq = 0;   ///< append order within the owning sink
  TraceInterval interval;
};

/// Shard-private trace buffer. Written only by the owning shard's drain
/// thread; the pending records are taken at tick barriers (on the
/// coordinator thread, with the drain workers parked) and replayed into the
/// shared `TraceRecorder` in (stamp, origin shard, seq) order. Also keeps
/// the inherited per-shard interval list, so a sink is a complete recorder
/// of its own shard's activity.
class StampedTraceSink final : public TraceRecorder {
 public:
  /// `clock` reads the owning shard's simulation clock; it is called on the
  /// shard's drain thread at every record.
  explicit StampedTraceSink(std::function<Time()> clock)
      : clock_(std::move(clock)) {}

  void record_compute(std::uint32_t job, std::uint32_t resource, Time start,
                      Time end) override;
  void record_transfer(std::uint32_t producer, std::uint32_t consumer,
                       std::uint32_t target_resource, Time start,
                       Time end) override;

  /// Drains the records accumulated since the last call, in append order
  /// (nondecreasing stamp, strictly increasing seq).
  [[nodiscard]] std::vector<StampedTraceRecord> take_pending();

 private:
  std::function<Time()> clock_;
  std::uint64_t seq_ = 0;
  std::vector<StampedTraceRecord> pending_;
};

}  // namespace aheft::sim

#endif  // AHEFT_SIM_TRACE_H_
