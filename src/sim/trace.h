// Execution trace recording: what ran where, when, and which files moved.
//
// Traces back the paper's Fig. 5 Gantt charts and let tests assert that a
// simulated execution actually honored a schedule.
#ifndef AHEFT_SIM_TRACE_H_
#define AHEFT_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace aheft::sim {

enum class IntervalKind { kCompute, kTransfer };

/// One closed interval of activity in a simulated execution.
struct TraceInterval {
  IntervalKind kind = IntervalKind::kCompute;
  std::uint32_t job = 0;           ///< job being computed / produced the file
  std::uint32_t consumer = 0;      ///< for transfers: receiving job
  std::uint32_t resource = 0;      ///< compute location / transfer target
  Time start = kTimeZero;
  Time end = kTimeZero;
};

/// Append-only trace of a simulation run.
class TraceRecorder {
 public:
  void record_compute(std::uint32_t job, std::uint32_t resource, Time start,
                      Time end);
  void record_transfer(std::uint32_t producer, std::uint32_t consumer,
                       std::uint32_t target_resource, Time start, Time end);

  [[nodiscard]] const std::vector<TraceInterval>& intervals() const {
    return intervals_;
  }

  /// Intervals of one kind, sorted by start time (stable on ties).
  [[nodiscard]] std::vector<TraceInterval> sorted(IntervalKind kind) const;

  /// Renders a textual Gantt chart of compute intervals, one row per
  /// resource, in the style of the paper's Fig. 5.
  [[nodiscard]] std::string gantt(
      const std::vector<std::string>& job_names,
      const std::vector<std::string>& resource_names) const;

  void clear() { intervals_.clear(); }

 private:
  std::vector<TraceInterval> intervals_;
};

}  // namespace aheft::sim

#endif  // AHEFT_SIM_TRACE_H_
