// Logical simulation time.
//
// The paper measures everything in abstract cost units on a logical clock
// (§3.4: "The variable clock is used as logical clock to measure the time
// span of DAG execution"). We follow suit with a double-typed Time.
#ifndef AHEFT_SIM_TIME_H_
#define AHEFT_SIM_TIME_H_

#include <cmath>
#include <limits>

namespace aheft::sim {

using Time = double;

inline constexpr Time kTimeZero = 0.0;
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Tolerance for comparing derived times (sums of costs). Schedule
/// validation uses this to avoid rejecting plans over floating-point dust.
inline constexpr Time kTimeEpsilon = 1e-7;

[[nodiscard]] inline bool time_eq(Time a, Time b,
                                  Time eps = kTimeEpsilon) noexcept {
  return std::fabs(a - b) <= eps * (1.0 + std::fmax(std::fabs(a), std::fabs(b)));
}

/// a <= b up to tolerance.
[[nodiscard]] inline bool time_le(Time a, Time b,
                                  Time eps = kTimeEpsilon) noexcept {
  return a <= b || time_eq(a, b, eps);
}

/// a >= b up to tolerance.
[[nodiscard]] inline bool time_ge(Time a, Time b,
                                  Time eps = kTimeEpsilon) noexcept {
  return a >= b || time_eq(a, b, eps);
}

}  // namespace aheft::sim

#endif  // AHEFT_SIM_TIME_H_
