// The dynamic resource pool: a fixed universe with per-resource
// availability windows.
#ifndef AHEFT_GRID_RESOURCE_POOL_H_
#define AHEFT_GRID_RESOURCE_POOL_H_

#include <span>
#include <vector>

#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::grid {

/// Owns the resource universe. Ids are dense and assigned in add() order.
class ResourcePool {
 public:
  ResourcePool() = default;

  /// Adds a resource; its id is overwritten with the dense index.
  ResourceId add(Resource resource);

  [[nodiscard]] std::size_t universe_size() const noexcept {
    return resources_.size();
  }
  [[nodiscard]] const Resource& resource(ResourceId id) const;
  [[nodiscard]] std::span<const Resource> all() const noexcept {
    return resources_;
  }

  /// Ids available at time t, ascending.
  [[nodiscard]] std::vector<ResourceId> available_at(sim::Time t) const;
  [[nodiscard]] std::size_t count_available_at(sim::Time t) const;

  /// All times in (after, horizon] at which the visible set changes
  /// (arrivals or departures), sorted ascending and deduplicated.
  [[nodiscard]] std::vector<sim::Time> change_times(sim::Time after,
                                                    sim::Time horizon) const;

  /// First change strictly after `after`; kTimeInfinity when none.
  [[nodiscard]] sim::Time next_change_after(sim::Time after) const;

  /// Resources arriving exactly at time t.
  [[nodiscard]] std::vector<ResourceId> arrivals_at(sim::Time t) const;

  /// Resources departing exactly at time t.
  [[nodiscard]] std::vector<ResourceId> departures_at(sim::Time t) const;

  /// Marks a resource as departing at time t (failure-injection extension).
  void set_departure(ResourceId id, sim::Time t);

  /// Rewrites a resource's arrival time (what-if analysis on pool copies).
  void set_arrival(ResourceId id, sim::Time t);

 private:
  std::vector<Resource> resources_;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_RESOURCE_POOL_H_
