// Advance-reservation ledger (the Resource Manager's bookkeeping, Fig. 1).
//
// "Upon arrival of a schedule, the Resource Manager will reserve the
// resource as per the schedule. If the arriving schedule is a result of
// rescheduling, it revokes resource reservation for replaced schedule
// before making new reservations." (§3.2)
#ifndef AHEFT_GRID_RESERVATION_H_
#define AHEFT_GRID_RESERVATION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dag/job.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::grid {

/// Monotonically increasing schedule version; each submitted (re)schedule
/// gets one, so its reservations can be revoked atomically.
using ScheduleVersion = std::uint64_t;

struct Reservation {
  dag::JobId job = dag::kInvalidJob;
  ResourceId resource = kInvalidResource;
  sim::Time start = sim::kTimeZero;
  sim::Time end = sim::kTimeZero;
  ScheduleVersion version = 0;
};

class ReservationLedger {
 public:
  /// Opens a new schedule version.
  ScheduleVersion begin_version();

  /// Reserves [start, end) on `resource` for `job` under `version`.
  /// Throws if the window overlaps a live reservation on that resource.
  void reserve(ScheduleVersion version, dag::JobId job, ResourceId resource,
               sim::Time start, sim::Time end);

  /// Revokes every reservation of all versions older than `keep`, except
  /// those whose job ids appear in `pinned` (finished or running jobs keep
  /// their slots).
  void revoke_before(ScheduleVersion keep,
                     const std::vector<dag::JobId>& pinned);

  /// True if [start, end) on `resource` overlaps a live reservation.
  [[nodiscard]] bool conflicts(ResourceId resource, sim::Time start,
                               sim::Time end) const;

  [[nodiscard]] std::vector<Reservation> reservations_for(
      ResourceId resource) const;
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

 private:
  ScheduleVersion next_version_ = 1;
  // keyed by (resource, start) for ordered overlap scans
  std::map<std::pair<ResourceId, sim::Time>, Reservation> live_;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_RESERVATION_H_
