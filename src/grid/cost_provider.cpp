#include "grid/cost_provider.h"

#include "support/assert.h"

namespace aheft::grid {

double CostProvider::mean_compute_cost(
    dag::JobId job, std::span<const ResourceId> resources) const {
  AHEFT_REQUIRE(!resources.empty(), "mean over empty resource set");
  double total = 0.0;
  for (const ResourceId r : resources) {
    total += compute_cost(job, r);
  }
  return total / static_cast<double>(resources.size());
}

}  // namespace aheft::grid
