// Ground-truth machine model: per-(job, resource) computation costs plus a
// uniform network link model.
#ifndef AHEFT_GRID_MACHINE_MODEL_H_
#define AHEFT_GRID_MACHINE_MODEL_H_

#include <vector>

#include "grid/cost_provider.h"

namespace aheft::grid {

/// Uniform network: transferring `data` units between two distinct
/// resources costs latency + data / bandwidth. The paper's sample DAG
/// (Fig. 4) uses edge weights directly as communication costs, i.e.
/// latency 0 and bandwidth 1 — the defaults here.
struct LinkModel {
  double latency = 0.0;
  double bandwidth = 1.0;

  [[nodiscard]] double transfer_cost(double data) const {
    return latency + data / bandwidth;
  }
};

/// Dense w_{i,j} matrix over the full resource universe; implements the
/// CostProvider interface with exact values.
class MachineModel final : public CostProvider {
 public:
  MachineModel(std::size_t job_count, std::size_t resource_count,
               LinkModel link = {});

  void set_compute_cost(dag::JobId job, ResourceId resource, double cost);

  [[nodiscard]] std::size_t job_count() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resources_;
  }
  [[nodiscard]] const LinkModel& link() const noexcept { return link_; }

  // CostProvider:
  [[nodiscard]] double compute_cost(dag::JobId job,
                                    ResourceId resource) const override;
  [[nodiscard]] double comm_cost(const dag::Edge& e, ResourceId from,
                                 ResourceId to) const override;
  [[nodiscard]] double mean_comm_cost(const dag::Edge& e) const override;

 private:
  std::size_t jobs_;
  std::size_t resources_;
  LinkModel link_;
  std::vector<double> w_;  ///< row-major [job][resource]
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_MACHINE_MODEL_H_
