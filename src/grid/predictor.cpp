#include "grid/predictor.h"

#include "support/assert.h"

namespace aheft::grid {

NoisyPredictor::NoisyPredictor(const CostProvider& truth, double error,
                               std::uint64_t seed)
    : truth_(truth), error_(error), seed_(seed) {
  AHEFT_REQUIRE(error >= 0.0 && error < 1.0, "error must be in [0, 1)");
}

double NoisyPredictor::compute_cost(dag::JobId job,
                                    ResourceId resource) const {
  // A deterministic per-(job, resource) factor: the same query always
  // returns the same estimate, as a real predictor would.
  const std::uint64_t key =
      mix64(seed_, (static_cast<std::uint64_t>(job) << 32) | resource);
  RngStream stream(key);
  const double factor = stream.uniform(1.0 - error_, 1.0 + error_);
  return truth_.compute_cost(job, resource) * factor;
}

HistoryBlendingPredictor::HistoryBlendingPredictor(
    const CostProvider& prior, const dag::Dag& dag,
    const PerformanceHistoryRepository& history)
    : prior_(prior), dag_(dag), history_(history) {}

double HistoryBlendingPredictor::compute_cost(dag::JobId job,
                                              ResourceId resource) const {
  const std::string& operation = dag_.job(job).operation;
  if (const auto observed = history_.estimate(operation, resource)) {
    return *observed;
  }
  return prior_.compute_cost(job, resource);
}

}  // namespace aheft::grid
