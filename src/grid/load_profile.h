// Time-varying resource load: the multiplicative slowdown a resource
// exhibits at a point in simulated time.
//
// The execution engine samples the profile when a job starts, so realized
// run times become w_{i,j} * factor(j, start) while the planner keeps
// scheduling against the nominal estimates — exactly the estimate/actual
// divergence the Performance Monitor (paper Fig. 1) is there to observe.
#ifndef AHEFT_GRID_LOAD_PROFILE_H_
#define AHEFT_GRID_LOAD_PROFILE_H_

#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::grid {

class LoadProfile {
 public:
  virtual ~LoadProfile() = default;

  /// Multiplicative slowdown of `resource` at time `t`; 1.0 is nominal,
  /// values > 1 stretch realized run times. Must be strictly positive.
  [[nodiscard]] virtual double factor(ResourceId resource,
                                      sim::Time t) const = 0;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_LOAD_PROFILE_H_
