// Run-time events the Executor reports to the Planner (paper §3.3).
#ifndef AHEFT_GRID_EVENTS_H_
#define AHEFT_GRID_EVENTS_H_

#include <string>
#include <variant>
#include <vector>

#include "dag/job.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::grid {

/// "Resource Pool Change" — a new resource was discovered.
struct ResourceAddedEvent {
  ResourceId resource = kInvalidResource;
};

/// "Resource Pool Change" — a resource left (predictable failure).
struct ResourceRemovedEvent {
  ResourceId resource = kInvalidResource;
};

/// "Resource Performance Variance" — a job's observed run time deviated
/// from its estimate by more than the monitor's threshold.
struct PerformanceVarianceEvent {
  dag::JobId job = dag::kInvalidJob;
  ResourceId resource = kInvalidResource;
  double estimated = 0.0;
  double actual = 0.0;
};

struct GridEvent {
  sim::Time time = sim::kTimeZero;
  std::variant<ResourceAddedEvent, ResourceRemovedEvent,
               PerformanceVarianceEvent>
      payload;
};

[[nodiscard]] std::string describe(const GridEvent& event);

}  // namespace aheft::grid

#endif  // AHEFT_GRID_EVENTS_H_
