// Run-time events the Executor reports to the Planner (paper §3.3).
#ifndef AHEFT_GRID_EVENTS_H_
#define AHEFT_GRID_EVENTS_H_

#include <string>
#include <variant>
#include <vector>

#include "dag/job.h"
#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::grid {

/// "Resource Pool Change" — a new resource was discovered.
struct ResourceAddedEvent {
  ResourceId resource = kInvalidResource;

  bool operator==(const ResourceAddedEvent&) const = default;
};

/// "Resource Pool Change" — a resource left (predictable failure).
struct ResourceRemovedEvent {
  ResourceId resource = kInvalidResource;

  bool operator==(const ResourceRemovedEvent&) const = default;
};

/// "Resource Performance Variance" — a job's observed run time deviated
/// from its estimate by more than the monitor's threshold. Load-driven
/// environment feeds use job = kInvalidJob with estimated/actual carrying
/// the nominal (1.0) and effective load multiplier.
struct PerformanceVarianceEvent {
  dag::JobId job = dag::kInvalidJob;
  ResourceId resource = kInvalidResource;
  double estimated = 0.0;
  double actual = 0.0;

  bool operator==(const PerformanceVarianceEvent&) const = default;
};

struct GridEvent {
  sim::Time time = sim::kTimeZero;
  std::variant<ResourceAddedEvent, ResourceRemovedEvent,
               PerformanceVarianceEvent>
      payload;

  bool operator==(const GridEvent&) const = default;
};

[[nodiscard]] std::string describe(const GridEvent& event);

class ResourcePool;

/// The pool-change event stream a pool's availability windows imply:
/// one ResourceAddedEvent per arrival in (after, horizon], one
/// ResourceRemovedEvent per finite departure in the same window, sorted
/// by (time, kind, resource) — the deterministic order scenario replays
/// compare against.
[[nodiscard]] std::vector<GridEvent> pool_change_events(
    const ResourcePool& pool, sim::Time after, sim::Time horizon);

}  // namespace aheft::grid

#endif  // AHEFT_GRID_EVENTS_H_
