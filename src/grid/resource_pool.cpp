#include "grid/resource_pool.h"

#include <algorithm>
#include <set>

#include "support/assert.h"

namespace aheft::grid {

ResourceId ResourcePool::add(Resource resource) {
  AHEFT_REQUIRE(resource.arrival >= 0.0, "arrival must be non-negative");
  // arrival == departure == infinity is the never-arrives sentinel used by
  // the session's masked per-shard pools: the machine keeps its global id
  // but is invisible to availability and change-time queries.
  AHEFT_REQUIRE(resource.arrival < resource.departure ||
                    (resource.arrival == sim::kTimeInfinity &&
                     resource.departure == sim::kTimeInfinity),
                "resource must depart after it arrives");
  const auto id = static_cast<ResourceId>(resources_.size());
  resource.id = id;
  if (resource.name.empty()) {
    // Built by push_back/append and moved in: the straightforward
    // `"r" + std::to_string(...)` (and even a literal assignment) trips
    // GCC 12's -Wrestrict false positive (PR 105329) inside the inlined
    // basic_string replace path, and this file is pinned -Werror.
    std::string name = std::to_string(id + 1);
    name.insert(name.begin(), 'r');
    resource.name = std::move(name);
  }
  resources_.push_back(std::move(resource));
  return id;
}

const Resource& ResourcePool::resource(ResourceId id) const {
  AHEFT_REQUIRE(id < resources_.size(), "resource id out of range");
  return resources_[id];
}

std::vector<ResourceId> ResourcePool::available_at(sim::Time t) const {
  std::vector<ResourceId> out;
  for (const Resource& r : resources_) {
    if (r.available_at(t)) {
      out.push_back(r.id);
    }
  }
  return out;
}

std::size_t ResourcePool::count_available_at(sim::Time t) const {
  return static_cast<std::size_t>(
      std::count_if(resources_.begin(), resources_.end(),
                    [t](const Resource& r) { return r.available_at(t); }));
}

std::vector<sim::Time> ResourcePool::change_times(sim::Time after,
                                                  sim::Time horizon) const {
  std::set<sim::Time> times;
  for (const Resource& r : resources_) {
    if (r.arrives_in(after, horizon)) {
      times.insert(r.arrival);
    }
    if (r.departs_in(after, horizon)) {
      times.insert(r.departure);
    }
  }
  return {times.begin(), times.end()};
}

sim::Time ResourcePool::next_change_after(sim::Time after) const {
  sim::Time best = sim::kTimeInfinity;
  for (const Resource& r : resources_) {
    if (r.arrives_in(after, sim::kTimeInfinity)) {
      best = std::min(best, r.arrival);
    }
    if (r.departs_in(after, sim::kTimeInfinity)) {
      best = std::min(best, r.departure);
    }
  }
  return best;
}

std::vector<ResourceId> ResourcePool::arrivals_at(sim::Time t) const {
  std::vector<ResourceId> out;
  for (const Resource& r : resources_) {
    if (r.arrival == t) {
      out.push_back(r.id);
    }
  }
  return out;
}

std::vector<ResourceId> ResourcePool::departures_at(sim::Time t) const {
  std::vector<ResourceId> out;
  for (const Resource& r : resources_) {
    if (r.departure == t) {
      out.push_back(r.id);
    }
  }
  return out;
}

void ResourcePool::set_departure(ResourceId id, sim::Time t) {
  AHEFT_REQUIRE(id < resources_.size(), "resource id out of range");
  AHEFT_REQUIRE(t > resources_[id].arrival,
                "departure must follow arrival");
  resources_[id].departure = t;
}

void ResourcePool::set_arrival(ResourceId id, sim::Time t) {
  AHEFT_REQUIRE(id < resources_.size(), "resource id out of range");
  AHEFT_REQUIRE(t >= 0.0 && t < resources_[id].departure,
                "arrival must be non-negative and precede departure");
  resources_[id].arrival = t;
}

}  // namespace aheft::grid
