#include "grid/history.h"

#include "support/assert.h"

namespace aheft::grid {

PerformanceHistoryRepository::PerformanceHistoryRepository(double smoothing)
    : smoothing_(smoothing) {
  AHEFT_REQUIRE(smoothing > 0.0 && smoothing <= 1.0,
                "smoothing must be in (0, 1]");
}

void PerformanceHistoryRepository::record(const std::string& operation,
                                          ResourceId resource,
                                          double actual_duration) {
  AHEFT_REQUIRE(actual_duration >= 0.0, "duration must be non-negative");
  Entry& entry = entries_[{operation, resource}];
  if (entry.count == 0) {
    entry.smoothed = actual_duration;
  } else {
    entry.smoothed =
        smoothing_ * actual_duration + (1.0 - smoothing_) * entry.smoothed;
  }
  ++entry.count;
  ++total_;
}

std::optional<double> PerformanceHistoryRepository::estimate(
    const std::string& operation, ResourceId resource) const {
  const auto it = entries_.find({operation, resource});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.smoothed;
}

std::size_t PerformanceHistoryRepository::observations(
    const std::string& operation, ResourceId resource) const {
  const auto it = entries_.find({operation, resource});
  return it == entries_.end() ? 0 : it->second.count;
}

void PerformanceHistoryRepository::clear() {
  entries_.clear();
  total_ = 0;
}

}  // namespace aheft::grid
