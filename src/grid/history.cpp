#include "grid/history.h"

#include "support/assert.h"

namespace aheft::grid {

PerformanceHistoryRepository::PerformanceHistoryRepository(double smoothing)
    : smoothing_(smoothing) {
  AHEFT_REQUIRE(smoothing > 0.0 && smoothing <= 1.0,
                "smoothing must be in (0, 1]");
}

void PerformanceHistoryRepository::record(const std::string& operation,
                                          ResourceId resource,
                                          double actual_duration) {
  AHEFT_REQUIRE(actual_duration >= 0.0, "duration must be non-negative");
  Entry& entry = entries_[{operation, resource}];
  if (entry.count == 0) {
    entry.smoothed = actual_duration;
  } else {
    entry.smoothed =
        smoothing_ * actual_duration + (1.0 - smoothing_) * entry.smoothed;
  }
  ++entry.count;
  ++total_;
}

std::optional<double> PerformanceHistoryRepository::estimate(
    const std::string& operation, ResourceId resource) const {
  const auto it = entries_.find({operation, resource});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.smoothed;
}

std::size_t PerformanceHistoryRepository::observations(
    const std::string& operation, ResourceId resource) const {
  const auto it = entries_.find({operation, resource});
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<PerformanceHistoryRepository::Observation>
PerformanceHistoryRepository::snapshot() const {
  std::vector<Observation> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back(Observation{key.first, key.second, entry.smoothed,
                              entry.count});
  }
  return out;
}

void PerformanceHistoryRepository::clear() {
  entries_.clear();
  total_ = 0;
}

HistoryDelta::HistoryDelta(const PerformanceHistoryRepository& base,
                           std::function<double()> clock)
    : PerformanceHistoryRepository(base.smoothing()),
      base_(&base),
      clock_(std::move(clock)) {}

void HistoryDelta::record(const std::string& operation, ResourceId resource,
                          double actual_duration) {
  AHEFT_REQUIRE(actual_duration >= 0.0, "duration must be non-negative");
  Overlay& overlay = overlay_[{operation, resource}];
  if (overlay.count == 0) {
    // First delta-local record for this key: seed from the base entry so
    // the EWMA continues exactly where the barrier replay will leave it.
    if (const auto base_estimate = base_->estimate(operation, resource)) {
      overlay.smoothed = *base_estimate;
      overlay.count = base_->observations(operation, resource);
    }
  }
  if (overlay.count == 0) {
    overlay.smoothed = actual_duration;
  } else {
    overlay.smoothed = smoothing() * actual_duration +
                       (1.0 - smoothing()) * overlay.smoothed;
  }
  ++overlay.count;
  pending_.push_back(
      PendingObservation{clock_(), seq_++, operation, resource,
                         actual_duration});
}

std::optional<double> HistoryDelta::estimate(const std::string& operation,
                                             ResourceId resource) const {
  const auto it = overlay_.find({operation, resource});
  if (it != overlay_.end()) {
    return it->second.smoothed;
  }
  return base_->estimate(operation, resource);
}

std::size_t HistoryDelta::observations(const std::string& operation,
                                       ResourceId resource) const {
  const auto it = overlay_.find({operation, resource});
  if (it != overlay_.end()) {
    return it->second.count;
  }
  return base_->observations(operation, resource);
}

std::vector<PendingObservation> HistoryDelta::take_pending() {
  std::vector<PendingObservation> out;
  out.swap(pending_);
  overlay_.clear();
  return out;
}

}  // namespace aheft::grid
