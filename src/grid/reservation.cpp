#include "grid/reservation.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft::grid {

ScheduleVersion ReservationLedger::begin_version() { return next_version_++; }

void ReservationLedger::reserve(ScheduleVersion version, dag::JobId job,
                                ResourceId resource, sim::Time start,
                                sim::Time end) {
  AHEFT_REQUIRE(version > 0 && version < next_version_,
                "unknown schedule version");
  AHEFT_REQUIRE(sim::time_le(start, end), "reservation ends before start");
  AHEFT_REQUIRE(!conflicts(resource, start, end),
                "reservation overlaps an existing one on resource " +
                    std::to_string(resource));
  live_.emplace(std::make_pair(resource, start),
                Reservation{job, resource, start, end, version});
}

void ReservationLedger::revoke_before(ScheduleVersion keep,
                                      const std::vector<dag::JobId>& pinned) {
  for (auto it = live_.begin(); it != live_.end();) {
    const Reservation& r = it->second;
    const bool is_pinned =
        std::find(pinned.begin(), pinned.end(), r.job) != pinned.end();
    if (r.version < keep && !is_pinned) {
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ReservationLedger::conflicts(ResourceId resource, sim::Time start,
                                  sim::Time end) const {
  if (sim::time_eq(start, end)) {
    return false;  // zero-length windows never conflict
  }
  // Scan reservations on this resource; the map is ordered by start time.
  auto it = live_.lower_bound({resource, -sim::kTimeInfinity});
  for (; it != live_.end() && it->first.first == resource; ++it) {
    const Reservation& r = it->second;
    if (r.start >= end) {
      break;
    }
    // Overlap test with tolerance: touching endpoints do not conflict.
    if (r.start < end && start < r.end && !sim::time_eq(r.end, start) &&
        !sim::time_eq(end, r.start)) {
      return true;
    }
  }
  return false;
}

std::vector<Reservation> ReservationLedger::reservations_for(
    ResourceId resource) const {
  std::vector<Reservation> out;
  auto it = live_.lower_bound({resource, -sim::kTimeInfinity});
  for (; it != live_.end() && it->first.first == resource; ++it) {
    out.push_back(it->second);
  }
  return out;
}

}  // namespace aheft::grid
