// Predictors: the Planner-side estimate of computation/communication cost.
//
// Fig. 1 of the paper places a Predictor between the Scheduler and the
// Performance History Repository. PerfectPredictor models the paper's
// accuracy assumption (§4.1); NoisyPredictor perturbs the truth for the
// inaccuracy ablation; HistoryBlendingPredictor converges to the truth as
// executions of the same operation are observed (the collaboration loop of
// §3.2: "the Performance History Repository is updated to improve the
// estimation accuracy").
#ifndef AHEFT_GRID_PREDICTOR_H_
#define AHEFT_GRID_PREDICTOR_H_

#include <memory>

#include "grid/cost_provider.h"
#include "grid/history.h"
#include "support/rng.h"

namespace aheft::grid {

/// Returns the ground truth unchanged.
class PerfectPredictor final : public CostProvider {
 public:
  explicit PerfectPredictor(const CostProvider& truth) : truth_(truth) {}

  [[nodiscard]] double compute_cost(dag::JobId job,
                                    ResourceId resource) const override {
    return truth_.compute_cost(job, resource);
  }
  [[nodiscard]] double comm_cost(const dag::Edge& e, ResourceId from,
                                 ResourceId to) const override {
    return truth_.comm_cost(e, from, to);
  }
  [[nodiscard]] double mean_comm_cost(const dag::Edge& e) const override {
    return truth_.mean_comm_cost(e);
  }

 private:
  const CostProvider& truth_;
};

/// Multiplies each computation cost by a deterministic per-(job, resource)
/// factor drawn uniformly from [1 - error, 1 + error].
class NoisyPredictor final : public CostProvider {
 public:
  NoisyPredictor(const CostProvider& truth, double error, std::uint64_t seed);

  [[nodiscard]] double compute_cost(dag::JobId job,
                                    ResourceId resource) const override;
  [[nodiscard]] double comm_cost(const dag::Edge& e, ResourceId from,
                                 ResourceId to) const override {
    return truth_.comm_cost(e, from, to);
  }
  [[nodiscard]] double mean_comm_cost(const dag::Edge& e) const override {
    return truth_.mean_comm_cost(e);
  }

 private:
  const CostProvider& truth_;
  double error_;
  std::uint64_t seed_;
};

/// Blends a (possibly wrong) prior with smoothed observations from the
/// Performance History Repository, keyed by (operation, resource).
class HistoryBlendingPredictor final : public CostProvider {
 public:
  /// `prior` supplies the initial estimates; `dag` maps jobs to operations;
  /// `history` accumulates run-time observations.
  HistoryBlendingPredictor(const CostProvider& prior, const dag::Dag& dag,
                           const PerformanceHistoryRepository& history);

  [[nodiscard]] double compute_cost(dag::JobId job,
                                    ResourceId resource) const override;
  [[nodiscard]] double comm_cost(const dag::Edge& e, ResourceId from,
                                 ResourceId to) const override {
    return prior_.comm_cost(e, from, to);
  }
  [[nodiscard]] double mean_comm_cost(const dag::Edge& e) const override {
    return prior_.mean_comm_cost(e);
  }

 private:
  const CostProvider& prior_;
  const dag::Dag& dag_;
  const PerformanceHistoryRepository& history_;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_PREDICTOR_H_
