// Performance History Repository (paper Fig. 1).
//
// Stores observed run times keyed by (operation, resource) and serves
// exponentially smoothed estimates. Scientific workflows repeat a handful
// of operations many times (§4.3), so per-operation history converges
// quickly.
#ifndef AHEFT_GRID_HISTORY_H_
#define AHEFT_GRID_HISTORY_H_

#include <map>
#include <optional>
#include <string>

#include "grid/resource.h"

namespace aheft::grid {

class PerformanceHistoryRepository {
 public:
  /// `smoothing` is the weight of the newest observation (EWMA alpha).
  explicit PerformanceHistoryRepository(double smoothing = 0.5);

  /// Records an actual run time for `operation` on `resource`.
  void record(const std::string& operation, ResourceId resource,
              double actual_duration);

  /// Smoothed estimate; empty when the pair was never observed.
  [[nodiscard]] std::optional<double> estimate(const std::string& operation,
                                               ResourceId resource) const;

  /// Number of observations for the pair.
  [[nodiscard]] std::size_t observations(const std::string& operation,
                                         ResourceId resource) const;

  [[nodiscard]] std::size_t total_observations() const { return total_; }

  void clear();

 private:
  struct Entry {
    double smoothed = 0.0;
    std::size_t count = 0;
  };
  double smoothing_;
  std::map<std::pair<std::string, ResourceId>, Entry> entries_;
  std::size_t total_ = 0;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_HISTORY_H_
