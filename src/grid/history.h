// Performance History Repository (paper Fig. 1).
//
// Stores observed run times keyed by (operation, resource) and serves
// exponentially smoothed estimates. Scientific workflows repeat a handful
// of operations many times (§4.3), so per-operation history converges
// quickly.
//
// `HistoryDelta` is the sharded-core overlay: each shard records into a
// private delta (written only by the shard's drain thread), reads fall
// through to the shared base repository for keys the shard never touched,
// and the stamped pending observations are replayed into the base at tick
// barriers in deterministic (stamp, origin shard, origin seq) order.
#ifndef AHEFT_GRID_HISTORY_H_
#define AHEFT_GRID_HISTORY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "grid/resource.h"

namespace aheft::grid {

class PerformanceHistoryRepository {
 public:
  /// `smoothing` is the weight of the newest observation (EWMA alpha).
  explicit PerformanceHistoryRepository(double smoothing = 0.5);
  PerformanceHistoryRepository(const PerformanceHistoryRepository&) = default;
  PerformanceHistoryRepository& operator=(const PerformanceHistoryRepository&) =
      default;
  PerformanceHistoryRepository(PerformanceHistoryRepository&&) = default;
  PerformanceHistoryRepository& operator=(PerformanceHistoryRepository&&) =
      default;
  virtual ~PerformanceHistoryRepository() = default;

  /// Records an actual run time for `operation` on `resource`.
  virtual void record(const std::string& operation, ResourceId resource,
                      double actual_duration);

  /// Smoothed estimate; empty when the pair was never observed.
  [[nodiscard]] virtual std::optional<double> estimate(
      const std::string& operation, ResourceId resource) const;

  /// Number of observations for the pair.
  [[nodiscard]] virtual std::size_t observations(const std::string& operation,
                                                 ResourceId resource) const;

  /// Observations absorbed by this repository object itself (for a
  /// `HistoryDelta`, delta-local records are not counted here).
  [[nodiscard]] std::size_t total_observations() const { return total_; }

  [[nodiscard]] double smoothing() const { return smoothing_; }

  /// One (operation, resource) key's state in a `snapshot()`.
  struct Observation {
    std::string operation;
    ResourceId resource = 0;
    double smoothed = 0.0;
    std::size_t count = 0;
  };

  /// Every key's smoothed estimate and count in key order — a
  /// determinism-comparable fingerprint for twin-run checks.
  [[nodiscard]] std::vector<Observation> snapshot() const;

  void clear();

 private:
  struct Entry {
    double smoothed = 0.0;
    std::size_t count = 0;
  };
  double smoothing_;
  std::map<std::pair<std::string, ResourceId>, Entry> entries_;
  std::size_t total_ = 0;
};

/// One delta-local observation awaiting the deterministic barrier merge.
struct PendingObservation {
  double stamp = 0.0;      ///< recording shard's clock at the record
  std::uint64_t seq = 0;   ///< append order within the owning delta
  std::string operation;
  ResourceId resource = 0;
  double duration = 0.0;
};

/// Shard-private history overlay. `record()` continues the base EWMA
/// locally: the first delta-local record for a key seeds the overlay from
/// the base repository's entry, so estimates served to the shard between
/// barriers are exactly what the base will hold once the pending
/// observations are replayed into it. Under the session's resource-shard
/// confinement, (operation, resource) keys are disjoint across shards, so
/// overlay reads never see another shard's unreplayed writes.
class HistoryDelta final : public PerformanceHistoryRepository {
 public:
  /// `clock` reads the owning shard's simulation clock; it is called on the
  /// shard's drain thread at every record. `base` must outlive the delta
  /// and is only read between barriers (the coordinator mutates it while
  /// the drain workers are parked).
  HistoryDelta(const PerformanceHistoryRepository& base,
               std::function<double()> clock);

  void record(const std::string& operation, ResourceId resource,
              double actual_duration) override;
  [[nodiscard]] std::optional<double> estimate(
      const std::string& operation, ResourceId resource) const override;
  [[nodiscard]] std::size_t observations(const std::string& operation,
                                         ResourceId resource) const override;

  /// Drains the observations accumulated since the last call, in append
  /// order (nondecreasing stamp, strictly increasing seq), and resets the
  /// overlay so post-merge reads fall through to the updated base.
  [[nodiscard]] std::vector<PendingObservation> take_pending();

 private:
  struct Overlay {
    double smoothed = 0.0;
    std::size_t count = 0;
  };
  const PerformanceHistoryRepository* base_;
  std::function<double()> clock_;
  std::uint64_t seq_ = 0;
  std::map<std::pair<std::string, ResourceId>, Overlay> overlay_;
  std::vector<PendingObservation> pending_;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_HISTORY_H_
