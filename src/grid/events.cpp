#include "grid/events.h"

#include <algorithm>
#include <sstream>

#include "grid/resource_pool.h"

namespace aheft::grid {

std::string describe(const GridEvent& event) {
  std::ostringstream os;
  os << "t=" << event.time << " ";
  std::visit(
      [&os](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, ResourceAddedEvent>) {
          os << "resource r" << payload.resource + 1 << " added";
        } else if constexpr (std::is_same_v<T, ResourceRemovedEvent>) {
          os << "resource r" << payload.resource + 1 << " removed";
        } else if (payload.job == dag::kInvalidJob) {
          // Load-driven environment feed: no specific job, the
          // estimate/actual pair carries the load multiplier.
          os << "load on r" << payload.resource + 1 << " shifted to "
             << payload.actual << "x (nominal " << payload.estimated
             << "x)";
        } else {
          os << "job n" << payload.job + 1 << " on r" << payload.resource + 1
             << " ran " << payload.actual << " vs estimate "
             << payload.estimated;
        }
      },
      event.payload);
  return os.str();
}

std::vector<GridEvent> pool_change_events(const ResourcePool& pool,
                                          sim::Time after,
                                          sim::Time horizon) {
  std::vector<GridEvent> events;
  for (const Resource& r : pool.all()) {
    if (r.arrives_in(after, horizon)) {
      events.push_back(GridEvent{r.arrival, ResourceAddedEvent{r.id}});
    }
    if (r.departs_in(after, horizon)) {
      events.push_back(GridEvent{r.departure, ResourceRemovedEvent{r.id}});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const GridEvent& a, const GridEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.payload.index() != b.payload.index()) {
                return a.payload.index() < b.payload.index();
              }
              const auto id = [](const GridEvent& e) {
                return std::visit([](const auto& p) { return p.resource; },
                                  e.payload);
              };
              return id(a) < id(b);
            });
  return events;
}

}  // namespace aheft::grid
