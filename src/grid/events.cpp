#include "grid/events.h"

#include <sstream>

namespace aheft::grid {

std::string describe(const GridEvent& event) {
  std::ostringstream os;
  os << "t=" << event.time << " ";
  std::visit(
      [&os](const auto& payload) {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, ResourceAddedEvent>) {
          os << "resource r" << payload.resource + 1 << " added";
        } else if constexpr (std::is_same_v<T, ResourceRemovedEvent>) {
          os << "resource r" << payload.resource + 1 << " removed";
        } else {
          os << "job n" << payload.job + 1 << " on r" << payload.resource + 1
             << " ran " << payload.actual << " vs estimate "
             << payload.estimated;
        }
      },
      event.payload);
  return os.str();
}

}  // namespace aheft::grid
