// The cost interface shared by the ground-truth machine model and every
// estimator.
//
// Schedulers plan against a CostProvider (the paper's performance
// estimation matrix P); the execution engine consumes the ground truth.
// Under the paper's accuracy assumption both are the same object; the
// inaccuracy ablation plugs in a noisy estimator instead.
#ifndef AHEFT_GRID_COST_PROVIDER_H_
#define AHEFT_GRID_COST_PROVIDER_H_

#include <span>

#include "dag/dag.h"
#include "grid/resource.h"

namespace aheft::grid {

class CostProvider {
 public:
  virtual ~CostProvider() = default;

  /// Computation cost w_{i,j} of job i on resource j.
  [[nodiscard]] virtual double compute_cost(dag::JobId job,
                                            ResourceId resource) const = 0;

  /// Communication cost of moving edge `e`'s payload from resource `from`
  /// to resource `to` (0 when from == to).
  [[nodiscard]] virtual double comm_cost(const dag::Edge& e, ResourceId from,
                                         ResourceId to) const = 0;

  /// Average communication cost of the edge across distinct resource pairs
  /// (the \bar{c}_{i,j} of the upward-rank definition, Eq. 5).
  [[nodiscard]] virtual double mean_comm_cost(const dag::Edge& e) const = 0;

  /// Average computation cost of a job over a resource set (the \bar{w}_i
  /// of Eq. 5). Provided here so estimators can override consistently.
  [[nodiscard]] virtual double mean_compute_cost(
      dag::JobId job, std::span<const ResourceId> resources) const;
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_COST_PROVIDER_H_
