// Grid resource identity and lifetime.
#ifndef AHEFT_GRID_RESOURCE_H_
#define AHEFT_GRID_RESOURCE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "sim/time.h"

namespace aheft::grid {

/// Dense index into the resource *universe* (initial pool plus every
/// resource that may ever join). Whether a resource is visible at a given
/// time is decided by its arrival/departure window, so HEFT, AHEFT, and the
/// dynamic baseline all see identical machines and costs.
using ResourceId = std::uint32_t;

inline constexpr ResourceId kInvalidResource =
    std::numeric_limits<ResourceId>::max();

/// One computation unit (the paper's r_j).
struct Resource {
  ResourceId id = kInvalidResource;
  std::string name;
  /// Time the resource joins the grid (0 for the initial pool).
  sim::Time arrival = sim::kTimeZero;
  /// Time the resource leaves the grid (infinity when it never does).
  /// Departures are an extension: the paper's experiments only add
  /// resources (§4.1 assumption 3), but the architecture handles failure.
  sim::Time departure = sim::kTimeInfinity;

  [[nodiscard]] bool available_at(sim::Time t) const noexcept {
    return arrival <= t && t < departure;
  }

  /// The resource joins the grid within (after, horizon] (an infinite
  /// arrival — a machine masked out of a session shard's pool — never
  /// counts, even against an infinite horizon).
  [[nodiscard]] bool arrives_in(sim::Time after,
                                sim::Time horizon) const noexcept {
    return arrival > after && arrival <= horizon &&
           arrival < sim::kTimeInfinity;
  }

  /// The resource leaves the grid within (after, horizon] (an infinite
  /// departure never counts). The single definition of the visibility-
  /// change window shared by the pool's change scan and the replayable
  /// event stream.
  [[nodiscard]] bool departs_in(sim::Time after,
                                sim::Time horizon) const noexcept {
    return departure > after && departure <= horizon &&
           departure < sim::kTimeInfinity;
  }
};

}  // namespace aheft::grid

#endif  // AHEFT_GRID_RESOURCE_H_
