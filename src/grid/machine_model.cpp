#include "grid/machine_model.h"

#include "support/assert.h"

namespace aheft::grid {

MachineModel::MachineModel(std::size_t job_count, std::size_t resource_count,
                           LinkModel link)
    : jobs_(job_count),
      resources_(resource_count),
      link_(link),
      w_(job_count * resource_count, 0.0) {
  AHEFT_REQUIRE(job_count > 0, "machine model needs at least one job");
  AHEFT_REQUIRE(resource_count > 0,
                "machine model needs at least one resource");
  AHEFT_REQUIRE(link.bandwidth > 0.0, "bandwidth must be positive");
  AHEFT_REQUIRE(link.latency >= 0.0, "latency must be non-negative");
}

void MachineModel::set_compute_cost(dag::JobId job, ResourceId resource,
                                    double cost) {
  AHEFT_REQUIRE(job < jobs_ && resource < resources_,
                "cost index out of range");
  AHEFT_REQUIRE(cost > 0.0, "computation cost must be positive");
  w_[job * resources_ + resource] = cost;
}

double MachineModel::compute_cost(dag::JobId job, ResourceId resource) const {
  AHEFT_REQUIRE(job < jobs_ && resource < resources_,
                "cost index out of range");
  const double cost = w_[job * resources_ + resource];
  AHEFT_ASSERT(cost > 0.0, "computation cost was never set for job " +
                               std::to_string(job) + " on resource " +
                               std::to_string(resource));
  return cost;
}

double MachineModel::comm_cost(const dag::Edge& e, ResourceId from,
                               ResourceId to) const {
  if (from == to) {
    return 0.0;
  }
  return link_.transfer_cost(e.data);
}

double MachineModel::mean_comm_cost(const dag::Edge& e) const {
  // With a uniform link model every distinct pair costs the same.
  return link_.transfer_cost(e.data);
}

}  // namespace aheft::grid
