// The paper's worked example (Fig. 4): a 10-job DAG with explicit costs on
// four resources — structurally the sample of Topcuoglu et al. [19] with a
// fourth resource column that emerges at t = 15 in Fig. 5(b).
#ifndef AHEFT_WORKLOADS_SAMPLE_H_
#define AHEFT_WORKLOADS_SAMPLE_H_

#include "dag/dag.h"
#include "grid/machine_model.h"
#include "grid/resource_pool.h"

namespace aheft::workloads {

struct SampleScenario {
  dag::Dag dag;
  grid::ResourcePool pool;    ///< r1..r3 at t=0, r4 at `r4_arrival`
  grid::MachineModel model;   ///< the paper's explicit 10x4 cost matrix
};

/// Builds the Fig. 4 scenario. Published results: HEFT over {r1, r2, r3}
/// yields makespan 80 (Fig. 5a); AHEFT with r4 arriving at t = 15 yields
/// makespan 76 (Fig. 5b).
[[nodiscard]] SampleScenario sample_scenario(sim::Time r4_arrival = 15.0);

}  // namespace aheft::workloads

#endif  // AHEFT_WORKLOADS_SAMPLE_H_
