// Real-application workflow generators.
//
// BLAST (paper Fig. 6, via GNARE [17]): a six-step, N-way-parallel genome
// comparison — one FileBreaker split job, N two-job branches, one merge.
//
// WIEN2K (paper Fig. 7, via ASKALON [20, 21]): quantum-chemistry workflow
// with two N-way parallel sections (LAPW1, LAPW2) separated by the
// serializing LAPW2_FERMI job — the structural reason the paper finds
// AHEFT helps WIEN2K far less than BLAST.
//
// Montage and Gaussian elimination are extensions: Montage is the third
// real workflow the paper's §4.3 discussion names (11 unique operations);
// Gaussian elimination is the classic structured DAG of the HEFT paper.
//
// Cost model shared by all generators (paper §4.3 observation 2): an
// application has only a handful of unique operations; every instance of
// an operation inherits the operation's base cost, and every structural
// edge type shares one data payload.
#ifndef AHEFT_WORKLOADS_APPS_H_
#define AHEFT_WORKLOADS_APPS_H_

#include <cstddef>

#include "support/rng.h"
#include "workloads/workload.h"

namespace aheft::workloads {

struct AppParams {
  /// Degree of parallelism N (the paper's v parameter in Table 5: 200,
  /// 400, ..., 1000). Total job count is app-specific (BLAST: 2N+2,
  /// WIEN2K: 2N+8, Montage: 3N+5).
  std::size_t parallelism = 200;
  double ccr = 1.0;
  double avg_compute = 100.0;
};

/// 2N+2 jobs: split -> N x (ID006 -> ID007) -> merge.
[[nodiscard]] Workload generate_blast(const AppParams& params,
                                      RngStream& rng);

/// 2N+8 jobs: StageIn -> LAPW0 -> {N x LAPW1, LCore} -> LAPW2_FERMI ->
/// N x LAPW2 -> Sumpara -> Mixer (joined by LCore) -> Converged ->
/// StageOut.
[[nodiscard]] Workload generate_wien2k(const AppParams& params,
                                       RngStream& rng);

/// 3N+5 jobs: N x mProject -> (N-1) x mDiffFit -> mConcatFit -> mBgModel
/// -> N x mBackground -> mImgtbl -> mAdd -> mShrink -> mJPEG.
[[nodiscard]] Workload generate_montage(const AppParams& params,
                                        RngStream& rng);

/// Gaussian elimination on an m x m matrix: (m^2 + m - 2) / 2 jobs.
/// `parallelism` is interpreted as the matrix dimension m (>= 2).
[[nodiscard]] Workload generate_gaussian(const AppParams& params,
                                         RngStream& rng);

}  // namespace aheft::workloads

#endif  // AHEFT_WORKLOADS_APPS_H_
