// A workload couples a DAG with per-job base computation costs.
//
// Base cost \omega_i is the paper's average computation cost of job n_i;
// the scenario builder (scenario.h) expands it into the per-resource
// matrix w_{i,j} using the heterogeneity factor beta (paper §4.2).
#ifndef AHEFT_WORKLOADS_WORKLOAD_H_
#define AHEFT_WORKLOADS_WORKLOAD_H_

#include <vector>

#include "dag/dag.h"

namespace aheft::workloads {

struct Workload {
  dag::Dag dag;
  /// \omega_i per job (same indexing as dag jobs); strictly positive.
  std::vector<double> base_cost;
};

/// Mean of base costs (the realized \bar{\omega}_DAG).
[[nodiscard]] double mean_base_cost(const Workload& workload);

/// Realized communication-to-computation ratio: mean edge transfer cost
/// (bandwidth 1) over mean base computation cost.
[[nodiscard]] double realized_ccr(const Workload& workload);

}  // namespace aheft::workloads

#endif  // AHEFT_WORKLOADS_WORKLOAD_H_
