#include "workloads/sample.h"

#include <array>

namespace aheft::workloads {

SampleScenario sample_scenario(sim::Time r4_arrival) {
  dag::Dag graph("fig4-sample");
  std::array<dag::JobId, 10> n{};
  for (int i = 0; i < 10; ++i) {
    n[static_cast<std::size_t>(i)] =
        graph.add_job("n" + std::to_string(i + 1), "sample");
  }
  // Edge weights are communication costs directly (link: latency 0,
  // bandwidth 1).
  graph.add_edge(n[0], n[1], 18);
  graph.add_edge(n[0], n[2], 12);
  graph.add_edge(n[0], n[3], 9);
  graph.add_edge(n[0], n[4], 11);
  graph.add_edge(n[0], n[5], 14);
  graph.add_edge(n[1], n[7], 19);
  graph.add_edge(n[1], n[8], 16);
  graph.add_edge(n[2], n[6], 23);
  graph.add_edge(n[3], n[7], 27);
  graph.add_edge(n[3], n[8], 23);
  graph.add_edge(n[4], n[8], 13);
  graph.add_edge(n[5], n[7], 15);
  graph.add_edge(n[6], n[9], 17);
  graph.add_edge(n[7], n[9], 11);
  graph.add_edge(n[8], n[9], 13);
  graph.finalize();

  grid::ResourcePool pool;
  pool.add(grid::Resource{.name = "r1", .arrival = 0.0});
  pool.add(grid::Resource{.name = "r2", .arrival = 0.0});
  pool.add(grid::Resource{.name = "r3", .arrival = 0.0});
  pool.add(grid::Resource{.name = "r4", .arrival = r4_arrival});

  // The paper's computation cost table (Fig. 4, right).
  constexpr std::array<std::array<double, 4>, 10> w{{
      {14, 16, 9, 14},
      {13, 19, 18, 17},
      {11, 13, 19, 14},
      {13, 8, 17, 15},
      {12, 13, 10, 14},
      {13, 16, 9, 16},
      {7, 15, 11, 15},
      {5, 11, 14, 20},
      {18, 12, 20, 13},
      {21, 7, 16, 15},
  }};
  grid::MachineModel model(10, 4);
  for (dag::JobId i = 0; i < 10; ++i) {
    for (grid::ResourceId j = 0; j < 4; ++j) {
      model.set_compute_cost(i, j, w[i][j]);
    }
  }

  return SampleScenario{std::move(graph), std::move(pool), std::move(model)};
}

}  // namespace aheft::workloads
