// Parametric random DAG generator following the heterogeneous computation
// modeling approach of Topcuoglu et al. [19], as used in the paper (§4.2)
// and recommended by the scheduling test bench of Hönig & Schiffmann [10].
#ifndef AHEFT_WORKLOADS_RANDOM_DAG_H_
#define AHEFT_WORKLOADS_RANDOM_DAG_H_

#include <cstddef>

#include "support/rng.h"
#include "workloads/workload.h"

namespace aheft::workloads {

struct RandomDagParams {
  /// Number of jobs in the graph (the paper's v).
  std::size_t jobs = 40;
  /// Maximum out-degree of a node as a fraction of the total node count
  /// (the paper's out_degree parameter, Table 2).
  double out_degree = 0.2;
  /// Communication-to-computation ratio (paper's CCR).
  double ccr = 1.0;
  /// Average computation cost \bar{\omega}_DAG. The paper leaves the
  /// absolute scale unstated; 100 puts the random-sweep average makespan in
  /// the published magnitude range.
  double avg_compute = 100.0;
};

/// Generates the DAG structure, per-edge data payloads (uniform in
/// [0, 2 * CCR * avg_compute]) and per-job base costs (uniform in
/// (0, 2 * avg_compute]). Structure guarantees: every non-entry node has at
/// least one predecessor, node 0 is the unique entry, edges only go
/// forward, out-degrees respect the out_degree cap.
[[nodiscard]] Workload generate_random_workload(const RandomDagParams& params,
                                                RngStream& rng);

}  // namespace aheft::workloads

#endif  // AHEFT_WORKLOADS_RANDOM_DAG_H_
