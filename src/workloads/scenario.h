// Grid scenario construction: expanding a workload's base costs into the
// heterogeneous w_{i,j} matrix and building the dynamic resource pool.
//
// Key reproducibility property: the cost column of resource j is a
// deterministic function of (seed, job, j) alone, so the universe can be
// sized after an initial HEFT pass without perturbing the costs of
// already-generated resources — HEFT, AHEFT and the dynamic baseline all
// face bit-identical machines.
#ifndef AHEFT_WORKLOADS_SCENARIO_H_
#define AHEFT_WORKLOADS_SCENARIO_H_

#include <cstdint>

#include "grid/machine_model.h"
#include "grid/resource_pool.h"
#include "workloads/workload.h"

namespace aheft::workloads {

/// The paper's resource-dynamics parameters (Table 2 / Table 5).
struct ResourceDynamics {
  std::size_t initial = 10;   ///< R: initial pool size
  double interval = 800.0;    ///< Delta: time between resource changes
  double fraction = 0.15;     ///< delta: fraction of R added per change
};

/// Validates dynamics parameters; throws std::invalid_argument naming the
/// offending field and value (initial == 0, interval <= 0 or fraction < 0
/// would otherwise build a degenerate pool). Every pool builder and
/// scenario source funnels through this.
void validate(const ResourceDynamics& dynamics);

/// Number of resources added at each change: max(1, round(delta * R)).
[[nodiscard]] std::size_t arrivals_per_change(const ResourceDynamics& d);

/// Builds the pool: `initial` resources at t = 0 plus arrivals_per_change
/// new resources at every multiple of `interval` in (0, horizon].
[[nodiscard]] grid::ResourcePool build_dynamic_pool(
    const ResourceDynamics& dynamics, sim::Time horizon);

/// Expands base costs into w_{i,j} = omega_i * U(1 - beta/2, 1 + beta/2)
/// over `universe` resources (paper §4.2's heterogeneity law). beta must
/// lie in [0, 2) so costs stay positive; beta = 0 gives homogeneous
/// resources.
[[nodiscard]] grid::MachineModel build_machine_model(
    const Workload& workload, std::size_t universe, double beta,
    std::uint64_t seed);

}  // namespace aheft::workloads

#endif  // AHEFT_WORKLOADS_SCENARIO_H_
