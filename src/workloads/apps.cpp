#include "workloads/apps.h"

#include <map>
#include <string>

#include "support/assert.h"

namespace aheft::workloads {

namespace {

/// Draws per-operation base costs and per-edge-type payloads: instances of
/// one operation share a cost, structural edge types share a payload
/// (paper §4.3: "there are only handful unique operations").
class AppCostTable {
 public:
  AppCostTable(const AppParams& params, RngStream& rng)
      : params_(params), rng_(rng) {}

  double op_cost(const std::string& operation) {
    const auto it = op_cost_.find(operation);
    if (it != op_cost_.end()) {
      return it->second;
    }
    const double floor_cost = 1e-3 * params_.avg_compute;
    const double cost = std::max(
        floor_cost, rng_.uniform(0.0, 2.0 * params_.avg_compute));
    op_cost_.emplace(operation, cost);
    return cost;
  }

  double edge_data(const std::string& edge_type) {
    const auto it = edge_data_.find(edge_type);
    if (it != edge_data_.end()) {
      return it->second;
    }
    const double data =
        rng_.uniform(0.0, 2.0 * params_.ccr * params_.avg_compute);
    edge_data_.emplace(edge_type, data);
    return data;
  }

 private:
  const AppParams& params_;
  RngStream& rng_;
  std::map<std::string, double> op_cost_;
  std::map<std::string, double> edge_data_;
};

void check_params(const AppParams& params, std::size_t min_parallelism) {
  AHEFT_REQUIRE(params.parallelism >= min_parallelism,
                "parallelism too small for this application");
  AHEFT_REQUIRE(params.ccr >= 0.0, "CCR must be non-negative");
  AHEFT_REQUIRE(params.avg_compute > 0.0, "avg_compute must be positive");
}

}  // namespace

Workload generate_blast(const AppParams& params, RngStream& rng) {
  check_params(params, 1);
  const std::size_t n = params.parallelism;
  AppCostTable costs(params, rng);

  dag::Dag graph("blast-n" + std::to_string(n));
  Workload workload;
  auto add = [&](const std::string& name, const std::string& operation) {
    const dag::JobId id = graph.add_job(name, operation);
    workload.base_cost.push_back(costs.op_cost(operation));
    return id;
  };

  const dag::JobId split = add("FileBreaker", "ID001");
  std::vector<dag::JobId> stage1(n);
  std::vector<dag::JobId> stage2(n);
  for (std::size_t b = 0; b < n; ++b) {
    stage1[b] = add("blast_" + std::to_string(b + 1), "ID006");
    stage2[b] = add("parse_" + std::to_string(b + 1), "ID007");
  }
  const dag::JobId merge = add("Merger", "ID012");

  for (std::size_t b = 0; b < n; ++b) {
    graph.add_edge(split, stage1[b], costs.edge_data("split->blast"));
    graph.add_edge(stage1[b], stage2[b], costs.edge_data("blast->parse"));
    graph.add_edge(stage2[b], merge, costs.edge_data("parse->merge"));
  }
  graph.finalize();
  workload.dag = std::move(graph);
  return workload;
}

Workload generate_wien2k(const AppParams& params, RngStream& rng) {
  check_params(params, 1);
  const std::size_t n = params.parallelism;
  AppCostTable costs(params, rng);

  dag::Dag graph("wien2k-n" + std::to_string(n));
  Workload workload;
  auto add = [&](const std::string& name, const std::string& operation) {
    const dag::JobId id = graph.add_job(name, operation);
    workload.base_cost.push_back(costs.op_cost(operation));
    return id;
  };

  const dag::JobId stagein = add("StageIn", "StageIn");
  const dag::JobId lapw0 = add("LAPW0", "LAPW0");
  std::vector<dag::JobId> lapw1(n);
  std::vector<dag::JobId> lapw2(n);
  for (std::size_t k = 0; k < n; ++k) {
    lapw1[k] = add("LAPW1_K" + std::to_string(k + 1), "LAPW1");
  }
  const dag::JobId fermi = add("LAPW2_FERMI", "LAPW2_FERMI");
  for (std::size_t k = 0; k < n; ++k) {
    lapw2[k] = add("LAPW2_K" + std::to_string(k + 1), "LAPW2");
  }
  const dag::JobId sumpara = add("Sumpara", "SUMPARA");
  const dag::JobId lcore = add("LCore", "LCORE");
  const dag::JobId mixer = add("Mixer", "MIXER");
  const dag::JobId converged = add("Converged", "CONVERGED");
  const dag::JobId stageout = add("StageOut", "StageOut");

  graph.add_edge(stagein, lapw0, costs.edge_data("stagein->lapw0"));
  for (std::size_t k = 0; k < n; ++k) {
    graph.add_edge(lapw0, lapw1[k], costs.edge_data("lapw0->lapw1"));
    graph.add_edge(lapw1[k], fermi, costs.edge_data("lapw1->fermi"));
    graph.add_edge(fermi, lapw2[k], costs.edge_data("fermi->lapw2"));
    graph.add_edge(lapw2[k], sumpara, costs.edge_data("lapw2->sumpara"));
  }
  graph.add_edge(lapw0, lcore, costs.edge_data("lapw0->lcore"));
  graph.add_edge(sumpara, mixer, costs.edge_data("sumpara->mixer"));
  graph.add_edge(lcore, mixer, costs.edge_data("lcore->mixer"));
  graph.add_edge(mixer, converged, costs.edge_data("mixer->converged"));
  graph.add_edge(converged, stageout, costs.edge_data("converged->stageout"));
  graph.finalize();
  workload.dag = std::move(graph);
  return workload;
}

Workload generate_montage(const AppParams& params, RngStream& rng) {
  check_params(params, 2);
  const std::size_t n = params.parallelism;
  AppCostTable costs(params, rng);

  dag::Dag graph("montage-n" + std::to_string(n));
  Workload workload;
  auto add = [&](const std::string& name, const std::string& operation) {
    const dag::JobId id = graph.add_job(name, operation);
    workload.base_cost.push_back(costs.op_cost(operation));
    return id;
  };

  std::vector<dag::JobId> project(n);
  for (std::size_t i = 0; i < n; ++i) {
    project[i] = add("mProject_" + std::to_string(i + 1), "mProjectPP");
  }
  std::vector<dag::JobId> difffit(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    difffit[i] = add("mDiffFit_" + std::to_string(i + 1), "mDiffFit");
  }
  const dag::JobId concat = add("mConcatFit", "mConcatFit");
  const dag::JobId bgmodel = add("mBgModel", "mBgModel");
  std::vector<dag::JobId> background(n);
  for (std::size_t i = 0; i < n; ++i) {
    background[i] = add("mBackground_" + std::to_string(i + 1), "mBackground");
  }
  const dag::JobId imgtbl = add("mImgtbl", "mImgtbl");
  const dag::JobId madd = add("mAdd", "mAdd");
  const dag::JobId shrink = add("mShrink", "mShrink");
  const dag::JobId jpeg = add("mJPEG", "mJPEG");

  for (std::size_t i = 0; i + 1 < n; ++i) {
    graph.add_edge(project[i], difffit[i], costs.edge_data("proj->diff"));
    graph.add_edge(project[i + 1], difffit[i],
                   costs.edge_data("proj->diff2"));
    graph.add_edge(difffit[i], concat, costs.edge_data("diff->concat"));
  }
  graph.add_edge(concat, bgmodel, costs.edge_data("concat->bg"));
  for (std::size_t i = 0; i < n; ++i) {
    graph.add_edge(bgmodel, background[i], costs.edge_data("bg->back"));
    graph.add_edge(project[i], background[i], costs.edge_data("proj->back"));
    graph.add_edge(background[i], imgtbl, costs.edge_data("back->imgtbl"));
  }
  graph.add_edge(imgtbl, madd, costs.edge_data("imgtbl->add"));
  graph.add_edge(madd, shrink, costs.edge_data("add->shrink"));
  graph.add_edge(shrink, jpeg, costs.edge_data("shrink->jpeg"));
  graph.finalize();
  workload.dag = std::move(graph);
  return workload;
}

Workload generate_gaussian(const AppParams& params, RngStream& rng) {
  check_params(params, 2);
  const std::size_t m = params.parallelism;
  AppCostTable costs(params, rng);

  dag::Dag graph("gauss-m" + std::to_string(m));
  Workload workload;
  auto add = [&](const std::string& name, const std::string& operation) {
    const dag::JobId id = graph.add_job(name, operation);
    workload.base_cost.push_back(costs.op_cost(operation));
    return id;
  };

  // Column elimination: pivot job per step k, then update jobs for every
  // remaining column. update(k, i) depends on pivot(k) and update(k-1, i);
  // pivot(k+1) depends on update(k, k+1).
  std::map<std::pair<std::size_t, std::size_t>, dag::JobId> update;
  std::vector<dag::JobId> pivot(m - 1);
  for (std::size_t k = 0; k + 1 < m; ++k) {
    pivot[k] = add("pivot_" + std::to_string(k + 1), "pivot");
    for (std::size_t i = k + 1; i < m; ++i) {
      update[{k, i}] =
          add("update_" + std::to_string(k + 1) + "_" + std::to_string(i + 1),
              "update");
    }
  }
  for (std::size_t k = 0; k + 1 < m; ++k) {
    for (std::size_t i = k + 1; i < m; ++i) {
      graph.add_edge(pivot[k], update[{k, i}], costs.edge_data("piv->upd"));
      if (k > 0) {
        graph.add_edge(update[{k - 1, i}], update[{k, i}],
                       costs.edge_data("upd->upd"));
      }
    }
    if (k + 2 < m) {
      graph.add_edge(update[{k, k + 1}], pivot[k + 1],
                     costs.edge_data("upd->piv"));
    }
  }
  graph.finalize();
  workload.dag = std::move(graph);
  return workload;
}

}  // namespace aheft::workloads
