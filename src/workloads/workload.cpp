#include "workloads/workload.h"

#include "support/assert.h"

namespace aheft::workloads {

double mean_base_cost(const Workload& workload) {
  AHEFT_REQUIRE(!workload.base_cost.empty(), "workload has no jobs");
  double total = 0.0;
  for (const double c : workload.base_cost) {
    total += c;
  }
  return total / static_cast<double>(workload.base_cost.size());
}

double realized_ccr(const Workload& workload) {
  if (workload.dag.edge_count() == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (const dag::Edge& e : workload.dag.edges()) {
    total += e.data;
  }
  const double mean_comm =
      total / static_cast<double>(workload.dag.edge_count());
  return mean_comm / mean_base_cost(workload);
}

}  // namespace aheft::workloads
