#include "workloads/scenario.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace aheft::workloads {

namespace {

[[noreturn]] void reject(const char* field, double value,
                         const char* constraint) {
  throw std::invalid_argument(std::string("ResourceDynamics.") + field +
                              " must be " + constraint + " (got " +
                              std::to_string(value) + ")");
}

}  // namespace

void validate(const ResourceDynamics& dynamics) {
  if (dynamics.initial == 0) {
    reject("initial", 0.0, "at least 1");
  }
  if (!(dynamics.interval > 0.0)) {
    reject("interval", dynamics.interval, "> 0");
  }
  if (!(dynamics.fraction >= 0.0)) {
    reject("fraction", dynamics.fraction, ">= 0");
  }
}

std::size_t arrivals_per_change(const ResourceDynamics& d) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::lround(d.fraction * static_cast<double>(d.initial))));
}

grid::ResourcePool build_dynamic_pool(const ResourceDynamics& dynamics,
                                      sim::Time horizon) {
  validate(dynamics);
  AHEFT_REQUIRE(horizon >= 0.0, "horizon must be non-negative");

  grid::ResourcePool pool;
  for (std::size_t i = 0; i < dynamics.initial; ++i) {
    pool.add(grid::Resource{.name = "", .arrival = sim::kTimeZero});
  }
  const std::size_t per_change = arrivals_per_change(dynamics);
  for (std::size_t change = 1;; ++change) {
    const sim::Time when =
        dynamics.interval * static_cast<double>(change);
    if (when > horizon) {
      break;
    }
    for (std::size_t k = 0; k < per_change; ++k) {
      pool.add(grid::Resource{.name = "", .arrival = when});
    }
  }
  return pool;
}

grid::MachineModel build_machine_model(const Workload& workload,
                                       std::size_t universe, double beta,
                                       std::uint64_t seed) {
  AHEFT_REQUIRE(beta >= 0.0 && beta < 2.0, "beta must be in [0, 2)");
  AHEFT_REQUIRE(universe > 0, "universe must be non-empty");
  const std::size_t v = workload.dag.job_count();
  AHEFT_REQUIRE(workload.base_cost.size() == v,
                "base costs and DAG disagree on job count");

  grid::MachineModel model(v, universe);
  for (dag::JobId i = 0; i < v; ++i) {
    for (grid::ResourceId j = 0; j < universe; ++j) {
      // Deterministic per (seed, i, j): independent of universe size.
      RngStream cell(mix64(seed, (static_cast<std::uint64_t>(i) << 24) ^ j));
      const double factor = cell.uniform(1.0 - beta / 2.0, 1.0 + beta / 2.0);
      model.set_compute_cost(i, j, workload.base_cost[i] * factor);
    }
  }
  return model;
}

}  // namespace aheft::workloads
