#include "workloads/random_dag.h"

#include <algorithm>
#include <string>

#include "support/assert.h"

namespace aheft::workloads {

Workload generate_random_workload(const RandomDagParams& params,
                                  RngStream& rng) {
  AHEFT_REQUIRE(params.jobs >= 2, "need at least two jobs");
  AHEFT_REQUIRE(params.out_degree > 0.0 && params.out_degree <= 1.0,
                "out_degree must be in (0, 1]");
  AHEFT_REQUIRE(params.ccr >= 0.0, "CCR must be non-negative");
  AHEFT_REQUIRE(params.avg_compute > 0.0, "avg_compute must be positive");

  const std::size_t v = params.jobs;
  dag::Dag graph("random-v" + std::to_string(v));
  for (std::size_t i = 0; i < v; ++i) {
    graph.add_job("n" + std::to_string(i + 1), "op" + std::to_string(i % 7));
  }

  const auto max_out = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.out_degree *
                                  static_cast<double>(v) + 0.5));
  const double mean_comm = params.ccr * params.avg_compute;

  auto draw_data = [&rng, mean_comm]() {
    return rng.uniform(0.0, 2.0 * mean_comm);
  };

  std::vector<bool> has_pred(v, false);
  // Forward edges with bounded out-degree. Node indexes are already a
  // topological order by construction.
  for (std::size_t i = 0; i + 1 < v; ++i) {
    const std::size_t remaining = v - 1 - i;
    const std::size_t fanout = static_cast<std::size_t>(rng.uniform_int(
        1, static_cast<std::int64_t>(std::min(max_out, remaining))));
    // Choose `fanout` distinct targets among i+1 .. v-1.
    std::vector<std::size_t> targets;
    targets.reserve(fanout);
    for (std::size_t k = 0; k < fanout; ++k) {
      const std::size_t t =
          i + 1 + rng.index(remaining);
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const std::size_t t : targets) {
      graph.add_edge(static_cast<dag::JobId>(i), static_cast<dag::JobId>(t),
                     draw_data());
      has_pred[t] = true;
    }
  }
  // Connect orphan nodes so the entry job is unique: every node except 0
  // gains a predecessor among strictly earlier nodes.
  for (std::size_t i = 1; i < v; ++i) {
    if (!has_pred[i]) {
      const std::size_t source = rng.index(i);
      graph.add_edge(static_cast<dag::JobId>(source),
                     static_cast<dag::JobId>(i), draw_data());
      has_pred[i] = true;
    }
  }
  graph.finalize();

  Workload workload{std::move(graph), {}};
  workload.base_cost.reserve(v);
  for (std::size_t i = 0; i < v; ++i) {
    // Uniform in (0, 2 * avg]: a floor keeps every cost strictly positive.
    const double floor_cost = 1e-3 * params.avg_compute;
    workload.base_cost.push_back(std::max(
        floor_cost, rng.uniform(0.0, 2.0 * params.avg_compute)));
  }
  return workload;
}

}  // namespace aheft::workloads
