// Environment and command-line knobs shared by benches and examples.
#ifndef AHEFT_SUPPORT_ENV_H_
#define AHEFT_SUPPORT_ENV_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace aheft {

/// Experiment scale presets. Benches default to kDefault (seconds–minutes);
/// kPaper replays the paper's full 500,000-case sweeps; kSmoke is CI-sized.
enum class Scale { kSmoke, kDefault, kPaper };

[[nodiscard]] std::string to_string(Scale scale);
[[nodiscard]] std::optional<Scale> parse_scale(const std::string& text);

/// Reads an environment variable, empty optional when unset/empty.
[[nodiscard]] std::optional<std::string> get_env(const std::string& name);

/// A tiny --key=value / --flag argument parser used by benches/examples.
/// Unrecognized positional arguments are kept in positional().
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name or --name=anything was passed.
  [[nodiscard]] bool has(const std::string& name) const;
  /// Value of --name=value, or fallback.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Resolves the scale from --scale=... or $AHEFT_SCALE, defaulting to
  /// Scale::kDefault.
  [[nodiscard]] Scale scale() const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace aheft

#endif  // AHEFT_SUPPORT_ENV_H_
