// Leveled stderr logging, controlled by $AHEFT_LOG (error|warn|info|debug).
#ifndef AHEFT_SUPPORT_LOG_H_
#define AHEFT_SUPPORT_LOG_H_

#include <sstream>
#include <string>

namespace aheft {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Returns the process-wide level, parsed once from $AHEFT_LOG
/// (default: warn).
[[nodiscard]] LogLevel log_level();

/// Overrides the process-wide level (used by tests).
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace aheft

#define AHEFT_LOG(level, expr)                                      \
  do {                                                              \
    if (static_cast<int>(level) <=                                  \
        static_cast<int>(::aheft::log_level())) {                   \
      std::ostringstream aheft_log_os;                              \
      aheft_log_os << expr;                                         \
      ::aheft::detail::log_write(level, aheft_log_os.str());        \
    }                                                               \
  } while (false)

#define AHEFT_LOG_ERROR(expr) AHEFT_LOG(::aheft::LogLevel::kError, expr)
#define AHEFT_LOG_WARN(expr) AHEFT_LOG(::aheft::LogLevel::kWarn, expr)
#define AHEFT_LOG_INFO(expr) AHEFT_LOG(::aheft::LogLevel::kInfo, expr)
#define AHEFT_LOG_DEBUG(expr) AHEFT_LOG(::aheft::LogLevel::kDebug, expr)

#endif  // AHEFT_SUPPORT_LOG_H_
