// Wall-clock stopwatch for harness progress reporting.
#ifndef AHEFT_SUPPORT_STOPWATCH_H_
#define AHEFT_SUPPORT_STOPWATCH_H_

#include <chrono>

namespace aheft {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aheft

#endif  // AHEFT_SUPPORT_STOPWATCH_H_
