// Deterministic, splittable random number generation.
//
// Every experiment case derives its own independent stream from
// (master seed, case id), so results are bit-identical regardless of how
// cases are distributed over worker threads. The engine is xoshiro256**,
// seeded through SplitMix64 as its authors recommend; both are implemented
// here so the library has no dependency on unspecified std::mt19937 state
// layouts across standard libraries.
#ifndef AHEFT_SUPPORT_RNG_H_
#define AHEFT_SUPPORT_RNG_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace aheft {

/// SplitMix64: tiny 64-bit generator used for seeding and for hashing
/// (seed, tag) pairs into substream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — a fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

 private:
  std::uint64_t s_[4];
};

/// A convenience wrapper offering the distributions the generators and the
/// experiment harness need. All draws are deterministic functions of the
/// seed and the draw sequence.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Derives an independent child stream from this stream's seed and a tag.
  /// Children do not consume entropy from the parent, so the parent's draw
  /// sequence is unaffected by how many children are created.
  [[nodiscard]] RngStream child(std::uint64_t tag) const;
  [[nodiscard]] RngStream child(std::string_view tag) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform real in [0, 1).
  double uniform01();
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform index in [0, n).
  std::size_t index(std::size_t n);
  /// Bernoulli draw.
  bool bernoulli(double p);
  /// Truncated-at-zero normal draw (Box–Muller), used by noise models.
  double normal(double mean, double stddev);
  /// Exponential with the given mean.
  double exponential(double mean);
  /// Log-normal: exp of a N(mu, sigma^2) draw (mu/sigma on the log scale).
  double log_normal(double mu, double sigma);
  /// Weibull with the given shape and scale (CDF 1 - exp(-(x/scale)^shape)).
  double weibull(double shape, double scale);
  /// Geometric number of trials until the first success, in {1, 2, ...};
  /// mean 1/p. p must lie in (0, 1].
  std::size_t geometric(double p);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[index(i + 1)]);
    }
  }

  std::uint64_t next_u64() { return engine_(); }

 private:
  Xoshiro256 engine_;
  std::uint64_t seed_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit hash of a string, for deriving stream tags from names.
[[nodiscard]] std::uint64_t hash64(std::string_view text) noexcept;

/// Mixes two 64-bit values into one (used for (seed, tag) -> child seed).
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace aheft

#endif  // AHEFT_SUPPORT_RNG_H_
