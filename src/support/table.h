// ASCII table rendering for bench/report output.
#ifndef AHEFT_SUPPORT_TABLE_H_
#define AHEFT_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace aheft {

/// A simple column-aligned ASCII table. Numeric cells should be formatted by
/// the caller (see format_double) so the table stays layout-only.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  AsciiTable& add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule, right-aligning cells that parse
  /// as numbers and left-aligning the rest.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision, trimming the noise ("3.50" -> for
/// precision 2). Used throughout the benches so tables line up.
[[nodiscard]] std::string format_double(double value, int precision = 1);

/// Formats a ratio as a percentage string, e.g. 0.204 -> "20.4%".
[[nodiscard]] std::string format_percent(double ratio, int precision = 1);

}  // namespace aheft

#endif  // AHEFT_SUPPORT_TABLE_H_
