#include "support/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

#include "support/env.h"

namespace aheft {

namespace {

std::atomic<int> g_level{-1};  // -1: not yet initialized

LogLevel parse_level(const std::string& text) {
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "info") return LogLevel::kInfo;
  if (text == "debug") return LogLevel::kDebug;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    const auto env = get_env("AHEFT_LOG");
    level = static_cast<int>(env ? parse_level(*env) : LogLevel::kWarn);
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_write(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  std::scoped_lock lock(mutex);
  std::cerr << "[aheft " << level_name(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace aheft
