#include "support/rng.h"

#include <cmath>
#include <numbers>

#include "support/assert.h"

namespace aheft {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

RngStream RngStream::child(std::uint64_t tag) const {
  return RngStream(mix64(seed_, tag));
}

RngStream RngStream::child(std::string_view tag) const {
  return child(hash64(tag));
}

double RngStream::uniform01() {
  // 53-bit mantissa yields uniform doubles in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  AHEFT_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  AHEFT_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine_());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = Xoshiro256::max() - Xoshiro256::max() % span;
  std::uint64_t draw = engine_();
  while (draw >= limit) {
    draw = engine_();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t RngStream::index(std::size_t n) {
  AHEFT_REQUIRE(n > 0, "index(n) requires n > 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

bool RngStream::bernoulli(double p) {
  return uniform01() < p;
}

double RngStream::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  // Box–Muller transform.
  double u1 = uniform01();
  while (u1 <= 0.0) {
    u1 = uniform01();
  }
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double RngStream::exponential(double mean) {
  AHEFT_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u = uniform01();
  while (u <= 0.0) {
    u = uniform01();
  }
  return -mean * std::log(u);
}

double RngStream::log_normal(double mu, double sigma) {
  AHEFT_REQUIRE(sigma >= 0.0, "log_normal sigma must be non-negative");
  return std::exp(normal(mu, sigma));
}

double RngStream::weibull(double shape, double scale) {
  AHEFT_REQUIRE(shape > 0.0 && scale > 0.0,
                "weibull shape and scale must be positive");
  double u = uniform01();
  while (u <= 0.0) {
    u = uniform01();
  }
  // -log(u) is a unit exponential; raising to 1/shape Weibull-izes it.
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::size_t RngStream::geometric(double p) {
  AHEFT_REQUIRE(p > 0.0 && p <= 1.0, "geometric p must lie in (0, 1]");
  if (p == 1.0) {
    return 1;
  }
  double u = uniform01();
  while (u <= 0.0) {
    u = uniform01();
  }
  // Inversion: ceil(log(u) / log(1 - p)) trials, at least one.
  const double trials = std::ceil(std::log(u) / std::log1p(-p));
  return trials < 1.0 ? 1 : static_cast<std::size_t>(trials);
}

std::uint64_t hash64(std::string_view text) noexcept {
  // FNV-1a, then strengthened through SplitMix64 finalization.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return SplitMix64(h).next();
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  SplitMix64 sm(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
  return sm.next();
}

}  // namespace aheft
