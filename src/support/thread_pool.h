// A small fixed-size thread pool plus a chunked parallel_for.
//
// The experiment harness runs hundreds of thousands of independent
// simulation cases; this pool is the only parallelism in the library.
// Determinism is preserved by deriving all randomness from per-case seeds,
// never from thread identity or scheduling order.
#ifndef AHEFT_SUPPORT_THREAD_POOL_H_
#define AHEFT_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aheft {

/// Fixed-size worker pool. Tasks are arbitrary void() callables.
/// The destructor drains outstanding tasks before joining the workers.
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 means hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [0, count) on the pool, in chunks.
/// If any invocation throws, the first exception is rethrown here after all
/// workers have stopped touching the range. `pool` may be null, in which
/// case the loop runs inline (useful for tests and debugging).
void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk_size = 0);

}  // namespace aheft

#endif  // AHEFT_SUPPORT_THREAD_POOL_H_
