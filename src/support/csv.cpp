#include "support/csv.h"

#include "support/assert.h"

namespace aheft {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), width_(header.size()) {
  AHEFT_REQUIRE(!header.empty(), "CSV header must be non-empty");
  emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  AHEFT_REQUIRE(cells.size() == width_, "CSV row width mismatch");
  emit(cells);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace aheft
