#include "support/env.h"

#include <cstdlib>
#include <stdexcept>

namespace aheft {

std::string to_string(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kPaper:
      return "paper";
  }
  return "unknown";
}

std::optional<Scale> parse_scale(const std::string& text) {
  if (text == "smoke") return Scale::kSmoke;
  if (text == "default") return Scale::kDefault;
  if (text == "paper" || text == "full") return Scale::kPaper;
  return std::nullopt;
}

std::optional<std::string> get_env(const std::string& name) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        options_[arg.substr(2)] = "";
      } else {
        options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) {
    return fallback;
  }
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) {
    return fallback;
  }
  return std::stoll(it->second);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) {
    return fallback;
  }
  return std::stod(it->second);
}

Scale ArgParser::scale() const {
  if (const auto it = options_.find("scale"); it != options_.end()) {
    if (const auto parsed = parse_scale(it->second)) {
      return *parsed;
    }
    throw std::invalid_argument("unknown --scale value: " + it->second);
  }
  if (const auto env = get_env("AHEFT_SCALE")) {
    if (const auto parsed = parse_scale(*env)) {
      return *parsed;
    }
  }
  return Scale::kDefault;
}

}  // namespace aheft
