// Minimal CSV output for experiment results.
#ifndef AHEFT_SUPPORT_CSV_H_
#define AHEFT_SUPPORT_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace aheft {

/// Writes RFC-4180-style CSV rows to a file. Cells containing commas,
/// quotes, or newlines are quoted and escaped.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void emit(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

/// Escapes a single CSV cell (exposed for testing).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace aheft

#endif  // AHEFT_SUPPORT_CSV_H_
