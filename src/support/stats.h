// Streaming statistics used by the experiment harness, plus the
// distribution-fitting primitives the workload-archive subsystem uses to
// estimate heavy-tailed runtime and interarrival marginals from real logs
// (log-normal / Weibull maximum likelihood, empirical quantiles, and the
// Kolmogorov–Smirnov distance that scores the fits).
#ifndef AHEFT_SUPPORT_STATS_H_
#define AHEFT_SUPPORT_STATS_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

namespace aheft {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, mergeable so per-thread partials can be combined.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean (stddev / sqrt(n)).
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// The paper reports "improvement rate" as the relative reduction of the
/// *average* makespan: (avg(base) - avg(variant)) / avg(base).
[[nodiscard]] double improvement_rate(double base_mean, double variant_mean);

/// Jain's fairness index over non-negative allocations:
/// (sum x)^2 / (n * sum x^2), in (0, 1] with 1 meaning perfectly equal.
/// Degenerate inputs (empty, or all zeros) count as perfectly fair.
[[nodiscard]] double jain_fairness_index(const std::vector<double>& values);

// -------------------------------------------------- distribution fitting --

/// Standard normal CDF Phi(z).
[[nodiscard]] double normal_cdf(double z) noexcept;

/// Log-normal distribution: ln X ~ N(mu, sigma^2).
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 1.0;

  [[nodiscard]] double cdf(double x) const noexcept;
  /// Quantile expressed through the standard-normal deviate z = probit(u):
  /// exp(mu + sigma * z). Lets Gaussian-copula samplers draw correlated
  /// values without a probit implementation.
  [[nodiscard]] double quantile_from_normal(double z) const noexcept;
  [[nodiscard]] double mean() const noexcept;

  bool operator==(const LogNormalParams&) const = default;
};

/// Weibull distribution with CDF 1 - exp(-(x / scale)^shape).
struct WeibullParams {
  double shape = 1.0;
  double scale = 1.0;

  [[nodiscard]] double cdf(double x) const noexcept;
  /// Inverse CDF: scale * (-ln(1 - u))^(1/shape), u in [0, 1).
  [[nodiscard]] double quantile(double u) const noexcept;

  bool operator==(const WeibullParams&) const = default;
};

/// Maximum-likelihood log-normal fit (mu = mean of logs, sigma = the MLE
/// standard deviation of logs, i.e. the 1/n form). Throws
/// std::invalid_argument on an empty sample or any value <= 0.
[[nodiscard]] LogNormalParams fit_log_normal(
    const std::vector<double>& sample);

/// Maximum-likelihood Weibull fit; the shape equation is solved by damped
/// Newton iteration from a method-of-moments start. Throws
/// std::invalid_argument on an empty sample or any value <= 0; a
/// degenerate all-equal sample yields a large shape (a near-point mass).
[[nodiscard]] WeibullParams fit_weibull(const std::vector<double>& sample);

/// Linear-interpolation empirical quantile of an ascending-sorted sample
/// (the R type-7 convention). q is clamped to [0, 1]. Throws
/// std::invalid_argument when the sample is empty or unsorted.
[[nodiscard]] double empirical_quantile(const std::vector<double>& sorted,
                                        double q);

/// One-sample Kolmogorov–Smirnov distance between a sample and a
/// continuous CDF: sup_x |F_n(x) - F(x)|. The sample need not be sorted.
/// Throws std::invalid_argument on an empty sample.
[[nodiscard]] double ks_distance(std::vector<double> sample,
                                 const std::function<double(double)>& cdf);

/// Two-sample Kolmogorov–Smirnov distance between the empirical CDFs.
/// Throws std::invalid_argument when either sample is empty.
[[nodiscard]] double ks_distance(std::vector<double> a,
                                 std::vector<double> b);

}  // namespace aheft

#endif  // AHEFT_SUPPORT_STATS_H_
