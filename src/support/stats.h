// Streaming statistics used by the experiment harness.
#ifndef AHEFT_SUPPORT_STATS_H_
#define AHEFT_SUPPORT_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace aheft {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max, mergeable so per-thread partials can be combined.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean (stddev / sqrt(n)).
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// The paper reports "improvement rate" as the relative reduction of the
/// *average* makespan: (avg(base) - avg(variant)) / avg(base).
[[nodiscard]] double improvement_rate(double base_mean, double variant_mean);

/// Jain's fairness index over non-negative allocations:
/// (sum x)^2 / (n * sum x^2), in (0, 1] with 1 meaning perfectly equal.
/// Degenerate inputs (empty, or all zeros) count as perfectly fair.
[[nodiscard]] double jain_fairness_index(const std::vector<double>& values);

}  // namespace aheft

#endif  // AHEFT_SUPPORT_STATS_H_
