#include "support/assert.h"

#include <sstream>

namespace aheft::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw AssertionError(os.str());
}

}  // namespace aheft::detail
