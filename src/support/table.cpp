#include "support/table.h"

#include <algorithm>
#include <charconv>
#include <iomanip>
#include <sstream>

#include "support/assert.h"

namespace aheft {

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  double value = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc()) {
    return false;
  }
  // Allow a trailing '%' so percentage columns right-align too.
  return ptr == end || (ptr + 1 == end && *ptr == '%');
}

}  // namespace

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  AHEFT_REQUIRE(!header_.empty(), "table needs at least one column");
}

AsciiTable& AsciiTable::add_row(std::vector<std::string> cells) {
  AHEFT_REQUIRE(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ");
      const bool right = looks_numeric(row[c]);
      const auto pad = widths[c] - row[c].size();
      if (right) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(header_);
  os << '|';
  for (const std::size_t w : widths) {
    os << std::string(w + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace aheft
