// Runtime invariant checking for the AHEFT library.
//
// The simulator is a research artifact: we keep invariant checks enabled in
// every build type (their cost is negligible next to scheduling work) and
// surface violations as exceptions so that both library users and the test
// suite can observe them deterministically.
#ifndef AHEFT_SUPPORT_ASSERT_H_
#define AHEFT_SUPPORT_ASSERT_H_

#include <stdexcept>
#include <string>

namespace aheft {

/// Thrown when an internal invariant of the library is violated.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace detail
}  // namespace aheft

/// Checks an internal invariant; throws aheft::AssertionError on failure.
/// `msg` is any expression convertible to std::string.
#define AHEFT_ASSERT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::aheft::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)

/// Validates a user-supplied argument; throws std::invalid_argument.
#define AHEFT_REQUIRE(cond, msg)                          \
  do {                                                    \
    if (!(cond)) {                                        \
      throw std::invalid_argument(std::string(msg));      \
    }                                                     \
  } while (false)

#endif  // AHEFT_SUPPORT_ASSERT_H_
