#include "support/stats.h"

#include <algorithm>
#include <cmath>

namespace aheft {

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double improvement_rate(double base_mean, double variant_mean) {
  if (base_mean == 0.0) {
    return 0.0;
  }
  return (base_mean - variant_mean) / base_mean;
}

double jain_fairness_index(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (values.empty() || sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace aheft
