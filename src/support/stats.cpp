#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aheft {

void OnlineStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double improvement_rate(double base_mean, double variant_mean) {
  if (base_mean == 0.0) {
    return 0.0;
  }
  return (base_mean - variant_mean) / base_mean;
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double LogNormalParams::cdf(double x) const noexcept {
  if (x <= 0.0) {
    return 0.0;
  }
  return normal_cdf((std::log(x) - mu) / sigma);
}

double LogNormalParams::quantile_from_normal(double z) const noexcept {
  return std::exp(mu + sigma * z);
}

double LogNormalParams::mean() const noexcept {
  return std::exp(mu + 0.5 * sigma * sigma);
}

double WeibullParams::cdf(double x) const noexcept {
  if (x <= 0.0) {
    return 0.0;
  }
  return -std::expm1(-std::pow(x / scale, shape));
}

double WeibullParams::quantile(double u) const noexcept {
  return scale * std::pow(-std::log1p(-u), 1.0 / shape);
}

namespace {

/// Logs of a sample that must be positive; shared fit precondition.
std::vector<double> positive_logs(const std::vector<double>& sample,
                                  const char* what) {
  if (sample.empty()) {
    throw std::invalid_argument(std::string(what) +
                                " needs a non-empty sample");
  }
  std::vector<double> logs;
  logs.reserve(sample.size());
  for (const double x : sample) {
    if (!(x > 0.0) || std::isinf(x)) {
      throw std::invalid_argument(std::string(what) +
                                  " needs finite values > 0");
    }
    logs.push_back(std::log(x));
  }
  return logs;
}

}  // namespace

LogNormalParams fit_log_normal(const std::vector<double>& sample) {
  const std::vector<double> logs = positive_logs(sample, "fit_log_normal");
  const auto n = static_cast<double>(logs.size());
  double mu = 0.0;
  for (const double l : logs) {
    mu += l;
  }
  mu /= n;
  double ss = 0.0;
  for (const double l : logs) {
    ss += (l - mu) * (l - mu);
  }
  return LogNormalParams{mu, std::sqrt(ss / n)};
}

WeibullParams fit_weibull(const std::vector<double>& sample) {
  const std::vector<double> logs = positive_logs(sample, "fit_weibull");
  const auto n = static_cast<double>(logs.size());
  double log_mean = 0.0;
  double log_var = 0.0;
  for (const double l : logs) {
    log_mean += l;
  }
  log_mean /= n;
  for (const double l : logs) {
    log_var += (l - log_mean) * (l - log_mean);
  }
  log_var /= n;

  // MLE shape k solves  sum(x^k ln x)/sum(x^k) - 1/k = mean(ln x).
  // Method-of-moments start: for Weibull, sd(ln X) = (pi/sqrt(6))/k.
  constexpr double kMinShape = 1e-2;
  constexpr double kMaxShape = 1e3;  // all-equal samples push k here
  double k = log_var > 0.0
                 ? std::clamp(1.2825498301618641 / std::sqrt(log_var),
                              kMinShape, kMaxShape)
                 : kMaxShape;
  for (int iter = 0; iter < 100; ++iter) {
    // Work with x^k = exp(k ln x) shifted by the max log to avoid
    // overflow on heavy-tailed samples.
    const double shift =
        *std::max_element(logs.begin(), logs.end());
    double s0 = 0.0;  // sum x^k
    double s1 = 0.0;  // sum x^k ln x
    double s2 = 0.0;  // sum x^k (ln x)^2
    for (const double l : logs) {
      const double w = std::exp(k * (l - shift));
      s0 += w;
      s1 += w * l;
      s2 += w * l * l;
    }
    const double g = s1 / s0 - 1.0 / k - log_mean;
    const double dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    if (dg <= 0.0) {
      break;
    }
    const double next = std::clamp(k - g / dg, 0.5 * k, 2.0 * k);
    const double step = std::abs(next - k);
    k = std::clamp(next, kMinShape, kMaxShape);
    if (step < 1e-10 * k) {
      break;
    }
  }

  // Scale MLE given the shape: lambda = (mean of x^k)^(1/k).
  const double shift = *std::max_element(logs.begin(), logs.end());
  double s0 = 0.0;
  for (const double l : logs) {
    s0 += std::exp(k * (l - shift));
  }
  const double scale = std::exp(shift + std::log(s0 / n) / k);
  return WeibullParams{k, scale};
}

double empirical_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument(
        "empirical_quantile needs a non-empty sample");
  }
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    throw std::invalid_argument(
        "empirical_quantile needs an ascending-sorted sample");
  }
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double ks_distance(std::vector<double> sample,
                   const std::function<double(double)>& cdf) {
  if (sample.empty()) {
    throw std::invalid_argument("ks_distance needs a non-empty sample");
  }
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    d = std::max(d, std::abs(static_cast<double>(i + 1) / n - f));
    d = std::max(d, std::abs(f - static_cast<double>(i) / n));
  }
  return d;
}

double ks_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_distance needs non-empty samples");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    // Step past every sample equal to the smaller head before comparing
    // the empirical CDFs, so ties advance both sides together.
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) {
      ++i;
    }
    while (j < b.size() && b[j] <= x) {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  return d;
}

double jain_fairness_index(const std::vector<double>& values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (values.empty() || sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace aheft
