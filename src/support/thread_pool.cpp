#include "support/thread_pool.h"

#include <algorithm>

#include "support/assert.h"

namespace aheft {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  AHEFT_REQUIRE(task != nullptr, "cannot submit a null task");
  {
    std::unique_lock lock(mutex_);
    AHEFT_ASSERT(!stopping_, "submit after shutdown");
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

void parallel_for(ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t chunk_size) {
  if (count == 0) {
    return;
  }
  if (pool == nullptr || pool->thread_count() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
    }
    return;
  }
  if (chunk_size == 0) {
    // Aim for ~8 chunks per worker to balance load without contention.
    chunk_size = std::max<std::size_t>(1, count / (pool->thread_count() * 8));
  }

  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<std::size_t> pending_chunks{0};
    std::mutex done_mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<SharedState>();

  const std::size_t chunk_count = (count + chunk_size - 1) / chunk_size;
  state->pending_chunks.store(chunk_count);

  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    pool->submit([state, begin, end, &body] {
      if (!state->failed.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = begin; i < end; ++i) {
            body(i);
          }
        } catch (...) {
          std::scoped_lock lock(state->error_mutex);
          if (!state->failed.exchange(true)) {
            state->first_error = std::current_exception();
          }
        }
      }
      if (state->pending_chunks.fetch_sub(1) == 1) {
        std::scoped_lock lock(state->done_mutex);
        state->done.notify_all();
      }
    });
  }

  std::unique_lock lock(state->done_mutex);
  state->done.wait(lock, [&] { return state->pending_chunks.load() == 0; });
  if (state->failed.load()) {
    std::rethrow_exception(state->first_error);
  }
}

}  // namespace aheft
