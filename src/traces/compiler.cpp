#include "traces/compiler.h"

#include <algorithm>

namespace aheft::traces {

CompiledScenario TraceCompiler::compile(const GridTrace& trace) const {
  CompiledScenario scenario;
  for (const ResourceRecord& record : trace.resources) {
    scenario.pool.add(grid::Resource{.name = record.name,
                                     .arrival = record.arrival,
                                     .departure = record.departure});
  }
  for (const LoadRecord& record : trace.load) {
    scenario.load.add(record.resource, record.start, record.end,
                      record.multiplier);
  }
  scenario.load.sort();
  scenario.events =
      derive_events(scenario.pool, scenario.load, options_.event_horizon);
  scenario.job_arrivals = trace.jobs;
  return scenario;
}

std::vector<grid::GridEvent> derive_events(const grid::ResourcePool& pool,
                                           const LoadTimeline& load,
                                           sim::Time horizon) {
  std::vector<grid::GridEvent> events =
      grid::pool_change_events(pool, sim::kTimeZero, horizon);
  for (const LoadSegment& segment : load.segments()) {
    if (segment.start > horizon) {
      continue;
    }
    events.push_back(grid::GridEvent{
        segment.start,
        grid::PerformanceVarianceEvent{dag::kInvalidJob, segment.resource,
                                       1.0, segment.multiplier}});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const grid::GridEvent& a, const grid::GridEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.payload.index() < b.payload.index();
                   });
  return events;
}

GridTrace record_scenario(const grid::ResourcePool& pool,
                          const LoadTimeline& load, std::string name,
                          std::vector<JobArrivalRecord> jobs) {
  GridTrace trace;
  trace.name = std::move(name);
  for (const grid::Resource& r : pool.all()) {
    trace.resources.push_back(
        ResourceRecord{r.id, r.arrival, r.departure, r.name});
  }
  LoadTimeline canonical = load;
  canonical.sort();
  for (const LoadSegment& segment : canonical.segments()) {
    trace.load.push_back(LoadRecord{segment.resource, segment.start,
                                    segment.end, segment.multiplier});
  }
  trace.jobs = std::move(jobs);
  return trace;
}

GridTrace record_scenario(const CompiledScenario& scenario,
                          std::string name) {
  return record_scenario(scenario.pool, scenario.load, std::move(name),
                         scenario.job_arrivals);
}

}  // namespace aheft::traces
