#include "traces/load_timeline.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace aheft::traces {

void LoadTimeline::add(grid::ResourceId resource, sim::Time start,
                       sim::Time end, double multiplier) {
  AHEFT_REQUIRE(start >= 0.0, "load segment start must be non-negative");
  AHEFT_REQUIRE(end > start, "load segment must end after it starts");
  AHEFT_REQUIRE(multiplier > 0.0 && !std::isinf(multiplier) &&
                    !std::isnan(multiplier),
                "load multiplier must be finite and > 0");
  segments_.push_back(LoadSegment{resource, start, end, multiplier});
}

double LoadTimeline::factor(grid::ResourceId resource, sim::Time t) const {
  double product = 1.0;
  for (const LoadSegment& segment : segments_) {
    if (segment.resource == resource && segment.start <= t &&
        t < segment.end) {
      product *= segment.multiplier;
    }
  }
  return product;
}

void LoadTimeline::sort() {
  std::sort(segments_.begin(), segments_.end(),
            [](const LoadSegment& a, const LoadSegment& b) {
              if (a.resource != b.resource) return a.resource < b.resource;
              if (a.start != b.start) return a.start < b.start;
              if (a.end != b.end) return a.end < b.end;
              return a.multiplier < b.multiplier;
            });
}

}  // namespace aheft::traces
