// SWF-inspired plain-text grid trace format.
//
// A trace is the on-disk description of a grid scenario — resource
// up/down intervals, per-resource time-varying load multipliers, and job
// arrival records — so any simulated environment can be recorded and
// replayed bit-identically.
//
// Grammar (one record per line; '#' starts a comment; blank lines are
// ignored; fields are whitespace-separated):
//
//   gridtrace v1 <name>                          header, first record
//   resource <id> <arrival> <departure> <name>   availability window
//   load <resource-id> <start> <end> <multiplier>
//   job <id> <arrival> <name>                    workload arrival record
//
// Times are doubles on the logical simulation clock; the token "inf"
// denotes an open departure or load-segment end. Resource and job ids
// must be dense and ascending from 0 so they line up with the library's
// dense grid::ResourceId / dag::JobId indexing. Records may only
// reference resources declared on earlier lines. Doubles are written
// with max_digits10 precision, so a write -> read round trip reproduces
// the exact same values.
#ifndef AHEFT_TRACES_TRACE_FORMAT_H_
#define AHEFT_TRACES_TRACE_FORMAT_H_

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "grid/resource.h"
#include "sim/time.h"

namespace aheft::traces {

/// One resource's availability window.
struct ResourceRecord {
  grid::ResourceId id = 0;
  sim::Time arrival = sim::kTimeZero;
  sim::Time departure = sim::kTimeInfinity;
  std::string name;

  bool operator==(const ResourceRecord&) const = default;
};

/// One piecewise-constant load segment: `resource` runs jobs
/// `multiplier` times slower during [start, end).
struct LoadRecord {
  grid::ResourceId resource = 0;
  sim::Time start = sim::kTimeZero;
  sim::Time end = sim::kTimeInfinity;
  double multiplier = 1.0;

  bool operator==(const LoadRecord&) const = default;
};

/// One job-arrival record (workload stream extension; a single-DAG run
/// has every job arriving at t = 0).
struct JobArrivalRecord {
  std::uint32_t job = 0;
  sim::Time arrival = sim::kTimeZero;
  std::string name;

  bool operator==(const JobArrivalRecord&) const = default;
};

/// A parsed trace file.
struct GridTrace {
  std::string name = "trace";
  std::vector<ResourceRecord> resources;
  std::vector<LoadRecord> load;
  std::vector<JobArrivalRecord> jobs;

  bool operator==(const GridTrace&) const = default;
};

/// Parse failure; carries the 1-based line number of the offending record.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line, const std::string& message);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses a trace; throws TraceParseError on malformed input.
[[nodiscard]] GridTrace read_trace(std::istream& in);
[[nodiscard]] GridTrace read_trace_string(std::string_view text);
/// Throws std::runtime_error when the file cannot be opened.
[[nodiscard]] GridTrace read_trace_file(const std::string& path);

/// Writes a trace in the format read_trace parses. Whitespace inside
/// names is replaced with '_' (names are single tokens on disk).
void write_trace(std::ostream& out, const GridTrace& trace);
[[nodiscard]] std::string write_trace_string(const GridTrace& trace);
/// Throws std::runtime_error when the file cannot be created.
void write_trace_file(const std::string& path, const GridTrace& trace);

}  // namespace aheft::traces

#endif  // AHEFT_TRACES_TRACE_FORMAT_H_
